#![warn(missing_docs)]

//! # criterion (offline shim)
//!
//! The build container cannot reach crates.io, so this crate vendors the
//! slice of the `criterion` 0.5 API the workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`black_box`] and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: a short warm-up, then timed batches
//! until the sample budget is spent, reporting the mean, minimum and maximum
//! per-iteration wall time. No statistical analysis, HTML reports, or saved
//! baselines — trend tracking lives in the repo's `BENCH_*.json` files.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one parameterized benchmark: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{parameter}", name.into()),
        }
    }
}

/// The timing driver passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: u64,
    /// Mean per-iteration time of the measured batches.
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `f`, running it in batches until the sample budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed call (fills caches, triggers lazy init).
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = self.samples;
    }
}

fn format_ns(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(name: &str, samples: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        elapsed: Duration::ZERO,
        iters: 1,
    };
    f(&mut b);
    let per_iter = b.elapsed / b.iters.max(1) as u32;
    println!(
        "{name:<40} time: {:>12}/iter  ({} iters)",
        format_ns(per_iter),
        b.iters
    );
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Run a single benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("-- group: {name} --");
        BenchmarkGroup {
            group: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    group: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{name}", self.group), self.sample_size, &mut f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.group, id.name),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// End the group (upstream flushes reports here; the shim needs nothing).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        // 1 warm-up + sample_size timed iterations.
        assert_eq!(calls, 31);
    }

    #[test]
    fn groups_and_ids_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("p", 4), &4usize, |b, &n| {
            b.iter(|| black_box(n * 2));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
