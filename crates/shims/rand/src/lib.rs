#![warn(missing_docs)]

//! # rand (offline shim)
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the *deterministic subset* of the `rand` 0.8 API it actually uses:
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and the three [`Rng`]
//! methods `gen`, `gen_bool` and `gen_range` over half-open ranges.
//!
//! The generator is xoshiro256\*\* seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), which is fine: every consumer in
//! this workspace only requires *self-consistent* determinism (same seed →
//! same campaign), never upstream-compatible streams. Keeping the crate name
//! `rand` means no source file in the workspace changes if the real
//! dependency ever becomes available again — swap the path dependency back
//! to a registry version and everything recompiles.

use std::ops::Range;

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministically).
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 — used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types samplable uniformly from a half-open `start..end` range.
pub trait UniformSampled: Sized {
    /// Draw one value from `range` (panics when `range` is empty).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSampled for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Widening-multiply map of 64 random bits onto the span; the
                // bias is < 2^-64 per value, irrelevant for fuzzing workloads.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (range.start as i128 + hi) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSampled for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range on empty range");
        let unit = f64::sample(rng);
        range.start + unit * (range.end - range.start)
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// A uniform value over the type's whole domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample(self) < p
    }

    /// A uniform value from `start..end`.
    fn gen_range<T: UniformSampled>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256\*\*).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro256** must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-1000.0..1000.0);
            assert!((-1000.0..1000.0).contains(&f));
            let u = rng.gen_range(0..1usize);
            assert_eq!(u, 0);
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_respects_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).map(|_| rng.gen_bool(0.0)).any(|b| b));
        assert!((0..100).map(|_| rng.gen_bool(1.0)).all(|b| b));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "0.3 rate gave {hits}/10000");
    }
}
