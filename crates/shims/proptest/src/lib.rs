#![warn(missing_docs)]

//! # proptest (offline shim)
//!
//! The build container cannot reach crates.io, so this crate vendors the
//! subset of the `proptest` 1.x API the workspace's property tests use:
//! the [`Strategy`] trait with `prop_map`, [`any`], range / tuple / string
//! strategies, [`prop_oneof!`], `prop::collection::vec`,
//! [`string::string_regex`], and the [`proptest!`] test macro.
//!
//! Differences from upstream, deliberately accepted:
//!
//! - **No shrinking.** A failing case panics with the case number and the
//!   per-test RNG seed; re-running reproduces it exactly (sampling is fully
//!   deterministic — seeded per test from the test's name, overridable with
//!   `PROPTEST_SEED`).
//! - **Sampling distributions differ** from upstream (no bias toward edge
//!   cases). Property tests in this workspace assert invariants, not
//!   distribution-sensitive statistics, so any uniform sampler satisfies
//!   them.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng, Standard, UniformSampled};

/// The RNG handed to strategies by the [`proptest!`] runner.
pub type TestRng = StdRng;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-test RNG: seeded from the test name, or from
/// `PROPTEST_SEED` when set (to reproduce a failure exactly).
pub fn test_rng(test_name: &str) -> TestRng {
    let seed = seed_for(test_name);
    TestRng::seed_from_u64(seed)
}

/// The seed [`test_rng`] uses for `test_name` (printed on failure).
pub fn seed_for(test_name: &str) -> u64 {
    if let Some(s) = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
    {
        return s;
    }
    // FNV-1a over the test name.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A value generator. Object-safe core (`generate`), with the combinators
/// gated on `Sized` so `Box<dyn Strategy>` works.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform over the whole domain of `T` (`any::<T>()`).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The `any::<T>()` strategy over `T`'s whole domain.
pub fn any<T: Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Standard> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

impl<T: UniformSampled + Clone> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string::sample_regex(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Uniform choice among type-erased alternatives ([`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over the given alternatives (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Rng, Strategy, TestRng};
    use std::ops::Range;

    /// `Vec`s of `element` with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The [`vec`] strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// String strategies from regex-like patterns.
pub mod string {
    use super::{Rng, Strategy, TestRng};

    /// Error from [`string_regex`] (the shim never produces one at parse
    /// time; malformed patterns panic during sampling instead).
    #[derive(Debug, Clone)]
    pub struct Error(pub String);

    /// A strategy generating strings matching `pattern`.
    ///
    /// Supported subset: literal characters, `[...]` classes with ranges,
    /// the postfix repeaters `{m,n}` / `{n}` / `*` / `+` / `?`, and
    /// top-level alternation with `|`. This covers every pattern the
    /// workspace's tests use (EOSIO name shapes, symbol codes, printable
    /// ASCII runs).
    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, Error> {
        Ok(RegexStrategy {
            alternatives: parse(pattern),
        })
    }

    /// The [`string_regex`] strategy.
    #[derive(Debug, Clone)]
    pub struct RegexStrategy {
        alternatives: Vec<Vec<Piece>>,
    }

    impl Strategy for RegexStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let alt = &self.alternatives[rng.gen_range(0..self.alternatives.len())];
            let mut out = String::new();
            for piece in alt {
                let n = if piece.min == piece.max {
                    piece.min
                } else {
                    rng.gen_range(piece.min..piece.max + 1)
                };
                for _ in 0..n {
                    out.push(piece.chars[rng.gen_range(0..piece.chars.len())]);
                }
            }
            out
        }
    }

    /// Sample one string matching `pattern` (used by the `&str` strategy).
    pub fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
        RegexStrategy {
            alternatives: parse(pattern),
        }
        .generate(rng)
    }

    /// One repeated character-class atom.
    #[derive(Debug, Clone)]
    struct Piece {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Vec<Piece>> {
        pattern.split('|').map(parse_sequence).collect()
    }

    fn parse_sequence(seq: &str) -> Vec<Piece> {
        let chars: Vec<char> = seq.chars().collect();
        let mut i = 0;
        let mut out = Vec::new();
        while i < chars.len() {
            let set = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed [ in regex {seq:?}"))
                        + i;
                    let set = parse_class(&chars[i + 1..close]);
                    i = close + 1;
                    set
                }
                '\\' => {
                    i += 1;
                    let c = *chars
                        .get(i)
                        .unwrap_or_else(|| panic!("trailing \\ in {seq:?}"));
                    i += 1;
                    vec![c]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // Postfix repeater.
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .unwrap_or_else(|| panic!("unclosed {{ in regex {seq:?}"))
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("regex repeat lower bound"),
                            hi.trim().parse().expect("regex repeat upper bound"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("regex repeat count");
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            };
            out.push(Piece {
                chars: set,
                min,
                max,
            });
        }
        out
    }

    fn parse_class(body: &[char]) -> Vec<char> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
                assert!(lo <= hi, "descending range in char class");
                out.extend((lo..=hi).filter_map(char::from_u32));
                i += 3;
            } else {
                out.push(body[i]);
                i += 1;
            }
        }
        out
    }
}

/// `proptest::prelude::*` — what test files import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };

    /// The `prop::` module alias used as `prop::collection::vec(...)`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::string;
    }
}

/// Assert inside a property (no shrinking: behaves like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property (behaves like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property (behaves like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies generating the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Define property tests: each `fn name(bindings) { body }` becomes a
/// `#[test]` running `body` over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expand each test fn inside [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($params:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut __rng = $crate::rng_from_seed(__seed);
            for __case in 0..__cfg.cases {
                let _ = __case;
                $crate::__proptest_bind! { __rng $($params)* }
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Internal: bind each `name in strategy` / `name: Type` parameter.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ( $rng:ident ) => {};
    ( $rng:ident , ) => {};
    ( $rng:ident , $($rest:tt)+ ) => { $crate::__proptest_bind! { $rng $($rest)+ } };
    ( $rng:ident $name:ident in $strat:expr , $($rest:tt)* ) => {
        let $name = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind! { $rng $($rest)* }
    };
    ( $rng:ident $name:ident in $strat:expr ) => {
        let $name = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    ( $rng:ident $name:ident : $ty:ty , $($rest:tt)* ) => {
        let $name: $ty = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
        $crate::__proptest_bind! { $rng $($rest)* }
    };
    ( $rng:ident $name:ident : $ty:ty ) => {
        let $name: $ty = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
    };
}

/// Build the deterministic RNG the [`proptest!`] runner uses (public so the
/// macro expansion can reach it without importing trait methods).
pub fn rng_from_seed(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::string::string_regex;

    #[test]
    fn regex_name_pattern_shapes() {
        let strat = string_regex("[a-z1-5][a-z1-5.]{0,10}[a-z1-5]|[a-z1-5]").unwrap();
        let mut rng = super::test_rng("regex_name_pattern_shapes");
        for _ in 0..500 {
            let s = super::Strategy::generate(&strat, &mut rng);
            assert!(!s.is_empty() && s.len() <= 12, "bad length: {s:?}");
            assert!(
                s.chars()
                    .all(|c| c == '.' || c.is_ascii_lowercase() || ('1'..='5').contains(&c)),
                "bad chars: {s:?}"
            );
            assert!(
                !s.starts_with('.') && !s.ends_with('.'),
                "dot at edge: {s:?}"
            );
        }
    }

    #[test]
    fn regex_counted_and_printable() {
        let mut rng = super::test_rng("regex_counted_and_printable");
        for _ in 0..200 {
            let sym = super::string::sample_regex("[A-Z]{1,7}", &mut rng);
            assert!((1..=7).contains(&sym.len()));
            assert!(sym.chars().all(|c| c.is_ascii_uppercase()));
            let p = super::string::sample_regex("[ -~]{0,40}", &mut rng);
            assert!(p.len() <= 40);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro plumbing itself: `in` bindings, type bindings, tuples,
        /// oneof, vec.
        #[test]
        fn macro_surface(a in 0u8..10, b: u64, v in crate::collection::vec(any::<u8>(), 0..5),
                         c in prop_oneof![Just(1u8), Just(2u8), (3u8..5)]) {
            prop_assert!(a < 10);
            let _ = b;
            prop_assert!(v.len() < 5);
            prop_assert!((1..5).contains(&c));
        }
    }
}
