//! Property tests: the concrete-address memory model against a trivial
//! reference model (a byte array + coverage bitmap).

use proptest::prelude::*;
use wasai_smt::TermPool;
use wasai_symex::SymMemory;

#[derive(Debug, Clone)]
enum Op {
    Store { addr: u16, size_sel: u8, value: u64 },
    Load { addr: u16, size_sel: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), 0u8..4, any::<u64>()).prop_map(|(addr, size_sel, value)| Op::Store {
            addr: addr % 512,
            size_sel,
            value
        }),
        (any::<u16>(), 0u8..4).prop_map(|(addr, size_sel)| Op::Load {
            addr: addr % 512,
            size_sel
        }),
    ]
}

fn size_of(sel: u8) -> u32 {
    [1u32, 2, 4, 8][sel as usize % 4]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Constant stores followed by loads agree with a plain byte array on
    /// every covered byte; uncovered ranges return `None` exactly when the
    /// model has never seen any byte of the range.
    #[test]
    fn agrees_with_byte_array_reference(ops in prop::collection::vec(arb_op(), 0..120)) {
        let mut pool = TermPool::new();
        let mut mem = SymMemory::new();
        let mut shadow = [0u8; 1024];
        let mut covered = [false; 1024];

        for op in ops {
            match op {
                Op::Store { addr, size_sel, value } => {
                    let size = size_of(size_sel);
                    let masked = if size == 8 { value } else { value & ((1u64 << (size * 8)) - 1) };
                    let term = pool.bv_const(masked, size * 8);
                    mem.store(&mut pool, addr as u64, size, term);
                    for i in 0..size {
                        shadow[addr as usize + i as usize] = (masked >> (8 * i)) as u8;
                        covered[addr as usize + i as usize] = true;
                    }
                }
                Op::Load { addr, size_sel } => {
                    let size = size_of(size_sel);
                    let any_covered =
                        (0..size).any(|i| covered[addr as usize + i as usize]);
                    let loaded = mem.load(&mut pool, addr as u64, size);
                    prop_assert_eq!(loaded.is_some(), any_covered);
                    if let Some(t) = loaded {
                        // Evaluate with all-zero vars: gap bytes read as 0,
                        // matching the uncovered shadow bytes.
                        let vals = vec![0u64; pool.vars().len()];
                        let got = pool.eval(t, &vals);
                        let mut expect = 0u64;
                        for i in (0..size).rev() {
                            expect = (expect << 8)
                                | shadow[addr as usize + i as usize] as u64;
                        }
                        prop_assert_eq!(got, expect);
                        // Gap bytes became tracked symbolic-load objects;
                        // mirror that in the reference coverage.
                        for i in 0..size {
                            covered[addr as usize + i as usize] = true;
                        }
                    }
                }
            }
        }
    }
}
