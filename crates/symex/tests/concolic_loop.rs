//! End-to-end Symback tests: instrument → execute → replay → flip → solve →
//! adaptive seed. These close the concolic feedback loop of Algorithm 1.

use std::collections::HashSet;

use wasai_chain::abi::{ParamType, ParamValue};
use wasai_chain::asset::Asset;
use wasai_smt::{check, Budget, SolveResult};
use wasai_symex::{constraint_vars, flip_queries, seed_from_model, CondKind, Replayer};
use wasai_vm::{
    CompiledModule, Fuel, Host, HostFnId, Instance, LinearMemory, TraceRecord, TraceSink, Trap,
    Value,
};
use wasai_wasm::builder::ModuleBuilder;
use wasai_wasm::instr::{Instr, MemArg};
use wasai_wasm::types::{BlockType, FuncType, ValType::*};

/// Host serving the trace hooks plus a trapping `eosio_assert`.
struct TestHost {
    sink: TraceSink,
}

impl Host for TestHost {
    fn resolve(&mut self, module: &str, name: &str, _ty: &FuncType) -> Option<HostFnId> {
        if let Some(off) = wasai_vm::host::hooks::hook_offset(module, name) {
            return Some(HostFnId(off));
        }
        if module == "env" && name == "eosio_assert" {
            return Some(HostFnId(100));
        }
        None
    }

    fn call(
        &mut self,
        id: HostFnId,
        args: &[Value],
        _mem: &mut LinearMemory,
    ) -> Result<Option<Value>, Trap> {
        if id.0 < 100 {
            wasai_vm::host::hooks::dispatch(&mut self.sink, id.0, args);
            Ok(None)
        } else if args[0].as_i32() != 0 {
            Ok(None)
        } else {
            Err(Trap::AssertFailed("test".into()))
        }
    }
}

/// Run the instrumented form of `module` and return the trace (tolerates
/// traps — WASAI analyzes failing runs too).
fn trace_of(module: &wasai_wasm::Module, export: &str, args: &[Value]) -> Vec<TraceRecord> {
    let inst_mod = wasai_wasm::instrument::instrument(module).unwrap().module;
    let compiled = CompiledModule::compile(inst_mod).unwrap();
    let mut host = TestHost {
        sink: TraceSink::new(),
    };
    let mut instance = Instance::new(compiled, &mut host).unwrap();
    let mut fuel = Fuel(1_000_000);
    let _ = instance.invoke_export(&mut host, export, args, &mut fuel);
    host.sink.take()
}

fn apply_args() -> [Value; 3] {
    [Value::I64(1), Value::I64(1), Value::I64(1)]
}

/// A contract whose action function branches on its i64 argument:
/// `action(self, x): if (x == 0xdeadbeef) hit() else miss()`.
fn branchy_contract() -> (wasai_wasm::Module, u32) {
    let mut b = ModuleBuilder::with_memory(1);
    let hit = b.func(&[], &[], &[], vec![Instr::Nop, Instr::End]);
    let miss = b.func(&[], &[], &[], vec![Instr::Nop, Instr::End]);
    let action = b.func(
        &[I64, I64],
        &[],
        &[],
        vec![
            Instr::LocalGet(1),
            Instr::I64Const(0xdeadbeef),
            Instr::I64Eq,
            Instr::If(BlockType::Empty),
            Instr::Call(hit),
            Instr::Else,
            Instr::Call(miss),
            Instr::End,
            Instr::End,
        ],
    );
    // apply(receiver, code, action_name) calls action(receiver, 7).
    let apply = b.func(
        &[I64, I64, I64],
        &[],
        &[],
        vec![
            Instr::LocalGet(0),
            Instr::I64Const(7),
            Instr::Call(action),
            Instr::End,
        ],
    );
    b.export_func("apply", apply);
    (b.build(), action)
}

#[test]
fn replay_collects_branch_and_flip_solves_it() {
    let (module, action) = branchy_contract();
    let trace = trace_of(&module, "apply", &apply_args());
    assert!(!trace.is_empty());

    let params = vec![(ParamType::U64, ParamValue::U64(7))];
    let replayer = Replayer::new(&module, action, 1, &params);
    let outcome = replayer.run(&trace);

    // One conditional state: the `if` on x == 0xdeadbeef, not taken.
    assert_eq!(
        outcome.conditionals.len(),
        1,
        "conds: {:?}",
        outcome.conditionals
    );
    let cond = &outcome.conditionals[0];
    assert!(!cond.taken);
    assert_eq!(cond.kind, CondKind::Branch);

    // Flip it and solve: the model must assign x = 0xdeadbeef.
    let set = flip_queries(&outcome, &HashSet::new());
    assert_eq!(set.queries.len(), 1);
    let constraints = set.constraints_of(&set.queries[0]);
    let (res, _) = check(&outcome.pool, &constraints, Budget::default());
    let model = match res {
        SolveResult::Sat(m) => m,
        other => panic!("expected sat, got {other:?}"),
    };
    let vars = constraint_vars(&outcome.pool, &constraints);
    let new_seed = seed_from_model(&outcome.spec, &outcome.pool, &model, &vars);
    assert_eq!(new_seed, vec![ParamValue::U64(0xdeadbeef)]);
}

#[test]
fn adaptive_seed_actually_flips_the_branch() {
    // Close the loop: run with the adaptive value and check the replay now
    // takes the other direction.
    let (module, action) = branchy_contract();
    // Patch apply to pass 0xdeadbeef.
    let mut patched = module.clone();
    let apply_idx = patched.exported_func("apply").unwrap();
    let apply = patched.local_func_mut(apply_idx).unwrap();
    apply.body[1] = Instr::I64Const(0xdeadbeef);

    let trace = trace_of(&patched, "apply", &apply_args());
    let params = vec![(ParamType::U64, ParamValue::U64(0xdeadbeef))];
    let outcome = Replayer::new(&patched, action, 1, &params).run(&trace);
    assert!(outcome.conditionals[0].taken, "branch should now be taken");
}

#[test]
fn branch_coverage_accumulates_distinct_directions() {
    let (module, action) = branchy_contract();
    let trace = trace_of(&module, "apply", &apply_args());
    let params = vec![(ParamType::U64, ParamValue::U64(7))];
    let outcome = Replayer::new(&module, action, 1, &params).run(&trace);
    // The if at (action, pc 3), direction false.
    assert!(outcome.branches.contains(&(action, 3, 0)));
    assert!(!outcome.branches.contains(&(action, 3, 1)));
    // Function chain records apply → action → miss.
    assert!(outcome.func_chain.len() >= 3);
}

#[test]
fn failing_assert_yields_satisfiable_flip() {
    // action(self, x): eosio_assert(x == 42, "…") — run with x = 7.
    let mut b = ModuleBuilder::with_memory(1);
    let assert_fn = b.import_func("env", "eosio_assert", &[I32, I32], &[]);
    let action = b.func(
        &[I64, I64],
        &[],
        &[],
        vec![
            Instr::LocalGet(1),
            Instr::I64Const(42),
            Instr::I64Eq,
            Instr::I32Const(0),
            Instr::Call(assert_fn),
            Instr::End,
        ],
    );
    let apply = b.func(
        &[I64, I64, I64],
        &[],
        &[],
        vec![
            Instr::LocalGet(0),
            Instr::I64Const(7),
            Instr::Call(action),
            Instr::End,
        ],
    );
    b.export_func("apply", apply);
    let module = b.build();

    let trace = trace_of(&module, "apply", &apply_args());
    let params = vec![(ParamType::U64, ParamValue::U64(7))];
    let outcome = Replayer::new(&module, action, 1, &params).run(&trace);
    let asserts: Vec<_> = outcome
        .conditionals
        .iter()
        .filter(|c| c.kind == CondKind::Assert)
        .collect();
    assert_eq!(
        asserts.len(),
        1,
        "failed assert must be a conditional state"
    );
    let set = flip_queries(&outcome, &HashSet::new());
    let q = set
        .queries
        .iter()
        .find(|q| q.kind == CondKind::Assert)
        .unwrap();
    let constraints = set.constraints_of(q);
    let (res, _) = check(&outcome.pool, &constraints, Budget::default());
    let model = res.model().expect("assert flip must be satisfiable");
    let vars = constraint_vars(&outcome.pool, &constraints);
    let seed = seed_from_model(&outcome.spec, &outcome.pool, model, &vars);
    assert_eq!(
        seed,
        vec![ParamValue::U64(42)],
        "solver finds the passing value"
    );
}

#[test]
fn asset_pointer_parameter_flows_through_memory() {
    // action(self, qty_ptr): amount = i64.load(qty_ptr);
    //   if (amount == 100000) hit.
    // The wrapper writes amount=77 at address 64 and calls action(1, 64).
    let mut b = ModuleBuilder::with_memory(1);
    let action = b.func(
        &[I64, I32],
        &[],
        &[],
        vec![
            Instr::LocalGet(1),
            Instr::I64Load(MemArg::default()),
            Instr::I64Const(100_000),
            Instr::I64Eq,
            Instr::If(BlockType::Empty),
            Instr::Nop,
            Instr::End,
            Instr::End,
        ],
    );
    let apply = b.func(
        &[I64, I64, I64],
        &[],
        &[],
        vec![
            // mem[64] = 77 (the executed seed's amount)
            Instr::I32Const(64),
            Instr::I64Const(77),
            Instr::I64Store(MemArg::default()),
            // mem[72] = symbol of "4,EOS"
            Instr::I32Const(72),
            Instr::I64Const(wasai_chain::asset::eos_symbol().raw() as i64),
            Instr::I64Store(MemArg::default()),
            Instr::LocalGet(0),
            Instr::I32Const(64),
            Instr::Call(action),
            Instr::End,
        ],
    );
    b.export_func("apply", apply);
    let module = b.build();

    let trace = trace_of(&module, "apply", &apply_args());
    let params = vec![(
        ParamType::Asset,
        ParamValue::Asset(Asset::new(77, wasai_chain::asset::eos_symbol())),
    )];
    let outcome = Replayer::new(&module, action, 1, &params).run(&trace);
    assert_eq!(
        outcome.conditionals.len(),
        1,
        "amount comparison must be symbolic"
    );

    let set = flip_queries(&outcome, &HashSet::new());
    let constraints = set.constraints_of(&set.queries[0]);
    let (res, _) = check(&outcome.pool, &constraints, Budget::default());
    let model = res.model().expect("sat");
    let vars = constraint_vars(&outcome.pool, &constraints);
    let seed = seed_from_model(&outcome.spec, &outcome.pool, model, &vars);
    match &seed[0] {
        ParamValue::Asset(a) => {
            assert_eq!(a.amount, 100_000, "solved amount is \"10.0000 EOS\"");
            assert_eq!(
                a.symbol,
                wasai_chain::asset::eos_symbol(),
                "symbol untouched"
            );
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn nested_branches_build_path_constraints() {
    // action(self, x): if (x > 10) { if (x < 20) hit; }
    // Executed with x = 5: flipping the outer branch requires x > 10.
    let mut b = ModuleBuilder::with_memory(1);
    let action = b.func(
        &[I64, I64],
        &[],
        &[],
        vec![
            Instr::LocalGet(1),
            Instr::I64Const(10),
            Instr::I64GtS,
            Instr::If(BlockType::Empty),
            Instr::LocalGet(1),
            Instr::I64Const(20),
            Instr::I64LtS,
            Instr::If(BlockType::Empty),
            Instr::Nop,
            Instr::End,
            Instr::End,
            Instr::End,
        ],
    );
    let apply = b.func(
        &[I64, I64, I64],
        &[],
        &[],
        vec![
            Instr::LocalGet(0),
            Instr::I64Const(5),
            Instr::Call(action),
            Instr::End,
        ],
    );
    b.export_func("apply", apply);
    let module = b.build();

    let trace = trace_of(&module, "apply", &apply_args());
    let params = vec![(ParamType::I64, ParamValue::I64(5))];
    let outcome = Replayer::new(&module, action, 1, &params).run(&trace);
    assert_eq!(outcome.conditionals.len(), 1, "only outer branch executed");
    let set = flip_queries(&outcome, &HashSet::new());
    let constraints = set.constraints_of(&set.queries[0]);
    let (res, _) = check(&outcome.pool, &constraints, Budget::default());
    let model = res.model().expect("sat");
    let vars = constraint_vars(&outcome.pool, &constraints);
    let seed = seed_from_model(&outcome.spec, &outcome.pool, model, &vars);
    match seed[0] {
        ParamValue::I64(v) => assert!(v > 10, "solved x = {v} must exceed 10"),
        ref other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn explored_directions_are_not_requeried() {
    let (module, action) = branchy_contract();
    let trace = trace_of(&module, "apply", &apply_args());
    let params = vec![(ParamType::U64, ParamValue::U64(7))];
    let outcome = Replayer::new(&module, action, 1, &params).run(&trace);
    let mut explored = HashSet::new();
    explored.insert((action, 3u32, 1u64)); // other direction already seen
    assert!(flip_queries(&outcome, &explored).queries.is_empty());
}

#[test]
fn loops_replay_without_desync() {
    // action(self, n): count down from n, then if (n == 3) hit.
    let mut b = ModuleBuilder::with_memory(1);
    let action = b.func(
        &[I64, I64],
        &[],
        &[I64],
        vec![
            Instr::LocalGet(1),
            Instr::LocalSet(2),
            Instr::Block(BlockType::Empty),
            Instr::Loop(BlockType::Empty),
            Instr::LocalGet(2),
            Instr::I64Eqz,
            Instr::BrIf(1),
            Instr::LocalGet(2),
            Instr::I64Const(1),
            Instr::I64Sub,
            Instr::LocalSet(2),
            Instr::Br(0),
            Instr::End,
            Instr::End,
            Instr::LocalGet(1),
            Instr::I64Const(3),
            Instr::I64Eq,
            Instr::If(BlockType::Empty),
            Instr::Nop,
            Instr::End,
            Instr::End,
        ],
    );
    let apply = b.func(
        &[I64, I64, I64],
        &[],
        &[],
        vec![
            Instr::LocalGet(0),
            Instr::I64Const(2),
            Instr::Call(action),
            Instr::End,
        ],
    );
    b.export_func("apply", apply);
    let module = b.build();

    let trace = trace_of(&module, "apply", &apply_args());
    let params = vec![(ParamType::U64, ParamValue::U64(2))];
    let outcome = Replayer::new(&module, action, 1, &params).run(&trace);
    // The loop exit br_if ran 3 times (n=2) plus the final == 3 check.
    let final_if = outcome.conditionals.last().unwrap();
    assert!(!final_if.taken);
    let set = flip_queries(&outcome, &HashSet::new());
    // Flipping the final if demands n == 3, which contradicts the executed
    // loop-trip count (n − 2 == 0 is on the path): must be Unsat. That is
    // how concolic execution learns a different trip count needs a
    // different trace.
    let q_last = set.queries.last().unwrap();
    let (res, _) = check(
        &outcome.pool,
        &set.constraints_of(q_last),
        Budget::default(),
    );
    assert_eq!(res, SolveResult::Unsat);
    // But flipping the FIRST loop-exit test (n == 0) is satisfiable.
    let c0 = set.constraints_of(&set.queries[0]);
    let (res0, _) = check(&outcome.pool, &c0, Budget::default());
    let m = res0.model().expect("sat");
    let vars = constraint_vars(&outcome.pool, &c0);
    let seed = seed_from_model(&outcome.spec, &outcome.pool, m, &vars);
    assert_eq!(seed, vec![ParamValue::U64(0)]);
}
