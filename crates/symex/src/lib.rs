#![warn(missing_docs)]

//! # wasai-symex — Symback, the trace-replay symbolic executor (§3.4)
//!
//! Symback is the feedback half of WASAI's concolic loop: it replays the
//! runtime traces captured by the instrumented contract inside an EOSVM
//! *simulator*, building symbolic machine states per the operational
//! semantics of Table 3, and then flips branch constraints to produce
//! adaptive seeds:
//!
//! - [`memory`]: the concrete-address memory model (C2, §3.4.1);
//! - [`inputs`]: calling-convention-based symbolic input construction that
//!   skips the deserializer (C3, §3.4.2, Table 2);
//! - [`replay`]: the trace simulator collecting conditional states;
//! - [`flip`]: path-prefix ∧ flipped-condition query assembly (§3.4.4);
//! - [`seedgen`]: solver models back into parameter vectors ρ⃗.

pub mod flip;
pub mod inputs;
pub mod memory;
pub mod replay;
pub mod seedgen;

pub use flip::{flip_queries, FlipQuery, FlipSet};
pub use inputs::{InputSpec, ParamBinding, ParamSpec};
pub use memory::SymMemory;
pub use replay::{CondKind, ConditionalState, ReplayOutcome, Replayer};
pub use seedgen::{collect_vars, constraint_vars, seed_from_model};
