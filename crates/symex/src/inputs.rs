//! Symbolic input construction from the calling convention (C3, §3.4.2).
//!
//! WASAI skips the deserializer: instead of symbolically executing
//! `void apply()` and the byte-stream parsing it performs, it installs
//! symbolic expressions for the seed parameters ρ⃗ directly in the action
//! function's Local section, following the Table 2 layout:
//!
//! | ρ        | type   | Local    | Linear memory                              |
//! |----------|--------|----------|--------------------------------------------|
//! | from     | name   | μ_l̂\[1\]  | —                                          |
//! | quantity | asset  | μ_l̂\[3\]  | 8-byte amount ‖ 8-byte symbol at the ptr   |
//! | memo     | string | μ_l̂\[4\]  | length byte ‖ content at the ptr           |
//!
//! Pointer-typed parameters (asset, string) are *lazy*: the pointer's
//! concrete value is only known when the trace first reads the local, at
//! which point the symbolic bytes are installed at that address.

use wasai_chain::abi::{ParamType, ParamValue};
use wasai_smt::{TermId, TermPool};

use crate::memory::SymMemory;

/// Maximum string length given a symbolic 8-bit length byte.
pub const MAX_SYM_STRING: usize = 64;

/// How one action-function parameter maps to symbolic state.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamBinding {
    /// An inline 64-bit value in the Local section (name / u64 / i64).
    Inline64 {
        /// The parameter's symbolic variable.
        var: TermId,
    },
    /// An inline 32-bit value (u32 / u8).
    Inline32 {
        /// The parameter's symbolic variable.
        var: TermId,
    },
    /// Floats are not tracked symbolically (concrete only).
    Opaque,
    /// An i32 pointer to a 16-byte amount‖symbol pair.
    AssetPtr {
        /// 64-bit amount variable.
        amount: TermId,
        /// 64-bit symbol variable.
        symbol: TermId,
    },
    /// An i32 pointer to length‖content.
    StringPtr {
        /// 8-bit length variable.
        len: TermId,
        /// 8-bit content variables (up to [`MAX_SYM_STRING`]).
        bytes: Vec<TermId>,
    },
}

/// One parameter of the fuzzed action function.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpec {
    /// Declared type.
    pub ty: ParamType,
    /// Concrete value in the executed seed.
    pub concrete: ParamValue,
    /// The symbolic binding.
    pub binding: ParamBinding,
}

/// The symbolic input description for one fuzzing execution.
#[derive(Debug, Clone)]
pub struct InputSpec {
    /// Function index (in the original module) of the action function.
    pub action_func: u32,
    /// First Local index of ρ⃗₀ (Table 2 uses 1: local 0 is `self`).
    pub local_base: u32,
    /// Parameter specs in declaration order.
    pub params: Vec<ParamSpec>,
}

impl InputSpec {
    /// Build the spec (and its symbolic variables) for a seed.
    ///
    /// Variables are named `arg{i}`, `arg{i}.amount`, `arg{i}.symbol`,
    /// `arg{i}.len`, `arg{i}.b{j}` — [`crate::seedgen`] reads them back from
    /// models under the same names.
    pub fn build(
        pool: &mut TermPool,
        action_func: u32,
        local_base: u32,
        params: &[(ParamType, ParamValue)],
    ) -> InputSpec {
        let specs = params
            .iter()
            .enumerate()
            .map(|(i, (ty, concrete))| {
                let binding = match ty {
                    ParamType::Name | ParamType::U64 | ParamType::I64 => ParamBinding::Inline64 {
                        var: pool.var(&format!("arg{i}"), 64),
                    },
                    ParamType::U32 | ParamType::U8 => ParamBinding::Inline32 {
                        var: pool.var(&format!("arg{i}"), 32),
                    },
                    ParamType::F64 => ParamBinding::Opaque,
                    ParamType::Asset => ParamBinding::AssetPtr {
                        amount: pool.var(&format!("arg{i}.amount"), 64),
                        symbol: pool.var(&format!("arg{i}.symbol"), 64),
                    },
                    ParamType::String => {
                        let len = pool.var(&format!("arg{i}.len"), 8);
                        let n = match concrete {
                            ParamValue::String(s) => s.len().min(MAX_SYM_STRING),
                            _ => 0,
                        };
                        let bytes = (0..n)
                            .map(|j| pool.var(&format!("arg{i}.b{j}"), 8))
                            .collect();
                        ParamBinding::StringPtr { len, bytes }
                    }
                };
                ParamSpec {
                    ty: *ty,
                    concrete: concrete.clone(),
                    binding,
                }
            })
            .collect();
        InputSpec {
            action_func,
            local_base,
            params: specs,
        }
    }

    /// The symbolic term for the Local slot holding parameter `i`, for
    /// inline parameters. Pointer parameters return `None` (their local is a
    /// concrete pointer; memory content is installed lazily).
    pub fn local_term(&self, i: usize) -> Option<TermId> {
        match &self.params[i].binding {
            ParamBinding::Inline64 { var } | ParamBinding::Inline32 { var } => Some(*var),
            _ => None,
        }
    }

    /// Install the memory content of a pointer parameter once its concrete
    /// pointer is known from the trace (the lazy step).
    pub fn install_pointee(&self, i: usize, ptr: u64, pool: &mut TermPool, mem: &mut SymMemory) {
        match &self.params[i].binding {
            ParamBinding::AssetPtr { amount, symbol } => {
                mem.store(pool, ptr, 8, *amount);
                mem.store(pool, ptr + 8, 8, *symbol);
            }
            ParamBinding::StringPtr { len, bytes } => {
                mem.store(pool, ptr, 1, *len);
                for (j, b) in bytes.iter().enumerate() {
                    mem.store(pool, ptr + 1 + j as u64, 1, *b);
                }
            }
            _ => {}
        }
    }

    /// Equality constraints pinning every parameter variable to the seed's
    /// concrete value. Added to flip queries so the solver mutates exactly
    /// the variables the flipped branch depends on and keeps the rest at
    /// their executed values ("we mutate one parameter in ρ⃗", §3.4.4).
    pub fn concrete_bindings(&self, pool: &mut TermPool) -> Vec<(TermId, u64)> {
        let mut out = Vec::new();
        for p in &self.params {
            match (&p.binding, &p.concrete) {
                (ParamBinding::Inline64 { var }, v) => out.push((*var, value_as_u64(v))),
                (ParamBinding::Inline32 { var }, v) => {
                    out.push((*var, value_as_u64(v) & 0xffff_ffff))
                }
                (ParamBinding::AssetPtr { amount, symbol }, ParamValue::Asset(a)) => {
                    out.push((*amount, a.amount as u64));
                    out.push((*symbol, a.symbol.raw()));
                }
                (ParamBinding::StringPtr { len, bytes }, ParamValue::String(s)) => {
                    out.push((*len, s.len().min(255) as u64));
                    for (j, b) in bytes.iter().enumerate() {
                        out.push((*b, s.as_bytes().get(j).copied().unwrap_or(0) as u64));
                    }
                }
                _ => {}
            }
        }
        let _ = pool;
        out
    }
}

/// The u64 image of an inline parameter value.
pub fn value_as_u64(v: &ParamValue) -> u64 {
    match v {
        ParamValue::Name(n) => n.raw(),
        ParamValue::U64(x) => *x,
        ParamValue::I64(x) => *x as u64,
        ParamValue::U32(x) => *x as u64,
        ParamValue::U8(x) => *x as u64,
        ParamValue::F64(x) => x.to_bits(),
        ParamValue::Asset(a) => a.amount as u64,
        ParamValue::String(_) => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasai_chain::asset::Asset;
    use wasai_chain::name::Name;

    fn transfer_spec(pool: &mut TermPool) -> InputSpec {
        InputSpec::build(
            pool,
            7,
            1,
            &[
                (ParamType::Name, ParamValue::Name(Name::new("alice"))),
                (ParamType::Name, ParamValue::Name(Name::new("eosbet"))),
                (ParamType::Asset, ParamValue::Asset(Asset::eos(10))),
                (ParamType::String, ParamValue::String("hi".into())),
            ],
        )
    }

    #[test]
    fn table2_layout_bindings() {
        let mut pool = TermPool::new();
        let spec = transfer_spec(&mut pool);
        assert!(matches!(
            spec.params[0].binding,
            ParamBinding::Inline64 { .. }
        ));
        assert!(matches!(
            spec.params[2].binding,
            ParamBinding::AssetPtr { .. }
        ));
        assert!(matches!(
            spec.params[3].binding,
            ParamBinding::StringPtr { .. }
        ));
        assert!(spec.local_term(0).is_some());
        assert!(
            spec.local_term(2).is_none(),
            "asset local is a concrete pointer"
        );
    }

    #[test]
    fn pointee_installation_places_table2_bytes() {
        let mut pool = TermPool::new();
        let mut mem = SymMemory::new();
        let spec = transfer_spec(&mut pool);
        spec.install_pointee(2, 1000, &mut pool, &mut mem);
        // amount at ptr..ptr+8, symbol at ptr+8..ptr+16.
        assert!(mem.covers_any(1000, 8));
        assert!(mem.covers_any(1008, 8));
        assert!(!mem.covers_any(1016, 1));
        spec.install_pointee(3, 2000, &mut pool, &mut mem);
        // length byte then 2 content bytes.
        assert!(mem.covers_any(2000, 1));
        assert!(mem.covers_any(2001, 2));
    }

    #[test]
    fn concrete_bindings_pin_seed_values() {
        let mut pool = TermPool::new();
        let spec = transfer_spec(&mut pool);
        let binds = spec.concrete_bindings(&mut pool);
        let alice = Name::new("alice").raw();
        assert!(binds.iter().any(|&(_, v)| v == alice));
        assert!(binds.iter().any(|&(_, v)| v == 100_000)); // 10.0000 EOS
        assert!(binds.iter().any(|&(_, v)| v == 2)); // string length
    }

    #[test]
    fn string_capped_at_max_sym_len() {
        let mut pool = TermPool::new();
        let long = "x".repeat(500);
        let spec = InputSpec::build(
            &mut pool,
            0,
            1,
            &[(ParamType::String, ParamValue::String(long))],
        );
        match &spec.params[0].binding {
            ParamBinding::StringPtr { bytes, .. } => assert_eq!(bytes.len(), MAX_SYM_STRING),
            other => panic!("unexpected binding {other:?}"),
        }
    }
}
