//! Adaptive seed generation: turn a solver model back into a parameter
//! vector ρ⃗ (§3.4.4, "solve constraints and find new seeds").
//!
//! Only parameters whose variables actually occur in the solved constraints
//! are mutated; everything else keeps the executed seed's value — the
//! paper's "mutate one parameter in ρ⃗" discipline generalized to whatever
//! the constraint mentions.

use std::collections::HashSet;

use wasai_chain::abi::ParamValue;
use wasai_chain::asset::{Asset, Symbol};
use wasai_chain::name::Name;
use wasai_smt::{Model, TermId, TermKind, TermPool};

use crate::inputs::{InputSpec, ParamBinding};

/// Collect the variable indices occurring in a term DAG.
pub fn collect_vars(pool: &TermPool, t: TermId, out: &mut HashSet<u32>) {
    match *pool.kind(t) {
        TermKind::BoolConst(_) | TermKind::BvConst { .. } => {}
        TermKind::Var { var, .. } => {
            out.insert(var);
        }
        TermKind::Not(a)
        | TermKind::BvNot(a)
        | TermKind::BvNeg(a)
        | TermKind::Popcnt(a)
        | TermKind::Extract { term: a, .. }
        | TermKind::ZeroExt { term: a, .. }
        | TermKind::SignExt { term: a, .. } => collect_vars(pool, a, out),
        TermKind::AndB(a, b)
        | TermKind::OrB(a, b)
        | TermKind::Bv(_, a, b)
        | TermKind::Cmp(_, a, b)
        | TermKind::Concat(a, b) => {
            collect_vars(pool, a, out);
            collect_vars(pool, b, out);
        }
        TermKind::Ite(c, a, b) => {
            collect_vars(pool, c, out);
            collect_vars(pool, a, out);
            collect_vars(pool, b, out);
        }
    }
}

/// Variable indices occurring in any of `constraints`.
pub fn constraint_vars(pool: &TermPool, constraints: &[TermId]) -> HashSet<u32> {
    let mut out = HashSet::new();
    for &c in constraints {
        collect_vars(pool, c, &mut out);
    }
    out
}

fn term_var(pool: &TermPool, t: TermId) -> Option<u32> {
    match *pool.kind(t) {
        TermKind::Var { var, .. } => Some(var),
        _ => None,
    }
}

/// Build a new parameter vector: model values for constrained parameters,
/// the executed seed's values for the rest.
pub fn seed_from_model(
    spec: &InputSpec,
    pool: &TermPool,
    model: &Model,
    constrained: &HashSet<u32>,
) -> Vec<ParamValue> {
    spec.params
        .iter()
        .map(|p| {
            let touched = |t: TermId| term_var(pool, t).map(|v| constrained.contains(&v));
            match &p.binding {
                ParamBinding::Inline64 { var } if touched(*var) == Some(true) => {
                    let raw = model.value(term_var(pool, *var).expect("var"));
                    match p.concrete {
                        ParamValue::Name(_) => ParamValue::Name(Name(raw)),
                        ParamValue::I64(_) => ParamValue::I64(raw as i64),
                        _ => ParamValue::U64(raw),
                    }
                }
                ParamBinding::Inline32 { var } if touched(*var) == Some(true) => {
                    let raw = model.value(term_var(pool, *var).expect("var"));
                    match p.concrete {
                        ParamValue::U8(_) => ParamValue::U8(raw as u8),
                        _ => ParamValue::U32(raw as u32),
                    }
                }
                ParamBinding::AssetPtr { amount, symbol } => {
                    let am_var = term_var(pool, *amount).expect("var");
                    let sy_var = term_var(pool, *symbol).expect("var");
                    if constrained.contains(&am_var) || constrained.contains(&sy_var) {
                        let old = match &p.concrete {
                            ParamValue::Asset(a) => *a,
                            _ => Asset::eos(0),
                        };
                        let am = if constrained.contains(&am_var) {
                            model.value(am_var) as i64
                        } else {
                            old.amount
                        };
                        let sy = if constrained.contains(&sy_var) {
                            Symbol(model.value(sy_var))
                        } else {
                            old.symbol
                        };
                        ParamValue::Asset(Asset::new(am, sy))
                    } else {
                        p.concrete.clone()
                    }
                }
                ParamBinding::StringPtr { len, bytes } => {
                    let len_var = term_var(pool, *len).expect("var");
                    let byte_vars: Vec<u32> = bytes
                        .iter()
                        .map(|b| term_var(pool, *b).expect("var"))
                        .collect();
                    let any = constrained.contains(&len_var)
                        || byte_vars.iter().any(|v| constrained.contains(v));
                    if !any {
                        return p.concrete.clone();
                    }
                    let old = match &p.concrete {
                        ParamValue::String(s) => s.clone(),
                        _ => String::new(),
                    };
                    let new_len = if constrained.contains(&len_var) {
                        (model.value(len_var) as usize).min(crate::inputs::MAX_SYM_STRING)
                    } else {
                        old.len()
                    };
                    let mut content: Vec<u8> = Vec::with_capacity(new_len);
                    for j in 0..new_len {
                        let byte = match byte_vars.get(j) {
                            // A solved byte is part of the model the seed
                            // exists to realize — keep it verbatim, even 0;
                            // remapping would break constraints like
                            // `memo[j] == 0`.
                            Some(v) if constrained.contains(v) => model.value(*v) as u8,
                            // Unconstrained bytes keep the executed seed's
                            // value, padded printably so memos stay
                            // realistic.
                            _ => match old.as_bytes().get(j).copied().unwrap_or(b'a') {
                                0 => b'a',
                                b => b,
                            },
                        };
                        content.push(byte);
                    }
                    ParamValue::String(String::from_utf8_lossy(&content).into_owned())
                }
                _ => p.concrete.clone(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasai_chain::abi::ParamType;
    use wasai_smt::{check, Budget, TermKind};

    #[test]
    fn constrained_zero_bytes_survive_unconstrained_ones_are_padded() {
        // Regression: every generated string byte of 0 used to be rewritten
        // to b'a' — including *solved* bytes, breaking constraints like
        // `memo[0] == 0` (an empty-C-string guard). Only unconstrained
        // padding may be printable-ized.
        let mut pool = TermPool::new();
        let spec = InputSpec::build(
            &mut pool,
            7,
            1,
            &[(ParamType::String, ParamValue::String("hi\0x".into()))],
        );
        let ParamBinding::StringPtr { len: _, bytes } = spec.params[0].binding.clone() else {
            panic!("string param binds StringPtr");
        };
        let b0 = bytes[0];
        let zero = pool.bv_const(0, 8);
        let c = pool.eq(b0, zero);

        let (res, _) = check(&pool, &[c], Budget::default());
        let model = res.model().expect("sat").clone();
        let constrained = constraint_vars(&pool, &[c]);
        let seed = seed_from_model(&spec, &pool, &model, &constrained);
        let ParamValue::String(s) = &seed[0] else {
            panic!("string param stays a string");
        };
        let out = s.as_bytes();
        assert_eq!(out.len(), 4, "unconstrained length keeps the seed's");
        assert_eq!(out[0], 0, "solved zero byte must be kept verbatim");
        assert_eq!(out[1], b'i', "unconstrained bytes keep the seed's value");
        assert_eq!(out[2], b'a', "unconstrained zero padding stays printable");
        assert_eq!(out[3], b'x');

        // The seed must satisfy the solved constraints under `eval`: bind
        // each byte variable to the byte actually emitted and re-evaluate.
        let mut vals = model.to_vec(&pool);
        for (j, &bt) in bytes.iter().enumerate() {
            let TermKind::Var { var, .. } = *pool.kind(bt) else {
                panic!("byte binding is a variable");
            };
            vals[var as usize] = u64::from(out[j]);
        }
        assert_eq!(pool.eval(c, &vals), 1, "generated seed satisfies the query");
    }
}
