//! Trace replay: lifting runtime traces to symbolic machine states
//! (§3.4.3, Table 3).
//!
//! The replayer walks the trace records an instrumented execution produced
//! and mirrors each instruction's effect on a symbolic machine state
//! μ = ⟨code, μ_m, μ_s, μ_l, μ_g, μ_r⟩. Stack/local/global slots hold
//! `Option<TermId>`: `None` means "concrete" — the concrete value is always
//! available from the logged operands, so terms are only materialized where
//! symbolic input actually flows. Conditional states (`br_if`/`if` and
//! `eosio_assert`, §3.1) are collected together with the path constraints
//! needed to flip them (§3.4.4).

use std::collections::{HashMap, HashSet};

use wasai_chain::abi::{ParamType, ParamValue};
use wasai_smt::{BvOp, CmpOp, Deadline, TermId, TermPool};
use wasai_vm::{TraceKind, TraceRecord, TraceVal};
use wasai_wasm::instr::{Instr, InstrClass};
use wasai_wasm::module::Module;
use wasai_wasm::types::ValType;

use crate::inputs::InputSpec;
use crate::memory::SymMemory;

/// Cap on recorded conditional states per execution (bounds solving work).
pub const MAX_CONDITIONALS: usize = 512;

/// Trace records replayed between wall-clock deadline checks — frequent
/// enough that a watchdog fires within milliseconds, rare enough that the
/// `Instant::now()` syscall never shows up in replay profiles.
pub const DEADLINE_POLL_RECORDS: usize = 4096;

/// What kind of conditional state produced a constraint (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CondKind {
    /// A `br_if` / `if` branch instruction.
    Branch,
    /// An `eosio_assert` call that failed (flipping = making it pass).
    Assert,
}

/// One flip candidate.
#[derive(Debug, Clone)]
pub struct ConditionalState {
    /// `(func, pc)` of the branch/assert site in the original module.
    pub site: (u32, u32),
    /// Direction executed (branches: condition ≠ 0; asserts: always false).
    pub taken: bool,
    /// Branch or assert.
    pub kind: CondKind,
    /// Constraint whose model explores the *other* side.
    pub flipped: TermId,
    /// Number of path constraints accumulated before this site
    /// (prefix of [`ReplayOutcome::path`]).
    pub path_len: usize,
}

/// Everything Symback extracted from one execution.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// The term pool (owns all constraint terms).
    pub pool: TermPool,
    /// The symbolic input description used.
    pub spec: InputSpec,
    /// Flip candidates in execution order.
    pub conditionals: Vec<ConditionalState>,
    /// Path constraints in execution order (conditions as executed).
    pub path: Vec<TermId>,
    /// Distinct branches covered: `(func, pc, direction)`.
    pub branches: HashSet<(u32, u32, u64)>,
    /// Function ids observed starting (the i⃗d chain of §3.5).
    pub func_chain: Vec<u32>,
    /// Trace records actually replayed (< `trace.len()` when truncated) —
    /// what telemetry reports as per-replay work.
    pub records: usize,
    /// Replay stopped early because the wall-clock deadline fired; the
    /// collected observations cover only a prefix of the trace.
    pub truncated: bool,
}

#[derive(Debug, Default)]
struct SymLabel {
    height: usize,
    arity: usize,
    is_loop: bool,
}

#[derive(Debug, Default)]
struct SymFrame {
    locals: Vec<Option<TermId>>,
    stack: Vec<Option<TermId>>,
    labels: Vec<SymLabel>,
    /// local index → parameter index awaiting lazy pointee installation.
    pending_ptr: HashMap<u32, usize>,
}

impl SymFrame {
    fn local(&mut self, idx: u32) -> Option<TermId> {
        if (idx as usize) < self.locals.len() {
            self.locals[idx as usize]
        } else {
            None
        }
    }

    fn set_local(&mut self, idx: u32, v: Option<TermId>) {
        if self.locals.len() <= idx as usize {
            self.locals.resize(idx as usize + 1, None);
        }
        self.locals[idx as usize] = v;
    }

    fn pop(&mut self) -> Option<TermId> {
        self.stack.pop().unwrap_or(None)
    }
}

/// The Symback trace replayer.
#[derive(Debug)]
pub struct Replayer<'m> {
    module: &'m Module,
    assert_funcs: HashSet<u32>,
    pool: TermPool,
    mem: SymMemory,
    spec: InputSpec,
    frames: Vec<SymFrame>,
    globals: HashMap<u32, Option<TermId>>,
    pending_args: Option<Vec<Option<TermId>>>,
    pending_results: Option<Vec<Option<TermId>>>,
    conditionals: Vec<ConditionalState>,
    path: Vec<TermId>,
    branches: HashSet<(u32, u32, u64)>,
    func_chain: Vec<u32>,
    depths: HashMap<u32, Vec<u32>>,
    deadline: Deadline,
}

fn width_of(t: ValType) -> u32 {
    t.bit_width()
}

impl<'m> Replayer<'m> {
    /// Create a replayer for one execution of `module` with symbolic inputs
    /// installed at `action_func` per the Table 2 layout.
    pub fn new(
        module: &'m Module,
        action_func: u32,
        local_base: u32,
        params: &[(ParamType, ParamValue)],
    ) -> Self {
        let mut pool = TermPool::new();
        let spec = InputSpec::build(&mut pool, action_func, local_base, params);
        let assert_funcs = (0..module.num_imported_funcs())
            .filter(|&i| {
                module
                    .imported_func(i)
                    .map(|imp| imp.name == "eosio_assert")
                    .unwrap_or(false)
            })
            .collect();
        Replayer {
            module,
            assert_funcs,
            pool,
            mem: SymMemory::new(),
            spec,
            frames: Vec::new(),
            globals: HashMap::new(),
            pending_args: None,
            pending_results: None,
            conditionals: Vec::new(),
            path: Vec::new(),
            branches: HashSet::new(),
            func_chain: Vec::new(),
            depths: HashMap::new(),
            deadline: Deadline::NONE,
        }
    }

    /// Attach a wall-clock deadline: [`Replayer::run`] polls it every
    /// [`DEADLINE_POLL_RECORDS`] trace records and returns a truncated
    /// outcome when it fires. The default [`Deadline::NONE`] never fires.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }

    /// Replay a trace and return the collected symbolic observations.
    pub fn run(mut self, trace: &[TraceRecord]) -> ReplayOutcome {
        let mut truncated = false;
        let mut records = 0usize;
        for (i, record) in trace.iter().enumerate() {
            if i % DEADLINE_POLL_RECORDS == DEADLINE_POLL_RECORDS - 1 && self.deadline.expired() {
                truncated = true;
                break;
            }
            records = i + 1;
            match record.kind {
                TraceKind::FuncBegin { func } => self.on_func_begin(func),
                TraceKind::FuncEnd { func } => self.on_func_end(func),
                TraceKind::CallPre { .. } => {}
                TraceKind::CallPost { callee } => self.on_call_post(callee, &record.operands),
                TraceKind::Site { func, pc } => {
                    // Call instructions log their duplicated arguments into
                    // the CallPre record that immediately follows the site.
                    let call_ops: &[TraceVal] = match trace.get(i + 1) {
                        Some(next) if matches!(next.kind, TraceKind::CallPre { .. }) => {
                            &next.operands
                        }
                        _ => &[],
                    };
                    self.on_site(func, pc, &record.operands, call_ops);
                }
            }
        }
        ReplayOutcome {
            pool: self.pool,
            spec: self.spec,
            conditionals: self.conditionals,
            path: self.path,
            branches: self.branches,
            func_chain: self.func_chain,
            records,
            truncated,
        }
    }

    fn on_func_begin(&mut self, func: u32) {
        self.func_chain.push(func);
        let mut frame = SymFrame::default();
        if let Some(args) = self.pending_args.take() {
            frame.locals = args;
        }
        if func == self.spec.action_func {
            for (i, _) in self.spec.params.iter().enumerate() {
                let local_idx = self.spec.local_base + i as u32;
                match self.spec.local_term(i) {
                    Some(term) => frame.set_local(local_idx, Some(term)),
                    None => {
                        if matches!(self.spec.params[i].ty, ParamType::Asset | ParamType::String) {
                            frame.pending_ptr.insert(local_idx, i);
                        }
                    }
                }
            }
        }
        self.frames.push(frame);
    }

    fn on_func_end(&mut self, func: u32) {
        let arity = self
            .module
            .func_type(func)
            .map(|t| t.results.len())
            .unwrap_or(0);
        if let Some(mut frame) = self.frames.pop() {
            let at = frame.stack.len().saturating_sub(arity);
            let results = frame.stack.split_off(at);
            self.pending_results = Some(results);
        }
    }

    fn on_call_post(&mut self, _callee: i32, operands: &[TraceVal]) {
        // Host call leftovers: arguments never consumed by a FuncBegin.
        self.pending_args = None;
        let results = match self.pending_results.take() {
            Some(r) => r,
            // Host function: results are concrete (their values are in the
            // log; downstream consumers read their own operand logs).
            None => vec![None; operands.len()],
        };
        if let Some(frame) = self.frames.last_mut() {
            frame.stack.extend(results);
        }
    }

    /// Static nesting depth before each pc of a function body.
    fn depth_table(&mut self, func: u32) -> &Vec<u32> {
        let module = self.module;
        self.depths.entry(func).or_insert_with(|| {
            let body = &module.local_func(func).expect("local function").body;
            let mut out = Vec::with_capacity(body.len());
            let mut cur: u32 = 0;
            for (pc, i) in body.iter().enumerate() {
                match i {
                    Instr::Block(_) | Instr::Loop(_) | Instr::If(_) => {
                        out.push(cur);
                        cur += 1;
                    }
                    Instr::End => {
                        out.push(cur);
                        if pc + 1 != body.len() {
                            cur = cur.saturating_sub(1);
                        }
                    }
                    _ => out.push(cur),
                }
            }
            out
        })
    }

    fn op_u64(operands: &[TraceVal], i: usize) -> u64 {
        operands.get(i).map(|v| v.bits()).unwrap_or(0)
    }

    /// The term for a consumed operand: the tracked symbolic term if any,
    /// else a constant built from the logged concrete value.
    fn operand_term(&mut self, tracked: Option<TermId>, logged: u64, width: u32) -> TermId {
        match tracked {
            Some(t) => t,
            None => self.pool.bv_const(logged, width),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn on_site(&mut self, func: u32, pc: u32, operands: &[TraceVal], call_ops: &[TraceVal]) {
        let Some(f) = self.module.local_func(func) else {
            return;
        };
        let Some(instr) = f.body.get(pc as usize).cloned() else {
            return;
        };
        // Ensure the depth table exists before borrowing the frame.
        let depth = self.depth_table(func)[pc as usize] as usize;
        if self.frames.is_empty() {
            // Tolerate traces that begin mid-function.
            self.frames.push(SymFrame::default());
        }

        // Label-depth repair: pops labels whose End events were skipped by
        // control flow (if-arms not taken leave their End uninstrumented on
        // the executed path).
        {
            let frame = self.frames.last_mut().expect("non-empty");
            while frame.labels.len() > depth {
                frame.labels.pop();
            }
        }

        match instr {
            Instr::Block(bt) => {
                let frame = self.frames.last_mut().expect("non-empty");
                frame.labels.push(SymLabel {
                    height: frame.stack.len(),
                    arity: bt.arity(),
                    is_loop: false,
                });
            }
            Instr::Loop(_) => {
                let frame = self.frames.last_mut().expect("non-empty");
                frame.labels.push(SymLabel {
                    height: frame.stack.len(),
                    arity: 0,
                    is_loop: true,
                });
            }
            Instr::If(bt) => {
                let cond = self.frames.last_mut().expect("non-empty").pop();
                let cond_val = Self::op_u64(operands, 0);
                self.record_branch(func, pc, cond, cond_val);
                let frame = self.frames.last_mut().expect("non-empty");
                frame.labels.push(SymLabel {
                    height: frame.stack.len(),
                    arity: bt.arity(),
                    is_loop: false,
                });
            }
            Instr::Else => {
                // End of the then-arm; the if label is popped by repair when
                // control resumes past the matching end.
            }
            Instr::End => {
                let frame = self.frames.last_mut().expect("non-empty");
                if let Some(label) = frame.labels.pop() {
                    let at = frame.stack.len().saturating_sub(label.arity);
                    let kept = frame.stack.split_off(at);
                    frame.stack.truncate(label.height);
                    frame.stack.extend(kept);
                }
            }
            Instr::Br(l) => self.do_branch_unwind(l),
            Instr::BrIf(l) => {
                let cond = self.frames.last_mut().expect("non-empty").pop();
                let cond_val = Self::op_u64(operands, 0);
                self.record_branch(func, pc, cond, cond_val);
                if cond_val != 0 {
                    self.do_branch_unwind(l);
                }
            }
            Instr::BrTable(labels, default) => {
                let idx_term = self.frames.last_mut().expect("non-empty").pop();
                let idx = Self::op_u64(operands, 0);
                self.branches.insert((func, pc, idx));
                if let Some(t) = idx_term {
                    // The executed case constrains the index (path condition).
                    let c = self.pool.bv_const(idx & 0xffff_ffff, 32);
                    let eq = self.pool.eq(t, c);
                    self.push_path(eq);
                }
                let l = labels.get(idx as usize).copied().unwrap_or(default);
                self.do_branch_unwind(l);
            }
            Instr::Return => {
                // FuncEnd handles result movement.
            }
            Instr::Unreachable | Instr::Nop => {}
            Instr::Call(callee) => self.on_call(callee, func, pc, call_ops),
            Instr::CallIndirect(type_idx) => {
                let n = self
                    .module
                    .types
                    .get(type_idx as usize)
                    .map(|t| t.params.len())
                    .unwrap_or(0);
                let frame = self.frames.last_mut().expect("non-empty");
                let _index = frame.pop();
                let mut args = vec![None; n];
                for slot in args.iter_mut().rev() {
                    *slot = frame.pop();
                }
                self.pending_args = Some(args);
            }
            Instr::Drop => {
                self.frames.last_mut().expect("non-empty").pop();
            }
            Instr::Select => {
                let frame = self.frames.last_mut().expect("non-empty");
                let cond = frame.pop();
                let b = frame.pop();
                let a = frame.pop();
                let cond_val = Self::op_u64(operands, 2);
                if let Some(t) = cond {
                    let zero = self.pool.bv_const(0, 32);
                    let as_exec = if cond_val != 0 {
                        self.pool.ne(t, zero)
                    } else {
                        self.pool.eq(t, zero)
                    };
                    self.push_path(as_exec);
                }
                let frame = self.frames.last_mut().expect("non-empty");
                frame.stack.push(if cond_val != 0 { a } else { b });
            }
            Instr::LocalGet(x) => {
                // Lazy pointee installation for pointer-typed parameters:
                // the first read reveals the concrete pointer.
                let pending = self
                    .frames
                    .last()
                    .and_then(|fr| fr.pending_ptr.get(&x).copied());
                if let Some(param_idx) = pending {
                    let ptr = Self::op_u64(operands, 0);
                    let spec = self.spec.clone();
                    spec.install_pointee(param_idx, ptr, &mut self.pool, &mut self.mem);
                    self.frames
                        .last_mut()
                        .expect("non-empty")
                        .pending_ptr
                        .remove(&x);
                }
                let frame = self.frames.last_mut().expect("non-empty");
                let v = frame.local(x);
                frame.stack.push(v);
            }
            Instr::LocalSet(x) => {
                let frame = self.frames.last_mut().expect("non-empty");
                let v = frame.pop();
                frame.set_local(x, v);
                frame.pending_ptr.remove(&x);
            }
            Instr::LocalTee(x) => {
                let frame = self.frames.last_mut().expect("non-empty");
                let v = frame.stack.last().copied().unwrap_or(None);
                frame.set_local(x, v);
                frame.pending_ptr.remove(&x);
            }
            Instr::GlobalGet(x) => {
                let v = self.globals.get(&x).copied().unwrap_or(None);
                self.frames.last_mut().expect("non-empty").stack.push(v);
            }
            Instr::GlobalSet(x) => {
                let v = self.frames.last_mut().expect("non-empty").pop();
                self.globals.insert(x, v);
            }
            Instr::MemorySize => {
                // Table 3: balance the stack with a constant.
                self.frames.last_mut().expect("non-empty").stack.push(None);
            }
            Instr::MemoryGrow => {
                let frame = self.frames.last_mut().expect("non-empty");
                frame.pop();
                frame.stack.push(None);
            }
            Instr::I32Const(_) | Instr::I64Const(_) | Instr::F32Const(_) | Instr::F64Const(_) => {
                self.frames.last_mut().expect("non-empty").stack.push(None);
            }
            ref other if other.memory_access().is_some() => {
                self.on_memory(other, operands);
            }
            ref other => match other.class() {
                InstrClass::Unary => self.on_unary(other, operands),
                InstrClass::Binary => self.on_binary(other, operands),
                _ => {}
            },
        }
    }

    fn do_branch_unwind(&mut self, l: u32) {
        let frame = self.frames.last_mut().expect("non-empty");
        if frame.labels.len() <= l as usize {
            return;
        }
        let idx = frame.labels.len() - 1 - l as usize;
        let (height, arity, is_loop) = {
            let lab = &frame.labels[idx];
            (lab.height, lab.arity, lab.is_loop)
        };
        if is_loop {
            frame.stack.truncate(height);
            frame.labels.truncate(idx + 1);
        } else {
            let keep = arity.min(frame.stack.len());
            let kept = frame.stack.split_off(frame.stack.len() - keep);
            frame.stack.truncate(height);
            frame.stack.extend(kept);
            frame.labels.truncate(idx);
        }
    }

    fn push_path(&mut self, constraint: TermId) {
        if self.pool.as_const(constraint) != Some(1) && self.path.len() < 4 * MAX_CONDITIONALS {
            self.path.push(constraint);
        }
    }

    fn record_branch(&mut self, func: u32, pc: u32, cond: Option<TermId>, cond_val: u64) {
        let taken = cond_val != 0;
        self.branches.insert((func, pc, taken as u64));
        if let Some(t) = cond {
            let zero = self.pool.bv_const(0, 32);
            let (as_exec, flipped) = if taken {
                (self.pool.ne(t, zero), self.pool.eq(t, zero))
            } else {
                (self.pool.eq(t, zero), self.pool.ne(t, zero))
            };
            if self.conditionals.len() < MAX_CONDITIONALS {
                self.conditionals.push(ConditionalState {
                    site: (func, pc),
                    taken,
                    kind: CondKind::Branch,
                    flipped,
                    path_len: self.path.len(),
                });
            }
            self.push_path(as_exec);
        }
    }

    fn on_call(&mut self, callee: u32, site_func: u32, site_pc: u32, call_ops: &[TraceVal]) {
        let n = self
            .module
            .func_type(callee)
            .map(|t| t.params.len())
            .unwrap_or(0);
        let mut args = vec![None; n];
        {
            let frame = self.frames.last_mut().expect("non-empty");
            for slot in args.iter_mut().rev() {
                *slot = frame.pop();
            }
        }
        // eosio_assert: a conditional state (§3.1). A failing assert's flip
        // constraint demands the condition hold (§3.4.4).
        if self.assert_funcs.contains(&callee) {
            let cond = args.first().copied().flatten();
            let cond_val = Self::op_u64(call_ops, 0);
            if let Some(t) = cond {
                let zero = self.pool.bv_const(0, 32);
                if cond_val != 0 {
                    let as_exec = self.pool.ne(t, zero);
                    self.push_path(as_exec);
                } else if self.conditionals.len() < MAX_CONDITIONALS {
                    let flipped = self.pool.ne(t, zero);
                    self.conditionals.push(ConditionalState {
                        site: (site_func, site_pc),
                        taken: false,
                        kind: CondKind::Assert,
                        flipped,
                        path_len: self.path.len(),
                    });
                }
            }
        }
        self.pending_args = Some(args);
    }

    fn on_memory(&mut self, instr: &Instr, operands: &[TraceVal]) {
        let acc = instr.memory_access().expect("memory instruction");
        let offset = instr.mem_arg().expect("memarg").offset as u64;
        if acc.is_store {
            let (value, _addr_term) = {
                let frame = self.frames.last_mut().expect("non-empty");
                let v = frame.pop();
                let a = frame.pop();
                (v, a)
            };
            let addr = (Self::op_u64(operands, 0) & 0xffff_ffff) + offset;
            let logged_value = Self::op_u64(operands, 1);
            if acc.val_type.is_int() {
                let w = width_of(acc.val_type);
                let term = self.operand_term(value, logged_value & mask64(w), w);
                let stored = if acc.bytes * 8 < w {
                    self.pool.extract(term, acc.bytes * 8 - 1, 0)
                } else {
                    term
                };
                self.mem.store(&mut self.pool, addr, acc.bytes, stored);
            } else {
                // Floats are opaque: store the concrete bits.
                self.mem
                    .store_concrete(&mut self.pool, addr, acc.bytes, logged_value);
            }
        } else {
            self.frames.last_mut().expect("non-empty").pop(); // address
            let addr = (Self::op_u64(operands, 0) & 0xffff_ffff) + offset;
            let term = if acc.val_type.is_int() {
                self.mem
                    .load(&mut self.pool, addr, acc.bytes)
                    .map(|loaded| {
                        let w = width_of(acc.val_type);
                        let add = w - acc.bytes * 8;
                        if add == 0 {
                            loaded
                        } else if acc.signed {
                            self.pool.sign_ext(loaded, add)
                        } else {
                            self.pool.zero_ext(loaded, add)
                        }
                    })
            } else {
                // A float load still consults the model (keeps it warm) but
                // produces no term.
                let _ = self.mem.load(&mut self.pool, addr, acc.bytes);
                None
            };
            self.frames.last_mut().expect("non-empty").stack.push(term);
        }
    }

    fn on_unary(&mut self, instr: &Instr, operands: &[TraceVal]) {
        let a = self.frames.last_mut().expect("non-empty").pop();
        let logged = Self::op_u64(operands, 0);
        let result = match (instr, a) {
            (_, None) => None,
            (Instr::I32Eqz, Some(t)) => {
                let zero = self.pool.bv_const(0, 32);
                let b = self.pool.eq(t, zero);
                Some(self.pool.bool_to_bv(b, 32))
            }
            (Instr::I64Eqz, Some(t)) => {
                let zero = self.pool.bv_const(0, 64);
                let b = self.pool.eq(t, zero);
                Some(self.pool.bool_to_bv(b, 32))
            }
            (Instr::I32Popcnt, Some(t)) | (Instr::I64Popcnt, Some(t)) => Some(self.pool.popcnt(t)),
            (Instr::I32WrapI64, Some(t)) => Some(self.pool.extract(t, 31, 0)),
            (Instr::I64ExtendI32S, Some(t)) => Some(self.pool.sign_ext(t, 32)),
            (Instr::I64ExtendI32U, Some(t)) => Some(self.pool.zero_ext(t, 32)),
            // clz/ctz, float ops, conversions through floats: opaque. The
            // concrete value remains visible to later consumers via their
            // operand logs.
            _ => None,
        };
        let _ = logged;
        self.frames
            .last_mut()
            .expect("non-empty")
            .stack
            .push(result);
    }

    fn on_binary(&mut self, instr: &Instr, operands: &[TraceVal]) {
        let (b, a) = {
            let frame = self.frames.last_mut().expect("non-empty");
            let b = frame.pop();
            let a = frame.pop();
            (b, a)
        };
        if a.is_none() && b.is_none() {
            self.frames.last_mut().expect("non-empty").stack.push(None);
            return;
        }
        let mn = instr.mnemonic();
        let w = if mn.starts_with("i32") {
            32
        } else if mn.starts_with("i64") {
            64
        } else {
            // Float binary: opaque.
            self.frames.last_mut().expect("non-empty").stack.push(None);
            return;
        };
        let la = Self::op_u64(operands, 0) & mask64(w);
        let lb = Self::op_u64(operands, 1) & mask64(w);
        let ta = self.operand_term(a, la, w);
        let tb = self.operand_term(b, lb, w);
        let result = self.binary_term(instr, ta, tb);
        self.frames
            .last_mut()
            .expect("non-empty")
            .stack
            .push(result);
    }

    fn binary_term(&mut self, instr: &Instr, a: TermId, b: TermId) -> Option<TermId> {
        use Instr::*;
        let bv = |s: &mut Self, op: BvOp| Some(s.pool.bv(op, a, b));
        let cmp = |s: &mut Self, op: CmpOp, swap: bool| {
            let (x, y) = if swap { (b, a) } else { (a, b) };
            let c = s.pool.cmp(op, x, y);
            Some(s.pool.bool_to_bv(c, 32))
        };
        match instr {
            I32Add | I64Add => bv(self, BvOp::Add),
            I32Sub | I64Sub => bv(self, BvOp::Sub),
            I32Mul | I64Mul => bv(self, BvOp::Mul),
            I32DivS | I64DivS => bv(self, BvOp::SDiv),
            I32DivU | I64DivU => bv(self, BvOp::UDiv),
            I32RemS | I64RemS => bv(self, BvOp::SRem),
            I32RemU | I64RemU => bv(self, BvOp::URem),
            I32And | I64And => bv(self, BvOp::And),
            I32Or | I64Or => bv(self, BvOp::Or),
            I32Xor | I64Xor => bv(self, BvOp::Xor),
            I32Shl | I64Shl => bv(self, BvOp::Shl),
            I32ShrS | I64ShrS => bv(self, BvOp::AShr),
            I32ShrU | I64ShrU => bv(self, BvOp::LShr),
            I32Rotl | I64Rotl => bv(self, BvOp::Rotl),
            I32Rotr | I64Rotr => bv(self, BvOp::Rotr),
            I32Eq | I64Eq => cmp(self, CmpOp::Eq, false),
            I32Ne | I64Ne => {
                let e = self.pool.ne(a, b);
                Some(self.pool.bool_to_bv(e, 32))
            }
            I32LtS | I64LtS => cmp(self, CmpOp::Slt, false),
            I32LtU | I64LtU => cmp(self, CmpOp::Ult, false),
            I32GtS | I64GtS => cmp(self, CmpOp::Slt, true),
            I32GtU | I64GtU => cmp(self, CmpOp::Ult, true),
            I32LeS | I64LeS => cmp(self, CmpOp::Sle, false),
            I32LeU | I64LeU => cmp(self, CmpOp::Ule, false),
            I32GeS | I64GeS => cmp(self, CmpOp::Sle, true),
            I32GeU | I64GeU => cmp(self, CmpOp::Ule, true),
            _ => None,
        }
    }
}

fn mask64(w: u32) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1 << w) - 1
    }
}
