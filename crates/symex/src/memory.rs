//! The concrete-address symbolic memory model (challenge C2, §3.4.1).
//!
//! "We create a memory model based on the concrete addresses from the
//! runtime traces" — each *byte* of symbolic data is stored under the
//! concrete address the trace observed, so a load is an O(log n) range read
//! instead of EOSAFE's merge-over-all-entries scan (§3.2). Loads that touch
//! bytes the trace never wrote produce *symbolic load objects* ⟨a, s⟩ —
//! fresh variables standing for "s bytes of unknown memory at offset a".

use std::collections::BTreeMap;

use wasai_smt::{TermId, TermPool};

/// Byte-granular symbolic memory.
#[derive(Debug, Default, Clone)]
pub struct SymMemory {
    /// Concrete byte address → 8-bit term.
    bytes: BTreeMap<u64, TermId>,
    /// Counter making symbolic-load-object names unique.
    fresh: u32,
}

impl SymMemory {
    /// An empty memory model.
    pub fn new() -> Self {
        SymMemory::default()
    }

    /// Number of tracked bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when no byte is tracked.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// △.store(μ_m, addr, size, val): split `value` (a term of width
    /// `size * 8`) into byte terms and record them at `addr..addr+size`.
    ///
    /// # Panics
    ///
    /// Panics if `value`'s width is not `size * 8`.
    pub fn store(&mut self, pool: &mut TermPool, addr: u64, size: u32, value: TermId) {
        assert_eq!(pool.sort(value).width(), size * 8, "store width mismatch");
        for i in 0..size {
            let byte = pool.extract(value, i * 8 + 7, i * 8);
            self.bytes.insert(addr + i as u64, byte);
        }
    }

    /// Store a concrete value (no symbolic content) — keeps later loads of
    /// the same cells concrete-foldable.
    pub fn store_concrete(&mut self, pool: &mut TermPool, addr: u64, size: u32, value: u64) {
        for i in 0..size {
            let byte = pool.bv_const((value >> (i * 8)) & 0xff, 8);
            self.bytes.insert(addr + i as u64, byte);
        }
    }

    /// △.load(μ_m, addr, size) → val: concatenate the byte terms at
    /// `addr..addr+size` (little-endian).
    ///
    /// Returns `None` when *no* byte of the range is tracked — the loaded
    /// value is then fully concrete and the replayer takes it from the
    /// trace. If the range is *partially* tracked, missing bytes become a
    /// fresh symbolic-load-object variable each (⟨a, 1⟩), keeping the
    /// result sound for constraint solving.
    pub fn load(&mut self, pool: &mut TermPool, addr: u64, size: u32) -> Option<TermId> {
        let any = (0..size).any(|i| self.bytes.contains_key(&(addr + i as u64)));
        if !any {
            return None;
        }
        let mut result: Option<TermId> = None;
        for i in (0..size).rev() {
            let a = addr + i as u64;
            let byte = match self.bytes.get(&a) {
                Some(&b) => b,
                None => {
                    let name = format!("mload_{a:#x}_{}", self.fresh);
                    self.fresh += 1;
                    let v = pool.var(&name, 8);
                    self.bytes.insert(a, v);
                    v
                }
            };
            result = Some(match result {
                None => byte,
                Some(hi) => pool.concat(hi, byte),
            });
        }
        result
    }

    /// Whether any byte in `addr..addr+size` is tracked.
    pub fn covers_any(&self, addr: u64, size: u32) -> bool {
        (0..size).any(|i| self.bytes.contains_key(&(addr + i as u64)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_then_load_roundtrips_constant() {
        let mut pool = TermPool::new();
        let mut mem = SymMemory::new();
        let v = pool.bv_const(0x1122_3344, 32);
        mem.store(&mut pool, 100, 4, v);
        let loaded = mem.load(&mut pool, 100, 4).expect("tracked");
        assert_eq!(pool.as_const(loaded), Some(0x1122_3344));
    }

    #[test]
    fn partial_overwrite_merges_bytes() {
        // The §3.2 example: write a..a+2 then b..b+2 where b overlaps — with
        // concrete addresses the overlap resolves immediately.
        let mut pool = TermPool::new();
        let mut mem = SymMemory::new();
        let zeros = pool.bv_const(0x0000, 16);
        let ones = pool.bv_const(0xffff, 16);
        mem.store(&mut pool, 10, 2, zeros);
        mem.store(&mut pool, 11, 2, ones); // overlaps byte 11
        let loaded = mem.load(&mut pool, 10, 2).expect("tracked");
        assert_eq!(pool.as_const(loaded), Some(0xff00));
        let upper = mem.load(&mut pool, 11, 2).expect("tracked");
        assert_eq!(pool.as_const(upper), Some(0xffff));
    }

    #[test]
    fn symbolic_store_load_preserves_terms() {
        let mut pool = TermPool::new();
        let mut mem = SymMemory::new();
        let x = pool.var("x", 64);
        mem.store(&mut pool, 0, 8, x);
        let loaded = mem.load(&mut pool, 0, 8).expect("tracked");
        // Loading back the whole word yields a term equivalent to x:
        // concat of extracts. Evaluate both to check equivalence.
        for v in [0u64, 0xdead_beef_1234_5678, u64::MAX] {
            assert_eq!(pool.eval(loaded, &[v]), v);
        }
    }

    #[test]
    fn untracked_load_is_concrete() {
        let mut pool = TermPool::new();
        let mut mem = SymMemory::new();
        assert_eq!(mem.load(&mut pool, 500, 8), None);
    }

    #[test]
    fn partial_load_creates_symbolic_load_objects() {
        let mut pool = TermPool::new();
        let mut mem = SymMemory::new();
        let x = pool.var("x", 8);
        mem.store(&mut pool, 20, 1, x);
        let loaded = mem.load(&mut pool, 20, 2).expect("partially tracked");
        assert_eq!(pool.sort(loaded).width(), 16);
        assert!(pool.is_symbolic(loaded));
        // The gap byte is now tracked (consistent future loads).
        assert!(mem.covers_any(21, 1));
    }

    #[test]
    fn little_endian_byte_order() {
        let mut pool = TermPool::new();
        let mut mem = SymMemory::new();
        let v = pool.bv_const(0xaabb, 16);
        mem.store(&mut pool, 0, 2, v);
        let lo = mem.load(&mut pool, 0, 1).expect("lo");
        let hi = mem.load(&mut pool, 1, 1).expect("hi");
        assert_eq!(pool.as_const(lo), Some(0xbb));
        assert_eq!(pool.as_const(hi), Some(0xaa));
    }
}
