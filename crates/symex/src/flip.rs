//! Constraint flipping (§3.4.4).
//!
//! For each conditional state whose *other* side has not been explored yet,
//! assemble `path-prefix ∧ flipped` — "the path to the conditional state
//! must be feasible" ∧ "the jumping condition holds for the opposite
//! branch" — ready to hand to the solver.
//!
//! All queries from one replay share the same path-constraint chain, so the
//! result is a [`FlipSet`]: the chain stored once, plus per-query
//! `(prefix_len, flipped)` pairs. That shape is what lets the solver blast
//! the shared prefix a single time and answer every flip from it
//! (`wasai_smt::PrefixSolver`), instead of re-encoding a cloned constraint
//! vector per query.

use std::collections::HashSet;

use wasai_smt::TermId;

use crate::replay::{CondKind, ReplayOutcome};

/// One ready-to-solve flip query: the first `prefix_len` constraints of the
/// owning [`FlipSet`]'s chain, conjoined with `flipped`.
#[derive(Debug, Clone)]
pub struct FlipQuery {
    /// How much of the shared path-constraint chain precedes this
    /// conditional.
    pub prefix_len: usize,
    /// The negated jumping condition.
    pub flipped: TermId,
    /// The branch site being flipped.
    pub site: (u32, u32),
    /// The direction the new seed should take (branches) — `taken` negated.
    pub target_taken: bool,
    /// Branch or assert.
    pub kind: CondKind,
}

impl FlipQuery {
    /// The coverage key `(func, pc, direction)` this query targets.
    ///
    /// Branches use directions 0/1 (the `taken` flag recorded in traces).
    /// Asserts use 2/3 — their own key space — so an assert flip at a site
    /// never aliases a branch flip at the same `(func, pc)`: `explored`
    /// only ever holds branch keys, and an aliased key would silently
    /// suppress whichever query came second.
    pub fn target_key(&self) -> (u32, u32, u64) {
        let dir = match self.kind {
            CondKind::Branch => self.target_taken as u64,
            CondKind::Assert => 2 + self.target_taken as u64,
        };
        (self.site.0, self.site.1, dir)
    }

    /// Materialize the full constraint list against the owning set's
    /// `prefix` (compatibility path for callers that solve from scratch).
    pub fn constraints(&self, prefix: &[TermId]) -> Vec<TermId> {
        let mut out: Vec<TermId> = prefix[..self.prefix_len].to_vec();
        out.push(self.flipped);
        out
    }
}

/// All flip queries from one replay, sharing a single path-constraint chain.
#[derive(Debug, Clone, Default)]
pub struct FlipSet {
    /// The replay's full path-constraint chain; each query uses a prefix of
    /// it. Queries appear in trace order, so their `prefix_len`s are
    /// non-decreasing — exactly the access pattern incremental solving
    /// wants.
    pub prefix: Vec<TermId>,
    /// The queries, in trace order.
    pub queries: Vec<FlipQuery>,
}

impl FlipSet {
    /// Materialized constraints of `q` (see [`FlipQuery::constraints`]).
    pub fn constraints_of(&self, q: &FlipQuery) -> Vec<TermId> {
        q.constraints(&self.prefix)
    }
}

/// Build flip queries from a replay, skipping targets already in `explored`
/// (branch directions some earlier seed has covered) and deduplicating
/// repeated targets within the run — asserts included: a guard re-checked
/// on every loop iteration yields one query, not one per iteration.
pub fn flip_queries(outcome: &ReplayOutcome, explored: &HashSet<(u32, u32, u64)>) -> FlipSet {
    let mut seen_this_run: HashSet<(u32, u32, u64)> = HashSet::new();
    let mut queries = Vec::new();
    for cond in &outcome.conditionals {
        let q = FlipQuery {
            prefix_len: cond.path_len,
            flipped: cond.flipped,
            site: cond.site,
            target_taken: !cond.taken,
            kind: cond.kind,
        };
        let key = q.target_key();
        if explored.contains(&key) || seen_this_run.contains(&key) {
            continue;
        }
        seen_this_run.insert(key);
        queries.push(q);
    }
    FlipSet {
        prefix: outcome.path.clone(),
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs::InputSpec;
    use wasai_chain::abi::{ParamType, ParamValue};
    use wasai_smt::{CmpOp, TermPool};

    /// A replay with hand-placed conditionals over one `arg0` guard chain.
    fn outcome(
        conds: Vec<ConditionalState>,
        path: Vec<TermId>,
        mut pool: TermPool,
    ) -> ReplayOutcome {
        let spec = InputSpec::build(&mut pool, 7, 1, &[(ParamType::U64, ParamValue::U64(5))]);
        ReplayOutcome {
            pool,
            spec,
            conditionals: conds,
            path,
            branches: HashSet::new(),
            func_chain: vec![7],
            records: 0,
            truncated: false,
        }
    }

    use crate::replay::ConditionalState;

    fn guard(pool: &mut TermPool, k: u64) -> (TermId, TermId) {
        let v = pool.var("g", 64);
        let c = pool.bv_const(k, 64);
        let taken = pool.cmp(CmpOp::Ult, v, c);
        let flipped = pool.not(taken);
        (taken, flipped)
    }

    #[test]
    fn repeated_asserts_dedup_to_one_query() {
        // Regression: the dedup filter used to apply only to
        // `CondKind::Branch`, so an assert re-checked N times (a guard in a
        // loop) produced N identical queries, wasting the per-iteration
        // query budget.
        let mut pool = TermPool::new();
        let (taken, flipped) = guard(&mut pool, 10);
        let cond = |path_len| ConditionalState {
            site: (3, 42),
            taken: false,
            kind: CondKind::Assert,
            flipped,
            path_len,
        };
        let out = outcome(vec![cond(0), cond(1), cond(2)], vec![taken, taken], pool);
        let set = flip_queries(&out, &HashSet::new());
        assert_eq!(set.queries.len(), 1, "identical assert targets must dedup");
        assert_eq!(set.queries[0].prefix_len, 0, "first occurrence wins");
    }

    #[test]
    fn assert_keys_do_not_alias_branch_keys() {
        // An assert and a branch at the same (func, pc) flipping the same
        // direction must both survive: asserts live in key space 2/3.
        let mut pool = TermPool::new();
        let (taken, flipped) = guard(&mut pool, 10);
        let branch = ConditionalState {
            site: (3, 42),
            taken: false,
            kind: CondKind::Branch,
            flipped,
            path_len: 0,
        };
        let assert_ = ConditionalState {
            site: (3, 42),
            taken: false,
            kind: CondKind::Assert,
            flipped,
            path_len: 1,
        };
        let out = outcome(vec![branch, assert_], vec![taken], pool);
        let set = flip_queries(&out, &HashSet::new());
        assert_eq!(set.queries.len(), 2);
        let k_branch = set.queries[0].target_key();
        let k_assert = set.queries[1].target_key();
        assert_ne!(k_branch, k_assert);
        assert_eq!(k_branch, (3, 42, 1));
        assert_eq!(k_assert, (3, 42, 3));

        // `explored` holding the branch key must not suppress the assert.
        let explored: HashSet<_> = [k_branch].into_iter().collect();
        let set = flip_queries(&out, &explored);
        assert_eq!(set.queries.len(), 1);
        assert_eq!(set.queries[0].kind, CondKind::Assert);
    }

    #[test]
    fn constraints_materialize_prefix_plus_flip() {
        let mut pool = TermPool::new();
        let (taken, flipped) = guard(&mut pool, 10);
        let cond = ConditionalState {
            site: (1, 2),
            taken: true,
            kind: CondKind::Branch,
            flipped,
            path_len: 2,
        };
        let out = outcome(vec![cond], vec![taken, taken, taken], pool);
        let set = flip_queries(&out, &HashSet::new());
        let q = &set.queries[0];
        assert_eq!(set.constraints_of(q), vec![taken, taken, flipped]);
        assert_eq!(q.constraints(&set.prefix), vec![taken, taken, flipped]);
    }
}
