//! Constraint flipping (§3.4.4).
//!
//! For each conditional state whose *other* side has not been explored yet,
//! assemble `path-prefix ∧ flipped` — "the path to the conditional state
//! must be feasible" ∧ "the jumping condition holds for the opposite
//! branch" — ready to hand to the solver.

use std::collections::HashSet;

use wasai_smt::TermId;

use crate::replay::{CondKind, ReplayOutcome};

/// One ready-to-solve flip query.
#[derive(Debug, Clone)]
pub struct FlipQuery {
    /// All constraints to conjoin.
    pub constraints: Vec<TermId>,
    /// The branch site being flipped.
    pub site: (u32, u32),
    /// The direction the new seed should take (branches) — `taken` negated.
    pub target_taken: bool,
    /// Branch or assert.
    pub kind: CondKind,
}

impl FlipQuery {
    /// The coverage key `(func, pc, direction)` this query targets.
    pub fn target_key(&self) -> (u32, u32, u64) {
        (self.site.0, self.site.1, self.target_taken as u64)
    }
}

/// Build flip queries from a replay, skipping targets already in `explored`
/// (branch directions some earlier seed has covered).
pub fn flip_queries(
    outcome: &ReplayOutcome,
    explored: &HashSet<(u32, u32, u64)>,
) -> Vec<FlipQuery> {
    let mut seen_this_run: HashSet<(u32, u32, u64)> = HashSet::new();
    let mut out = Vec::new();
    for cond in &outcome.conditionals {
        let target_taken = !cond.taken;
        let key = (cond.site.0, cond.site.1, target_taken as u64);
        if cond.kind == CondKind::Branch
            && (explored.contains(&key) || seen_this_run.contains(&key))
        {
            continue;
        }
        seen_this_run.insert(key);
        let mut constraints: Vec<TermId> = outcome.path[..cond.path_len].to_vec();
        constraints.push(cond.flipped);
        out.push(FlipQuery {
            constraints,
            site: cond.site,
            target_taken,
            kind: cond.kind,
        });
    }
    out
}
