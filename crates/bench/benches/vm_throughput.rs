//! EOSVM throughput: a full token-transfer transaction against a generated
//! contract, with and without trace instrumentation — the runtime cost of
//! the paper's contract-level hooks (§3.3.1).

use criterion::{criterion_group, criterion_main, Criterion};

use wasai_chain::abi::ParamValue;
use wasai_chain::asset::Asset;
use wasai_chain::name::Name;
use wasai_chain::{Chain, NativeKind};
use wasai_corpus::{generate, Blueprint};

fn chain_with(module: wasai_wasm::Module, abi: wasai_chain::abi::Abi) -> Chain {
    let mut chain = Chain::new();
    chain.deploy_native(Name::new("eosio.token"), NativeKind::Token);
    chain.create_account(Name::new("alice")).unwrap();
    chain.deploy_wasm(Name::new("victim"), module, abi).unwrap();
    chain.issue(
        Name::new("eosio.token"),
        Name::new("alice"),
        Asset::eos(1_000_000_000),
    );
    chain
}

fn transfer_params() -> Vec<ParamValue> {
    vec![
        ParamValue::Name(Name::new("alice")),
        ParamValue::Name(Name::new("victim")),
        ParamValue::Asset(Asset::eos(10)),
        ParamValue::String("bench".into()),
    ]
}

fn bench_vm(c: &mut Criterion) {
    let contract = generate(Blueprint {
        seed: 77,
        eosponser_branches: 3,
        ..Blueprint::default()
    });
    let instrumented = wasai_wasm::instrument::instrument(&contract.module)
        .unwrap()
        .module;

    let mut plain = chain_with(contract.module.clone(), contract.abi.clone());
    c.bench_function("vm/transfer_plain", |b| {
        b.iter(|| {
            let r = plain.push_action(
                Name::new("eosio.token"),
                Name::new("transfer"),
                &[Name::new("alice")],
                &transfer_params(),
            );
            std::hint::black_box(r.is_ok());
        });
    });

    let mut traced = chain_with(instrumented, contract.abi.clone());
    c.bench_function("vm/transfer_instrumented", |b| {
        b.iter(|| {
            let r = traced.push_action(
                Name::new("eosio.token"),
                Name::new("transfer"),
                &[Name::new("alice")],
                &transfer_params(),
            );
            std::hint::black_box(r.is_ok());
        });
    });
}

criterion_group!(benches, bench_vm);
criterion_main!(benches);
