//! End-to-end campaign throughput: a short WASAI campaign vs an EOSFuzzer
//! campaign on the same contract — the cost of concolic feedback per §4's
//! efficiency discussion.

use criterion::{criterion_group, criterion_main, Criterion};

use wasai_baselines::EosFuzzer;
use wasai_core::{FuzzConfig, TargetInfo, Wasai};
use wasai_corpus::{generate, Blueprint, GateKind};

fn short_config() -> FuzzConfig {
    FuzzConfig {
        timeout_us: 5_000_000,
        stall_iters: 10,
        ..FuzzConfig::default()
    }
}

fn bench_fuzz(c: &mut Criterion) {
    let contract = generate(Blueprint {
        seed: 88,
        gate: GateKind::Solvable { depth: 2 },
        eosponser_branches: 2,
        ..Blueprint::default()
    });

    let mut group = c.benchmark_group("fuzz_campaign");
    group.sample_size(10);
    group.bench_function("wasai_short", |b| {
        b.iter(|| {
            let r = Wasai::new(contract.module.clone(), contract.abi.clone())
                .with_config(short_config())
                .run()
                .unwrap();
            std::hint::black_box(r.branches);
        });
    });
    group.bench_function("eosfuzzer_short", |b| {
        b.iter(|| {
            let r = EosFuzzer::new(
                TargetInfo::new(contract.module.clone(), contract.abi.clone()),
                short_config(),
            )
            .unwrap()
            .run();
            std::hint::black_box(r.branches);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fuzz);
criterion_main!(benches);
