//! Solver micro-benchmarks on the constraint shapes WASAI actually emits
//! (§3.4.4): 64-bit name-equality guard flips, masked/xored gate chains, and
//! the obfuscator's popcount predicates.

use criterion::{criterion_group, criterion_main, Criterion};

use wasai_smt::{check, Budget, BvOp, TermPool};

fn bench_solver(c: &mut Criterion) {
    c.bench_function("smt/name_equality_flip", |b| {
        b.iter(|| {
            let mut p = TermPool::new();
            let code = p.var("code", 64);
            let token = p.bv_const(0x5530ea033482a600, 64);
            let a = p.eq(code, token);
            std::hint::black_box(check(&p, &[a], Budget::default()));
        });
    });

    c.bench_function("smt/gate_chain_depth3", |b| {
        b.iter(|| {
            let mut p = TermPool::new();
            let nonce = p.var("nonce", 64);
            let v = 0x1234_5678_9abc_def0u64;
            let c0 = {
                let cv = p.bv_const(v, 64);
                p.eq(nonce, cv)
            };
            let c1 = {
                let mask = p.bv_const(0xffff_ffff, 64);
                let lhs = p.bv(BvOp::And, nonce, mask);
                let rhs = p.bv_const(v & 0xffff_ffff, 64);
                p.eq(lhs, rhs)
            };
            let c2 = {
                let key = p.bv_const(0xdead_beef, 64);
                let lhs = p.bv(BvOp::Xor, nonce, key);
                let rhs = p.bv_const(v ^ 0xdead_beef, 64);
                p.eq(lhs, rhs)
            };
            std::hint::black_box(check(&p, &[c0, c1, c2], Budget::default()));
        });
    });

    c.bench_function("smt/popcount_predicate", |b| {
        b.iter(|| {
            let mut p = TermPool::new();
            let x = p.var("x", 32);
            let pc = p.popcnt(x);
            let c13 = p.bv_const(13, 32);
            let a = p.eq(pc, c13);
            std::hint::black_box(check(&p, &[a], Budget::default()));
        });
    });

    c.bench_function("smt/unsat_contradiction", |b| {
        b.iter(|| {
            let mut p = TermPool::new();
            let x = p.var("x", 64);
            let c1 = p.bv_const(1, 64);
            let c2 = p.bv_const(2, 64);
            let a1 = p.eq(x, c1);
            let a2 = p.eq(x, c2);
            std::hint::black_box(check(&p, &[a1, a2], Budget::default()));
        });
    });
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
