//! Fleet scheduler throughput: the same campaign workload on one worker vs
//! four. The workload is `rq4_analyze` over a small wild corpus — real
//! campaigns, so the measurement includes the `PreparedTarget` cache and the
//! slot-vector merge, not just queue overhead.
//!
//! `BENCH_fleet.json` records the measured speedups on the full-size
//! workloads (rq4_wild at 24 contracts, table4_accuracy).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use wasai_bench::{evaluate_with, rq4_analyze, run_tool, Tool};
use wasai_corpus::{table4_benchmark, wild_corpus, WildRates};

fn bench_fleet(c: &mut Criterion) {
    let corpus = wild_corpus(0xf1ee7, 8, WildRates::default());

    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);
    for jobs in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("rq4_campaigns", jobs),
            &jobs,
            |b, &jobs| {
                b.iter(|| {
                    let (outcomes, _) = rq4_analyze(&corpus, 0xe05, jobs);
                    std::hint::black_box(outcomes.len());
                });
            },
        );
    }
    group.finish();

    // The shared-artifact cache, isolated from threading: `evaluate_with` on
    // one worker prepares (instrument + compile + branch-site scan) each
    // sample once for all three tools; the uncached loop re-prepares per
    // campaign, which is what the drivers did before `PreparedTarget`.
    let samples = table4_benchmark(0xf1ee7, 0.004);
    let mut group = c.benchmark_group("prepared_cache");
    group.sample_size(10);
    group.bench_function("evaluate_cached", |b| {
        b.iter(|| {
            let (table, _) = evaluate_with(&samples, 0xe05, 1);
            std::hint::black_box(table.len());
        });
    });
    group.bench_function("evaluate_uncached", |b| {
        b.iter(|| {
            let mut flags = 0usize;
            for (i, s) in samples.iter().enumerate() {
                for tool in Tool::ALL {
                    if tool.supports(s.group) {
                        flags += run_tool(tool, s, 0xe05 ^ (i as u64)) as usize;
                    }
                }
            }
            std::hint::black_box(flags);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
