//! Ablation: WASAI's concrete-address byte map (§3.4.1) vs EOSAFE's
//! merge-on-access write list (§3.2). The paper claims the former "recovers
//! symbolic expressions from the memory faster than EOSAFE, which is
//! essential to improve the fuzzing throughput".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use wasai_baselines::eosafe::RangeMemory;
use wasai_smt::TermPool;
use wasai_symex::SymMemory;

/// A deterministic store/load workload of `n` operations.
fn workload(n: usize) -> Vec<(bool, u64, u32)> {
    let mut lcg = 0x853c49e6748fea9bu64;
    let mut rnd = move || {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        lcg >> 33
    };
    (0..n)
        .map(|_| {
            let is_store = rnd() % 2 == 0;
            let addr = rnd() % 4096;
            let size = [1u32, 2, 4, 8][(rnd() % 4) as usize];
            (is_store, addr, size)
        })
        .collect()
}

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory_model");
    for n in [200usize, 1000, 4000] {
        let ops = workload(n);
        group.bench_with_input(BenchmarkId::new("wasai_byte_map", n), &ops, |b, ops| {
            b.iter(|| {
                let mut pool = TermPool::new();
                let mut mem = SymMemory::new();
                for &(is_store, addr, size) in ops {
                    if is_store {
                        let v = pool.bv_const(addr, size * 8);
                        mem.store(&mut pool, addr, size, v);
                    } else {
                        std::hint::black_box(mem.load(&mut pool, addr, size));
                    }
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("eosafe_write_list", n), &ops, |b, ops| {
            b.iter(|| {
                let mut pool = TermPool::new();
                let mut mem = RangeMemory::new();
                for &(is_store, addr, size) in ops {
                    if is_store {
                        let v = pool.bv_const(addr, size * 8);
                        mem.store(&pool, addr, size, v);
                    } else {
                        std::hint::black_box(mem.load(&mut pool, addr, size));
                    }
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
