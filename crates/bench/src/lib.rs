#![warn(missing_docs)]

//! # wasai-bench — the experiment harness (§4)
//!
//! Shared machinery for the binaries that regenerate every table and figure
//! of the paper's evaluation: run the three tools over labeled corpora,
//! score per-group precision/recall/F1, and print paper-style tables.
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig3_coverage` | Figure 3 — branch coverage over time, WASAI vs EOSFuzzer |
//! | `table4_accuracy` | Table 4 — ground-truth benchmark accuracy |
//! | `table5_obfuscation` | Table 5 — accuracy under code obfuscation |
//! | `table6_verification` | Table 6 — accuracy under complicated verification |
//! | `rq4_wild` | §4.4 — the wild-contract study |
//!
//! Scale the corpora with `WASAI_SCALE` (fraction of the paper's sample
//! counts, default 0.02) and determinism with `WASAI_SEED`. Run with
//! `--release`; the full-scale corpora are laptop-hours, the default scale
//! is laptop-minutes.

use std::collections::BTreeMap;
use std::sync::Arc;

use wasai_baselines::{eosafe_analyze, EosFuzzer, EosafeConfig};
use wasai_core::{
    jobs_from_env, run_jobs, run_jobs_isolated, run_jobs_timed, CampaignRun, FleetStats,
    FuzzConfig, PreparedTarget, TargetInfo, TelemetryEvent, TelemetrySink, VulnClass, Wasai,
};
use wasai_corpus::{BenchmarkSample, Lifecycle, WildContract};
use wasai_smt::{Deadline, SolverCache};

/// Binary classification counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Metrics {
    /// Record one sample.
    pub fn record(&mut self, truth: bool, flagged: bool) {
        match (truth, flagged) {
            (true, true) => self.tp += 1,
            (true, false) => self.fn_ += 1,
            (false, true) => self.fp += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Precision (degenerates to 0 when positives existed but none were
    /// reported, 1 when there was nothing to report).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            if self.fn_ > 0 {
                return 0.0;
            }
            return 1.0;
        }
        self.tp as f64 / (self.tp + self.fp) as f64
    }

    /// Recall (1 when there were no positives to find).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return 1.0;
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    /// F1-measure.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Total samples recorded.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Merge another metric in.
    pub fn merge(&mut self, other: Metrics) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }
}

/// The three tools under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tool {
    /// The concolic fuzzer (this paper).
    Wasai,
    /// The black-box random fuzzer baseline.
    EosFuzzer,
    /// The static symbolic-execution baseline.
    Eosafe,
}

impl Tool {
    /// All tools in table order.
    pub const ALL: [Tool; 3] = [Tool::Wasai, Tool::EosFuzzer, Tool::Eosafe];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Tool::Wasai => "WASAI",
            Tool::EosFuzzer => "EOSFuzzer",
            Tool::Eosafe => "EOSAFE",
        }
    }

    /// Which classes the tool can detect at all (the "-" cells).
    pub fn supports(self, class: VulnClass) -> bool {
        match self {
            Tool::Wasai => true,
            Tool::EosFuzzer => matches!(
                class,
                VulnClass::FakeEos | VulnClass::FakeNotif | VulnClass::BlockinfoDep
            ),
            Tool::Eosafe => class != VulnClass::BlockinfoDep,
        }
    }
}

/// Fuzzing configuration used by the accuracy experiments (a virtual
/// five-minute budget with early saturation, per §4's setup).
pub fn bench_fuzz_config(seed: u64) -> FuzzConfig {
    FuzzConfig {
        timeout_us: 300_000_000,
        stall_iters: 40,
        rng_seed: seed,
        ..FuzzConfig::default()
    }
}

/// Run one tool on one sample; returns whether the sample's group class was
/// flagged.
pub fn run_tool(tool: Tool, sample: &BenchmarkSample, seed: u64) -> bool {
    let target = TargetInfo::new(sample.contract.module.clone(), sample.contract.abi.clone());
    match tool {
        Tool::Wasai => Wasai::new(sample.contract.module.clone(), sample.contract.abi.clone())
            .with_config(bench_fuzz_config(seed))
            .run()
            .map(|r| r.has(sample.group))
            .unwrap_or(false),
        Tool::EosFuzzer => EosFuzzer::new(target, bench_fuzz_config(seed))
            .map(|f| f.run().has(sample.group))
            .unwrap_or(false),
        Tool::Eosafe => eosafe_analyze(
            &sample.contract.module,
            &sample.contract.abi,
            EosafeConfig::default(),
        )
        .has(sample.group),
    }
}

/// [`run_tool`] against a cached [`PreparedTarget`]; returns the flag
/// verdict and the campaign's virtual duration (0 for the static tool).
/// WASAI campaigns additionally share the fleet-wide solver query cache —
/// like the prepared artifact, it changes only wall-clock cost, never
/// results.
fn run_tool_prepared(
    tool: Tool,
    prepared: &Arc<PreparedTarget>,
    solver_cache: &Arc<SolverCache>,
    sample: &BenchmarkSample,
    seed: u64,
) -> (bool, u64) {
    match tool {
        Tool::Wasai => Wasai::from_prepared(prepared.clone())
            .with_config(bench_fuzz_config(seed))
            .with_solver_cache(solver_cache.clone())
            .run()
            .map(|r| (r.has(sample.group), r.virtual_us))
            .unwrap_or((false, 0)),
        Tool::EosFuzzer => EosFuzzer::from_prepared(prepared.clone(), bench_fuzz_config(seed))
            .map(|f| {
                let r = f.run();
                (r.has(sample.group), r.virtual_us)
            })
            .unwrap_or((false, 0)),
        Tool::Eosafe => (
            eosafe_analyze(
                &sample.contract.module,
                &sample.contract.abi,
                EosafeConfig::default(),
            )
            .has(sample.group),
            0,
        ),
    }
}

/// Per-class, per-tool metrics over a corpus.
pub type AccuracyTable = BTreeMap<VulnClass, BTreeMap<Tool, Metrics>>;

/// Evaluate all three tools over a benchmark corpus, with the worker count
/// taken from `WASAI_JOBS`.
pub fn evaluate(samples: &[BenchmarkSample], seed: u64) -> AccuracyTable {
    evaluate_with(samples, seed, jobs_from_env()).0
}

/// Evaluate all three tools over a benchmark corpus on `jobs` workers.
///
/// Deterministic merge: each `(sample, tool)` campaign derives its RNG seed
/// from the sample index alone (`seed ^ i`) and the per-contract artifacts
/// are shared, so the returned table is bit-identical for every `jobs`
/// value — `jobs = 1` is the serial reference path.
pub fn evaluate_with(
    samples: &[BenchmarkSample],
    seed: u64,
    jobs: usize,
) -> (AccuracyTable, FleetStats) {
    // Phase 1: per-contract shared artifacts (instrument + compile + branch
    // sites), prepared once per sample and shared by all three tools.
    let prepared: Vec<Option<Arc<PreparedTarget>>> = run_jobs(
        jobs,
        samples.iter().collect(),
        |_, sample: &BenchmarkSample| {
            let info = TargetInfo::new(sample.contract.module.clone(), sample.contract.abi.clone());
            PreparedTarget::prepare(info).ok()
        },
    );

    // Phase 2: one job per (sample, tool) campaign, seeded by sample index.
    // Campaigns share one solver query cache: structurally repeated flip
    // queries (common guard shapes across the generated corpus) are solved
    // once fleet-wide.
    let solver_cache = Arc::new(SolverCache::new());
    let cases: Vec<(usize, Tool)> = (0..samples.len())
        .flat_map(|i| Tool::ALL.into_iter().map(move |t| (i, t)))
        .collect();
    let (flags, stats) = run_jobs_timed(
        jobs,
        cases,
        |_, (i, tool)| {
            let sample = &samples[i];
            if !tool.supports(sample.group) {
                return (i, tool, false, 0);
            }
            let (flagged, virtual_us) = match &prepared[i] {
                Some(p) => run_tool_prepared(tool, p, &solver_cache, sample, seed ^ (i as u64)),
                // Preparation failed (uninstrumentable module): the fuzzers
                // report nothing, matching the serial behavior.
                None => (run_tool(tool, sample, seed ^ (i as u64)), 0),
            };
            (i, tool, flagged, virtual_us)
        },
        |&(_, _, _, virtual_us)| virtual_us,
    );

    // Phase 3: merge in index order — scheduling cannot affect the table.
    let mut table: AccuracyTable = BTreeMap::new();
    for (i, tool, flagged, _) in flags {
        let sample = &samples[i];
        table
            .entry(sample.group)
            .or_default()
            .entry(tool)
            .or_default()
            .record(sample.is_vulnerable(), flagged);
    }
    (table, stats)
}

/// Outcome of one wild-contract analysis (RQ4's per-contract record).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WildOutcome {
    /// Classes WASAI flagged on the deployed version.
    pub findings: std::collections::BTreeSet<VulnClass>,
    /// For flagged `OperatingPatched` contracts: whether re-analyzing the
    /// latest version came back clean (§4.4's patch verification).
    pub latest_clean: Option<bool>,
    /// Aggregate virtual microseconds across the (up to two) campaigns.
    pub virtual_us: u64,
}

impl WildOutcome {
    /// True if the deployed version was flagged at all.
    pub fn flagged(&self) -> bool {
        !self.findings.is_empty()
    }
}

/// Run the RQ4 wild-contract study over `corpus` on `jobs` workers.
///
/// Each contract is one job (deployed analysis plus, when flagged and
/// patched-while-operating, the latest-version re-analysis), seeded from
/// its corpus index — results are identical for every `jobs` value.
pub fn rq4_analyze(
    corpus: &[WildContract],
    seed: u64,
    jobs: usize,
) -> (Vec<WildOutcome>, FleetStats) {
    let start = std::time::Instant::now();
    let runs = rq4_analyze_isolated(corpus, seed, jobs, Deadline::NONE);
    let outcomes: Vec<WildOutcome> = runs
        .into_iter()
        .map(|r| match r.outcome {
            wasai_core::CampaignOutcome::Ok(o) => o,
            other => panic!("wild campaign failed: {}", other.detail()),
        })
        .collect();
    let stats = FleetStats {
        jobs: jobs.max(1),
        campaigns: outcomes.len(),
        virtual_us: outcomes.iter().map(|o| o.virtual_us).sum(),
        wall: start.elapsed(),
    };
    (outcomes, stats)
}

/// [`rq4_analyze`] with per-contract fault isolation: a panicking, failing,
/// or deadline-overrunning contract is reported in its slot instead of
/// tearing down the whole study, and every other slot is byte-identical to
/// the clean run's — for any `jobs` value.
pub fn rq4_analyze_isolated(
    corpus: &[WildContract],
    seed: u64,
    jobs: usize,
    deadline: Deadline,
) -> Vec<CampaignRun<WildOutcome>> {
    let solver_cache = Arc::new(SolverCache::new());
    strip_events(run_jobs_isolated(
        jobs,
        corpus.iter().collect(),
        deadline,
        |i, w| rq4_one(i, w, seed, deadline, false, &solver_cache),
    ))
}

/// [`rq4_analyze_isolated`] with telemetry: every campaign runs traced, and
/// after the index-keyed merge each contract's event stream — or a
/// `CampaignAborted` record for slots that died — is fed to `sink` in index
/// order. The sink therefore observes the exact same stream for every
/// `jobs` value.
pub fn rq4_analyze_isolated_traced(
    corpus: &[WildContract],
    seed: u64,
    jobs: usize,
    deadline: Deadline,
    sink: &mut dyn TelemetrySink,
) -> Vec<CampaignRun<WildOutcome>> {
    let solver_cache = Arc::new(SolverCache::new());
    let runs = run_jobs_isolated(jobs, corpus.iter().collect(), deadline, |i, w| {
        rq4_one(i, w, seed, deadline, true, &solver_cache)
    });
    for (i, run) in runs.iter().enumerate() {
        match &run.outcome {
            wasai_core::CampaignOutcome::Ok((_, events)) => {
                for ev in events {
                    sink.record(ev.clone());
                }
            }
            other => sink.record(TelemetryEvent::CampaignAborted {
                campaign: i,
                stage: other.stage().to_string(),
                outcome: other.kind().to_string(),
                vtime: 0,
            }),
        }
    }
    strip_events(runs)
}

/// One RQ4 contract: deployed-version analysis plus, when flagged and
/// patched-while-operating, the latest-version re-analysis (§4.4).
fn rq4_one(
    i: usize,
    w: &WildContract,
    seed: u64,
    deadline: Deadline,
    traced: bool,
    solver_cache: &Arc<SolverCache>,
) -> Result<(WildOutcome, Vec<TelemetryEvent>), wasai_chain::ChainError> {
    let config = |s: u64| FuzzConfig {
        deadline,
        ..bench_fuzz_config(s)
    };
    let mut events = Vec::new();
    let mut run = |module: &wasai_wasm::Module, abi: &wasai_chain::abi::Abi, s: u64| {
        let w = Wasai::new(module.clone(), abi.clone())
            .with_config(config(s))
            .with_solver_cache(solver_cache.clone());
        if traced {
            let (report, ev) = w.run_traced()?;
            events.extend(ev);
            Ok(report)
        } else {
            w.run()
        }
    };
    let report = run(&w.deployed.module, &w.deployed.abi, seed ^ (i as u64))?;
    let mut virtual_us = report.virtual_us;
    let mut latest_clean = None;
    if report.is_vulnerable() && w.lifecycle == Lifecycle::OperatingPatched {
        // "we further applied WASAI to analyze their latest version
        // to investigate whether the vulnerability has been patched"
        // (§4.4, footnote 1).
        if let Some(latest) = &w.latest {
            let re = run(&latest.module, &latest.abi, seed ^ 0xff ^ (i as u64))?;
            virtual_us += re.virtual_us;
            latest_clean = Some(!re.is_vulnerable());
        }
    }
    Ok((
        WildOutcome {
            findings: report.findings,
            latest_clean,
            virtual_us,
        },
        events,
    ))
}

/// Drop the per-campaign event payloads from traced RQ4 runs, keeping the
/// outcome shape the untraced consumers expect.
fn strip_events(
    runs: Vec<CampaignRun<(WildOutcome, Vec<TelemetryEvent>)>>,
) -> Vec<CampaignRun<WildOutcome>> {
    runs.into_iter()
        .map(|r| CampaignRun {
            outcome: match r.outcome {
                wasai_core::CampaignOutcome::Ok((o, _)) => wasai_core::CampaignOutcome::Ok(o),
                wasai_core::CampaignOutcome::Failed(e) => wasai_core::CampaignOutcome::Failed(e),
                wasai_core::CampaignOutcome::Panicked { stage, payload } => {
                    wasai_core::CampaignOutcome::Panicked { stage, payload }
                }
                wasai_core::CampaignOutcome::TimedOut { elapsed } => {
                    wasai_core::CampaignOutcome::TimedOut { elapsed }
                }
                wasai_core::CampaignOutcome::Crashed { attempts, detail } => {
                    wasai_core::CampaignOutcome::Crashed { attempts, detail }
                }
            },
            elapsed: r.elapsed,
        })
        .collect()
}

/// Render an accuracy table in the paper's row format.
pub fn print_accuracy_table(title: &str, table: &AccuracyTable) {
    println!("\n=== {title} ===");
    println!(
        "{:<14} {:>12} | {:^24} | {:^24} | {:^24}",
        "Types", "#Cnt(V/N)", "WASAI P/R/F1", "EOSFuzzer P/R/F1", "EOSAFE P/R/F1"
    );
    let mut totals: BTreeMap<Tool, Metrics> = BTreeMap::new();
    for class in VulnClass::ALL {
        let Some(row) = table.get(&class) else {
            continue;
        };
        let counts = row.get(&Tool::Wasai).copied().unwrap_or_default();
        print!(
            "{:<14} {:>12} |",
            class.to_string(),
            format!(
                "{}({}/{})",
                counts.total(),
                counts.tp + counts.fn_,
                counts.fp + counts.tn
            )
        );
        for tool in Tool::ALL {
            let m = row.get(&tool).copied().unwrap_or_default();
            totals.entry(tool).or_default().merge(m);
            if tool.supports(class) {
                print!(
                    " {:>6.1}% {:>6.1}% {:>7.1}% |",
                    m.precision() * 100.0,
                    m.recall() * 100.0,
                    m.f1() * 100.0
                );
            } else {
                print!(" {:>7} {:>7} {:>8} |", "-", "-", "-");
            }
        }
        println!();
    }
    print!("{:<14} {:>12} |", "Total", "");
    for tool in Tool::ALL {
        let m = totals.get(&tool).copied().unwrap_or_default();
        print!(
            " {:>6.1}% {:>6.1}% {:>7.1}% |",
            m.precision() * 100.0,
            m.recall() * 100.0,
            m.f1() * 100.0
        );
    }
    println!();
}

/// Experiment scale from `WASAI_SCALE` (fraction of the paper's corpus).
pub fn env_scale() -> f64 {
    let scale: f64 = std::env::var("WASAI_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.02);
    scale.clamp(0.001, 1.0)
}

/// Experiment seed from `WASAI_SEED`.
pub fn env_seed() -> u64 {
    std::env::var("WASAI_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xe05)
}

/// Count from an env var with a default.
pub fn env_count(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_math() {
        let mut m = Metrics::default();
        m.record(true, true);
        m.record(true, false);
        m.record(false, false);
        m.record(false, true);
        assert_eq!((m.tp, m.fn_, m.tn, m.fp), (1, 1, 1, 1));
        assert!((m.precision() - 0.5).abs() < 1e-9);
        assert!((m.recall() - 0.5).abs() < 1e-9);
        assert!((m.f1() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn degenerate_metrics() {
        let mut none_found = Metrics::default();
        none_found.record(true, false);
        assert_eq!(none_found.precision(), 0.0);
        assert_eq!(none_found.recall(), 0.0);
        assert_eq!(none_found.f1(), 0.0);

        let mut all_clean = Metrics::default();
        all_clean.record(false, false);
        assert_eq!(all_clean.precision(), 1.0);
        assert_eq!(all_clean.recall(), 1.0);
    }

    #[test]
    fn tool_support_matches_paper_dashes() {
        assert!(!Tool::EosFuzzer.supports(VulnClass::MissAuth));
        assert!(!Tool::EosFuzzer.supports(VulnClass::Rollback));
        assert!(!Tool::Eosafe.supports(VulnClass::BlockinfoDep));
        for c in VulnClass::ALL {
            assert!(Tool::Wasai.supports(c));
        }
    }
}
