//! Observability overhead microbench (BENCH_obs.json): what the metrics
//! registry costs the fleet hot path.
//!
//! Runs the same `rq4_analyze_isolated` wild-corpus workload in four
//! modes, interleaved so drift hits every mode equally:
//!
//! 1. **dark** — registry disabled: every instrumentation site is one
//!    relaxed atomic load (the shipping default).
//! 2. **counting** — registry + heartbeats enabled: the sites write sharded
//!    relaxed atomics; this is what `--metrics-addr`/`--progress` turn on.
//! 3. **monitored** — counting plus a live [`ProgressMonitor`] sampling at
//!    100ms, the full `audit-dir --progress` configuration.
//! 4. **snapshotting** — counting plus a 200ms pump thread capturing the
//!    full registry and encoding it as a metrics frame, exactly what each
//!    `--procs` worker does to feed the fleet metrics plane.
//!
//! The bench hard-fails (exit 1) if the campaign outcomes differ across
//! modes — the determinism contract — or if the counting overhead exceeds
//! a deliberately loose 15% backstop (the committed baseline records the
//! actual figure; the ISSUE 5 acceptance bar is <2% under quiet
//! conditions, which a shared CI runner cannot reliably reproduce).
//!
//! Prints a JSON measurement block; paste into BENCH_obs.json when
//! refreshing the baseline.

use std::time::{Duration, Instant};

use wasai_bench::rq4_analyze_isolated;
use wasai_core::ProgressMonitor;
use wasai_corpus::{wild_corpus, WildRates};
use wasai_obs as obs;
use wasai_smt::Deadline;

const CONTRACTS: usize = 12;
const JOBS: usize = 2;
const REPS: usize = 11;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Dark,
    Counting,
    Monitored,
    Snapshotting,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Dark => "dark",
            Mode::Counting => "counting",
            Mode::Monitored => "monitored",
            Mode::Snapshotting => "snapshotting",
        }
    }
}

fn run_once(corpus: &[wasai_corpus::WildContract], mode: Mode) -> (Duration, Vec<&'static str>) {
    let reg = obs::global();
    reg.reset();
    obs::heartbeats().reset();
    match mode {
        Mode::Dark => reg.disable(),
        Mode::Counting | Mode::Monitored | Mode::Snapshotting => reg.enable(),
    }
    let monitor = (mode == Mode::Monitored).then(|| {
        ProgressMonitor::new(corpus.len() as u64, Duration::from_secs(30))
            .spawn(Duration::from_millis(100), false)
    });
    // The worker-side cost of the fleet metrics plane: capture the whole
    // registry and encode it as a frame line on the same 200ms cadence
    // `audit-worker` uses (the frame is black-boxed instead of written —
    // the bench measures the capture+encode the fleet hot path shares a
    // process with, not pipe throughput).
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let pump = (mode == Mode::Snapshotting).then(|| {
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let frame = obs::RegistrySnapshot::capture(obs::global()).to_frame();
                std::hint::black_box(frame);
                std::thread::sleep(Duration::from_millis(200));
            }
        })
    });
    let start = Instant::now();
    let runs = rq4_analyze_isolated(corpus, 0xe05, JOBS, Deadline::NONE);
    let wall = start.elapsed();
    if let Some(mut m) = monitor {
        m.stop();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    if let Some(p) = pump {
        let _ = p.join();
    }
    reg.disable();
    (wall, runs.iter().map(|r| r.outcome.kind()).collect())
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let corpus = wild_corpus(0xf1ee7, CONTRACTS, WildRates::default());
    const MODES: [Mode; 4] = [
        Mode::Dark,
        Mode::Counting,
        Mode::Monitored,
        Mode::Snapshotting,
    ];

    // Warm up allocators, the prepared-target cache path, and the branch
    // predictor once per mode before timing anything.
    let baseline_outcomes = run_once(&corpus, Mode::Dark).1;
    for mode in [Mode::Counting, Mode::Monitored, Mode::Snapshotting] {
        let (_, outcomes) = run_once(&corpus, mode);
        if outcomes != baseline_outcomes {
            eprintln!("FAIL: outcomes drifted in {} mode", mode.name());
            std::process::exit(1);
        }
    }

    let mut walls: [Vec<f64>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for _ in 0..REPS {
        for (i, mode) in MODES.iter().enumerate() {
            let (wall, outcomes) = run_once(&corpus, *mode);
            if outcomes != baseline_outcomes {
                eprintln!("FAIL: outcomes drifted in {} mode", mode.name());
                std::process::exit(1);
            }
            walls[i].push(wall.as_secs_f64() * 1e3);
        }
    }

    // Event volume of one counting run, for a per-write cost estimate.
    let reg = obs::global();
    reg.reset();
    obs::heartbeats().reset();
    reg.enable();
    let _ = rq4_analyze_isolated(&corpus, 0xe05, JOBS, Deadline::NONE);
    let events: u64 = obs::Counter::ALL.iter().map(|&c| reg.counter(c)).sum();
    reg.disable();

    let dark = median(walls[0].clone());
    let counting = median(walls[1].clone());
    let monitored = median(walls[2].clone());
    let snapshotting = median(walls[3].clone());
    let overhead = |on: f64| (on - dark) / dark * 100.0;
    // The snapshot pump rides on top of counting, so its marginal cost is
    // measured against the counting mode, not dark.
    let snapshot_overhead = (snapshotting - counting) / counting * 100.0;

    println!("{{");
    println!("  \"workload\": \"rq4_analyze_isolated, {CONTRACTS} wild contracts, jobs={JOBS}\",");
    println!("  \"reps\": {REPS},");
    println!("  \"median_wall_ms\": {{");
    println!("    \"dark\": {dark:.2},");
    println!("    \"counting\": {counting:.2},");
    println!("    \"monitored\": {monitored:.2},");
    println!("    \"snapshotting\": {snapshotting:.2}");
    println!("  }},");
    println!("  \"overhead_pct_vs_dark\": {{");
    println!("    \"counting\": {:.2},", overhead(counting));
    println!("    \"monitored\": {:.2},", overhead(monitored));
    println!("    \"snapshotting\": {:.2}", overhead(snapshotting));
    println!("  }},");
    println!("  \"snapshot_emission_overhead_pct_vs_counting\": {snapshot_overhead:.2},");
    // Sum of counter *values*, not call sites: batched counters (VM
    // instructions per invoke) count each unit they cover.
    println!("  \"counted_units_per_run\": {events},");
    println!(
        "  \"est_ns_per_unit\": {:.4},",
        ((counting - dark) * 1e6 / events as f64).max(0.0)
    );
    println!("  \"outcomes_identical_across_modes\": true");
    println!("}}");

    // CI backstop: a gross instrumentation regression (lock contention, a
    // syscall on the hot path) shows up far above this; scheduler noise on
    // a busy shared runner does not.
    if overhead(counting) > 15.0 {
        eprintln!(
            "FAIL: counting overhead {:.2}% exceeds the 15% backstop",
            overhead(counting)
        );
        std::process::exit(1);
    }
    // Same split for the frame pump: the acceptance bar is <2% marginal
    // cost on quiet hardware (the committed baseline records the actual
    // figure); the CI backstop only trips on a gross regression, e.g. the
    // capture taking a lock the counting hot path contends on.
    if snapshot_overhead > 15.0 {
        eprintln!(
            "FAIL: snapshot-emission overhead {snapshot_overhead:.2}% vs counting exceeds the 15% backstop"
        );
        std::process::exit(1);
    }
}
