//! RQ4 (§4.4): vulnerabilities in the wild.
//!
//! Runs WASAI over the synthetic Mainnet stand-in (`WASAI_WILD_COUNT`
//! contracts, default 60; the paper analyzes 991), reports flagged counts
//! per class and the lifecycle study: how many flagged contracts still
//! operate, and how many of those were patched (verified by re-analyzing
//! the latest version). Campaigns run on `WASAI_JOBS` workers; the merged
//! counts are identical for every worker count.

use wasai_core::VulnClass;
use wasai_corpus::{wild_corpus, Lifecycle, WildRates};

fn main() {
    let count = wasai_bench::env_count("WASAI_WILD_COUNT", 60);
    let seed = wasai_bench::env_seed();
    let jobs = wasai_core::jobs_from_env();
    eprintln!(
        "rq4: {count} wild contracts (the paper analyzes 991), seed {seed}, {jobs} worker(s)"
    );

    let corpus = wild_corpus(seed, count, WildRates::default());
    let (outcomes, stats) = wasai_bench::rq4_analyze(&corpus, seed, jobs);

    let mut flagged = 0usize;
    let mut per_class = std::collections::BTreeMap::<VulnClass, usize>::new();
    let mut verified_patched = 0usize;
    let mut still_operating = 0usize;
    let mut unpatched_operating = 0usize;
    for (w, outcome) in corpus.iter().zip(&outcomes) {
        if !outcome.flagged() {
            continue;
        }
        flagged += 1;
        for c in &outcome.findings {
            *per_class.entry(*c).or_default() += 1;
        }
        match w.lifecycle {
            Lifecycle::OperatingPatched => {
                still_operating += 1;
                if outcome.latest_clean == Some(true) {
                    verified_patched += 1;
                }
            }
            Lifecycle::OperatingUnpatched => {
                still_operating += 1;
                unpatched_operating += 1;
            }
            Lifecycle::Abandoned => {}
        }
    }

    println!("\n=== RQ4: Vulnerabilities in the wild (§4.4) ===");
    println!("analyzed contracts:        {count}");
    println!(
        "flagged vulnerable:        {} ({:.1}%)   [paper: 707 of 991 = 71.3%]",
        flagged,
        100.0 * flagged as f64 / count as f64
    );
    for c in VulnClass::ALL {
        let n = per_class.get(&c).copied().unwrap_or(0);
        let paper = match c {
            VulnClass::FakeEos => 241,
            VulnClass::FakeNotif => 264,
            VulnClass::MissAuth => 470,
            VulnClass::BlockinfoDep => 22,
            VulnClass::Rollback => 122,
        };
        println!(
            "  {c:<14} {n:>5}  ({:.1}% of corpus)   [paper: {paper} of 991 = {:.1}%]",
            100.0 * n as f64 / count as f64,
            100.0 * paper as f64 / 991.0
        );
    }
    println!(
        "still operating:           {} of {} flagged ({:.1}%)   [paper: 58.4%]",
        still_operating,
        flagged,
        100.0 * still_operating as f64 / flagged.max(1) as f64
    );
    println!("patched (verified clean):  {verified_patched}   [paper: 72 of 413]");
    println!("exposed (operating, unpatched): {unpatched_operating}   [paper: 341 contracts]");
    println!("\n{}", stats.summary());
}
