//! RQ4 (§4.4): vulnerabilities in the wild.
//!
//! Runs WASAI over the synthetic Mainnet stand-in (`WASAI_WILD_COUNT`
//! contracts, default 60; the paper analyzes 991), reports flagged counts
//! per class and the lifecycle study: how many flagged contracts still
//! operate, and how many of those were patched (verified by re-analyzing
//! the latest version). Campaigns run on `WASAI_JOBS` workers; the merged
//! counts are identical for every worker count.
//!
//! Campaigns are fault-isolated: a contract that panics or overruns the
//! `WASAI_DEADLINE` wall-clock watchdog (seconds; unset = no watchdog) is
//! counted in the triage summary and the rest of the study is unaffected.

use wasai_core::{fleet, CampaignOutcome, FleetStats, Metrics, VulnClass};
use wasai_corpus::{wild_corpus, Lifecycle, WildRates};

fn main() {
    let count = wasai_bench::env_count("WASAI_WILD_COUNT", 60);
    let seed = wasai_bench::env_seed();
    let jobs = wasai_core::jobs_from_env();
    let deadline = fleet::deadline_from_env();
    eprintln!(
        "rq4: {count} wild contracts (the paper analyzes 991), seed {seed}, {jobs} worker(s)"
    );

    let corpus = wild_corpus(seed, count, WildRates::default());
    let start = std::time::Instant::now();
    // Campaigns run traced into the Metrics aggregator, so the triage counts
    // and the per-stage effort summary fall out of one event stream instead
    // of ad-hoc bookkeeping.
    let mut metrics = Metrics::new();
    let runs =
        wasai_bench::rq4_analyze_isolated_traced(&corpus, seed, jobs, deadline, &mut metrics);
    let stats = FleetStats {
        jobs: jobs.max(1),
        campaigns: runs.len(),
        virtual_us: runs
            .iter()
            .filter_map(|r| r.outcome.as_ok())
            .map(|o| o.virtual_us)
            .sum(),
        wall: start.elapsed(),
    };

    let mut flagged = 0usize;
    let mut per_class = std::collections::BTreeMap::<VulnClass, usize>::new();
    let mut verified_patched = 0usize;
    let mut still_operating = 0usize;
    let mut unpatched_operating = 0usize;
    let mut analyzed = 0usize;
    for (i, (w, run)) in corpus.iter().zip(&runs).enumerate() {
        let outcome = match &run.outcome {
            CampaignOutcome::Ok(o) => {
                analyzed += 1;
                o
            }
            other => {
                eprintln!(
                    "triage: contract {i} {} in stage {} — {}",
                    other.kind(),
                    other.stage(),
                    other.detail()
                );
                continue;
            }
        };
        if !outcome.flagged() {
            continue;
        }
        flagged += 1;
        for c in &outcome.findings {
            *per_class.entry(*c).or_default() += 1;
        }
        match w.lifecycle {
            Lifecycle::OperatingPatched => {
                still_operating += 1;
                if outcome.latest_clean == Some(true) {
                    verified_patched += 1;
                }
            }
            Lifecycle::OperatingUnpatched => {
                still_operating += 1;
                unpatched_operating += 1;
            }
            Lifecycle::Abandoned => {}
        }
    }

    println!("\n=== RQ4: Vulnerabilities in the wild (§4.4) ===");
    println!("analyzed contracts:        {analyzed} of {count}");
    if metrics.total_aborted() > 0 {
        let parts: Vec<String> = metrics
            .aborted
            .iter()
            .map(|(k, n)| format!("{n} {k}"))
            .collect();
        println!("triaged (not analyzed):    {}", parts.join(", "));
    }
    println!(
        "flagged vulnerable:        {} ({:.1}%)   [paper: 707 of 991 = 71.3%]",
        flagged,
        100.0 * flagged as f64 / count as f64
    );
    for c in VulnClass::ALL {
        let n = per_class.get(&c).copied().unwrap_or(0);
        let paper = match c {
            VulnClass::FakeEos => 241,
            VulnClass::FakeNotif => 264,
            VulnClass::MissAuth => 470,
            VulnClass::BlockinfoDep => 22,
            VulnClass::Rollback => 122,
            // The loop covers VulnClass::ALL only; the CosmWasm classes
            // have no §4.4 Mainnet counts.
            VulnClass::UnauthInstantiate | VulnClass::UncheckedReply => 0,
        };
        println!(
            "  {c:<14} {n:>5}  ({:.1}% of corpus)   [paper: {paper} of 991 = {:.1}%]",
            100.0 * n as f64 / count as f64,
            100.0 * paper as f64 / 991.0
        );
    }
    println!(
        "still operating:           {} of {} flagged ({:.1}%)   [paper: 58.4%]",
        still_operating,
        flagged,
        100.0 * still_operating as f64 / flagged.max(1) as f64
    );
    println!("patched (verified clean):  {verified_patched}   [paper: 72 of 413]");
    println!("exposed (operating, unpatched): {unpatched_operating}   [paper: 341 contracts]");
    println!("\n{}", metrics.render());
    println!("{}", stats.summary());
}
