//! RQ4 (§4.4): vulnerabilities in the wild.
//!
//! Runs WASAI over the synthetic Mainnet stand-in (`WASAI_WILD_COUNT`
//! contracts, default 60; the paper analyzes 991), reports flagged counts
//! per class and the lifecycle study: how many flagged contracts still
//! operate, and how many of those were patched (verified by re-analyzing
//! the latest version).

use wasai_core::{VulnClass, Wasai};
use wasai_corpus::{wild_corpus, Lifecycle, WildRates};

fn main() {
    let count = wasai_bench::env_count("WASAI_WILD_COUNT", 60);
    let seed = wasai_bench::env_seed();
    eprintln!("rq4: {count} wild contracts (the paper analyzes 991), seed {seed}");

    let corpus = wild_corpus(seed, count, WildRates::default());
    let mut flagged: Vec<&wasai_corpus::WildContract> = Vec::new();
    let mut per_class = std::collections::BTreeMap::<VulnClass, usize>::new();
    let mut verified_patched = 0usize;
    let mut still_operating = 0usize;
    let mut unpatched_operating = 0usize;

    for (i, w) in corpus.iter().enumerate() {
        let report = Wasai::new(w.deployed.module.clone(), w.deployed.abi.clone())
            .with_config(wasai_bench::bench_fuzz_config(seed ^ (i as u64)))
            .run()
            .expect("wasai runs");
        if report.is_vulnerable() {
            flagged.push(w);
            for c in &report.findings {
                *per_class.entry(*c).or_default() += 1;
            }
            match w.lifecycle {
                Lifecycle::OperatingPatched => {
                    still_operating += 1;
                    // "we further applied WASAI to analyze their latest
                    // version to investigate whether the vulnerability has
                    // been patched" (§4.4, footnote 1).
                    if let Some(latest) = &w.latest {
                        let re = Wasai::new(latest.module.clone(), latest.abi.clone())
                            .with_config(wasai_bench::bench_fuzz_config(seed ^ 0xff ^ (i as u64)))
                            .run()
                            .expect("wasai runs");
                        if !re.is_vulnerable() {
                            verified_patched += 1;
                        }
                    }
                }
                Lifecycle::OperatingUnpatched => {
                    still_operating += 1;
                    unpatched_operating += 1;
                }
                Lifecycle::Abandoned => {}
            }
        }
    }

    println!("\n=== RQ4: Vulnerabilities in the wild (§4.4) ===");
    println!("analyzed contracts:        {count}");
    println!(
        "flagged vulnerable:        {} ({:.1}%)   [paper: 707 of 991 = 71.3%]",
        flagged.len(),
        100.0 * flagged.len() as f64 / count as f64
    );
    for c in VulnClass::ALL {
        let n = per_class.get(&c).copied().unwrap_or(0);
        let paper = match c {
            VulnClass::FakeEos => 241,
            VulnClass::FakeNotif => 264,
            VulnClass::MissAuth => 470,
            VulnClass::BlockinfoDep => 22,
            VulnClass::Rollback => 122,
        };
        println!(
            "  {c:<14} {n:>5}  ({:.1}% of corpus)   [paper: {paper} of 991 = {:.1}%]",
            100.0 * n as f64 / count as f64,
            100.0 * paper as f64 / 991.0
        );
    }
    println!(
        "still operating:           {} of {} flagged ({:.1}%)   [paper: 58.4%]",
        still_operating,
        flagged.len(),
        100.0 * still_operating as f64 / flagged.len().max(1) as f64
    );
    println!("patched (verified clean):  {verified_patched}   [paper: 72 of 413]");
    println!(
        "exposed (operating, unpatched): {unpatched_operating}   [paper: 341 contracts]"
    );
}
