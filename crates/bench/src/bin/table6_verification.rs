//! Table 6 (RQ3b): the complicated-verification benchmark — exact-value
//! `if (i64.ne …) unreachable` prologues injected at the eosponser entry
//! (§4.3).
//!
//! Expected shape: WASAI's adaptive seeds solve the prologue and accuracy
//! stays high; EOSFuzzer collapses (random inputs always trap, and its
//! flawed oracle then flags *everything* as Fake EOS → 50% precision);
//! EOSAFE is mostly unaffected (short static paths).

fn main() {
    let scale = wasai_bench::env_scale();
    let seed = wasai_bench::env_seed();
    let samples = wasai_corpus::table6_benchmark(seed, scale);
    eprintln!(
        "table6: {} samples (scale {scale}, seed {seed})",
        samples.len()
    );
    let (table, stats) = wasai_bench::evaluate_with(&samples, seed, wasai_core::jobs_from_env());
    wasai_bench::print_accuracy_table(
        "Table 6: The impact of complicated verification (RQ3)",
        &table,
    );
    println!("\n{}", stats.summary());
}
