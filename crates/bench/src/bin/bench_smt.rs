//! Solver reuse microbench (BENCH_smt.json): what the reuse layer saves.
//!
//! Two fixtures:
//!
//! 1. **Shared-prefix flip families** — replay-shaped query chains
//!    (`path[..i] ∧ flipᵢ`, nondecreasing prefixes). Compares the total unit
//!    propagations of from-scratch [`wasai_smt::check`] calls against a
//!    [`wasai_smt::PrefixSolver`]'s honest work counter. The acceptance bar
//!    is a ≥2× reduction.
//! 2. **Repeated-query campaigns** — the same generated contract fuzzed
//!    twice sharing one fleet [`wasai_smt::SolverCache`]; the second
//!    campaign's flip queries are all warm. Exits 1 if the hit rate is 0
//!    (the CI gate: a silent cache regression must fail the build).
//! 3. **Persistent warm start** — the cold campaign's cache round-trips
//!    through `wasai_smt::persist` and a fresh process-shaped run replays
//!    from the loaded cache: every fleet lookup must hit (the on-disk gate:
//!    warm hit rate ≥ 0.8, propagations strictly below cold).
//!
//! Prints a JSON measurement block; paste into BENCH_smt.json when
//! refreshing the baseline.

use std::sync::Arc;

use wasai_core::{FuzzConfig, Wasai};
use wasai_corpus::{generate, Blueprint, GateKind, RewardKind};
use wasai_smt::{check, persist, Budget, BvOp, CmpOp, PrefixSolver, SolverCache, TermId, TermPool};

/// A replay-like flip family: a chain of path guards over two 64-bit args,
/// one flip per step (mirrors the engine's flip-query shape).
fn flip_family(pool: &mut TermPool, steps: usize, salt: u64) -> (Vec<TermId>, Vec<TermId>) {
    let mut rng = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = move || {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        rng >> 33
    };
    let a = pool.var("arg0", 64);
    let b = pool.var("arg1", 64);
    let mut path = Vec::new();
    let mut flips = Vec::new();
    for i in 0..steps {
        let k = pool.bv_const(next() % 1000 + 1, 64);
        let guard = match i % 3 {
            0 => pool.cmp(CmpOp::Ult, a, k),
            1 => {
                let s = pool.bv(BvOp::Add, a, b);
                pool.cmp(CmpOp::Ule, s, k)
            }
            _ => {
                let x = pool.bv(BvOp::Xor, a, b);
                let z = pool.bv_const(next() % 7, 64);
                pool.cmp(CmpOp::Ule, z, x)
            }
        };
        path.push(guard);
        flips.push(pool.not(guard));
    }
    (path, flips)
}

/// Total from-scratch vs shared-prefix propagations over `families` flip
/// families of `steps` queries each. Returns (scratch, reused).
fn prefix_savings(families: u64, steps: usize) -> (u64, u64) {
    let mut scratch = 0u64;
    let mut reused = 0u64;
    for salt in 0..families {
        let mut pool = TermPool::new();
        let (path, flips) = flip_family(&mut pool, steps, salt);
        for (i, &flip) in flips.iter().enumerate() {
            let mut q: Vec<TermId> = path[..i].to_vec();
            q.push(flip);
            let (_, stats) = check(&pool, &q, Budget::default());
            scratch += stats.propagations;
        }
        let mut session = PrefixSolver::new(&pool);
        for (i, &flip) in flips.iter().enumerate() {
            session.solve(&path[..i], flip, Budget::default());
        }
        reused += session.performed_propagations();
    }
    (scratch, reused)
}

/// Fuzz the same contract twice sharing one fleet cache; the second
/// campaign's canonical queries are all warm. Returns (lookups, hits).
fn repeated_campaign_hits() -> (u64, u64) {
    let bp = Blueprint {
        seed: 2,
        code_guard: true,
        sdk_work: 0,
        payee_guard: true,
        auth_check: true,
        blockinfo: false,
        reward: RewardKind::Inline,
        gate: GateKind::Open,
        eosponser_branches: 2,
    };
    let cache = Arc::new(SolverCache::new());
    for _ in 0..2 {
        let c = generate(bp);
        Wasai::new(c.module, c.abi)
            .with_config(FuzzConfig {
                timeout_us: 2_000_000,
                stall_iters: 8,
                rng_seed: 7,
                ..FuzzConfig::default()
            })
            .with_solver_cache(cache.clone())
            .run()
            .expect("campaign runs");
    }
    (cache.lookups(), cache.hits())
}

/// Cold/warm measurement of the on-disk cache: solve every flip-family
/// query from scratch storing cacheable results, round-trip the cache
/// through [`persist`], then replay the identical query stream against the
/// loaded cache, solving only on a miss. Returns
/// (cold_props, warm_props, warm_lookups, warm_hits, entries_on_disk).
fn warm_start_persistence(families: u64, steps: usize) -> (u64, u64, u64, u64, usize) {
    use wasai_smt::{cacheable, query_key, CachedQuery};
    let budget = Budget::default();
    let file = std::env::temp_dir().join(format!("bench-smt-warm-{}.cache", std::process::id()));

    let run = |cache: &SolverCache, warm: bool| -> u64 {
        let mut performed = 0u64;
        for salt in 0..families {
            let mut pool = TermPool::new();
            let (path, flips) = flip_family(&mut pool, steps, salt);
            for (i, &flip) in flips.iter().enumerate() {
                let key = query_key(&pool, &path[..i], Some(flip), budget.max_conflicts);
                if warm && cache.lookup(&key, &pool).is_some() {
                    continue;
                }
                let mut q: Vec<TermId> = path[..i].to_vec();
                q.push(flip);
                let (r, s) = check(&pool, &q, budget);
                performed += s.propagations;
                if cacheable(&r, &budget) {
                    cache.store(key, CachedQuery::encode(&pool, &r, s));
                }
            }
        }
        performed
    };

    let cold_cache = SolverCache::evicting();
    let cold_props = run(&cold_cache, false);
    let entries = persist::save(&file, &cold_cache).expect("cache saves");

    let warm_cache = SolverCache::evicting();
    persist::load_into(&file, &warm_cache).expect("cache loads");
    let warm_props = run(&warm_cache, true);
    let _ = std::fs::remove_file(&file);
    (
        cold_props,
        warm_props,
        warm_cache.lookups(),
        warm_cache.hits(),
        entries,
    )
}

fn main() {
    let (scratch, reused) = prefix_savings(8, 16);
    let ratio = scratch as f64 / reused.max(1) as f64;
    let (lookups, hits) = repeated_campaign_hits();
    let hit_rate = hits as f64 / lookups.max(1) as f64;
    let (cold_props, warm_props, warm_lookups, warm_hits, entries) = warm_start_persistence(8, 16);
    let warm_rate = warm_hits as f64 / warm_lookups.max(1) as f64;

    println!("{{");
    println!("  \"shared_prefix_flip_families\": {{");
    println!("    \"families\": 8, \"queries_per_family\": 16,");
    println!("    \"from_scratch_propagations\": {scratch},");
    println!("    \"reused_propagations\": {reused},");
    println!("    \"reduction_x\": {ratio:.2}");
    println!("  }},");
    println!("  \"repeated_campaign_fleet_cache\": {{");
    println!("    \"lookups\": {lookups}, \"hits\": {hits}, \"hit_rate\": {hit_rate:.3}");
    println!("  }},");
    println!("  \"persistent_warm_start\": {{");
    println!("    \"entries_on_disk\": {entries},");
    println!("    \"cold_propagations\": {cold_props},");
    println!("    \"warm_propagations\": {warm_props},");
    println!("    \"warm_lookups\": {warm_lookups}, \"warm_hits\": {warm_hits}, \"warm_hit_rate\": {warm_rate:.3}");
    println!("  }}");
    println!("}}");

    if hits == 0 {
        eprintln!("FAIL: repeated-query fixture produced 0 fleet-cache hits");
        std::process::exit(1);
    }
    if ratio < 2.0 {
        eprintln!("FAIL: shared-prefix reduction {ratio:.2}x is below the 2x acceptance bar");
        std::process::exit(1);
    }
    if warm_rate < 0.8 {
        eprintln!("FAIL: warm-start hit rate {warm_rate:.3} is below the 0.8 acceptance bar");
        std::process::exit(1);
    }
    if warm_props >= cold_props {
        eprintln!(
            "FAIL: warm-start performed {warm_props} propagations, not below cold {cold_props}"
        );
        std::process::exit(1);
    }
    eprintln!(
        "ok: {ratio:.2}x propagation reduction, {hit_rate:.3} repeat hit rate, \
         {warm_rate:.3} warm-start hit rate ({warm_props}/{cold_props} props)"
    );
}
