//! Table 4 (RQ2): detection accuracy on the ground-truth benchmark.
//!
//! The paper's corpus is 3,340 samples; scale with `WASAI_SCALE` (default
//! 0.02 → ~70 samples, a few minutes in release mode; 1.0 regenerates the
//! full table).

fn main() {
    let scale = wasai_bench::env_scale();
    let seed = wasai_bench::env_seed();
    let samples = wasai_corpus::table4_benchmark(seed, scale);
    eprintln!(
        "table4: {} samples (scale {scale}, seed {seed}) — expected shape: WASAI ≈ 100% P with \
         near-100% R; EOSFuzzer 0% on BlockinfoDep and '-' on MissAuth/Rollback; EOSAFE low R \
         on MissAuth, ~50% P on Rollback",
        samples.len()
    );
    let (table, stats) = wasai_bench::evaluate_with(&samples, seed, wasai_core::jobs_from_env());
    wasai_bench::print_accuracy_table(
        "Table 4: Evaluation results on the ground truth (RQ2)",
        &table,
    );
    println!("\n{}", stats.summary());
}
