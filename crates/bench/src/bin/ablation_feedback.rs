//! Ablation: WASAI with the concolic feedback loop disabled.
//!
//! DESIGN.md's central design choice is trace-replay constraint flipping
//! (§3.4). Turning it off leaves everything else identical — same harness,
//! payloads, oracles, seed pool — and isolates what the solver buys:
//! coverage of solver-gated code and the BlockinfoDep/Rollback detections
//! behind verification gates.
//!
//! ```sh
//! WASAI_ABLATION_CONTRACTS=20 cargo run --release -p wasai-bench --bin ablation_feedback
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wasai_core::{PreparedTarget, TargetInfo, VulnClass, Wasai};
use wasai_corpus::{generate, Blueprint, GateKind, RewardKind};

fn main() {
    let n = wasai_bench::env_count("WASAI_ABLATION_CONTRACTS", 20);
    let seed = wasai_bench::env_seed();
    let jobs = wasai_core::jobs_from_env();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xab1a);
    eprintln!("ablation: {n} gated contracts, feedback on vs off, seed {seed}, {jobs} worker(s)");

    // Serial generation (shared RNG stream), parallel campaigns.
    let mut cases = Vec::with_capacity(n);
    for i in 0..n {
        // Every contract hides its template behind a solvable gate — the
        // workload where feedback matters.
        let bp = Blueprint {
            seed: rng.gen(),
            blockinfo: true,
            reward: RewardKind::Inline,
            gate: GateKind::Solvable {
                depth: rng.gen_range(1..4),
            },
            eosponser_branches: rng.gen_range(1..4),
            ..Blueprint::default()
        };
        cases.push((
            generate(bp),
            wasai_bench::bench_fuzz_config(seed ^ (i as u64)),
        ));
    }

    let (reports, stats) = wasai_core::run_jobs_timed(
        jobs,
        cases,
        |_, (c, base_cfg)| {
            let prepared = PreparedTarget::prepare(TargetInfo::new(c.module, c.abi))
                .expect("ablation contract prepares");
            let run = |feedback: bool| {
                let mut cfg = base_cfg;
                cfg.feedback = feedback;
                Wasai::from_prepared(prepared.clone())
                    .with_config(cfg)
                    .run()
                    .expect("wasai runs")
            };
            (run(true), run(false))
        },
        |(on, off)| on.virtual_us + off.virtual_us,
    );

    let mut on_branches = 0usize;
    let mut off_branches = 0usize;
    let mut on_hits = 0usize;
    let mut off_hits = 0usize;
    for (i, (on, off)) in reports.iter().enumerate() {
        on_branches += on.branches;
        off_branches += off.branches;
        on_hits += on.has(VulnClass::BlockinfoDep) as usize;
        off_hits += off.has(VulnClass::BlockinfoDep) as usize;
        eprintln!(
            "  contract {i:>3}: feedback-on {} branches ({} smt, found={}) | feedback-off {} branches (found={})",
            on.branches,
            on.smt_queries,
            on.has(VulnClass::BlockinfoDep),
            off.branches,
            off.has(VulnClass::BlockinfoDep)
        );
    }

    println!("\n=== Ablation: the concolic feedback loop (§3.4) ===");
    println!("{:<22} {:>14} {:>14}", "", "feedback ON", "feedback OFF");
    println!(
        "{:<22} {:>14} {:>14}",
        "total branches", on_branches, off_branches
    );
    println!(
        "{:<22} {:>13}/{n} {:>13}/{n}",
        "gated templates found", on_hits, off_hits
    );
    println!(
        "\ncoverage ratio {:.2}x — detection behind gates {:.0}% → {:.0}%",
        on_branches as f64 / off_branches.max(1) as f64,
        100.0 * on_hits as f64 / n as f64,
        100.0 * off_hits as f64 / n as f64,
    );
    println!("\n{}", stats.summary());
}
