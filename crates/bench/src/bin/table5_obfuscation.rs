//! Table 5 (RQ3a): the Table 4 benchmark after code obfuscation — popcount
//! argument encoding, guard-constant splitting and decoy recursion (§4.3).
//!
//! Expected shape: WASAI barely moves; EOSAFE loses Fake EOS and MissAuth
//! entirely (its dispatcher pattern heuristic goes blind); EOSFuzzer is
//! largely unaffected (it never looked at the bytecode).

fn main() {
    let scale = wasai_bench::env_scale();
    let seed = wasai_bench::env_seed();
    let samples = wasai_corpus::table5_benchmark(seed, scale);
    eprintln!(
        "table5: {} obfuscated samples (scale {scale}, seed {seed})",
        samples.len()
    );
    let (table, stats) = wasai_bench::evaluate_with(&samples, seed, wasai_core::jobs_from_env());
    wasai_bench::print_accuracy_table("Table 5: The impact of code obfuscation (RQ3)", &table);
    println!("\n{}", stats.summary());
}
