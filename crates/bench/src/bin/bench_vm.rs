//! Concrete-replay throughput bench (BENCH_vm.json): what the execution
//! fast path — compiled tapes + copy-on-write chain snapshots — buys over
//! the seed execution stack.
//!
//! Workload: *uninstrumented* concrete replay — the verdict-confirmation
//! path, which consumes receipts, not traces (`prepare_concrete`). Contracts
//! carry `sdk_work = 1024` deserialization loops (~21k wasm instructions per
//! `apply`, the order real CDT-compiled actions execute for datastream
//! decoding and table serialization) so execution cost is SDK-contract-shaped
//! rather than dominated by harness bookkeeping. Transaction construction is
//! hoisted out of the timed region — it is seed generation, not replay.
//! Every seed gets a fresh chain and pushes the five §3.5 payload templates.
//! Two arms, interleaved so machine drift hits both equally:
//!
//! 1. **fast** — the shipping default: tape-compiled modules, each seed's
//!    chain is a COW fork of the one post-setup snapshot, pooled contract
//!    instances, rollback snapshots are COW clones, import resolution is
//!    cached per contract.
//! 2. **legacy** — the seed's cost model: reference interpreter (no
//!    tapes), every seed's chain deployed from genesis, a fresh instance
//!    and import resolution per action, physically deep rollback snapshots
//!    (`ChainConfig::legacy_exec_costs`).
//!
//! Both arms must produce bit-identical per-transaction outcomes (results,
//! executed-action counts, fuel) — the observational-purity contract — or
//! the bench hard-fails (exit 1). It also hard-fails if the fast arm's
//! replay throughput is below the ISSUE 6 acceptance bar of 5× legacy.
//!
//! Prints a JSON measurement block; paste into BENCH_vm.json when
//! refreshing the baseline.

use std::time::{Duration, Instant};

use wasai_chain::abi::ParamValue;
use wasai_chain::asset::Asset;
use wasai_chain::name::Name;
use wasai_chain::{ChainConfig, Transaction};
use wasai_core::harness::{self, accounts};
use wasai_core::{PreparedTarget, TargetInfo};
use wasai_corpus::{wild_corpus, WildRates};

const CONTRACTS: usize = 8;
const SEEDS_PER_CONTRACT: usize = 30;
const REPS: usize = 9;

/// The five §3.5 payload templates — traffic through wasm execution, the
/// token ledger, notifications and the db APIs, parameterized by seed so
/// replays are not one memoizable transaction.
fn payload_burst(seed: usize) -> Vec<Transaction> {
    let params = vec![
        ParamValue::Name(accounts::attacker()),
        ParamValue::Name(accounts::target()),
        ParamValue::Asset(Asset::eos(1 + (seed as i64 % 50))),
        ParamValue::String(format!("seed-{seed}")),
    ];
    vec![
        harness::official_transfer(&params),
        harness::direct_fake_transfer(&params),
        harness::fake_token_transfer(&params),
        harness::fake_notif_transfer(&params),
        harness::direct_action(Name::new("transfer"), &params),
    ]
}

/// What one transaction is allowed to observe: success, how many actions
/// ran, and the exact fuel consumed. Any divergence between arms is a
/// fast-path correctness bug.
type TxSignature = (bool, usize, u64);

fn signature(r: &Result<wasai_chain::Receipt, wasai_chain::TransactionError>) -> TxSignature {
    match r {
        Ok(receipt) => (true, receipt.executed.len(), receipt.steps_used),
        Err(e) => (false, e.receipt.executed.len(), e.receipt.steps_used),
    }
}

/// Replay every seed against every prepared contract; returns the wall time
/// of the replay loop and the outcome signature of every transaction.
/// Transaction construction is seed generation, not replay, so the bursts
/// are built once up front and both arms replay the same instances.
fn run_arm(
    prepared: &[std::sync::Arc<PreparedTarget>],
    bursts: &[Vec<Transaction>],
    legacy: bool,
) -> (Duration, Vec<TxSignature>) {
    let mut signatures = Vec::new();
    let start = Instant::now();
    for p in prepared {
        for burst in bursts {
            let mut chain = if legacy {
                let mut c = p.setup_chain_genesis().expect("genesis setup");
                c.set_config(ChainConfig {
                    legacy_exec_costs: true,
                    ..c.config()
                });
                c
            } else {
                p.fork_chain().expect("snapshot fork")
            };
            for tx in burst {
                signatures.push(signature(&chain.push_transaction(tx)));
            }
        }
    }
    (start.elapsed(), signatures)
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let corpus = wild_corpus(
        0xf1ee7,
        CONTRACTS,
        WildRates {
            sdk_work: 1024,
            ..WildRates::default()
        },
    );
    let targets: Vec<TargetInfo> = corpus
        .into_iter()
        .map(|w| TargetInfo::new(w.deployed.module, w.deployed.abi))
        .collect();

    // Preparation happens once per contract in both arms (the PR 1 artifact
    // cache); it is reported but excluded from the replay timing. The fast
    // arm's figure includes tape compilation and the snapshot capture.
    let prep_start = Instant::now();
    let fast: Vec<_> = targets
        .iter()
        .map(|t| PreparedTarget::prepare_concrete(t.clone()).expect("prepare fast"))
        .collect();
    let fast_prep_ms = prep_start.elapsed().as_secs_f64() * 1e3;
    let prep_start = Instant::now();
    let legacy: Vec<_> = targets
        .iter()
        .map(|t| PreparedTarget::prepare_concrete_reference(t.clone()).expect("prepare legacy"))
        .collect();
    let legacy_prep_ms = prep_start.elapsed().as_secs_f64() * 1e3;

    let bursts: Vec<Vec<Transaction>> = (0..SEEDS_PER_CONTRACT).map(payload_burst).collect();

    // Warm-up + the purity gate: every transaction's outcome must be
    // bit-identical across arms before any timing matters.
    let (_, fast_sigs) = run_arm(&fast, &bursts, false);
    let (_, legacy_sigs) = run_arm(&legacy, &bursts, true);
    if fast_sigs != legacy_sigs {
        let first = fast_sigs
            .iter()
            .zip(&legacy_sigs)
            .position(|(a, b)| a != b)
            .unwrap_or(0);
        eprintln!(
            "FAIL: fast-path outcomes drifted from the reference stack \
             (first divergence at transaction {first}: fast {:?} vs legacy {:?})",
            fast_sigs.get(first),
            legacy_sigs.get(first)
        );
        std::process::exit(1);
    }

    let mut fast_walls = Vec::new();
    let mut legacy_walls = Vec::new();
    for _ in 0..REPS {
        let (fw, fs) = run_arm(&fast, &bursts, false);
        let (lw, ls) = run_arm(&legacy, &bursts, true);
        if fs != fast_sigs || ls != legacy_sigs {
            eprintln!("FAIL: outcomes drifted across reps");
            std::process::exit(1);
        }
        fast_walls.push(fw.as_secs_f64() * 1e3);
        legacy_walls.push(lw.as_secs_f64() * 1e3);
    }

    let txs = (CONTRACTS * SEEDS_PER_CONTRACT * 5) as f64;
    let fast_ms = median(fast_walls);
    let legacy_ms = median(legacy_walls);
    let speedup = legacy_ms / fast_ms;

    println!("{{");
    println!(
        "  \"workload\": \"uninstrumented concrete replay, {CONTRACTS} wild contracts (sdk_work=1024) x {SEEDS_PER_CONTRACT} seeds x 5 payloads\","
    );
    println!("  \"reps\": {REPS},");
    println!("  \"transactions_per_run\": {},", txs as u64);
    println!("  \"median_wall_ms\": {{");
    println!("    \"fast\": {fast_ms:.2},");
    println!("    \"legacy\": {legacy_ms:.2}");
    println!("  }},");
    println!("  \"executions_per_sec\": {{");
    println!("    \"fast\": {:.0},", txs / fast_ms * 1e3);
    println!("    \"legacy\": {:.0}", txs / legacy_ms * 1e3);
    println!("  }},");
    println!("  \"prepare_ms\": {{");
    println!("    \"fast\": {fast_prep_ms:.2},");
    println!("    \"legacy\": {legacy_prep_ms:.2}");
    println!("  }},");
    println!("  \"speedup\": {speedup:.2},");
    println!("  \"outcomes_identical\": true");
    println!("}}");

    if speedup < 5.0 {
        eprintln!("FAIL: replay speedup {speedup:.2}x is below the 5x acceptance bar");
        std::process::exit(1);
    }
}
