//! Second-substrate throughput bench (BENCH_substrate.json): CosmWasm
//! campaign dispatch rate, with the EOSIO engine's seed-execution rate on
//! the same prepared-artifact pipeline as the reference point.
//!
//! Workload: the labeled CosmWasm ground-truth corpus (`cw_corpus`), each
//! sample run through the full campaign (`--substrate cosmwasm` path:
//! prepare → probe sweep → random loop → behavioral oracles). Reported
//! numbers are whole-campaign, not microbenchmarks — the figure of merit is
//! how fast the substrate audits a corpus end to end.
//!
//! The bench hard-fails (exit 1) if any campaign's findings diverge from
//! the sample's ground-truth label: a throughput number from a
//! wrong-answers run is worthless.
//!
//! Prints a JSON measurement block; paste into BENCH_substrate.json when
//! refreshing the baseline.

use std::time::Instant;

use wasai_core::cw;
use wasai_core::harness::TargetInfo;
use wasai_core::{FuzzConfig, PreparedTarget};
use wasai_corpus::cw_corpus;

const SAMPLES: usize = 16;
const REPS: usize = 5;

fn main() {
    let corpus = cw_corpus(0xBE7C, SAMPLES);
    let prepared: Vec<_> = corpus
        .iter()
        .map(|c| {
            PreparedTarget::prepare(TargetInfo::new(
                c.module.clone(),
                wasai_chain::abi::Abi::default(),
            ))
            .expect("corpus sample prepares")
        })
        .collect();

    let mut mismatches = 0usize;
    let mut total_iterations = 0u64;
    let mut best_campaigns_per_sec = 0.0f64;
    for _ in 0..REPS {
        let start = Instant::now();
        let mut iterations = 0u64;
        for (c, p) in corpus.iter().zip(&prepared) {
            let report =
                cw::run_campaign(p.clone(), FuzzConfig::quick(), None).expect("campaign runs");
            iterations += report.iterations;
            if report.findings != c.label {
                mismatches += 1;
            }
        }
        let secs = start.elapsed().as_secs_f64();
        best_campaigns_per_sec = best_campaigns_per_sec.max(SAMPLES as f64 / secs);
        total_iterations = iterations;
    }

    println!("{{");
    println!("  \"bench\": \"substrate_cosmwasm\",");
    println!("  \"samples\": {SAMPLES},");
    println!("  \"reps\": {REPS},");
    println!(
        "  \"iterations_per_campaign\": {},",
        total_iterations / SAMPLES as u64
    );
    println!("  \"campaigns_per_sec\": {best_campaigns_per_sec:.1},");
    println!("  \"ground_truth_mismatches\": {mismatches}");
    println!("}}");
    if mismatches > 0 {
        eprintln!("FAIL: {mismatches} campaign(s) diverged from ground truth");
        std::process::exit(1);
    }
}
