//! Figure 3 (RQ1): cumulative distinct branches vs fuzzing time, WASAI vs
//! EOSFuzzer, over a population of realistic contracts.
//!
//! The paper uses 100 real-world contracts and a 5-minute wall clock; this
//! harness uses `WASAI_FIG3_CONTRACTS` generated realistic contracts
//! (default 20) and the 300-second *virtual* clock both fuzzers are charged
//! under. Expected shape: EOSFuzzer leads for the first seconds (WASAI pays
//! for SMT solving up front), WASAI crosses over and ends ≈ 2× ahead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wasai_baselines::EosFuzzer;
use wasai_core::{CoverageSeries, PreparedTarget, TargetInfo, Wasai};
use wasai_corpus::{generate, inject_verification, Blueprint, GateKind, RewardKind};

fn main() {
    let n = wasai_bench::env_count("WASAI_FIG3_CONTRACTS", 20);
    let seed = wasai_bench::env_seed();
    let jobs = wasai_core::jobs_from_env();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xf163);
    eprintln!("fig3: {n} contracts, 300 virtual seconds, seed {seed}, {jobs} worker(s)");

    // Contract generation stays serial: blueprints draw from one shared RNG
    // stream, which parallel generation would perturb.
    let mut cases = Vec::with_capacity(n);
    for i in 0..n {
        // A varied population: different guard mixes, gate depths, branch
        // counts — and, for most contracts, exact-value input verification,
        // the structural trait of real deployed contracts that makes deep
        // branches unreachable for random inputs (§4.3).
        let bp = Blueprint {
            seed: rng.gen(),
            code_guard: rng.gen_bool(0.5),
            sdk_work: 0,
            payee_guard: rng.gen_bool(0.5),
            auth_check: rng.gen_bool(0.5),
            blockinfo: rng.gen_bool(0.3),
            reward: if rng.gen_bool(0.4) {
                RewardKind::Inline
            } else {
                RewardKind::Deferred
            },
            gate: if rng.gen_bool(0.7) {
                GateKind::Solvable {
                    depth: rng.gen_range(3..10),
                }
            } else {
                GateKind::Open
            },
            eosponser_branches: rng.gen_range(2..6),
        };
        let mut c = generate(bp);
        if rng.gen_bool(0.6) {
            let checks = rng.gen_range(1..3);
            c = inject_verification(&c, rng.gen(), checks).0;
        }
        // Figure 3 runs the whole five-minute budget — no early saturation
        // cut-off, so the time axis is meaningful.
        let mut cfg = wasai_bench::bench_fuzz_config(seed ^ (i as u64));
        cfg.stall_iters = u64::MAX;
        // Paper-realistic wall-clock costs: SMT queries run for seconds
        // (the 3,000 ms cap of §4), a transaction round-trip is tens of ms.
        cfg.cost = wasai_core::CostModel {
            step_ns: 2_000,
            smt_query_us: 2_000_000,
            smt_prop_ns: 2_000,
            tx_overhead_us: 30_000,
        };
        cases.push((c, cfg));
    }

    // Both tools' campaigns over one contract are a single job sharing one
    // prepared target; each job's seeds derive from its index, so the
    // merged series are identical for every worker count.
    let (reports, stats) = wasai_core::run_jobs_timed(
        jobs,
        cases,
        |_, (c, cfg)| {
            let prepared = PreparedTarget::prepare(TargetInfo::new(c.module, c.abi))
                .expect("fig3 contract prepares");
            let w = Wasai::from_prepared(prepared.clone())
                .with_config(cfg)
                .run()
                .expect("wasai runs");
            let e = EosFuzzer::from_prepared(prepared, cfg)
                .expect("eosfuzzer runs")
                .run();
            (w, e)
        },
        |(w, e)| w.virtual_us + e.virtual_us,
    );

    let mut wasai_series = Vec::with_capacity(n);
    let mut eosfuzzer_series = Vec::with_capacity(n);
    for (i, (w, e)) in reports.into_iter().enumerate() {
        eprintln!(
            "  contract {i:>3}: wasai {} branches ({} iters, {} smt) | eosfuzzer {} branches ({} iters)",
            w.branches, w.iterations, w.smt_queries, e.branches, e.iterations
        );
        wasai_series.push(w.coverage_series);
        eosfuzzer_series.push(e.coverage_series);
    }

    println!("\n=== Figure 3: cumulative distinct branches vs time (RQ1) ===");
    println!("{:>8} {:>12} {:>12}", "t(s)", "WASAI", "EOSFuzzer");
    let checkpoints: Vec<u64> = [1u64, 2, 5, 10, 20, 30, 60, 90, 120, 180, 240, 300]
        .into_iter()
        .collect();
    let mut final_w = 0;
    let mut final_e = 0;
    for t in checkpoints {
        let at = t * 1_000_000;
        final_w = CoverageSeries::cumulative_at(&wasai_series, at);
        final_e = CoverageSeries::cumulative_at(&eosfuzzer_series, at);
        println!("{t:>8} {final_w:>12} {final_e:>12}");
    }
    let ratio = final_w as f64 / final_e.max(1) as f64;
    println!("\nfinal ratio WASAI/EOSFuzzer = {ratio:.2}x (paper: ≈ 2x)");
    println!("\n{}", stats.summary());
}
