//! Worker heartbeats and the stall detector.
//!
//! Every fleet worker owns one fixed [`HeartbeatTable`] slot for the
//! duration of the sweep. While a campaign runs, the worker stamps the slot
//! — campaign index, a monotonically increasing tick count, the wall
//! timestamp of the last tick, and the watchdog stage it is in (the same
//! thread-local stage markers PR 2's fault isolation uses for panic
//! attribution). The monitor thread scans the table: a slot whose campaign
//! has been live for longer than the stall threshold *without a fresh tick*
//! is flagged as stalled.
//!
//! The table is wall-clock-only and write-only from workers, like the rest
//! of the observability layer: the detector reports, it never intervenes,
//! so scheduling and results are untouched (the PR 2 deadline machinery
//! remains the enforcement mechanism).

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::time::Instant;

/// Maximum concurrently tracked workers. `WASAI_JOBS` beyond this still
/// works — extra workers simply share no heartbeat slot and are invisible
/// to the stall detector (they are still bounded by the PR 2 deadline).
pub const MAX_SLOTS: usize = 64;

/// Sentinel for "no campaign on this slot".
const IDLE: u64 = u64::MAX;

/// Watchdog stage codes mirrored into heartbeat slots; kept in sync with
/// the `wasai_core::fleet::stage` marker strings by the core-side bridge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Stage {
    /// Top-level campaign driver.
    Campaign = 0,
    /// Executing seeds on the concrete VM.
    Execute = 1,
    /// Symbolic replay of a recorded trace.
    Replay = 2,
    /// Inside an SMT flip query.
    Solve = 3,
    /// Decoding/instrumenting the target.
    Prepare = 4,
}

impl Stage {
    /// Short display name, matching the PR 2 stage marker strings.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Campaign => "campaign",
            Stage::Execute => "execute",
            Stage::Replay => "replay",
            Stage::Solve => "solve",
            Stage::Prepare => "prepare",
        }
    }

    fn from_code(code: u8) -> Stage {
        match code {
            1 => Stage::Execute,
            2 => Stage::Replay,
            3 => Stage::Solve,
            4 => Stage::Prepare,
            _ => Stage::Campaign,
        }
    }

    /// Parse a stage marker string back into a code; unknown names map to
    /// [`Stage::Campaign`], mirroring [`Stage::from_code`]. Used by the
    /// supervisor when it re-stamps heartbeat lines relayed from worker
    /// processes.
    pub fn from_name(name: &str) -> Stage {
        match name {
            "execute" => Stage::Execute,
            "replay" => Stage::Replay,
            "solve" => Stage::Solve,
            "prepare" => Stage::Prepare,
            _ => Stage::Campaign,
        }
    }
}

/// One worker's heartbeat slot.
#[derive(Debug)]
struct Slot {
    /// Campaign index currently running on this worker, or [`IDLE`].
    campaign: AtomicU64,
    /// Progress ticks since the campaign began on this slot.
    ticks: AtomicU64,
    /// Milliseconds since the table's epoch at the last tick (or begin).
    last_ms: AtomicU64,
    /// Current [`Stage`] code.
    stage: AtomicU8,
}

impl Slot {
    const fn new() -> Slot {
        Slot {
            campaign: AtomicU64::new(IDLE),
            ticks: AtomicU64::new(0),
            last_ms: AtomicU64::new(0),
            stage: AtomicU8::new(Stage::Campaign as u8),
        }
    }
}

/// A stalled campaign, as reported by [`HeartbeatTable::stalled`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallReport {
    /// Worker slot the campaign is running on.
    pub slot: usize,
    /// Campaign index (position in the sweep's input order).
    pub campaign: u64,
    /// Milliseconds since the last observed tick.
    pub idle_ms: u64,
    /// Stage the worker was last seen in.
    pub stage: Stage,
    /// Ticks the campaign made before going quiet.
    pub ticks: u64,
}

/// A point-in-time reading of one active heartbeat slot, as returned by
/// [`HeartbeatTable::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotReading {
    /// Worker slot index.
    pub slot: usize,
    /// Campaign index running on the slot.
    pub campaign: u64,
    /// Progress ticks since the campaign began.
    pub ticks: u64,
    /// Milliseconds since the table epoch at the last tick.
    pub last_ms: u64,
    /// Stage the worker was last seen in.
    pub stage: Stage,
}

/// Fixed-size table of worker heartbeat slots.
#[derive(Debug)]
pub struct HeartbeatTable {
    slots: [Slot; MAX_SLOTS],
    /// Next slot to hand out; wraps at [`MAX_SLOTS`].
    next: AtomicUsize,
    /// Workers that claimed a slot after the table was full — their
    /// heartbeats alias an earlier worker's slot, so the stall detector
    /// cannot see them individually. Surfaced in the progress line instead
    /// of being dropped silently.
    overflow: AtomicU64,
}

impl HeartbeatTable {
    /// A table with every slot idle.
    pub const fn new() -> HeartbeatTable {
        // Array-repeat initializer, never read as a const.
        #[allow(clippy::declare_interior_mutable_const)]
        const S: Slot = Slot::new();
        HeartbeatTable {
            slots: [S; MAX_SLOTS],
            next: AtomicUsize::new(0),
            overflow: AtomicU64::new(0),
        }
    }

    /// The process-wide wall epoch all `last_ms` stamps are relative to.
    fn epoch() -> Instant {
        static INIT: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
        *INIT.get_or_init(Instant::now)
    }

    /// Milliseconds elapsed since the epoch.
    pub fn now_ms() -> u64 {
        Self::epoch()
            .elapsed()
            .as_millis()
            .min(u128::from(u64::MAX)) as u64
    }

    /// Claim a slot for the calling worker thread. Returns the slot index
    /// to pass to the other methods.
    ///
    /// Claims beyond [`MAX_SLOTS`] wrap (the worker shares an earlier
    /// worker's slot) and are counted in [`HeartbeatTable::overflowed`] so
    /// the aliasing is visible instead of silent.
    pub fn claim_slot(&self) -> usize {
        let n = self.next.fetch_add(1, Ordering::Relaxed);
        if n >= MAX_SLOTS {
            self.overflow.fetch_add(1, Ordering::Relaxed);
        }
        n % MAX_SLOTS
    }

    /// Workers that claimed a slot after the table was full (their
    /// heartbeats alias earlier slots and are invisible to the stall
    /// detector individually).
    pub fn overflowed(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed)
    }

    /// Reset slot assignment so the next sweep's workers start from slot 0.
    pub fn reset(&self) {
        self.next.store(0, Ordering::Relaxed);
        self.overflow.store(0, Ordering::Relaxed);
        for s in &self.slots {
            s.campaign.store(IDLE, Ordering::Relaxed);
            s.ticks.store(0, Ordering::Relaxed);
            s.last_ms.store(0, Ordering::Relaxed);
            s.stage.store(Stage::Campaign as u8, Ordering::Relaxed);
        }
    }

    /// Mark `campaign` as running on `slot`.
    pub fn begin(&self, slot: usize, campaign: u64) {
        let s = &self.slots[slot % MAX_SLOTS];
        s.ticks.store(0, Ordering::Relaxed);
        s.last_ms.store(Self::now_ms(), Ordering::Relaxed);
        s.stage.store(Stage::Campaign as u8, Ordering::Relaxed);
        s.campaign.store(campaign, Ordering::Relaxed);
    }

    /// Record one unit of forward progress on `slot`.
    #[inline]
    pub fn tick(&self, slot: usize) {
        let s = &self.slots[slot % MAX_SLOTS];
        s.ticks.fetch_add(1, Ordering::Relaxed);
        s.last_ms.store(Self::now_ms(), Ordering::Relaxed);
    }

    /// Record which watchdog stage `slot`'s worker is in.
    #[inline]
    pub fn set_stage(&self, slot: usize, stage: Stage) {
        self.slots[slot % MAX_SLOTS]
            .stage
            .store(stage as u8, Ordering::Relaxed);
    }

    /// Mark `slot` idle again.
    pub fn end(&self, slot: usize) {
        self.slots[slot % MAX_SLOTS]
            .campaign
            .store(IDLE, Ordering::Relaxed);
    }

    /// Number of slots currently running a campaign.
    pub fn running(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.campaign.load(Ordering::Relaxed) != IDLE)
            .count()
    }

    /// Point-in-time readings of every active (non-idle) slot, in slot
    /// order. Used by the supervised fleet's worker processes to relay
    /// their heartbeats over the status pipe.
    pub fn snapshot(&self) -> Vec<SlotReading> {
        let mut out = Vec::new();
        for (i, s) in self.slots.iter().enumerate() {
            let campaign = s.campaign.load(Ordering::Relaxed);
            if campaign == IDLE {
                continue;
            }
            out.push(SlotReading {
                slot: i,
                campaign,
                ticks: s.ticks.load(Ordering::Relaxed),
                last_ms: s.last_ms.load(Ordering::Relaxed),
                stage: Stage::from_code(s.stage.load(Ordering::Relaxed)),
            });
        }
        out
    }

    /// Scan for campaigns whose last tick is older than `threshold_ms`.
    pub fn stalled(&self, threshold_ms: u64) -> Vec<StallReport> {
        let now = Self::now_ms();
        let mut out = Vec::new();
        for (i, s) in self.slots.iter().enumerate() {
            let campaign = s.campaign.load(Ordering::Relaxed);
            if campaign == IDLE {
                continue;
            }
            let last = s.last_ms.load(Ordering::Relaxed);
            let idle_ms = now.saturating_sub(last);
            if idle_ms >= threshold_ms {
                // Re-check the slot is still on the same campaign: `end()`
                // racing the scan must not produce a ghost report.
                if s.campaign.load(Ordering::Relaxed) != campaign {
                    continue;
                }
                out.push(StallReport {
                    slot: i,
                    campaign,
                    idle_ms,
                    stage: Stage::from_code(s.stage.load(Ordering::Relaxed)),
                    ticks: s.ticks.load(Ordering::Relaxed),
                });
            }
        }
        out
    }
}

impl Default for HeartbeatTable {
    fn default() -> Self {
        HeartbeatTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_table_reports_nothing() {
        let t = HeartbeatTable::new();
        assert_eq!(t.running(), 0);
        assert!(t.stalled(0).is_empty());
    }

    #[test]
    fn ticking_campaign_is_not_stalled_quiet_one_is() {
        let t = HeartbeatTable::new();
        let a = t.claim_slot();
        let b = t.claim_slot();
        assert_ne!(a, b);
        t.begin(a, 7);
        t.begin(b, 8);
        t.set_stage(b, Stage::Solve);
        std::thread::sleep(std::time::Duration::from_millis(30));
        t.tick(a); // a stays fresh, b goes quiet
        let stalls = t.stalled(20);
        assert_eq!(stalls.len(), 1);
        assert_eq!(stalls[0].campaign, 8);
        assert_eq!(stalls[0].stage, Stage::Solve);
        assert!(stalls[0].idle_ms >= 20);
        assert_eq!(t.running(), 2);
    }

    #[test]
    fn ended_campaign_disappears_from_scan() {
        let t = HeartbeatTable::new();
        let s = t.claim_slot();
        t.begin(s, 3);
        t.end(s);
        assert_eq!(t.running(), 0);
        assert!(t.stalled(0).is_empty());
    }

    #[test]
    fn reset_reclaims_slots_from_zero() {
        let t = HeartbeatTable::new();
        let first = t.claim_slot();
        t.begin(first, 1);
        t.reset();
        assert_eq!(t.claim_slot(), 0);
        assert_eq!(t.running(), 0);
    }

    #[test]
    fn claims_beyond_capacity_are_counted_not_dropped() {
        let t = HeartbeatTable::new();
        for _ in 0..MAX_SLOTS {
            t.claim_slot();
        }
        assert_eq!(t.overflowed(), 0);
        assert_eq!(t.claim_slot(), 0, "claim past the cap wraps to slot 0");
        t.claim_slot();
        assert_eq!(t.overflowed(), 2);
        t.reset();
        assert_eq!(t.overflowed(), 0);
    }

    #[test]
    fn snapshot_reads_active_slots_in_order() {
        let t = HeartbeatTable::new();
        let a = t.claim_slot();
        let b = t.claim_slot();
        t.begin(a, 10);
        t.begin(b, 11);
        t.tick(b);
        t.set_stage(b, Stage::Replay);
        let snap = t.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].campaign, 10);
        assert_eq!(snap[0].ticks, 0);
        assert_eq!(snap[1].campaign, 11);
        assert_eq!(snap[1].ticks, 1);
        assert_eq!(snap[1].stage, Stage::Replay);
        t.end(a);
        assert_eq!(t.snapshot().len(), 1);
    }

    #[test]
    fn stage_names_round_trip_through_from_name() {
        for s in [
            Stage::Campaign,
            Stage::Execute,
            Stage::Replay,
            Stage::Solve,
            Stage::Prepare,
        ] {
            assert_eq!(Stage::from_name(s.name()), s);
        }
        assert_eq!(Stage::from_name("weird"), Stage::Campaign);
    }

    #[test]
    fn stage_codes_round_trip() {
        for s in [
            Stage::Campaign,
            Stage::Execute,
            Stage::Replay,
            Stage::Solve,
            Stage::Prepare,
        ] {
            assert_eq!(Stage::from_code(s as u8), s);
        }
    }
}
