//! Serializable registry snapshots: the wire format of the fleet metrics
//! plane.
//!
//! An `audit-worker` process owns a full [`Registry`] of its own, but only
//! its stdout pipe reaches the supervisor. A [`RegistrySnapshot`] freezes
//! every counter, gauge, and histogram bucket array into one line-atomic,
//! digest-checked `{"type":"metrics",…}` frame that rides the existing
//! worker status protocol. The supervisor parses frames back, computes the
//! **per-generation delta** against the previous frame from the same worker
//! spawn, and folds the delta into its own global registry (the fleet
//! rollup) plus a per-shard [`FleetStore`] entry (the `shard="N"` series).
//!
//! # Why deltas, not absolutes
//!
//! Worker counters are cumulative from process start. A killed worker's
//! replacement starts from zero, so merging absolutes would either
//! double-count (sum every frame) or lose history (keep the latest). The
//! supervisor instead tracks the last frame seen for the *current* spawn
//! generation, resets that baseline to zero on re-dispatch, and accumulates
//! only the increments — a killed-and-retried worker never double-counts,
//! and work that completed before the kill is never erased.
//!
//! # Integrity
//!
//! Frames mirror the durable journal's discipline: an FNV-1a digest over
//! the versioned payload, rechecked at parse. A torn, truncated, or
//! tampered frame fails the digest (or the shape check) and is dropped —
//! the next periodic frame supersedes it, because frames carry absolute
//! cumulative values, not increments. Losing a frame therefore loses
//! nothing but latency.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::registry::{Counter, Gauge, HistSnapshot, Histogram, Registry, NUM_BUCKETS};

/// Snapshot wire-format version. Bumped whenever the series enumeration
/// changes shape; a mismatched frame is rejected wholesale (worker and
/// supervisor are always the same binary, so this only trips on torn
/// frames and operator error).
pub const SNAPSHOT_VERSION: u64 = 1;

/// FNV-1a, the same construction the durable journal uses for outcome
/// records: self-contained, stable across platforms, and one multiply per
/// byte.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Append one field with a separator so `("ab","c")` and `("a","bc")`
    /// hash differently.
    fn field(&mut self, bytes: &[u8]) {
        self.write(bytes);
        self.write(&[0x1f]);
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// A point-in-time copy of every series in a [`Registry`]: plain data,
/// mergeable, serializable. Counters and histogram cells are cumulative
/// totals; gauges are the instantaneous values at capture time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// One cumulative value per [`Counter`], in `Counter::ALL` order.
    pub counters: [u64; Counter::COUNT],
    /// One instantaneous value per [`Gauge`], in `Gauge::ALL` order.
    pub gauges: [u64; Gauge::COUNT],
    /// One reading per [`Histogram`], in `Histogram::ALL` order.
    pub hists: [HistSnapshot; Histogram::COUNT],
}

impl Default for RegistrySnapshot {
    fn default() -> Self {
        RegistrySnapshot::zero()
    }
}

impl RegistrySnapshot {
    /// The all-zero snapshot — the merge baseline of a freshly spawned
    /// worker.
    pub fn zero() -> RegistrySnapshot {
        RegistrySnapshot {
            counters: [0; Counter::COUNT],
            gauges: [0; Gauge::COUNT],
            hists: std::array::from_fn(|_| HistSnapshot {
                buckets: [0; NUM_BUCKETS],
                sum_us: 0,
                count: 0,
            }),
        }
    }

    /// Freeze the current value of every series in `reg`.
    pub fn capture(reg: &Registry) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: std::array::from_fn(|i| reg.counter(Counter::ALL[i])),
            gauges: std::array::from_fn(|i| reg.gauge(Gauge::ALL[i])),
            hists: std::array::from_fn(|i| reg.histogram(Histogram::ALL[i])),
        }
    }

    /// The per-generation merge delta: counters and histogram cells as
    /// `self - prev` (saturating — a cumulative series can never regress
    /// within one worker generation, so any apparent regression is clamped
    /// to zero rather than poisoning totals), gauges as `self`'s latest
    /// absolute values (gauges are levels, not accumulations).
    pub fn saturating_delta(&self, prev: &RegistrySnapshot) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: std::array::from_fn(|i| self.counters[i].saturating_sub(prev.counters[i])),
            gauges: self.gauges,
            hists: std::array::from_fn(|i| {
                let (a, b) = (&self.hists[i], &prev.hists[i]);
                HistSnapshot {
                    buckets: std::array::from_fn(|j| a.buckets[j].saturating_sub(b.buckets[j])),
                    sum_us: a.sum_us.saturating_sub(b.sum_us),
                    count: a.count.saturating_sub(b.count),
                }
            }),
        }
    }

    /// Accumulate a delta in place (counters and histogram cells add;
    /// gauges take the delta's latest absolute value).
    pub fn accumulate(&mut self, delta: &RegistrySnapshot) {
        for (slot, v) in self.counters.iter_mut().zip(delta.counters.iter()) {
            *slot = slot.saturating_add(*v);
        }
        self.gauges = delta.gauges;
        for (slot, v) in self.hists.iter_mut().zip(delta.hists.iter()) {
            for (b, d) in slot.buckets.iter_mut().zip(v.buckets.iter()) {
                *b = b.saturating_add(*d);
            }
            slot.sum_us = slot.sum_us.saturating_add(v.sum_us);
            slot.count = slot.count.saturating_add(v.count);
        }
    }

    /// Apply a counter/histogram delta to a live registry (the fleet
    /// rollup). Gauges are deliberately untouched: worker gauges are
    /// levels, summed across shards by the caller, not accumulated.
    pub fn apply_to(&self, reg: &Registry) {
        for (i, &v) in self.counters.iter().enumerate() {
            reg.add(Counter::ALL[i], v);
        }
        for (i, h) in self.hists.iter().enumerate() {
            reg.merge_hist(Histogram::ALL[i], h);
        }
    }

    /// The three CSV payload strings of the wire frame:
    /// `(counters, gauges, hists)`. Histograms flatten to
    /// `NUM_BUCKETS + 2` values each (buckets…, sum_us, count).
    fn encode_parts(&self) -> (String, String, String) {
        let csv = |vals: &mut dyn Iterator<Item = u64>| -> String {
            let mut s = String::new();
            for (n, v) in vals.enumerate() {
                if n > 0 {
                    s.push(',');
                }
                s.push_str(&v.to_string());
            }
            s
        };
        let counters = csv(&mut self.counters.iter().copied());
        let gauges = csv(&mut self.gauges.iter().copied());
        let hists = csv(&mut self.hists.iter().flat_map(|h| {
            h.buckets
                .iter()
                .copied()
                .chain([h.sum_us, h.count])
                .collect::<Vec<u64>>()
        }));
        (counters, gauges, hists)
    }

    /// The frame digest over the versioned payload.
    fn digest_parts(counters: &str, gauges: &str, hists: &str) -> u64 {
        let mut h = Fnv::new();
        h.field(SNAPSHOT_VERSION.to_string().as_bytes());
        h.field(counters.as_bytes());
        h.field(gauges.as_bytes());
        h.field(hists.as_bytes());
        h.finish()
    }

    /// Render the snapshot as one line-atomic worker-protocol frame.
    pub fn to_frame(&self) -> String {
        let (counters, gauges, hists) = self.encode_parts();
        let digest = Self::digest_parts(&counters, &gauges, &hists);
        format!(
            "{{\"type\":\"metrics\",\"v\":{SNAPSHOT_VERSION},\"counters\":\"{counters}\",\
             \"gauges\":\"{gauges}\",\"hists\":\"{hists}\",\"digest\":\"{digest:016x}\"}}"
        )
    }

    /// Reassemble a snapshot from a parsed frame's fields, rechecking the
    /// version, the digest, and the series-count shape.
    pub fn from_parts(
        version: u64,
        counters: &str,
        gauges: &str,
        hists: &str,
        digest_hex: &str,
    ) -> Result<RegistrySnapshot, String> {
        if version != SNAPSHOT_VERSION {
            return Err(format!(
                "snapshot frame version {version}, expected {SNAPSHOT_VERSION}"
            ));
        }
        let expect = Self::digest_parts(counters, gauges, hists);
        let got = u64::from_str_radix(digest_hex, 16).map_err(|e| format!("bad digest: {e}"))?;
        if got != expect {
            return Err(format!(
                "snapshot frame digest mismatch: claims {got:016x}, payload hashes to {expect:016x}"
            ));
        }
        let parse_csv = |s: &str, want: usize, what: &str| -> Result<Vec<u64>, String> {
            let vals: Result<Vec<u64>, _> = if s.is_empty() {
                Ok(Vec::new())
            } else {
                s.split(',').map(|p| p.parse::<u64>()).collect()
            };
            let vals = vals.map_err(|e| format!("bad {what} value: {e}"))?;
            if vals.len() != want {
                return Err(format!("{what}: {} values, expected {want}", vals.len()));
            }
            Ok(vals)
        };
        let counters = parse_csv(counters, Counter::COUNT, "counters")?;
        let gauges = parse_csv(gauges, Gauge::COUNT, "gauges")?;
        const HIST_STRIDE: usize = NUM_BUCKETS + 2;
        let hists = parse_csv(hists, Histogram::COUNT * HIST_STRIDE, "hists")?;
        Ok(RegistrySnapshot {
            counters: std::array::from_fn(|i| counters[i]),
            gauges: std::array::from_fn(|i| gauges[i]),
            hists: std::array::from_fn(|i| {
                let row = &hists[i * HIST_STRIDE..(i + 1) * HIST_STRIDE];
                HistSnapshot {
                    buckets: std::array::from_fn(|j| row[j]),
                    sum_us: row[NUM_BUCKETS],
                    count: row[NUM_BUCKETS + 1],
                }
            }),
        })
    }
}

/// The supervisor's per-shard metric store: one cumulative
/// [`RegistrySnapshot`] per worker shard, accumulated across that shard's
/// spawn generations. This is what the `shard="N"` exposition series and
/// the `wasai stats --fleet` table render from; fleet totals live in the
/// supervisor's own global registry (deltas are applied there too).
#[derive(Debug)]
pub struct FleetStore {
    shards: Mutex<BTreeMap<usize, RegistrySnapshot>>,
}

impl FleetStore {
    /// An empty store (no shards — the in-process fleet's state).
    pub const fn new() -> FleetStore {
        FleetStore {
            shards: Mutex::new(BTreeMap::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<usize, RegistrySnapshot>> {
        self.shards.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Fold one per-generation delta into shard `id`'s cumulative totals.
    pub fn apply(&self, id: usize, delta: &RegistrySnapshot) {
        self.lock().entry(id).or_default().accumulate(delta);
    }

    /// All shards' cumulative snapshots, in shard-id order.
    pub fn snapshot(&self) -> Vec<(usize, RegistrySnapshot)> {
        self.lock().iter().map(|(&k, v)| (k, v.clone())).collect()
    }

    /// Sum of the latest per-shard values of one gauge (worker gauges are
    /// levels; the fleet level is their sum).
    pub fn gauge_sum(&self, g: Gauge) -> u64 {
        self.lock()
            .values()
            .map(|s| s.gauges[g as usize])
            .fold(0u64, u64::saturating_add)
    }

    /// True when no shard has reported yet (single-process sweeps).
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Drop every shard (test isolation and back-to-back sweeps).
    pub fn reset(&self) {
        self.lock().clear();
    }
}

impl Default for FleetStore {
    fn default() -> Self {
        FleetStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RegistrySnapshot {
        let reg = Registry::new();
        reg.enable();
        reg.add(Counter::SeedsExecuted, 123);
        reg.inc(Counter::CampaignsOk);
        reg.gauge_set(Gauge::CampaignsRunning, 2);
        reg.gauge_set(Gauge::HeartbeatOverflow, 1);
        reg.observe_us(Histogram::CampaignWallSeconds, 50);
        reg.observe_us(Histogram::CampaignWallSeconds, 2_000_000);
        RegistrySnapshot::capture(&reg)
    }

    #[test]
    fn frame_round_trips_every_series() {
        let snap = sample();
        let frame = snap.to_frame();
        assert!(
            frame.starts_with("{\"type\":\"metrics\",\"v\":1,"),
            "{frame}"
        );
        assert!(!frame.contains('\n'), "frames must be line-atomic");
        let fields = parse_frame_fields(&frame);
        let parsed = RegistrySnapshot::from_parts(
            fields["v"].parse().unwrap(),
            &fields["counters"],
            &fields["gauges"],
            &fields["hists"],
            &fields["digest"],
        )
        .expect("round trip");
        assert_eq!(parsed, snap);
        assert_eq!(
            parsed.counters[Counter::SeedsExecuted as usize],
            123,
            "counter survives"
        );
        assert_eq!(
            parsed.hists[Histogram::CampaignWallSeconds as usize].sum_us,
            2_000_050,
            "histogram sum survives exactly"
        );
    }

    /// Minimal flat-JSON field splitter for tests (the real protocol parse
    /// lives in wasai-core's telemetry module, which this crate must not
    /// depend on).
    fn parse_frame_fields(frame: &str) -> BTreeMap<String, String> {
        let body = frame
            .trim()
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .expect("object");
        // Split on unquoted commas; CSV payloads live inside quotes.
        let mut out = BTreeMap::new();
        for part in split_top(body) {
            let (k, v) = part.split_once(':').expect("k:v");
            let k = k.trim_matches('"').to_string();
            let v = v.trim_matches('"').to_string();
            out.insert(k, v);
        }
        out
    }

    fn split_top(s: &str) -> Vec<&str> {
        let mut parts = Vec::new();
        let mut depth_quote = false;
        let mut start = 0;
        for (i, c) in s.char_indices() {
            match c {
                '"' => depth_quote = !depth_quote,
                ',' if !depth_quote => {
                    parts.push(&s[start..i]);
                    start = i + 1;
                }
                _ => {}
            }
        }
        parts.push(&s[start..]);
        parts
    }

    #[test]
    fn digest_tamper_is_rejected() {
        let snap = sample();
        let (counters, gauges, hists) = snap.encode_parts();
        let digest = RegistrySnapshot::digest_parts(&counters, &gauges, &hists);
        // Flip one counter value without re-hashing: a tampered payload.
        let tampered = counters.replacen("123", "999", 1);
        let err = RegistrySnapshot::from_parts(
            SNAPSHOT_VERSION,
            &tampered,
            &gauges,
            &hists,
            &format!("{digest:016x}"),
        )
        .unwrap_err();
        assert!(err.contains("digest mismatch"), "{err}");
    }

    #[test]
    fn truncated_payload_is_rejected_not_misread() {
        let snap = sample();
        let (counters, gauges, hists) = snap.encode_parts();
        // A torn write that lost the tail of the histogram payload. The
        // digest no longer matches, so the shape check is never even
        // reached — but verify both layers independently.
        let torn = &hists[..hists.len() / 2];
        let err = RegistrySnapshot::from_parts(
            SNAPSHOT_VERSION,
            &counters,
            &gauges,
            torn,
            &format!(
                "{:016x}",
                RegistrySnapshot::digest_parts(&counters, &gauges, torn)
            ),
        )
        .unwrap_err();
        assert!(
            err.contains("hists"),
            "shape check catches re-hashed truncation: {err}"
        );
        let err2 = RegistrySnapshot::from_parts(
            SNAPSHOT_VERSION,
            &counters,
            &gauges,
            torn,
            &format!(
                "{:016x}",
                RegistrySnapshot::digest_parts(&counters, &gauges, &hists)
            ),
        )
        .unwrap_err();
        assert!(err2.contains("digest mismatch"), "{err2}");
    }

    #[test]
    fn version_skew_is_rejected() {
        let snap = sample();
        let (counters, gauges, hists) = snap.encode_parts();
        let digest = RegistrySnapshot::digest_parts(&counters, &gauges, &hists);
        let err = RegistrySnapshot::from_parts(
            SNAPSHOT_VERSION + 1,
            &counters,
            &gauges,
            &hists,
            &format!("{digest:016x}"),
        )
        .unwrap_err();
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn delta_merge_never_double_counts_across_generations() {
        // Generation 1 reports 100 seeds, then 150, then dies. Its
        // replacement starts from zero and reports 30. The correct fleet
        // total is 150 + 30, never 100 + 150 + 30.
        let mut gen1_a = RegistrySnapshot::zero();
        gen1_a.counters[Counter::SeedsExecuted as usize] = 100;
        let mut gen1_b = RegistrySnapshot::zero();
        gen1_b.counters[Counter::SeedsExecuted as usize] = 150;
        let mut gen2 = RegistrySnapshot::zero();
        gen2.counters[Counter::SeedsExecuted as usize] = 30;

        let store = FleetStore::new();
        let mut last = RegistrySnapshot::zero();
        for frame in [gen1_a, gen1_b] {
            store.apply(0, &frame.saturating_delta(&last));
            last = frame;
        }
        // Re-dispatch: the baseline resets with the new generation.
        last = RegistrySnapshot::zero();
        store.apply(0, &gen2.saturating_delta(&last));

        let shards = store.snapshot();
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].1.counters[Counter::SeedsExecuted as usize], 180);
    }

    #[test]
    fn gauges_merge_as_levels_and_histograms_as_sums() {
        let store = FleetStore::new();
        let mut a = RegistrySnapshot::zero();
        a.gauges[Gauge::CampaignsRunning as usize] = 3;
        a.gauges[Gauge::HeartbeatOverflow as usize] = 1;
        a.hists[0].buckets[2] = 4;
        a.hists[0].sum_us = 40_000;
        a.hists[0].count = 4;
        let mut b = RegistrySnapshot::zero();
        b.gauges[Gauge::CampaignsRunning as usize] = 2;
        b.hists[0].buckets[2] = 1;
        b.hists[0].sum_us = 9_000;
        b.hists[0].count = 1;
        store.apply(0, &a);
        store.apply(1, &b);
        assert_eq!(store.gauge_sum(Gauge::CampaignsRunning), 5);
        assert_eq!(store.gauge_sum(Gauge::HeartbeatOverflow), 1);
        let shards = store.snapshot();
        assert_eq!(shards[0].1.hists[0].sum_us, 40_000);
        assert_eq!(shards[1].1.hists[0].count, 1);
        // A later frame from shard 0 replaces its gauge level but adds to
        // its histogram cells.
        let mut a2 = RegistrySnapshot::zero();
        a2.gauges[Gauge::CampaignsRunning as usize] = 0;
        a2.hists[0].buckets[2] = 2;
        a2.hists[0].sum_us = 20_000;
        a2.hists[0].count = 2;
        store.apply(0, &a2);
        assert_eq!(store.gauge_sum(Gauge::CampaignsRunning), 2);
        assert_eq!(store.snapshot()[0].1.hists[0].sum_us, 60_000);
    }

    #[test]
    fn apply_to_registry_preserves_histogram_sums() {
        let snap = sample();
        let reg = Registry::new();
        reg.enable();
        snap.apply_to(&reg);
        assert_eq!(reg.counter(Counter::SeedsExecuted), 123);
        let h = reg.histogram(Histogram::CampaignWallSeconds);
        assert_eq!(h.sum_us, 2_000_050);
        assert_eq!(h.count, 2);
        assert_eq!(
            h.buckets,
            snap.hists[Histogram::CampaignWallSeconds as usize].buckets
        );
        assert_eq!(
            reg.gauge(Gauge::CampaignsRunning),
            0,
            "apply_to must not touch gauges"
        );
    }
}
