//! The sharded, lock-free metrics registry.
//!
//! Every metric series is enumerated at compile time ([`Counter`],
//! [`Gauge`], [`Histogram`]) so the storage is a handful of fixed atomic
//! arrays — no allocation, no locking, no hashing on the write path. Writes
//! land in a per-thread shard ([`SHARDS`] cache-line-padded `AtomicU64`s per
//! counter) with `Relaxed` ordering; reads sum the shards. A disabled
//! registry short-circuits every write after one relaxed boolean load, which
//! is what makes the instrumentation affordable to leave compiled into the
//! hot paths of the engine, the solver and the interpreter.
//!
//! The registry is **write-only telemetry**: nothing in the analysis ever
//! reads it back, so enabling or disabling observability cannot perturb
//! reports, traces, or seed schedules (see the crate docs for the
//! determinism contract).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Write shards per counter/histogram cell. Each thread picks one shard
/// (round-robin at first use) and keeps it, so concurrent writers touch
/// different cache lines.
pub const SHARDS: usize = 8;

/// One cache-line-padded atomic cell, so neighboring shards never false-share.
#[repr(align(64))]
#[derive(Debug)]
pub(crate) struct Shard(pub(crate) AtomicU64);

impl Shard {
    // Array-repeat initializer, never read as a const.
    #[allow(clippy::declare_interior_mutable_const)]
    pub(crate) const ZERO: Shard = Shard(AtomicU64::new(0));
}

type ShardRow = [Shard; SHARDS];

#[allow(clippy::declare_interior_mutable_const)]
const ZERO_ROW: ShardRow = [Shard::ZERO; SHARDS];

/// The thread's shard index, assigned round-robin on first use.
fn my_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

macro_rules! metric_enum {
    ($(#[$meta:meta])* $name:ident { $($(#[$vmeta:meta])* $variant:ident),+ $(,)? }) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(usize)]
        pub enum $name {
            $($(#[$vmeta])* $variant),+
        }

        impl $name {
            /// Every series, in exposition order (same-family series are
            /// adjacent so HELP/TYPE headers are emitted once per family).
            pub const ALL: &'static [$name] = &[$($name::$variant),+];
            /// Number of series.
            pub const COUNT: usize = $name::ALL.len();
        }
    };
}

metric_enum! {
    /// Every counter series the registry tracks. Families with labels
    /// (e.g. `wasai_campaigns_total{outcome=…}`) enumerate one variant per
    /// label value.
    Counter {
        /// `wasai_campaigns_total{outcome="ok"}`
        CampaignsOk,
        /// `wasai_campaigns_total{outcome="failed"}`
        CampaignsFailed,
        /// `wasai_campaigns_total{outcome="panicked"}`
        CampaignsPanicked,
        /// `wasai_campaigns_total{outcome="timed-out"}`
        CampaignsTimedOut,
        /// `wasai_campaigns_total{outcome="crashed"}` — supervised-mode
        /// campaigns lost with a worker process after retries were
        /// exhausted.
        CampaignsCrashed,
        /// `wasai_worker_restarts_total` — worker processes re-dispatched by
        /// the supervisor after a death or stall.
        WorkerRestarts,
        /// `wasai_journal_records_total` — campaign outcomes appended to the
        /// durable journal.
        JournalRecords,
        /// `wasai_journal_replayed_total` — journaled outcomes restored by
        /// `--resume` instead of re-running the campaign.
        JournalReplayed,
        /// `wasai_iterations_total`
        Iterations,
        /// `wasai_seeds_executed_total`
        SeedsExecuted,
        /// `wasai_coverage_branches_total`
        CoverageBranches,
        /// `wasai_branch_sites_total`
        BranchSites,
        /// `wasai_replays_total`
        Replays,
        /// `wasai_flips_total`
        Flips,
        /// `wasai_smt_queries_total{outcome="sat"}`
        SmtSat,
        /// `wasai_smt_queries_total{outcome="unsat"}`
        SmtUnsat,
        /// `wasai_smt_queries_total{outcome="unknown"}`
        SmtUnknown,
        /// `wasai_smt_propagations_total`
        SmtPropagations,
        /// `wasai_smt_cache_lookups_total{level="campaign"}`
        CacheLookupsCampaign,
        /// `wasai_smt_cache_lookups_total{level="fleet"}`
        CacheLookupsFleet,
        /// `wasai_smt_cache_hits_total{level="campaign"}`
        CacheHitsCampaign,
        /// `wasai_smt_cache_hits_total{level="fleet"}`
        CacheHitsFleet,
        /// `wasai_smt_cache_store_dropped_total`
        CacheStoreDropped,
        /// `wasai_smt_prefix_forks_total`
        PrefixForks,
        /// `wasai_smt_portfolio_races_total`
        PortfolioRaces,
        /// `wasai_smt_portfolio_salvaged_total{outcome="sat"}`
        PortfolioSalvagedSat,
        /// `wasai_smt_portfolio_salvaged_total{outcome="unsat"}`
        PortfolioSalvagedUnsat,
        /// `wasai_smt_portfolio_disagreements_total`
        PortfolioDisagreements,
        /// `wasai_vm_instructions_total`
        VmInstructions,
        /// `wasai_vm_tape_compiles_total`
        VmTapeCompiles,
        /// `wasai_vm_snapshot_restores_total`
        VmSnapshotRestores,
        /// `wasai_obs_listener_failed_total` — `--metrics-addr` listeners
        /// that never came up after the bounded bind-retry loop.
        ObsListenerFailed,
        /// `wasai_metrics_frames_merged_total` — worker registry snapshot
        /// frames the supervisor merged into the fleet rollup.
        MetricsFramesMerged,
        /// `wasai_metrics_frames_rejected_total` — snapshot frames dropped
        /// as stale (a killed worker's tail after re-dispatch).
        MetricsFramesRejected,
    }
}

impl Counter {
    /// The Prometheus metric family this series belongs to.
    pub fn family(self) -> &'static str {
        match self {
            Counter::CampaignsOk
            | Counter::CampaignsFailed
            | Counter::CampaignsPanicked
            | Counter::CampaignsTimedOut
            | Counter::CampaignsCrashed => "wasai_campaigns_total",
            Counter::WorkerRestarts => "wasai_worker_restarts_total",
            Counter::JournalRecords => "wasai_journal_records_total",
            Counter::JournalReplayed => "wasai_journal_replayed_total",
            Counter::Iterations => "wasai_iterations_total",
            Counter::SeedsExecuted => "wasai_seeds_executed_total",
            Counter::CoverageBranches => "wasai_coverage_branches_total",
            Counter::BranchSites => "wasai_branch_sites_total",
            Counter::Replays => "wasai_replays_total",
            Counter::Flips => "wasai_flips_total",
            Counter::SmtSat | Counter::SmtUnsat | Counter::SmtUnknown => "wasai_smt_queries_total",
            Counter::SmtPropagations => "wasai_smt_propagations_total",
            Counter::CacheLookupsCampaign | Counter::CacheLookupsFleet => {
                "wasai_smt_cache_lookups_total"
            }
            Counter::CacheHitsCampaign | Counter::CacheHitsFleet => "wasai_smt_cache_hits_total",
            Counter::CacheStoreDropped => "wasai_smt_cache_store_dropped_total",
            Counter::PrefixForks => "wasai_smt_prefix_forks_total",
            Counter::PortfolioRaces => "wasai_smt_portfolio_races_total",
            Counter::PortfolioSalvagedSat | Counter::PortfolioSalvagedUnsat => {
                "wasai_smt_portfolio_salvaged_total"
            }
            Counter::PortfolioDisagreements => "wasai_smt_portfolio_disagreements_total",
            Counter::VmInstructions => "wasai_vm_instructions_total",
            Counter::VmTapeCompiles => "wasai_vm_tape_compiles_total",
            Counter::VmSnapshotRestores => "wasai_vm_snapshot_restores_total",
            Counter::ObsListenerFailed => "wasai_obs_listener_failed_total",
            Counter::MetricsFramesMerged => "wasai_metrics_frames_merged_total",
            Counter::MetricsFramesRejected => "wasai_metrics_frames_rejected_total",
        }
    }

    /// The series label, if its family is labeled.
    pub fn label(self) -> Option<(&'static str, &'static str)> {
        match self {
            Counter::CampaignsOk => Some(("outcome", "ok")),
            Counter::CampaignsFailed => Some(("outcome", "failed")),
            Counter::CampaignsPanicked => Some(("outcome", "panicked")),
            Counter::CampaignsTimedOut => Some(("outcome", "timed-out")),
            Counter::CampaignsCrashed => Some(("outcome", "crashed")),
            Counter::SmtSat => Some(("outcome", "sat")),
            Counter::SmtUnsat => Some(("outcome", "unsat")),
            Counter::SmtUnknown => Some(("outcome", "unknown")),
            Counter::CacheLookupsCampaign | Counter::CacheHitsCampaign => {
                Some(("level", "campaign"))
            }
            Counter::CacheLookupsFleet | Counter::CacheHitsFleet => Some(("level", "fleet")),
            Counter::PortfolioSalvagedSat => Some(("outcome", "sat")),
            Counter::PortfolioSalvagedUnsat => Some(("outcome", "unsat")),
            _ => None,
        }
    }

    /// The family HELP text.
    pub fn help(self) -> &'static str {
        match self {
            Counter::CampaignsOk
            | Counter::CampaignsFailed
            | Counter::CampaignsPanicked
            | Counter::CampaignsTimedOut
            | Counter::CampaignsCrashed => "Campaigns finished, by outcome tag.",
            Counter::WorkerRestarts => {
                "Worker processes re-dispatched by the fleet supervisor after a death or stall."
            }
            Counter::JournalRecords => "Campaign outcomes appended to the durable journal.",
            Counter::JournalReplayed => {
                "Journaled campaign outcomes restored by --resume without re-running."
            }
            Counter::Iterations => "Fuzzing-loop iterations executed.",
            Counter::SeedsExecuted => "Seeds executed on the local chain.",
            Counter::CoverageBranches => {
                "New distinct branches discovered, summed across campaigns."
            }
            Counter::BranchSites => {
                "Coverable branch directions in prepared targets, summed once per campaign \
                 (coverage denominator)."
            }
            Counter::Replays => "Symbolic trace replays performed.",
            Counter::Flips => "Constraints flipped into adaptive seeds.",
            Counter::SmtSat | Counter::SmtUnsat | Counter::SmtUnknown => {
                "SMT flip queries answered, by verdict."
            }
            Counter::SmtPropagations => "SAT unit propagations charged to queries.",
            Counter::CacheLookupsCampaign | Counter::CacheLookupsFleet => {
                "Solver query-cache lookups, by cache level."
            }
            Counter::CacheHitsCampaign | Counter::CacheHitsFleet => {
                "Solver query-cache hits, by cache level."
            }
            Counter::CacheStoreDropped => {
                "Fleet query-cache entries lost to the capacity cap (refused or evicted)."
            }
            Counter::PrefixForks => "Queries answered by forking a shared-prefix SAT instance.",
            Counter::PortfolioRaces => {
                "Hard queries re-raced across portfolio CDCL configurations."
            }
            Counter::PortfolioSalvagedSat | Counter::PortfolioSalvagedUnsat => {
                "Portfolio races where a variant solved a query the reference \
                 configuration gave up on, by the variant's verdict (diagnostic \
                 only: the reported result stays the reference's)."
            }
            Counter::PortfolioDisagreements => {
                "Portfolio races where a variant contradicted the reference's \
                 definitive verdict (a soundness alarm)."
            }
            Counter::VmInstructions => "Wasm instructions interpreted by the VM.",
            Counter::VmTapeCompiles => "Modules lowered to threaded-code tapes by the fast path.",
            Counter::VmSnapshotRestores => {
                "Chain forks restored from a prepared post-setup snapshot."
            }
            Counter::ObsListenerFailed => {
                "Metrics listeners that never bound after the bounded retry loop \
                 (the run continued dark)."
            }
            Counter::MetricsFramesMerged => {
                "Worker registry snapshot frames merged into the fleet rollup."
            }
            Counter::MetricsFramesRejected => {
                "Worker registry snapshot frames dropped as stale after a re-dispatch."
            }
        }
    }
}

metric_enum! {
    /// Every gauge series.
    Gauge {
        /// `wasai_fleet_campaigns` — campaigns in the current sweep.
        FleetCampaigns,
        /// `wasai_campaigns_running` — campaigns currently executing.
        CampaignsRunning,
        /// `wasai_stalled_campaigns` — campaigns flagged by the stall
        /// detector right now.
        StalledCampaigns,
        /// `wasai_heartbeat_overflow` — workers sharing (aliasing) a
        /// heartbeat slot because the table's capacity was exceeded.
        HeartbeatOverflow,
    }
}

impl Gauge {
    /// The Prometheus metric family (gauges here are unlabeled, one series
    /// per family).
    pub fn family(self) -> &'static str {
        match self {
            Gauge::FleetCampaigns => "wasai_fleet_campaigns",
            Gauge::CampaignsRunning => "wasai_campaigns_running",
            Gauge::StalledCampaigns => "wasai_stalled_campaigns",
            Gauge::HeartbeatOverflow => "wasai_heartbeat_overflow",
        }
    }

    /// The family HELP text.
    pub fn help(self) -> &'static str {
        match self {
            Gauge::FleetCampaigns => "Campaigns scheduled in the current sweep.",
            Gauge::CampaignsRunning => "Campaigns currently executing on a worker.",
            Gauge::StalledCampaigns => {
                "Campaigns currently flagged by the heartbeat stall detector."
            }
            Gauge::HeartbeatOverflow => {
                "Workers aliasing a heartbeat slot because the table's capacity was exceeded."
            }
        }
    }
}

metric_enum! {
    /// Every wall-time histogram series (fixed log-spaced buckets, observed
    /// in microseconds, exposed in seconds).
    Histogram {
        /// `wasai_campaign_wall_seconds`
        CampaignWallSeconds,
        /// `wasai_replay_wall_seconds`
        ReplayWallSeconds,
        /// `wasai_solve_wall_seconds`
        SolveWallSeconds,
        /// `wasai_vm_tape_compile_wall_seconds`
        TapeCompileWallSeconds,
        /// `wasai_vm_snapshot_restore_wall_seconds`
        SnapshotRestoreWallSeconds,
    }
}

impl Histogram {
    /// The Prometheus metric family.
    pub fn family(self) -> &'static str {
        match self {
            Histogram::CampaignWallSeconds => "wasai_campaign_wall_seconds",
            Histogram::ReplayWallSeconds => "wasai_replay_wall_seconds",
            Histogram::SolveWallSeconds => "wasai_solve_wall_seconds",
            Histogram::TapeCompileWallSeconds => "wasai_vm_tape_compile_wall_seconds",
            Histogram::SnapshotRestoreWallSeconds => "wasai_vm_snapshot_restore_wall_seconds",
        }
    }

    /// The family HELP text.
    pub fn help(self) -> &'static str {
        match self {
            Histogram::CampaignWallSeconds => "Wall-clock duration of one campaign.",
            Histogram::ReplayWallSeconds => "Wall-clock duration of one symbolic replay.",
            Histogram::SolveWallSeconds => "Wall-clock duration of one SMT flip query.",
            Histogram::TapeCompileWallSeconds => {
                "Wall-clock duration of lowering one module to tapes."
            }
            Histogram::SnapshotRestoreWallSeconds => {
                "Wall-clock duration of forking the prepared chain snapshot."
            }
        }
    }
}

/// Upper bounds of the histogram buckets, in microseconds. The final
/// implicit bucket is `+Inf`.
pub const BUCKET_BOUNDS_US: [u64; 8] = [
    100,        // 100 µs
    1_000,      // 1 ms
    10_000,     // 10 ms
    100_000,    // 100 ms
    1_000_000,  // 1 s
    5_000_000,  // 5 s
    30_000_000, // 30 s
    60_000_000, // 60 s
];

/// Number of buckets including the `+Inf` overflow bucket.
pub const NUM_BUCKETS: usize = BUCKET_BOUNDS_US.len() + 1;

/// Per-histogram storage: one sharded row per bucket plus sharded sum and
/// count rows.
#[derive(Debug)]
struct HistCells {
    buckets: [ShardRow; NUM_BUCKETS],
    sum_us: ShardRow,
    count: ShardRow,
}

impl HistCells {
    // Array-repeat initializer, never read as a const.
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: HistCells = HistCells {
        buckets: [ZERO_ROW; NUM_BUCKETS],
        sum_us: ZERO_ROW,
        count: ZERO_ROW,
    };
}

/// A point-in-time reading of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket (non-cumulative) observation counts; the last entry is the
    /// `+Inf` overflow bucket.
    pub buckets: [u64; NUM_BUCKETS],
    /// Sum of all observed durations, in microseconds.
    pub sum_us: u64,
    /// Number of observations.
    pub count: u64,
}

impl HistSnapshot {
    /// Cumulative bucket counts in `le` order (what Prometheus exposes); the
    /// last entry equals [`HistSnapshot::count`].
    pub fn cumulative(&self) -> [u64; NUM_BUCKETS] {
        let mut out = [0u64; NUM_BUCKETS];
        let mut acc = 0u64;
        for (slot, &b) in out.iter_mut().zip(self.buckets.iter()) {
            acc += b;
            *slot = acc;
        }
        out
    }
}

/// The metrics registry: every series' storage plus the enabled flag.
///
/// Use [`crate::global`] for the process-wide instance the instrumented hot
/// paths write to; tests construct private instances with [`Registry::new`]
/// so exact-total assertions cannot race with unrelated code.
#[derive(Debug)]
pub struct Registry {
    enabled: AtomicBool,
    counters: [ShardRow; Counter::COUNT],
    gauges: [AtomicU64; Gauge::COUNT],
    hists: [HistCells; Histogram::COUNT],
}

impl Registry {
    /// A fresh registry with every series at zero, **disabled**.
    pub const fn new() -> Registry {
        // Array-repeat initializer, never read as a const.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO_GAUGE: AtomicU64 = AtomicU64::new(0);
        Registry {
            enabled: AtomicBool::new(false),
            counters: [ZERO_ROW; Counter::COUNT],
            gauges: [ZERO_GAUGE; Gauge::COUNT],
            hists: [HistCells::ZERO; Histogram::COUNT],
        }
    }

    /// Turn writes on.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Release);
    }

    /// Turn writes off (writes become one-load no-ops again).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// Whether writes are currently recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Add `n` to a counter (no-op while disabled).
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        if !self.is_enabled() || n == 0 {
            return;
        }
        self.counters[c as usize][my_shard()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Increment a counter by one (no-op while disabled).
    #[inline]
    pub fn inc(&self, c: Counter) {
        self.add(c, 1);
    }

    /// The current summed value of a counter (readable even while disabled).
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Set a gauge to an absolute value (no-op while disabled).
    pub fn gauge_set(&self, g: Gauge, v: u64) {
        if self.is_enabled() {
            self.gauges[g as usize].store(v, Ordering::Relaxed);
        }
    }

    /// Add to a gauge (no-op while disabled).
    pub fn gauge_add(&self, g: Gauge, n: u64) {
        if self.is_enabled() {
            self.gauges[g as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Subtract from a gauge, saturating at zero (no-op while disabled).
    pub fn gauge_sub(&self, g: Gauge, n: u64) {
        if self.is_enabled() {
            let cell = &self.gauges[g as usize];
            let mut cur = cell.load(Ordering::Relaxed);
            loop {
                let next = cur.saturating_sub(n);
                match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// The current value of a gauge.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize].load(Ordering::Relaxed)
    }

    /// Record one wall-time observation, in microseconds (no-op while
    /// disabled).
    #[inline]
    pub fn observe_us(&self, h: Histogram, us: u64) {
        if !self.is_enabled() {
            return;
        }
        let cells = &self.hists[h as usize];
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(NUM_BUCKETS - 1);
        let shard = my_shard();
        cells.buckets[idx][shard].0.fetch_add(1, Ordering::Relaxed);
        cells.sum_us[shard].0.fetch_add(us, Ordering::Relaxed);
        cells.count[shard].0.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one wall-time observation from a [`std::time::Duration`].
    #[inline]
    pub fn observe(&self, h: Histogram, d: std::time::Duration) {
        self.observe_us(h, d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Merge a histogram delta (another registry's observations, e.g. a
    /// worker snapshot) into this histogram's cells (no-op while disabled).
    ///
    /// Unlike [`Registry::observe_us`] this preserves the source's bucket
    /// placement and sum exactly, so fleet-merged histograms keep correct
    /// sums instead of re-bucketing a lossy average.
    pub fn merge_hist(&self, h: Histogram, delta: &HistSnapshot) {
        if !self.is_enabled() || (delta.count == 0 && delta.sum_us == 0) {
            return;
        }
        let cells = &self.hists[h as usize];
        let shard = my_shard();
        for (row, &n) in cells.buckets.iter().zip(delta.buckets.iter()) {
            if n > 0 {
                row[shard].0.fetch_add(n, Ordering::Relaxed);
            }
        }
        cells.sum_us[shard]
            .0
            .fetch_add(delta.sum_us, Ordering::Relaxed);
        cells.count[shard]
            .0
            .fetch_add(delta.count, Ordering::Relaxed);
    }

    /// A point-in-time reading of one histogram.
    pub fn histogram(&self, h: Histogram) -> HistSnapshot {
        let cells = &self.hists[h as usize];
        let sum_row =
            |row: &ShardRow| -> u64 { row.iter().map(|s| s.0.load(Ordering::Relaxed)).sum() };
        let mut buckets = [0u64; NUM_BUCKETS];
        for (slot, row) in buckets.iter_mut().zip(cells.buckets.iter()) {
            *slot = sum_row(row);
        }
        HistSnapshot {
            buckets,
            sum_us: sum_row(&cells.sum_us),
            count: sum_row(&cells.count),
        }
    }

    /// Reset every series to zero (the enabled flag is untouched). Intended
    /// for sweep starts in single-sweep processes and for tests; concurrent
    /// writers may land increments on either side of the reset.
    pub fn reset(&self) {
        for row in &self.counters {
            for s in row {
                s.0.store(0, Ordering::Relaxed);
            }
        }
        for g in &self.gauges {
            g.store(0, Ordering::Relaxed);
        }
        for cells in &self.hists {
            for row in &cells.buckets {
                for s in row {
                    s.0.store(0, Ordering::Relaxed);
                }
            }
            for s in &cells.sum_us {
                s.0.store(0, Ordering::Relaxed);
            }
            for s in &cells.count {
                s.0.store(0, Ordering::Relaxed);
            }
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::new();
        r.inc(Counter::SeedsExecuted);
        r.gauge_set(Gauge::FleetCampaigns, 9);
        r.observe_us(Histogram::SolveWallSeconds, 5);
        assert_eq!(r.counter(Counter::SeedsExecuted), 0);
        assert_eq!(r.gauge(Gauge::FleetCampaigns), 0);
        assert_eq!(r.histogram(Histogram::SolveWallSeconds).count, 0);
    }

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let r = Registry::new();
        r.enable();
        r.add(Counter::VmInstructions, 41);
        r.inc(Counter::VmInstructions);
        assert_eq!(r.counter(Counter::VmInstructions), 42);

        r.gauge_set(Gauge::FleetCampaigns, 24);
        r.gauge_add(Gauge::CampaignsRunning, 3);
        r.gauge_sub(Gauge::CampaignsRunning, 1);
        r.gauge_sub(Gauge::StalledCampaigns, 5); // saturates, no underflow
        assert_eq!(r.gauge(Gauge::FleetCampaigns), 24);
        assert_eq!(r.gauge(Gauge::CampaignsRunning), 2);
        assert_eq!(r.gauge(Gauge::StalledCampaigns), 0);

        r.observe_us(Histogram::SolveWallSeconds, 50); // ≤ 100µs bucket
        r.observe_us(Histogram::SolveWallSeconds, 2_000_000); // ≤ 5s bucket
        r.observe_us(Histogram::SolveWallSeconds, u64::MAX); // +Inf bucket
        let h = r.histogram(Histogram::SolveWallSeconds);
        assert_eq!(h.count, 3);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[5], 1);
        assert_eq!(h.buckets[NUM_BUCKETS - 1], 1);
        let cum = h.cumulative();
        assert_eq!(cum[NUM_BUCKETS - 1], h.count);
        assert!(cum.windows(2).all(|w| w[0] <= w[1]), "monotone cumulative");
    }

    #[test]
    fn reset_zeroes_every_series() {
        let r = Registry::new();
        r.enable();
        r.add(Counter::Flips, 7);
        r.gauge_set(Gauge::FleetCampaigns, 7);
        r.observe_us(Histogram::CampaignWallSeconds, 7);
        r.reset();
        assert_eq!(r.counter(Counter::Flips), 0);
        assert_eq!(r.gauge(Gauge::FleetCampaigns), 0);
        assert_eq!(r.histogram(Histogram::CampaignWallSeconds).count, 0);
        assert!(r.is_enabled(), "reset must not flip the enabled latch");
    }

    #[test]
    fn sharded_writes_sum_exactly_across_threads() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let r = Registry::new();
        r.enable();
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for i in 0..PER_THREAD {
                        r.inc(Counter::SeedsExecuted);
                        r.add(Counter::SmtPropagations, 3);
                        r.observe_us(Histogram::SolveWallSeconds, i % 2_000);
                    }
                });
            }
        });
        assert_eq!(
            r.counter(Counter::SeedsExecuted),
            THREADS as u64 * PER_THREAD
        );
        assert_eq!(
            r.counter(Counter::SmtPropagations),
            THREADS as u64 * PER_THREAD * 3
        );
        let h = r.histogram(Histogram::SolveWallSeconds);
        assert_eq!(h.count, THREADS as u64 * PER_THREAD);
        assert_eq!(h.cumulative()[NUM_BUCKETS - 1], h.count);
    }

    #[test]
    fn series_enumerations_are_family_grouped() {
        // Exposition emits HELP/TYPE once per family, so same-family series
        // must be adjacent in ALL.
        let mut seen = Vec::new();
        for c in Counter::ALL {
            let fam = c.family();
            if seen.last() != Some(&fam) {
                assert!(!seen.contains(&fam), "family {fam} split in Counter::ALL");
                seen.push(fam);
            }
        }
    }
}
