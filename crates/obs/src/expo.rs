//! Metric exposition: Prometheus text format v0.0.4 and a one-shot JSON
//! dump, both rendered from a registry snapshot.
//!
//! The two renderers share the same metric families and label sets (see
//! [`crate::registry`]) so a scraped `/metrics` page, a `--metrics-dump`
//! file, and `wasai stats --format json` all correlate by name.

use crate::registry::{
    Counter, Gauge, HistSnapshot, Histogram, Registry, BUCKET_BOUNDS_US, NUM_BUCKETS,
};
use crate::snapshot::RegistrySnapshot;
use std::fmt::Write as _;

/// Escape a label value per the Prometheus text format: backslash, double
/// quote, and newline must be escaped inside the quoted value.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape a HELP string: backslash and newline (but not quotes) are escaped.
pub fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn series_name(family: &str, label: Option<(&str, &str)>) -> String {
    series_name_sharded(family, label, None)
}

/// Series name with an optional trailing `shard="N"` label — the fleet
/// exposition's per-worker series. `None` renders the plain (fleet-total)
/// series, so single-registry pages are byte-identical to the pre-fleet
/// format.
fn series_name_sharded(family: &str, label: Option<(&str, &str)>, shard: Option<usize>) -> String {
    let mut labels: Vec<String> = Vec::new();
    if let Some((k, v)) = label {
        labels.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if let Some(n) = shard {
        labels.push(format!("shard=\"{n}\""));
    }
    if labels.is_empty() {
        family.to_string()
    } else {
        format!("{family}{{{}}}", labels.join(","))
    }
}

/// The `,shard="N"` insert for histogram bucket label sets (which already
/// carry `le`).
fn shard_tail(shard: Option<usize>) -> String {
    match shard {
        Some(n) => format!(",shard=\"{n}\""),
        None => String::new(),
    }
}

/// Format a bucket upper bound (microseconds) as Prometheus seconds.
/// Bounds are exact decimal fractions so this never loses precision.
fn le_seconds(us: u64) -> String {
    let secs = us / 1_000_000;
    let frac = us % 1_000_000;
    if frac == 0 {
        format!("{secs}")
    } else {
        let s = format!("{frac:06}");
        format!("{secs}.{}", s.trim_end_matches('0'))
    }
}

/// Render the full registry in Prometheus text exposition format v0.0.4.
///
/// Families appear in a fixed order (counters, then gauges, then
/// histograms), each preceded by exactly one `# HELP` and one `# TYPE`
/// line; histogram buckets are cumulative and end with `le="+Inf"` equal to
/// `_count`.
pub fn render_prometheus(reg: &Registry) -> String {
    render_prometheus_fleet(reg, &[])
}

/// [`render_prometheus`] extended with per-worker `shard="N"` series from a
/// supervised sweep's merged snapshot store. `reg` holds the fleet totals
/// (the supervisor's own registry, with worker deltas already folded in);
/// each shard snapshot renders right after its total series, under the same
/// HELP/TYPE header. With no shards the page is byte-identical to
/// [`render_prometheus`].
pub fn render_prometheus_fleet(reg: &Registry, shards: &[(usize, RegistrySnapshot)]) -> String {
    let mut out = String::with_capacity(4096);

    let mut last_family = "";
    for &c in Counter::ALL {
        let fam = c.family();
        if fam != last_family {
            let _ = writeln!(out, "# HELP {fam} {}", escape_help(c.help()));
            let _ = writeln!(out, "# TYPE {fam} counter");
            last_family = fam;
        }
        let _ = writeln!(out, "{} {}", series_name(fam, c.label()), reg.counter(c));
        for (id, snap) in shards {
            let _ = writeln!(
                out,
                "{} {}",
                series_name_sharded(fam, c.label(), Some(*id)),
                snap.counters[c as usize]
            );
        }
    }

    for &g in Gauge::ALL {
        let fam = g.family();
        let _ = writeln!(out, "# HELP {fam} {}", escape_help(g.help()));
        let _ = writeln!(out, "# TYPE {fam} gauge");
        let _ = writeln!(out, "{fam} {}", reg.gauge(g));
        for (id, snap) in shards {
            let _ = writeln!(
                out,
                "{} {}",
                series_name_sharded(fam, None, Some(*id)),
                snap.gauges[g as usize]
            );
        }
    }

    for &h in Histogram::ALL {
        let fam = h.family();
        let _ = writeln!(out, "# HELP {fam} {}", escape_help(h.help()));
        let _ = writeln!(out, "# TYPE {fam} histogram");
        write_hist_block(&mut out, fam, &reg.histogram(h), None);
        for (id, snap) in shards {
            write_hist_block(&mut out, fam, &snap.hists[h as usize], Some(*id));
        }
    }

    out
}

/// One histogram's bucket/sum/count lines, optionally shard-labeled.
fn write_hist_block(out: &mut String, fam: &str, snap: &HistSnapshot, shard: Option<usize>) {
    let cum = snap.cumulative();
    let tail = shard_tail(shard);
    for (i, &bound) in BUCKET_BOUNDS_US.iter().enumerate() {
        let _ = writeln!(
            out,
            "{fam}_bucket{{le=\"{}\"{tail}}} {}",
            le_seconds(bound),
            cum[i]
        );
    }
    let _ = writeln!(
        out,
        "{fam}_bucket{{le=\"+Inf\"{tail}}} {}",
        cum[NUM_BUCKETS - 1]
    );
    let _ = writeln!(
        out,
        "{}_sum{} {}",
        fam,
        series_suffix(shard),
        sum_seconds(snap)
    );
    let _ = writeln!(out, "{}_count{} {}", fam, series_suffix(shard), snap.count);
}

/// The `{shard="N"}` suffix for `_sum`/`_count` series (no other labels).
fn series_suffix(shard: Option<usize>) -> String {
    match shard {
        Some(n) => format!("{{shard=\"{n}\"}}"),
        None => String::new(),
    }
}

/// Render a histogram's sum (stored in µs) as seconds with full precision.
fn sum_seconds(snap: &HistSnapshot) -> String {
    le_seconds(snap.sum_us)
}

/// Render the full registry as a single JSON object keyed by series name
/// (Prometheus series syntax, so live and offline views correlate by the
/// exact same strings). Histograms dump cumulative buckets plus sum/count.
pub fn render_json(reg: &Registry) -> String {
    render_json_fleet(reg, &[])
}

/// [`render_json`] extended with per-worker `shard="N"` keyed entries —
/// the dump-file twin of [`render_prometheus_fleet`]. With no shards the
/// output is byte-identical to [`render_json`], which `--metrics-dump`
/// consumers (CI greps, `wasai stats`) rely on.
pub fn render_json_fleet(reg: &Registry, shards: &[(usize, RegistrySnapshot)]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    let mut first = true;
    let mut field = |out: &mut String, key: &str, val: String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(out, "  \"{}\": {val}", escape_json_key(key));
    };

    for &c in Counter::ALL {
        field(
            &mut out,
            &series_name(c.family(), c.label()),
            reg.counter(c).to_string(),
        );
        for (id, snap) in shards {
            field(
                &mut out,
                &series_name_sharded(c.family(), c.label(), Some(*id)),
                snap.counters[c as usize].to_string(),
            );
        }
    }
    for &g in Gauge::ALL {
        field(&mut out, g.family(), reg.gauge(g).to_string());
        for (id, snap) in shards {
            field(
                &mut out,
                &series_name_sharded(g.family(), None, Some(*id)),
                snap.gauges[g as usize].to_string(),
            );
        }
    }
    for &h in Histogram::ALL {
        let fam = h.family();
        let mut block = |out: &mut String, snap: &HistSnapshot, shard: Option<usize>| {
            let cum = snap.cumulative();
            let tail = shard_tail(shard);
            for (i, &bound) in BUCKET_BOUNDS_US.iter().enumerate() {
                field(
                    out,
                    &format!("{fam}_bucket{{le=\"{}\"{tail}}}", le_seconds(bound)),
                    cum[i].to_string(),
                );
            }
            field(
                out,
                &format!("{fam}_bucket{{le=\"+Inf\"{tail}}}"),
                cum[NUM_BUCKETS - 1].to_string(),
            );
            field(
                out,
                &format!("{fam}_sum{}", series_suffix(shard)),
                sum_seconds(snap),
            );
            field(
                out,
                &format!("{fam}_count{}", series_suffix(shard)),
                snap.count.to_string(),
            );
        };
        block(&mut out, &reg.histogram(h), None);
        for (id, snap) in shards {
            block(&mut out, &snap.hists[h as usize], Some(*id));
        }
    }
    out.push_str("\n}\n");
    out
}

fn escape_json_key(k: &str) -> String {
    let mut out = String::with_capacity(k.len());
    for c in k.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// One parsed sample from a Prometheus text exposition page: the full
/// series name (family plus rendered label set, exactly as emitted) and its
/// value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Series name including any `{label="value"}` suffix.
    pub series: String,
    /// Sample value. `+Inf`/`-Inf`/`NaN` parse to the matching float.
    pub value: f64,
}

/// Parse a Prometheus text exposition page back into samples — the inverse
/// of [`render_prometheus`] for the subset this crate emits (no timestamps,
/// single-label series). Comment and blank lines are skipped.
///
/// # Errors
///
/// Returns a message naming the first malformed line (missing value
/// separator or unparsable sample value) instead of panicking, so
/// round-trip consumers — tests, scrape post-processors — degrade cleanly
/// on garbage input.
pub fn parse_prometheus(text: &str) -> Result<Vec<Sample>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // The value is the token after the last space *outside* a label
        // set: label values may themselves contain spaces, so split at the
        // last space after the closing brace (or the last space when there
        // are no labels).
        let split_at = match line.rfind('}') {
            Some(brace) => line[brace..].find(' ').map(|off| brace + off),
            None => line.rfind(' '),
        };
        let (series, value) = match split_at {
            Some(i) if i + 1 < line.len() => (&line[..i], line[i + 1..].trim()),
            _ => {
                return Err(format!(
                    "line {}: expected `series value`, got {raw:?}",
                    lineno + 1
                ))
            }
        };
        let value: f64 = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v
                .parse()
                .map_err(|e| format!("line {}: bad sample value {v:?}: {e}", lineno + 1))?,
        };
        out.push(Sample {
            series: series.trim().to_string(),
            value,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn enabled_registry() -> Registry {
        let r = Registry::new();
        r.enable();
        r
    }

    #[test]
    fn help_and_type_precede_every_family_exactly_once() {
        let r = enabled_registry();
        let text = render_prometheus(&r);
        let lines: Vec<&str> = text.lines().collect();
        let mut families_seen = std::collections::HashSet::new();
        for (i, line) in lines.iter().enumerate() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let fam = rest.split_whitespace().next().unwrap();
                assert!(
                    families_seen.insert(fam.to_string()),
                    "duplicate HELP for {fam}"
                );
                let type_line = lines[i + 1];
                assert!(
                    type_line.starts_with(&format!("# TYPE {fam} ")),
                    "HELP for {fam} not immediately followed by its TYPE: {type_line}"
                );
            }
        }
        // Every sample line's family must have been introduced by HELP/TYPE.
        for line in &lines {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let name = line.split(['{', ' ']).next().unwrap();
            let fam = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .unwrap_or(name);
            assert!(
                families_seen.contains(fam),
                "sample {name} has no HELP/TYPE header (family {fam})"
            );
        }
    }

    #[test]
    fn counter_values_round_trip_through_text() {
        let r = enabled_registry();
        r.add(Counter::SeedsExecuted, 42);
        r.add(Counter::CampaignsTimedOut, 3);
        let text = render_prometheus(&r);
        assert!(text.contains("wasai_seeds_executed_total 42\n"), "{text}");
        assert!(
            text.contains("wasai_campaigns_total{outcome=\"timed-out\"} 3\n"),
            "{text}"
        );
        assert!(text.contains("# TYPE wasai_campaigns_total counter\n"));
    }

    #[test]
    fn histogram_buckets_are_monotone_and_inf_equals_count() {
        let r = enabled_registry();
        for us in [10, 150, 2_000, 2_000, 50_000, 2_000_000, 90_000_000] {
            r.observe_us(Histogram::SolveWallSeconds, us);
        }
        let samples = parse_prometheus(&render_prometheus(&r)).expect("well-formed exposition");
        let mut prev = 0.0f64;
        let mut inf = None;
        let mut count = None;
        for s in &samples {
            if let Some(rest) = s
                .series
                .strip_prefix("wasai_solve_wall_seconds_bucket{le=\"")
            {
                let le = rest.trim_end_matches("\"}");
                assert!(
                    s.value >= prev,
                    "bucket le={le} decreased: {} < {prev}",
                    s.value
                );
                prev = s.value;
                if le == "+Inf" {
                    inf = Some(s.value);
                }
            } else if s.series == "wasai_solve_wall_seconds_count" {
                count = Some(s.value);
            }
        }
        assert_eq!(inf, Some(7.0));
        assert_eq!(count, Some(7.0), "le=\"+Inf\" must equal _count");
    }

    #[test]
    fn parser_round_trips_the_full_page() {
        let r = enabled_registry();
        r.add(Counter::SeedsExecuted, 17);
        r.observe_us(Histogram::ReplayWallSeconds, 1_000);
        let samples = parse_prometheus(&render_prometheus(&r)).expect("well-formed exposition");
        let get = |name: &str| {
            samples
                .iter()
                .find(|s| s.series == name)
                .map(|s| s.value)
                .unwrap_or(f64::NAN)
        };
        assert_eq!(get("wasai_seeds_executed_total"), 17.0);
        assert_eq!(get("wasai_campaigns_total{outcome=\"ok\"}"), 0.0);
        assert_eq!(get("wasai_replay_wall_seconds_count"), 1.0);
        assert_eq!(get("wasai_replay_wall_seconds_bucket{le=\"+Inf\"}"), 1.0);
    }

    #[test]
    fn parser_rejects_malformed_input_without_panicking() {
        // A bare series with no value used to panic the round-trip parse
        // (`.unwrap()` on the value); both malformations must now surface
        // as errors naming the offending line.
        let err = parse_prometheus("wasai_seeds_executed_total\n").expect_err("no value");
        assert!(err.contains("line 1"), "{err}");
        let err = parse_prometheus("ok_metric 1\nwasai_seeds_executed_total forty-two\n")
            .expect_err("non-numeric value");
        assert!(err.contains("line 2") && err.contains("forty-two"), "{err}");
        // Label values containing spaces still parse.
        let samples = parse_prometheus("m{outcome=\"timed out\"} 3\n").expect("spaced label");
        assert_eq!(samples[0].series, "m{outcome=\"timed out\"}");
        assert_eq!(samples[0].value, 3.0);
    }

    #[test]
    fn bucket_bounds_render_as_seconds() {
        assert_eq!(le_seconds(100), "0.0001");
        assert_eq!(le_seconds(1_000), "0.001");
        assert_eq!(le_seconds(1_000_000), "1");
        assert_eq!(le_seconds(5_000_000), "5");
        assert_eq!(le_seconds(1_500_000), "1.5");
    }

    #[test]
    fn label_escaping_covers_quote_backslash_newline() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        assert_eq!(
            escape_help("line\nbreak \\ \"q\""),
            "line\\nbreak \\\\ \"q\""
        );
    }

    #[test]
    fn fleet_renderers_with_no_shards_are_byte_identical_to_plain() {
        let r = enabled_registry();
        r.add(Counter::SeedsExecuted, 9);
        r.observe_us(Histogram::SolveWallSeconds, 2_000);
        assert_eq!(render_prometheus(&r), render_prometheus_fleet(&r, &[]));
        assert_eq!(render_json(&r), render_json_fleet(&r, &[]));
    }

    #[test]
    fn fleet_render_emits_shard_labeled_series_after_totals() {
        let r = enabled_registry();
        r.add(Counter::SeedsExecuted, 30);
        r.add(Counter::CampaignsOk, 3);
        r.observe_us(Histogram::CampaignWallSeconds, 1_000);

        let mut s0 = RegistrySnapshot::zero();
        s0.counters[Counter::SeedsExecuted as usize] = 10;
        s0.counters[Counter::CampaignsOk as usize] = 1;
        s0.gauges[Gauge::CampaignsRunning as usize] = 2;
        s0.hists[Histogram::CampaignWallSeconds as usize].count = 1;
        s0.hists[Histogram::CampaignWallSeconds as usize].sum_us = 1_000;
        s0.hists[Histogram::CampaignWallSeconds as usize].buckets[2] = 1;
        let mut s1 = RegistrySnapshot::zero();
        s1.counters[Counter::SeedsExecuted as usize] = 20;
        s1.counters[Counter::CampaignsOk as usize] = 2;

        let shards = vec![(0usize, s0), (1usize, s1)];
        let text = render_prometheus_fleet(&r, &shards);
        assert!(
            text.contains("wasai_seeds_executed_total{shard=\"0\"} 10\n"),
            "{text}"
        );
        assert!(
            text.contains("wasai_seeds_executed_total{shard=\"1\"} 20\n"),
            "{text}"
        );
        assert!(
            text.contains("wasai_campaigns_total{outcome=\"ok\",shard=\"0\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("wasai_campaigns_running{shard=\"0\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("wasai_campaign_wall_seconds_count{shard=\"0\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("wasai_campaign_wall_seconds_sum{shard=\"0\"} 0.001\n"),
            "{text}"
        );
        // The fleet-total series still render unlabeled before the shards.
        let total_at = text.find("wasai_seeds_executed_total 30").unwrap();
        let shard_at = text
            .find("wasai_seeds_executed_total{shard=\"0\"}")
            .unwrap();
        assert!(total_at < shard_at, "total must precede shard series");
        // Shard-labeled bucket lines carry both le and shard labels and the
        // whole page still parses.
        assert!(
            text.contains("wasai_campaign_wall_seconds_bucket{le=\"+Inf\",shard=\"0\"} 1\n"),
            "{text}"
        );
        let samples = parse_prometheus(&text).expect("fleet page parses");
        assert!(samples
            .iter()
            .any(|s| s.series == "wasai_seeds_executed_total{shard=\"1\"}" && s.value == 20.0));

        let json = render_json_fleet(&r, &shards);
        assert!(
            json.contains("\"wasai_seeds_executed_total{shard=\\\"1\\\"}\": 20"),
            "{json}"
        );
        assert!(
            json.contains("\"wasai_campaign_wall_seconds_sum{shard=\\\"0\\\"}\": 0.001"),
            "{json}"
        );
    }

    #[test]
    fn json_dump_shares_prometheus_series_names() {
        let r = enabled_registry();
        r.add(Counter::SmtSat, 5);
        r.observe_us(Histogram::ReplayWallSeconds, 500);
        let json = render_json(&r);
        assert!(
            json.contains("\"wasai_smt_queries_total{outcome=\\\"sat\\\"}\": 5"),
            "{json}"
        );
        assert!(
            json.contains("\"wasai_replay_wall_seconds_count\": 1"),
            "{json}"
        );
        // Parseable by the repo's own minimal JSON field splitter: one
        // object, string keys, numeric values.
        assert!(json.starts_with("{\n") && json.ends_with("\n}\n"));
    }
}
