//! Metric exposition: Prometheus text format v0.0.4 and a one-shot JSON
//! dump, both rendered from a registry snapshot.
//!
//! The two renderers share the same metric families and label sets (see
//! [`crate::registry`]) so a scraped `/metrics` page, a `--metrics-dump`
//! file, and `wasai stats --format json` all correlate by name.

use crate::registry::{
    Counter, Gauge, HistSnapshot, Histogram, Registry, BUCKET_BOUNDS_US, NUM_BUCKETS,
};
use std::fmt::Write as _;

/// Escape a label value per the Prometheus text format: backslash, double
/// quote, and newline must be escaped inside the quoted value.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape a HELP string: backslash and newline (but not quotes) are escaped.
pub fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn series_name(family: &str, label: Option<(&str, &str)>) -> String {
    match label {
        Some((k, v)) => format!("{family}{{{k}=\"{}\"}}", escape_label_value(v)),
        None => family.to_string(),
    }
}

/// Format a bucket upper bound (microseconds) as Prometheus seconds.
/// Bounds are exact decimal fractions so this never loses precision.
fn le_seconds(us: u64) -> String {
    let secs = us / 1_000_000;
    let frac = us % 1_000_000;
    if frac == 0 {
        format!("{secs}")
    } else {
        let s = format!("{frac:06}");
        format!("{secs}.{}", s.trim_end_matches('0'))
    }
}

/// Render the full registry in Prometheus text exposition format v0.0.4.
///
/// Families appear in a fixed order (counters, then gauges, then
/// histograms), each preceded by exactly one `# HELP` and one `# TYPE`
/// line; histogram buckets are cumulative and end with `le="+Inf"` equal to
/// `_count`.
pub fn render_prometheus(reg: &Registry) -> String {
    let mut out = String::with_capacity(4096);

    let mut last_family = "";
    for &c in Counter::ALL {
        let fam = c.family();
        if fam != last_family {
            let _ = writeln!(out, "# HELP {fam} {}", escape_help(c.help()));
            let _ = writeln!(out, "# TYPE {fam} counter");
            last_family = fam;
        }
        let _ = writeln!(out, "{} {}", series_name(fam, c.label()), reg.counter(c));
    }

    for &g in Gauge::ALL {
        let fam = g.family();
        let _ = writeln!(out, "# HELP {fam} {}", escape_help(g.help()));
        let _ = writeln!(out, "# TYPE {fam} gauge");
        let _ = writeln!(out, "{fam} {}", reg.gauge(g));
    }

    for &h in Histogram::ALL {
        let fam = h.family();
        let snap = reg.histogram(h);
        let _ = writeln!(out, "# HELP {fam} {}", escape_help(h.help()));
        let _ = writeln!(out, "# TYPE {fam} histogram");
        let cum = snap.cumulative();
        for (i, &bound) in BUCKET_BOUNDS_US.iter().enumerate() {
            let _ = writeln!(
                out,
                "{fam}_bucket{{le=\"{}\"}} {}",
                le_seconds(bound),
                cum[i]
            );
        }
        let _ = writeln!(out, "{fam}_bucket{{le=\"+Inf\"}} {}", cum[NUM_BUCKETS - 1]);
        let _ = writeln!(out, "{fam}_sum {}", sum_seconds(&snap));
        let _ = writeln!(out, "{fam}_count {}", snap.count);
    }

    out
}

/// Render a histogram's sum (stored in µs) as seconds with full precision.
fn sum_seconds(snap: &HistSnapshot) -> String {
    le_seconds(snap.sum_us)
}

/// Render the full registry as a single JSON object keyed by series name
/// (Prometheus series syntax, so live and offline views correlate by the
/// exact same strings). Histograms dump cumulative buckets plus sum/count.
pub fn render_json(reg: &Registry) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    let mut first = true;
    let mut field = |out: &mut String, key: &str, val: String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(out, "  \"{}\": {val}", escape_json_key(key));
    };

    for &c in Counter::ALL {
        field(
            &mut out,
            &series_name(c.family(), c.label()),
            reg.counter(c).to_string(),
        );
    }
    for &g in Gauge::ALL {
        field(&mut out, g.family(), reg.gauge(g).to_string());
    }
    for &h in Histogram::ALL {
        let fam = h.family();
        let snap = reg.histogram(h);
        let cum = snap.cumulative();
        for (i, &bound) in BUCKET_BOUNDS_US.iter().enumerate() {
            field(
                &mut out,
                &format!("{fam}_bucket{{le=\"{}\"}}", le_seconds(bound)),
                cum[i].to_string(),
            );
        }
        field(
            &mut out,
            &format!("{fam}_bucket{{le=\"+Inf\"}}"),
            cum[NUM_BUCKETS - 1].to_string(),
        );
        field(&mut out, &format!("{fam}_sum"), sum_seconds(&snap));
        field(&mut out, &format!("{fam}_count"), snap.count.to_string());
    }
    out.push_str("\n}\n");
    out
}

fn escape_json_key(k: &str) -> String {
    let mut out = String::with_capacity(k.len());
    for c in k.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn enabled_registry() -> Registry {
        let r = Registry::new();
        r.enable();
        r
    }

    #[test]
    fn help_and_type_precede_every_family_exactly_once() {
        let r = enabled_registry();
        let text = render_prometheus(&r);
        let lines: Vec<&str> = text.lines().collect();
        let mut families_seen = std::collections::HashSet::new();
        for (i, line) in lines.iter().enumerate() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let fam = rest.split_whitespace().next().unwrap();
                assert!(
                    families_seen.insert(fam.to_string()),
                    "duplicate HELP for {fam}"
                );
                let type_line = lines[i + 1];
                assert!(
                    type_line.starts_with(&format!("# TYPE {fam} ")),
                    "HELP for {fam} not immediately followed by its TYPE: {type_line}"
                );
            }
        }
        // Every sample line's family must have been introduced by HELP/TYPE.
        for line in &lines {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let name = line.split(['{', ' ']).next().unwrap();
            let fam = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .unwrap_or(name);
            assert!(
                families_seen.contains(fam),
                "sample {name} has no HELP/TYPE header (family {fam})"
            );
        }
    }

    #[test]
    fn counter_values_round_trip_through_text() {
        let r = enabled_registry();
        r.add(Counter::SeedsExecuted, 42);
        r.add(Counter::CampaignsTimedOut, 3);
        let text = render_prometheus(&r);
        assert!(text.contains("wasai_seeds_executed_total 42\n"), "{text}");
        assert!(
            text.contains("wasai_campaigns_total{outcome=\"timed-out\"} 3\n"),
            "{text}"
        );
        assert!(text.contains("# TYPE wasai_campaigns_total counter\n"));
    }

    #[test]
    fn histogram_buckets_are_monotone_and_inf_equals_count() {
        let r = enabled_registry();
        for us in [10, 150, 2_000, 2_000, 50_000, 2_000_000, 90_000_000] {
            r.observe_us(Histogram::SolveWallSeconds, us);
        }
        let text = render_prometheus(&r);
        let mut prev = 0u64;
        let mut inf = None;
        let mut count = None;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("wasai_solve_wall_seconds_bucket{le=\"") {
                let (le, val) = rest.split_once("\"} ").unwrap();
                let v: u64 = val.parse().unwrap();
                assert!(v >= prev, "bucket le={le} decreased: {v} < {prev}");
                prev = v;
                if le == "+Inf" {
                    inf = Some(v);
                }
            } else if let Some(v) = line.strip_prefix("wasai_solve_wall_seconds_count ") {
                count = Some(v.parse::<u64>().unwrap());
            }
        }
        assert_eq!(inf, Some(7));
        assert_eq!(count, Some(7), "le=\"+Inf\" must equal _count");
    }

    #[test]
    fn bucket_bounds_render_as_seconds() {
        assert_eq!(le_seconds(100), "0.0001");
        assert_eq!(le_seconds(1_000), "0.001");
        assert_eq!(le_seconds(1_000_000), "1");
        assert_eq!(le_seconds(5_000_000), "5");
        assert_eq!(le_seconds(1_500_000), "1.5");
    }

    #[test]
    fn label_escaping_covers_quote_backslash_newline() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        assert_eq!(
            escape_help("line\nbreak \\ \"q\""),
            "line\\nbreak \\\\ \"q\""
        );
    }

    #[test]
    fn json_dump_shares_prometheus_series_names() {
        let r = enabled_registry();
        r.add(Counter::SmtSat, 5);
        r.observe_us(Histogram::ReplayWallSeconds, 500);
        let json = render_json(&r);
        assert!(
            json.contains("\"wasai_smt_queries_total{outcome=\\\"sat\\\"}\": 5"),
            "{json}"
        );
        assert!(
            json.contains("\"wasai_replay_wall_seconds_count\": 1"),
            "{json}"
        );
        // Parseable by the repo's own minimal JSON field splitter: one
        // object, string keys, numeric values.
        assert!(json.starts_with("{\n") && json.ends_with("\n}\n"));
    }
}
