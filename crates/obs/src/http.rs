//! A tiny, dependency-free HTTP/1.1 listener for metric scraping.
//!
//! Serves exactly two endpoints from a registry reference:
//!
//! - `GET /metrics` — Prometheus text exposition v0.0.4
//! - `GET /metrics.json` — the JSON dump from [`crate::expo::render_json`]
//!
//! One accept thread, one request per connection, `Connection: close`. This
//! is a scrape endpoint, not a web server: no keep-alive, no chunked
//! bodies, no TLS. Requests are parsed just enough to route on the path.

use crate::expo::{render_json_fleet, render_prometheus_fleet};
use crate::registry::Registry;
use crate::snapshot::FleetStore;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A running metrics server. Dropping it (or calling [`MetricsServer::stop`])
/// shuts the accept loop down.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9184`; port 0 picks a free port) and
    /// serve `reg` until stopped. The registry must be `'static` — in the
    /// CLI that is [`crate::global`], in tests a `Box::leak`ed instance.
    pub fn bind(addr: &str, reg: &'static Registry) -> std::io::Result<MetricsServer> {
        MetricsServer::bind_with(addr, reg, None)
    }

    /// [`MetricsServer::bind`] with a per-shard snapshot store: each scrape
    /// also renders `shard="N"` series for every worker the supervisor has
    /// merged frames from. The fleet store is re-read per request, so
    /// mid-sweep scrapes see shards appear as their first frames land.
    pub fn bind_fleet(
        addr: &str,
        reg: &'static Registry,
        fleet: &'static FleetStore,
    ) -> std::io::Result<MetricsServer> {
        MetricsServer::bind_with(addr, reg, Some(fleet))
    }

    fn bind_with(
        addr: &str,
        reg: &'static Registry,
        fleet: Option<&'static FleetStore>,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        // Poll the stop flag between accepts so `stop()` terminates the
        // thread promptly without needing a wake-up connection.
        listener.set_nonblocking(true)?;
        let handle = std::thread::Builder::new()
            .name("wasai-metrics".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = serve_one(stream, reg, fleet);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(25));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(25)),
                    }
                }
            })
            .expect("spawn metrics server thread");
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join the server thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Handle one connection: read the request line, route, write a response.
fn serve_one(stream: TcpStream, reg: &Registry, fleet: Option<&FleetStore>) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers so well-behaved clients don't see a reset mid-request.
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }

    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);

    // An empty shard list renders byte-identically to the plain page, so a
    // fleet-bound server with no merged frames yet degrades gracefully.
    let shards = fleet.map(|f| f.snapshot()).unwrap_or_default();
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" | "/" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                render_prometheus_fleet(reg, &shards),
            ),
            "/metrics.json" => (
                "200 OK",
                "application/json",
                render_json_fleet(reg, &shards),
            ),
            _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
        }
    };

    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// Blocking one-shot GET against a metrics server, used by tests and the
/// in-repo scrape tooling (avoids depending on curl for unit tests).
pub fn scrape(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut buf = String::new();
    stream.read_to_string(&mut buf)?;
    match buf.split_once("\r\n\r\n") {
        Some((_headers, body)) => Ok(body.to_string()),
        None => Ok(buf),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Counter, Registry};

    fn leaked_registry() -> &'static Registry {
        let r = Box::leak(Box::new(Registry::new()));
        r.enable();
        r
    }

    #[test]
    fn serves_prometheus_text_and_json() {
        let reg = leaked_registry();
        reg.add(Counter::Iterations, 11);
        let mut srv = MetricsServer::bind("127.0.0.1:0", reg).expect("bind");
        let addr = srv.local_addr();

        let text = scrape(addr, "/metrics").expect("scrape /metrics");
        assert!(text.contains("wasai_iterations_total 11\n"), "{text}");
        assert!(text.contains("# TYPE wasai_iterations_total counter\n"));

        let json = scrape(addr, "/metrics.json").expect("scrape /metrics.json");
        assert!(json.contains("\"wasai_iterations_total\": 11"), "{json}");

        let missing = scrape(addr, "/nope").expect("scrape 404");
        assert!(missing.contains("not found"));

        srv.stop();
    }

    #[test]
    fn scrape_sees_live_updates() {
        let reg = leaked_registry();
        let srv = MetricsServer::bind("127.0.0.1:0", reg).expect("bind");
        let addr = srv.local_addr();
        let before = scrape(addr, "/metrics").expect("scrape");
        assert!(before.contains("wasai_flips_total 0\n"));
        reg.add(Counter::Flips, 4);
        let after = scrape(addr, "/metrics").expect("scrape");
        assert!(after.contains("wasai_flips_total 4\n"), "{after}");
    }

    #[test]
    fn fleet_server_serves_shard_series_as_frames_merge() {
        use crate::snapshot::RegistrySnapshot;
        let reg = leaked_registry();
        let store: &'static FleetStore = Box::leak(Box::new(FleetStore::new()));
        let mut srv = MetricsServer::bind_fleet("127.0.0.1:0", reg, store).expect("bind");
        let addr = srv.local_addr();

        // No frames merged yet: page has no shard labels.
        let before = scrape(addr, "/metrics").expect("scrape");
        assert!(!before.contains("shard=\""), "{before}");

        let mut delta = RegistrySnapshot::zero();
        delta.counters[Counter::SeedsExecuted as usize] = 7;
        store.apply(3, &delta);
        reg.add(Counter::SeedsExecuted, 7);

        let after = scrape(addr, "/metrics").expect("scrape");
        assert!(
            after.contains("wasai_seeds_executed_total{shard=\"3\"} 7\n"),
            "{after}"
        );
        assert!(after.contains("wasai_seeds_executed_total 7\n"), "{after}");
        let json = scrape(addr, "/metrics.json").expect("scrape json");
        assert!(
            json.contains("\"wasai_seeds_executed_total{shard=\\\"3\\\"}\": 7"),
            "{json}"
        );
        srv.stop();
    }

    #[test]
    fn stop_joins_the_server_thread() {
        let reg = leaked_registry();
        let mut srv = MetricsServer::bind("127.0.0.1:0", reg).expect("bind");
        srv.stop();
        // Idempotent: a second stop (and the Drop impl) must not hang.
        srv.stop();
    }
}
