//! # wasai-obs — wall-clock fleet observability
//!
//! Live, out-of-band metrics for WASAI fleet runs: a sharded lock-free
//! [`Registry`] of counters/gauges/wall-time histograms written from the
//! hot paths of the engine, fleet workers, SMT solver and VM; Prometheus
//! text exposition ([`expo::render_prometheus`]) and one-shot JSON dumps
//! served over a tiny self-contained HTTP listener
//! ([`http::MetricsServer`]); and a heartbeat-based stall detector
//! ([`heartbeat::HeartbeatTable`]) feeding the live progress monitor.
//!
//! ## The determinism boundary
//!
//! Everything in this crate measures **wall-clock** behaviour, which varies
//! run to run — so nothing in this crate may ever influence analysis
//! results. The contract, relied on by the repo's byte-identity tests:
//!
//! 1. The registry and heartbeat table are **write-only from workers**.
//!    No code in the engine, fleet scheduler, solver or VM reads a metric
//!    back to make a decision.
//! 2. Every write is gated on [`Registry::is_enabled`]; disabled, the
//!    instrumentation is a single relaxed atomic load per call site.
//! 3. The monitor/exposition side only *reads* and renders to stderr or a
//!    socket — never to stdout, reports, traces or triage files.
//!
//! Consequently reports, golden traces and seed schedules are byte-identical
//! with observability on or off, at any `WASAI_JOBS`. This crate has no
//! dependencies and is `std`-only, so `wasai-vm` and `wasai-smt` can link it
//! without cycles (they cannot depend on `wasai-core`).

#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod expo;
pub mod heartbeat;
pub mod http;
pub mod registry;
pub mod snapshot;

pub use heartbeat::{HeartbeatTable, SlotReading, Stage, StallReport};
pub use registry::{Counter, Gauge, HistSnapshot, Histogram, Registry};
pub use snapshot::{FleetStore, RegistrySnapshot};

/// The process-wide registry the instrumented hot paths write to.
///
/// Starts **disabled** — a process that never calls [`enable`] pays one
/// relaxed atomic load per instrumentation site and records nothing. Tests
/// asserting exact totals should construct private [`Registry`] instances
/// instead, so parallel tests can't cross-contaminate counts.
pub fn global() -> &'static Registry {
    static GLOBAL: Registry = Registry::new();
    &GLOBAL
}

/// The process-wide heartbeat table the fleet workers stamp.
pub fn heartbeats() -> &'static HeartbeatTable {
    static TABLE: HeartbeatTable = HeartbeatTable::new();
    &TABLE
}

/// The process-wide per-shard metric store the fleet supervisor merges
/// worker snapshot frames into. Empty in worker processes and in-process
/// sweeps, so exposition over it degrades to the plain single-registry
/// view.
pub fn fleet() -> &'static FleetStore {
    static STORE: FleetStore = FleetStore::new();
    &STORE
}

/// Enable the global registry (idempotent). Called by the CLI when any
/// observability surface (`--metrics-addr`, `--metrics-dump`, progress
/// monitor) is requested.
pub fn enable() {
    global().enable();
}

/// Whether the global registry is recording.
#[inline]
pub fn enabled() -> bool {
    global().is_enabled()
}

/// Add to a global counter. One relaxed load and out when observability is
/// off — cheap enough for engine/solver hot paths (the VM batches further).
#[inline]
pub fn add(c: Counter, n: u64) {
    global().add(c, n);
}

/// Increment a global counter by one.
#[inline]
pub fn inc(c: Counter) {
    global().inc(c);
}

/// Record a wall-time observation (µs) on a global histogram.
#[inline]
pub fn observe_us(h: Histogram, us: u64) {
    global().observe_us(h, us);
}

/// Per-worker-thread heartbeat stamping against the global
/// [`heartbeats`] table.
///
/// Each worker thread lazily claims one table slot on first use and keeps
/// it for its lifetime, so callers (fleet workers, the engine's hot loop)
/// never thread slot indices around. Every call is gated on the global
/// enabled flag — one relaxed load and out when observability is off.
pub mod worker {
    use super::{enabled, heartbeats, Stage};
    use std::cell::Cell;

    thread_local! {
        static SLOT: Cell<Option<usize>> = const { Cell::new(None) };
    }

    fn slot() -> usize {
        SLOT.with(|s| match s.get() {
            Some(i) => i,
            None => {
                let i = heartbeats().claim_slot();
                s.set(Some(i));
                i
            }
        })
    }

    /// Mark `campaign` as running on this thread's slot.
    pub fn begin(campaign: u64) {
        if enabled() {
            heartbeats().begin(slot(), campaign);
        }
    }

    /// Record one unit of forward progress on this thread's campaign.
    #[inline]
    pub fn tick() {
        if enabled() {
            heartbeats().tick(slot());
        }
    }

    /// Record the watchdog stage this thread is in.
    #[inline]
    pub fn set_stage(stage: Stage) {
        if enabled() {
            heartbeats().set_stage(slot(), stage);
        }
    }

    /// Map a PR 2 stage marker string to its heartbeat stage and record it;
    /// unknown markers fall back to the campaign stage.
    #[inline]
    pub fn set_stage_name(name: &str) {
        if enabled() {
            heartbeats().set_stage(slot(), Stage::from_name(name));
        }
    }

    /// Mark this thread's slot idle.
    pub fn end() {
        if enabled() {
            heartbeats().end(slot());
        }
    }
}

/// A scope timer: measures wall time from construction to drop and records
/// it on a global histogram — but only if observability was enabled at
/// construction, so the disabled path never calls `Instant::now`.
#[derive(Debug)]
pub struct ScopeTimer {
    hist: Histogram,
    start: Option<std::time::Instant>,
}

impl ScopeTimer {
    /// Start timing for `hist` (no-op shell when observability is off).
    #[inline]
    pub fn start(hist: Histogram) -> ScopeTimer {
        ScopeTimer {
            hist,
            start: enabled().then(std::time::Instant::now),
        }
    }
}

impl Drop for ScopeTimer {
    #[inline]
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            global().observe(self.hist, t0.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_timer_records_only_when_enabled() {
        // Private registry can't exercise ScopeTimer (it targets the global
        // one), so assert the disabled path on the global registry without
        // enabling it: no observation may land.
        let before = global().histogram(Histogram::ReplayWallSeconds).count;
        {
            let _t = ScopeTimer::start(Histogram::ReplayWallSeconds);
        }
        let after = global().histogram(Histogram::ReplayWallSeconds).count;
        assert_eq!(before, after, "disabled ScopeTimer must not record");
    }

    #[test]
    fn global_accessors_are_stable() {
        assert!(std::ptr::eq(global(), global()));
        assert!(std::ptr::eq(heartbeats(), heartbeats()));
    }
}
