//! Byte-addressable linear memory (§2.2: "the linear memory is a
//! byte-addressable pool").

use crate::error::Trap;

/// Size of one Wasm page in bytes.
pub const PAGE_SIZE: u32 = 65_536;

/// A contract's linear memory.
///
/// Writes maintain a high-water mark so [`LinearMemory::reset`] can restore
/// the all-zero initial state by clearing only the touched prefix instead of
/// the whole allocation — what makes pooled instance reuse cheaper than a
/// fresh 64 KiB zeroed allocation per action.
#[derive(Debug, Clone, Eq)]
pub struct LinearMemory {
    bytes: Vec<u8>,
    min_pages: u32,
    max_pages: u32,
    /// Exclusive upper bound of bytes written since the last reset.
    dirty_end: usize,
}

impl PartialEq for LinearMemory {
    fn eq(&self, other: &Self) -> bool {
        // The dirty mark is reset bookkeeping, not observable state.
        self.bytes == other.bytes && self.max_pages == other.max_pages
    }
}

impl LinearMemory {
    /// Create a memory with `min` initial pages and an optional page cap.
    pub fn new(min: u32, max: Option<u32>) -> Self {
        let max_pages = max.unwrap_or(u16::MAX as u32 + 1).min(u16::MAX as u32 + 1);
        LinearMemory {
            bytes: vec![0; (min * PAGE_SIZE) as usize],
            min_pages: min,
            max_pages,
            dirty_end: 0,
        }
    }

    /// Restore the freshly-instantiated state: minimum size, all zeroes.
    /// Only the written prefix is cleared, so resetting a barely-touched
    /// memory is near-free regardless of its size.
    pub fn reset(&mut self) {
        self.bytes.truncate((self.min_pages * PAGE_SIZE) as usize);
        let end = self.dirty_end.min(self.bytes.len());
        self.bytes[..end].fill(0);
        self.dirty_end = 0;
    }

    /// Current size in pages.
    pub fn size_pages(&self) -> u32 {
        (self.bytes.len() / PAGE_SIZE as usize) as u32
    }

    /// Current size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the memory has zero pages.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Grow by `delta` pages; returns the previous size in pages, or `-1`
    /// when the maximum would be exceeded (the Wasm semantics).
    pub fn grow(&mut self, delta: u32) -> i32 {
        let old = self.size_pages();
        let new = old as u64 + delta as u64;
        if new > self.max_pages as u64 {
            return -1;
        }
        self.bytes.resize((new * PAGE_SIZE as u64) as usize, 0);
        old as i32
    }

    fn check(&self, addr: u64, len: u32) -> Result<usize, Trap> {
        let end = addr
            .checked_add(len as u64)
            .ok_or(Trap::MemoryOutOfBounds { addr, len })?;
        if end > self.bytes.len() as u64 {
            return Err(Trap::MemoryOutOfBounds { addr, len });
        }
        Ok(addr as usize)
    }

    /// Read `len` bytes at `addr`.
    ///
    /// # Errors
    ///
    /// Traps with [`Trap::MemoryOutOfBounds`] when the range is out of range.
    pub fn read(&self, addr: u64, len: u32) -> Result<&[u8], Trap> {
        let start = self.check(addr, len)?;
        Ok(&self.bytes[start..start + len as usize])
    }

    /// Write `bytes` at `addr` (same errors as [`LinearMemory::read`]).
    pub fn write(&mut self, addr: u64, bytes: &[u8]) -> Result<(), Trap> {
        let start = self.check(addr, bytes.len() as u32)?;
        self.bytes[start..start + bytes.len()].copy_from_slice(bytes);
        self.dirty_end = self.dirty_end.max(start + bytes.len());
        Ok(())
    }

    /// Load an unsigned little-endian integer of `len ∈ {1,2,4,8}` bytes.
    pub fn load_uint(&self, addr: u64, len: u32) -> Result<u64, Trap> {
        let b = self.read(addr, len)?;
        let mut buf = [0u8; 8];
        buf[..len as usize].copy_from_slice(b);
        Ok(u64::from_le_bytes(buf))
    }

    /// Store the low `len ∈ {1,2,4,8}` bytes of `v` little-endian.
    pub fn store_uint(&mut self, addr: u64, len: u32, v: u64) -> Result<(), Trap> {
        let bytes = v.to_le_bytes();
        self.write(addr, &bytes[..len as usize])
    }

    /// Read a NUL-free byte string of known length into a `Vec`.
    pub fn read_vec(&self, addr: u64, len: u32) -> Result<Vec<u8>, Trap> {
        Ok(self.read(addr, len)?.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let m = LinearMemory::new(1, None);
        assert_eq!(m.size_pages(), 1);
        assert_eq!(m.load_uint(0, 8).unwrap(), 0);
    }

    #[test]
    fn little_endian_roundtrip() {
        let mut m = LinearMemory::new(1, None);
        m.store_uint(16, 8, 0x1122334455667788).unwrap();
        assert_eq!(m.load_uint(16, 8).unwrap(), 0x1122334455667788);
        assert_eq!(m.load_uint(16, 1).unwrap(), 0x88);
        assert_eq!(m.load_uint(22, 2).unwrap(), 0x1122);
    }

    #[test]
    fn bounds_are_enforced() {
        let mut m = LinearMemory::new(1, None);
        let end = PAGE_SIZE as u64;
        assert!(m.load_uint(end - 8, 8).is_ok());
        assert_eq!(
            m.load_uint(end - 7, 8).unwrap_err(),
            Trap::MemoryOutOfBounds {
                addr: end - 7,
                len: 8
            }
        );
        assert!(m.store_uint(u64::MAX, 8, 1).is_err());
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut m = LinearMemory::new(1, Some(4));
        m.store_uint(128, 8, 0xdead_beef).unwrap();
        assert_eq!(m.grow(2), 1);
        m.store_uint(2 * PAGE_SIZE as u64, 4, 7).unwrap();
        m.reset();
        assert_eq!(m, LinearMemory::new(1, Some(4)));
        assert_eq!(m.size_pages(), 1);
        assert_eq!(m.load_uint(128, 8).unwrap(), 0);
    }

    #[test]
    fn equality_ignores_dirty_bookkeeping() {
        let mut m = LinearMemory::new(1, None);
        m.store_uint(0, 8, 1).unwrap();
        m.store_uint(0, 8, 0).unwrap();
        assert_eq!(m, LinearMemory::new(1, None));
    }

    #[test]
    fn grow_respects_max() {
        let mut m = LinearMemory::new(1, Some(2));
        assert_eq!(m.grow(1), 1);
        assert_eq!(m.size_pages(), 2);
        assert_eq!(m.grow(1), -1);
        assert_eq!(m.size_pages(), 2);
    }
}
