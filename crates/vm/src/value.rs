//! Runtime values of the EOSVM stack machine.

use std::fmt;

use wasai_wasm::types::ValType;

/// A runtime value — one element of the stack, Local or Global sections.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 32-bit integer.
    I32(i32),
    /// 64-bit integer.
    I64(i64),
    /// 32-bit float.
    F32(f32),
    /// 64-bit float.
    F64(f64),
}

impl Value {
    /// The zero value of a type (Wasm locals are zero-initialized).
    pub fn zero(t: ValType) -> Value {
        match t {
            ValType::I32 => Value::I32(0),
            ValType::I64 => Value::I64(0),
            ValType::F32 => Value::F32(0.0),
            ValType::F64 => Value::F64(0.0),
        }
    }

    /// The type of this value.
    pub fn val_type(self) -> ValType {
        match self {
            Value::I32(_) => ValType::I32,
            Value::I64(_) => ValType::I64,
            Value::F32(_) => ValType::F32,
            Value::F64(_) => ValType::F64,
        }
    }

    /// The i32 payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an `I32` (a VM-internal type confusion,
    /// impossible for validated modules).
    pub fn as_i32(self) -> i32 {
        match self {
            Value::I32(v) => v,
            other => panic!("expected i32, got {other:?}"),
        }
    }

    /// The i64 payload (see [`Value::as_i32`] for panics).
    pub fn as_i64(self) -> i64 {
        match self {
            Value::I64(v) => v,
            other => panic!("expected i64, got {other:?}"),
        }
    }

    /// The f32 payload (see [`Value::as_i32`] for panics).
    pub fn as_f32(self) -> f32 {
        match self {
            Value::F32(v) => v,
            other => panic!("expected f32, got {other:?}"),
        }
    }

    /// The f64 payload (see [`Value::as_i32`] for panics).
    pub fn as_f64(self) -> f64 {
        match self {
            Value::F64(v) => v,
            other => panic!("expected f64, got {other:?}"),
        }
    }

    /// Raw 64-bit representation (ints zero-extended, floats by bit pattern).
    pub fn to_bits(self) -> u64 {
        match self {
            Value::I32(v) => v as u32 as u64,
            Value::I64(v) => v as u64,
            Value::F32(v) => v.to_bits() as u64,
            Value::F64(v) => v.to_bits(),
        }
    }

    /// Reconstruct a value of type `t` from its 64-bit representation.
    pub fn from_bits(t: ValType, bits: u64) -> Value {
        match t {
            ValType::I32 => Value::I32(bits as u32 as i32),
            ValType::I64 => Value::I64(bits as i64),
            ValType::F32 => Value::F32(f32::from_bits(bits as u32)),
            ValType::F64 => Value::F64(f64::from_bits(bits)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I32(v) => write!(f, "{v}:i32"),
            Value::I64(v) => write!(f, "{v}:i64"),
            Value::F32(v) => write!(f, "{v}:f32"),
            Value::F64(v) => write!(f, "{v}:f64"),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I32(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::I64(v as i64)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F32(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_values() {
        assert_eq!(Value::zero(ValType::I32), Value::I32(0));
        assert_eq!(Value::zero(ValType::F64), Value::F64(0.0));
    }

    #[test]
    fn bit_roundtrip() {
        for v in [
            Value::I32(-7),
            Value::I64(i64::MIN),
            Value::F32(3.5),
            Value::F64(-0.25),
        ] {
            assert_eq!(Value::from_bits(v.val_type(), v.to_bits()), v);
        }
    }

    #[test]
    #[should_panic(expected = "expected i32")]
    fn type_confusion_panics() {
        Value::I64(1).as_i32();
    }
}
