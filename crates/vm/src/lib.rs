#![warn(missing_docs)]

//! # wasai-vm — the EOSVM substrate of the WASAI reproduction
//!
//! A from-scratch stack-based WebAssembly interpreter with the components the
//! paper lists for EOSVM (§2.2): a call stack with per-function frames, Local
//! and Global sections, a byte-addressable linear memory and a host-function
//! interface through which contracts reach the blockchain (library APIs) and
//! through which instrumented contracts emit traces (§3.3.1).
//!
//! Execution is deterministic and metered ([`interp::Fuel`]), which is what
//! makes the workspace's virtual-clock experiments reproducible.
//!
//! # Examples
//!
//! ```
//! use wasai_vm::interp::{CompiledModule, Fuel, Instance};
//! use wasai_vm::host::NullHost;
//! use wasai_vm::value::Value;
//! use wasai_wasm::builder::ModuleBuilder;
//! use wasai_wasm::instr::Instr;
//! use wasai_wasm::types::ValType;
//!
//! let mut b = ModuleBuilder::new();
//! let f = b.func(&[ValType::I64, ValType::I64], &[ValType::I64], &[], vec![
//!     Instr::LocalGet(0),
//!     Instr::LocalGet(1),
//!     Instr::I64Add,
//!     Instr::End,
//! ]);
//! b.export_func("add", f);
//! let compiled = CompiledModule::compile(b.build())?;
//! let mut host = NullHost;
//! let mut inst = Instance::new(compiled, &mut host)?;
//! let mut fuel = Fuel(1_000);
//! let r = inst.invoke_export(&mut host, "add", &[Value::I64(2), Value::I64(40)], &mut fuel)?;
//! assert_eq!(r, vec![Value::I64(42)]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod error;
pub mod host;
pub mod interp;
pub mod memory;
mod numeric;
pub mod pool;
pub mod tape;
pub mod trace;
pub mod value;

pub use error::{InstanceError, Trap};
pub use host::{Host, HostFnId, NullHost};
pub use interp::{resolve_imports, CompiledModule, Fuel, Instance};
pub use memory::LinearMemory;
pub use pool::InstancePool;
pub use tape::fast_path_enabled;
pub use trace::{TraceKind, TraceRecord, TraceSink, TraceVal};
pub use value::Value;

#[cfg(test)]
mod tests {
    use super::*;
    use wasai_wasm::builder::ModuleBuilder;
    use wasai_wasm::instr::{Instr, MemArg};
    use wasai_wasm::types::{BlockType, FuncType, ValType::*};

    fn run1(b: ModuleBuilder, name: &str, args: &[Value]) -> Result<Vec<Value>, Trap> {
        let compiled = CompiledModule::compile(b.build()).unwrap();
        let mut host = NullHost;
        let mut inst = Instance::new(compiled, &mut host).unwrap();
        let mut fuel = Fuel(1_000_000);
        inst.invoke_export(&mut host, name, args, &mut fuel)
    }

    #[test]
    fn loop_sums_one_to_n() {
        // sum = 0; i = n; while (i != 0) { sum += i; i -= 1 } return sum
        let mut b = ModuleBuilder::new();
        let f = b.func(
            &[I64],
            &[I64],
            &[I64],
            vec![
                Instr::Block(BlockType::Empty),
                Instr::Loop(BlockType::Empty),
                Instr::LocalGet(0),
                Instr::I64Eqz,
                Instr::BrIf(1),
                Instr::LocalGet(1),
                Instr::LocalGet(0),
                Instr::I64Add,
                Instr::LocalSet(1),
                Instr::LocalGet(0),
                Instr::I64Const(1),
                Instr::I64Sub,
                Instr::LocalSet(0),
                Instr::Br(0),
                Instr::End,
                Instr::End,
                Instr::LocalGet(1),
                Instr::End,
            ],
        );
        b.export_func("sum", f);
        let r = run1(b, "sum", &[Value::I64(10)]).unwrap();
        assert_eq!(r, vec![Value::I64(55)]);
    }

    #[test]
    fn if_else_selects_branch() {
        let mut b = ModuleBuilder::new();
        let f = b.func(
            &[I32],
            &[I64],
            &[],
            vec![
                Instr::LocalGet(0),
                Instr::If(BlockType::Value(I64)),
                Instr::I64Const(7),
                Instr::Else,
                Instr::I64Const(9),
                Instr::End,
                Instr::End,
            ],
        );
        b.export_func("pick", f);
        let compiled = CompiledModule::compile(b.build()).unwrap();
        let mut host = NullHost;
        let mut inst = Instance::new(compiled, &mut host).unwrap();
        let mut fuel = Fuel(1000);
        assert_eq!(
            inst.invoke_export(&mut host, "pick", &[Value::I32(1)], &mut fuel)
                .unwrap(),
            vec![Value::I64(7)]
        );
        assert_eq!(
            inst.invoke_export(&mut host, "pick", &[Value::I32(0)], &mut fuel)
                .unwrap(),
            vec![Value::I64(9)]
        );
    }

    #[test]
    fn if_without_else_skips_body() {
        let mut b = ModuleBuilder::new();
        let f = b.func(
            &[I32],
            &[I64],
            &[I64],
            vec![
                Instr::I64Const(1),
                Instr::LocalSet(1),
                Instr::LocalGet(0),
                Instr::If(BlockType::Empty),
                Instr::I64Const(2),
                Instr::LocalSet(1),
                Instr::End,
                Instr::LocalGet(1),
                Instr::End,
            ],
        );
        b.export_func("f", f);
        let compiled = CompiledModule::compile(b.build()).unwrap();
        let mut host = NullHost;
        let mut inst = Instance::new(compiled, &mut host).unwrap();
        let mut fuel = Fuel(1000);
        assert_eq!(
            inst.invoke_export(&mut host, "f", &[Value::I32(0)], &mut fuel)
                .unwrap(),
            vec![Value::I64(1)]
        );
        assert_eq!(
            inst.invoke_export(&mut host, "f", &[Value::I32(5)], &mut fuel)
                .unwrap(),
            vec![Value::I64(2)]
        );
    }

    #[test]
    fn direct_call_passes_args_and_results() {
        let mut b = ModuleBuilder::new();
        let double = b.func(
            &[I64],
            &[I64],
            &[],
            vec![
                Instr::LocalGet(0),
                Instr::I64Const(2),
                Instr::I64Mul,
                Instr::End,
            ],
        );
        let f = b.func(
            &[I64],
            &[I64],
            &[],
            vec![
                Instr::LocalGet(0),
                Instr::Call(double),
                Instr::I64Const(1),
                Instr::I64Add,
                Instr::End,
            ],
        );
        b.export_func("f", f);
        let r = run1(b, "f", &[Value::I64(20)]).unwrap();
        assert_eq!(r, vec![Value::I64(41)]);
    }

    #[test]
    fn call_indirect_dispatches_through_table() {
        let mut b = ModuleBuilder::new();
        let one = b.func(&[], &[I64], &[], vec![Instr::I64Const(1), Instr::End]);
        let two = b.func(&[], &[I64], &[], vec![Instr::I64Const(2), Instr::End]);
        b.table(2).elem(0, vec![one, two]);
        let ty = b.module().funcs[0].type_idx;
        let f = b.func(
            &[I32],
            &[I64],
            &[],
            vec![Instr::LocalGet(0), Instr::CallIndirect(ty), Instr::End],
        );
        b.export_func("dispatch", f);
        let compiled = CompiledModule::compile(b.build()).unwrap();
        let mut host = NullHost;
        let mut inst = Instance::new(compiled, &mut host).unwrap();
        let mut fuel = Fuel(1000);
        assert_eq!(
            inst.invoke_export(&mut host, "dispatch", &[Value::I32(0)], &mut fuel)
                .unwrap(),
            vec![Value::I64(1)]
        );
        assert_eq!(
            inst.invoke_export(&mut host, "dispatch", &[Value::I32(1)], &mut fuel)
                .unwrap(),
            vec![Value::I64(2)]
        );
        assert_eq!(
            inst.invoke_export(&mut host, "dispatch", &[Value::I32(9)], &mut fuel),
            Err(Trap::TableOutOfBounds)
        );
    }

    #[test]
    fn memory_store_load_roundtrip() {
        let mut b = ModuleBuilder::with_memory(1);
        let f = b.func(
            &[I64],
            &[I64],
            &[],
            vec![
                Instr::I32Const(64),
                Instr::LocalGet(0),
                Instr::I64Store(MemArg::default()),
                Instr::I32Const(64),
                Instr::I64Load(MemArg::default()),
                Instr::End,
            ],
        );
        b.export_func("echo", f);
        let r = run1(b, "echo", &[Value::I64(-12345)]).unwrap();
        assert_eq!(r, vec![Value::I64(-12345)]);
    }

    #[test]
    fn narrow_loads_extend_correctly() {
        let mut b = ModuleBuilder::with_memory(1);
        let f = b.func(
            &[],
            &[I32],
            &[],
            vec![
                Instr::I32Const(0),
                Instr::I32Const(0xff),
                Instr::I32Store8(MemArg::default()),
                Instr::I32Const(0),
                Instr::I32Load8S(MemArg::default()),
                Instr::End,
            ],
        );
        b.export_func("f", f);
        assert_eq!(run1(b, "f", &[]).unwrap(), vec![Value::I32(-1)]);
    }

    #[test]
    fn unreachable_traps() {
        let mut b = ModuleBuilder::new();
        let f = b.func(&[], &[], &[], vec![Instr::Unreachable, Instr::End]);
        b.export_func("boom", f);
        assert_eq!(run1(b, "boom", &[]), Err(Trap::Unreachable));
    }

    #[test]
    fn division_traps() {
        let mut b = ModuleBuilder::new();
        let f = b.func(
            &[I64, I64],
            &[I64],
            &[],
            vec![
                Instr::LocalGet(0),
                Instr::LocalGet(1),
                Instr::I64DivS,
                Instr::End,
            ],
        );
        b.export_func("div", f);
        let compiled = CompiledModule::compile(b.build()).unwrap();
        let mut host = NullHost;
        let mut inst = Instance::new(compiled, &mut host).unwrap();
        let mut fuel = Fuel(1000);
        assert_eq!(
            inst.invoke_export(&mut host, "div", &[Value::I64(7), Value::I64(0)], &mut fuel),
            Err(Trap::DivideByZero)
        );
        assert_eq!(
            inst.invoke_export(
                &mut host,
                "div",
                &[Value::I64(i64::MIN), Value::I64(-1)],
                &mut fuel
            ),
            Err(Trap::IntegerOverflow)
        );
    }

    #[test]
    fn fuel_limits_infinite_loops() {
        let mut b = ModuleBuilder::new();
        let f = b.func(
            &[],
            &[],
            &[],
            vec![
                Instr::Loop(BlockType::Empty),
                Instr::Br(0),
                Instr::End,
                Instr::End,
            ],
        );
        b.export_func("spin", f);
        let compiled = CompiledModule::compile(b.build()).unwrap();
        let mut host = NullHost;
        let mut inst = Instance::new(compiled, &mut host).unwrap();
        let mut fuel = Fuel(10_000);
        assert_eq!(
            inst.invoke_export(&mut host, "spin", &[], &mut fuel),
            Err(Trap::StepLimit)
        );
        assert_eq!(fuel.0, 0);
    }

    #[test]
    fn memory_grow_and_size() {
        let mut b = ModuleBuilder::with_memory(1);
        let f = b.func(
            &[],
            &[I32],
            &[],
            vec![
                Instr::I32Const(2),
                Instr::MemoryGrow,
                Instr::Drop,
                Instr::MemorySize,
                Instr::End,
            ],
        );
        b.export_func("grow", f);
        assert_eq!(run1(b, "grow", &[]).unwrap(), vec![Value::I32(3)]);
    }

    #[test]
    fn recursion_depth_is_bounded() {
        let mut b = ModuleBuilder::new();
        // f() = f() — infinite recursion, no base case.
        let f = b.func(&[], &[], &[], vec![Instr::Call(0), Instr::End]);
        b.export_func("rec", f);
        assert_eq!(run1(b, "rec", &[]), Err(Trap::CallStackExhausted));
    }

    #[test]
    fn globals_are_shared_across_calls() {
        use wasai_wasm::types::GlobalType;
        let mut b = ModuleBuilder::new();
        b.global(GlobalType::mutable(I64), Instr::I64Const(100));
        let f = b.func(
            &[],
            &[I64],
            &[],
            vec![
                Instr::GlobalGet(0),
                Instr::I64Const(1),
                Instr::I64Add,
                Instr::GlobalSet(0),
                Instr::GlobalGet(0),
                Instr::End,
            ],
        );
        b.export_func("bump", f);
        let compiled = CompiledModule::compile(b.build()).unwrap();
        let mut host = NullHost;
        let mut inst = Instance::new(compiled, &mut host).unwrap();
        let mut fuel = Fuel(1000);
        assert_eq!(
            inst.invoke_export(&mut host, "bump", &[], &mut fuel)
                .unwrap(),
            vec![Value::I64(101)]
        );
        assert_eq!(
            inst.invoke_export(&mut host, "bump", &[], &mut fuel)
                .unwrap(),
            vec![Value::I64(102)]
        );
    }

    #[test]
    fn br_table_selects_case() {
        let mut b = ModuleBuilder::new();
        let f = b.func(
            &[I32],
            &[I64],
            &[I64],
            vec![
                Instr::Block(BlockType::Empty),
                Instr::Block(BlockType::Empty),
                Instr::Block(BlockType::Empty),
                Instr::LocalGet(0),
                Instr::BrTable(vec![0, 1], 2),
                Instr::End,
                Instr::I64Const(10),
                Instr::LocalSet(1),
                Instr::Br(1),
                Instr::End,
                Instr::I64Const(20),
                Instr::LocalSet(1),
                Instr::Br(0),
                Instr::End,
                Instr::LocalGet(1),
                Instr::End,
            ],
        );
        b.export_func("case", f);
        let compiled = CompiledModule::compile(b.build()).unwrap();
        let mut host = NullHost;
        let mut inst = Instance::new(compiled, &mut host).unwrap();
        let mut fuel = Fuel(1000);
        assert_eq!(
            inst.invoke_export(&mut host, "case", &[Value::I32(0)], &mut fuel)
                .unwrap(),
            vec![Value::I64(10)]
        );
        assert_eq!(
            inst.invoke_export(&mut host, "case", &[Value::I32(1)], &mut fuel)
                .unwrap(),
            vec![Value::I64(20)]
        );
        assert_eq!(
            inst.invoke_export(&mut host, "case", &[Value::I32(9)], &mut fuel)
                .unwrap(),
            vec![Value::I64(0)]
        );
    }

    /// A host that serves only the `wasai.*` hooks against a trace sink.
    struct HookOnlyHost {
        sink: TraceSink,
    }

    impl Host for HookOnlyHost {
        fn resolve(&mut self, module: &str, name: &str, _ty: &FuncType) -> Option<HostFnId> {
            host::hooks::hook_offset(module, name).map(HostFnId)
        }

        fn call(
            &mut self,
            id: HostFnId,
            args: &[Value],
            _mem: &mut LinearMemory,
        ) -> Result<Option<Value>, Trap> {
            host::hooks::dispatch(&mut self.sink, id.0, args);
            Ok(None)
        }
    }

    #[test]
    fn instrumented_execution_produces_faithful_trace() {
        // f(a, b) = if (a != b) { a + b } else { 0 }
        let mut b = ModuleBuilder::new();
        let f = b.func(
            &[I64, I64],
            &[I64],
            &[],
            vec![
                Instr::LocalGet(0),
                Instr::LocalGet(1),
                Instr::I64Ne,
                Instr::If(BlockType::Value(I64)),
                Instr::LocalGet(0),
                Instr::LocalGet(1),
                Instr::I64Add,
                Instr::Else,
                Instr::I64Const(0),
                Instr::End,
                Instr::End,
            ],
        );
        b.export_func("f", f);
        let original = b.build();
        let inst_mod = wasai_wasm::instrument::instrument(&original).unwrap();

        let compiled = CompiledModule::compile(inst_mod.module.clone()).unwrap();
        let mut host = HookOnlyHost {
            sink: TraceSink::new(),
        };
        let mut instance = Instance::new(compiled, &mut host).unwrap();
        let mut fuel = Fuel(100_000);
        let r = instance
            .invoke_export(&mut host, "f", &[Value::I64(30), Value::I64(12)], &mut fuel)
            .unwrap();
        assert_eq!(r, vec![Value::I64(42)]);

        let records = host.sink.take();
        assert!(!records.is_empty());
        // The first record is function_begin for the original function index.
        assert_eq!(records[0].kind, TraceKind::FuncBegin { func: f });
        // The i64.ne site (pc 2) logged both operands.
        let ne = records
            .iter()
            .find(|r| r.kind == TraceKind::Site { func: f, pc: 2 })
            .expect("i64.ne site recorded");
        assert_eq!(ne.operands, vec![TraceVal::I(30), TraceVal::I(12)]);
        // The `if` site (pc 3) logged the condition value 1.
        let if_site = records
            .iter()
            .find(|r| r.kind == TraceKind::Site { func: f, pc: 3 })
            .expect("if site recorded");
        assert_eq!(if_site.operands, vec![TraceVal::I(1)]);
        // The then-arm executed: i64.add at pc 6 with operands 30 and 12.
        let add = records
            .iter()
            .find(|r| r.kind == TraceKind::Site { func: f, pc: 6 })
            .expect("add site recorded");
        assert_eq!(add.operands, vec![TraceVal::I(30), TraceVal::I(12)]);
        // The else-arm did NOT execute.
        assert!(!records
            .iter()
            .any(|r| r.kind == TraceKind::Site { func: f, pc: 8 }));
        // The trace ends with function_end.
        assert_eq!(records.last().unwrap().kind, TraceKind::FuncEnd { func: f });
    }

    #[test]
    fn instrumented_and_original_agree() {
        // Differential check across inputs.
        let mut b = ModuleBuilder::with_memory(1);
        let f = b.func(
            &[I64, I64],
            &[I64],
            &[I64],
            vec![
                Instr::LocalGet(0),
                Instr::LocalGet(1),
                Instr::I64Mul,
                Instr::LocalSet(2),
                Instr::I32Const(8),
                Instr::LocalGet(2),
                Instr::I64Store(MemArg::default()),
                Instr::I32Const(8),
                Instr::I64Load(MemArg::default()),
                Instr::LocalGet(0),
                Instr::I64Add,
                Instr::End,
            ],
        );
        b.export_func("f", f);
        let original = b.build();
        let instrumented = wasai_wasm::instrument::instrument(&original)
            .unwrap()
            .module;

        for (a, bb) in [(3i64, 4i64), (-7, 9), (1 << 40, 17), (0, 0)] {
            let co = CompiledModule::compile(original.clone()).unwrap();
            let mut h1 = NullHost;
            let mut i1 = Instance::new(co, &mut h1).unwrap();
            let mut fuel1 = Fuel(1_000_000);
            let r1 = i1
                .invoke_export(&mut h1, "f", &[Value::I64(a), Value::I64(bb)], &mut fuel1)
                .unwrap();

            let ci = CompiledModule::compile(instrumented.clone()).unwrap();
            let mut h2 = HookOnlyHost {
                sink: TraceSink::new(),
            };
            let mut i2 = Instance::new(ci, &mut h2).unwrap();
            let mut fuel2 = Fuel(1_000_000);
            let r2 = i2
                .invoke_export(&mut h2, "f", &[Value::I64(a), Value::I64(bb)], &mut fuel2)
                .unwrap();
            assert_eq!(r1, r2, "instrumentation changed semantics for ({a}, {bb})");
        }
    }
}

#[cfg(test)]
mod float_tests {
    use super::*;
    use wasai_wasm::builder::ModuleBuilder;
    use wasai_wasm::instr::Instr;
    use wasai_wasm::types::ValType::*;

    fn eval(body: Vec<Instr>, result: wasai_wasm::types::ValType) -> Result<Value, Trap> {
        let mut b = ModuleBuilder::new();
        let f = b.func(&[], &[result], &[], body);
        b.export_func("f", f);
        let compiled = CompiledModule::compile(b.build()).unwrap();
        let mut host = NullHost;
        let mut inst = Instance::new(compiled, &mut host).unwrap();
        let mut fuel = Fuel(10_000);
        inst.invoke_export(&mut host, "f", &[], &mut fuel)
            .map(|r| r[0])
    }

    #[test]
    fn f64_arithmetic() {
        let r = eval(
            vec![
                Instr::F64Const(1.5),
                Instr::F64Const(2.25),
                Instr::F64Add,
                Instr::F64Const(2.0),
                Instr::F64Mul,
                Instr::End,
            ],
            F64,
        )
        .unwrap();
        assert_eq!(r, Value::F64(7.5));
    }

    #[test]
    fn f64_nearest_rounds_to_even() {
        for (input, expected) in [(0.5, 0.0), (1.5, 2.0), (2.5, 2.0), (-0.5, -0.0), (3.4, 3.0)] {
            let r = eval(
                vec![Instr::F64Const(input), Instr::F64Nearest, Instr::End],
                F64,
            )
            .unwrap();
            assert_eq!(r, Value::F64(expected), "nearest({input})");
        }
    }

    #[test]
    fn f32_min_max_copysign() {
        let r = eval(
            vec![
                Instr::F32Const(3.0),
                Instr::F32Const(-5.0),
                Instr::F32Min,
                Instr::F32Const(-2.0),
                Instr::F32Copysign,
                Instr::End,
            ],
            F32,
        )
        .unwrap();
        // min(3, -5) = -5; copysign(-5, -2) keeps the magnitude, takes the sign.
        assert_eq!(r, Value::F32(-5.0));
    }

    #[test]
    fn trunc_conversions_and_traps() {
        // In-range: fine.
        let r = eval(
            vec![Instr::F64Const(123.9), Instr::I32TruncF64S, Instr::End],
            I32,
        )
        .unwrap();
        assert_eq!(r, Value::I32(123));
        // NaN: invalid conversion.
        assert_eq!(
            eval(
                vec![Instr::F64Const(f64::NAN), Instr::I32TruncF64S, Instr::End],
                I32
            ),
            Err(Trap::InvalidConversion)
        );
        // Overflow: integer overflow.
        assert_eq!(
            eval(
                vec![Instr::F64Const(1e300), Instr::I32TruncF64S, Instr::End],
                I32
            ),
            Err(Trap::IntegerOverflow)
        );
        // Negative to unsigned: overflow.
        assert_eq!(
            eval(
                vec![Instr::F64Const(-1.0), Instr::I32TruncF64U, Instr::End],
                I32
            ),
            Err(Trap::IntegerOverflow)
        );
    }

    #[test]
    fn reinterpret_roundtrips() {
        let r = eval(
            vec![
                Instr::F64Const(-0.5),
                Instr::I64ReinterpretF64,
                Instr::F64ReinterpretI64,
                Instr::End,
            ],
            F64,
        )
        .unwrap();
        assert_eq!(r, Value::F64(-0.5));
        let r = eval(
            vec![
                Instr::I32Const(0x3f80_0000),
                Instr::F32ReinterpretI32,
                Instr::End,
            ],
            F32,
        )
        .unwrap();
        assert_eq!(r, Value::F32(1.0));
    }

    #[test]
    fn int_float_conversions() {
        let r = eval(
            vec![Instr::I64Const(-3), Instr::F64ConvertI64S, Instr::End],
            F64,
        )
        .unwrap();
        assert_eq!(r, Value::F64(-3.0));
        let r = eval(
            vec![Instr::I64Const(-1), Instr::F64ConvertI64U, Instr::End],
            F64,
        )
        .unwrap();
        assert_eq!(r, Value::F64(u64::MAX as f64));
        let r = eval(
            vec![
                Instr::F64Const(1.0e9),
                Instr::F32DemoteF64,
                Instr::F64PromoteF32,
                Instr::End,
            ],
            F64,
        )
        .unwrap();
        assert_eq!(r, Value::F64(1.0e9));
    }
}

#[cfg(test)]
mod structure_tests {
    use super::*;
    use wasai_wasm::builder::ModuleBuilder;
    use wasai_wasm::instr::Instr;
    use wasai_wasm::types::{BlockType, ValType::*};

    #[test]
    fn malformed_control_flow_is_rejected_at_compile() {
        // An `else` with no open `if`.
        let mut m = wasai_wasm::Module::new();
        m.intern_type(wasai_wasm::FuncType::new(vec![], vec![]));
        m.funcs.push(wasai_wasm::module::Function {
            type_idx: 0,
            locals: vec![],
            body: vec![
                Instr::Block(BlockType::Empty),
                Instr::End,
                Instr::Else,
                Instr::End,
            ],
        });
        // `else` after its block closed: leftover scan must flag the function.
        let r = CompiledModule::compile(m);
        assert!(
            matches!(r, Err(InstanceError::MalformedControlFlow { .. }) | Ok(_)),
            "compile must not panic"
        );
    }

    #[test]
    fn unmatched_block_is_rejected_by_the_validator() {
        // `[block, end]` leaves the function frame unterminated: the
        // type-level validator rejects it (compile's structural scan is
        // intentionally shallower and tolerates it).
        let mut m = wasai_wasm::Module::new();
        m.intern_type(wasai_wasm::FuncType::new(vec![], vec![]));
        m.funcs.push(wasai_wasm::module::Function {
            type_idx: 0,
            locals: vec![],
            body: vec![Instr::Block(BlockType::Empty), Instr::End],
        });
        let err = wasai_wasm::validate::validate(&m).unwrap_err();
        assert!(err.message.contains("final end"), "{err}");
    }

    #[test]
    fn unresolved_import_fails_instantiation() {
        let mut b = ModuleBuilder::new();
        b.import_func("env", "no_such_api", &[I64], &[]);
        b.func(&[], &[], &[], vec![Instr::End]);
        let compiled = CompiledModule::compile(b.build()).unwrap();
        let mut host = NullHost;
        assert_eq!(
            Instance::new(compiled, &mut host).err(),
            Some(InstanceError::UnresolvedImport {
                module: "env".into(),
                name: "no_such_api".into()
            })
        );
    }

    #[test]
    fn out_of_range_data_segment_fails_instantiation() {
        let mut b = ModuleBuilder::with_memory(1);
        b.func(&[], &[], &[], vec![Instr::End]);
        b.data(70_000, vec![1, 2, 3]); // past the single 64 KiB page
        let compiled = CompiledModule::compile(b.build()).unwrap();
        let mut host = NullHost;
        assert_eq!(
            Instance::new(compiled, &mut host).err(),
            Some(InstanceError::DataSegmentOutOfBounds)
        );
    }

    #[test]
    fn out_of_range_elem_segment_fails_instantiation() {
        let mut b = ModuleBuilder::new();
        let f = b.func(&[], &[], &[], vec![Instr::End]);
        b.table(1).elem(5, vec![f]);
        let compiled = CompiledModule::compile(b.build()).unwrap();
        let mut host = NullHost;
        assert_eq!(
            Instance::new(compiled, &mut host).err(),
            Some(InstanceError::ElemSegmentOutOfBounds)
        );
    }

    #[test]
    fn missing_export_is_a_trap_not_a_panic() {
        let mut b = ModuleBuilder::new();
        b.func(&[], &[], &[], vec![Instr::End]);
        let compiled = CompiledModule::compile(b.build()).unwrap();
        let mut host = NullHost;
        let mut inst = Instance::new(compiled, &mut host).unwrap();
        let mut fuel = Fuel(10);
        let err = inst
            .invoke_export(&mut host, "apply", &[], &mut fuel)
            .unwrap_err();
        assert!(err.to_string().contains("apply"));
    }
}
