//! The host-function interface between the VM and its embedder.
//!
//! EOSIO library APIs (§2.2) and the WASAI trace hooks (§3.3.1) are both
//! just host functions from the VM's point of view. The embedder (the
//! `wasai-chain` crate) resolves import names to [`HostFnId`]s at
//! instantiation and dispatches calls at runtime.

use wasai_wasm::types::FuncType;

use crate::error::Trap;
use crate::memory::LinearMemory;
use crate::trace::{TraceSink, TraceVal};
use crate::value::Value;

/// Opaque identifier a [`Host`] assigns to a resolved import.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HostFnId(pub u32);

/// The embedder-side of the VM: resolves and executes imported functions.
pub trait Host {
    /// Resolve an import to an id, or `None` if unknown (instantiation then
    /// fails with `UnresolvedImport`).
    fn resolve(&mut self, module: &str, name: &str, ty: &FuncType) -> Option<HostFnId>;

    /// Execute a resolved host function.
    ///
    /// # Errors
    ///
    /// A `Trap` aborts the current contract execution (and, at the chain
    /// level, rolls back the enclosing transaction).
    fn call(
        &mut self,
        id: HostFnId,
        args: &[Value],
        mem: &mut LinearMemory,
    ) -> Result<Option<Value>, Trap>;
}

/// A host that resolves nothing — for pure modules in tests and benches.
#[derive(Debug, Default)]
pub struct NullHost;

impl Host for NullHost {
    fn resolve(&mut self, _module: &str, _name: &str, _ty: &FuncType) -> Option<HostFnId> {
        None
    }

    fn call(
        &mut self,
        _id: HostFnId,
        _args: &[Value],
        _mem: &mut LinearMemory,
    ) -> Result<Option<Value>, Trap> {
        Err(Trap::Host("null host cannot execute imports".into()))
    }
}

/// Helpers for the `wasai.*` hook namespace.
///
/// Embedders reserve a contiguous id range for the 8 hooks and delegate to
/// [`hooks::dispatch`]; everything stays data-driven off
/// [`wasai_wasm::instrument::HOOK_NAMES`].
pub mod hooks {
    use super::*;
    use wasai_wasm::instrument::{HOOK_MODULE, HOOK_NAMES};

    /// Offset of a hook name within [`HOOK_NAMES`], if `module`/`name` is a
    /// hook import.
    pub fn hook_offset(module: &str, name: &str) -> Option<u32> {
        if module != HOOK_MODULE {
            return None;
        }
        HOOK_NAMES.iter().position(|n| *n == name).map(|p| p as u32)
    }

    /// Execute hook number `offset` (as returned by [`hook_offset`]) against
    /// a [`TraceSink`].
    ///
    /// # Panics
    ///
    /// Panics if `offset >= 8` or the arguments do not match the hook
    /// signature (impossible for modules produced by the instrumenter).
    pub fn dispatch(sink: &mut TraceSink, offset: u32, args: &[Value]) {
        match offset {
            0 => sink.site(args[0].as_i32() as u32, args[1].as_i32() as u32),
            1 => sink.log(TraceVal::I(args[0].as_i64())),
            2 => sink.log(TraceVal::F32(args[0].as_f32())),
            3 => sink.log(TraceVal::F64(args[0].as_f64())),
            4 => sink.call_pre(args[0].as_i32()),
            5 => sink.call_post(args[0].as_i32()),
            6 => sink.func_begin(args[0].as_i32() as u32),
            7 => sink.func_end(args[0].as_i32() as u32),
            other => panic!("unknown hook offset {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceKind;

    #[test]
    fn hook_offsets_cover_all_names() {
        for (i, name) in wasai_wasm::instrument::HOOK_NAMES.iter().enumerate() {
            assert_eq!(hooks::hook_offset("wasai", name), Some(i as u32));
        }
        assert_eq!(hooks::hook_offset("env", "logi"), None);
        assert_eq!(hooks::hook_offset("wasai", "nope"), None);
    }

    #[test]
    fn dispatch_builds_records() {
        let mut sink = TraceSink::new();
        hooks::dispatch(&mut sink, 0, &[Value::I32(2), Value::I32(9)]);
        hooks::dispatch(&mut sink, 1, &[Value::I64(-3)]);
        hooks::dispatch(&mut sink, 6, &[Value::I32(2)]);
        let rec = sink.take();
        assert_eq!(rec[0].kind, TraceKind::Site { func: 2, pc: 9 });
        assert_eq!(rec[0].operands, vec![TraceVal::I(-3)]);
        assert_eq!(rec[1].kind, TraceKind::FuncBegin { func: 2 });
    }

    #[test]
    fn null_host_rejects_calls() {
        let mut h = NullHost;
        let mut mem = LinearMemory::new(0, None);
        assert!(h.call(HostFnId(0), &[], &mut mem).is_err());
    }
}
