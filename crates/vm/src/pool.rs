//! Keyed instance pooling, shared by every chain substrate.
//!
//! Instantiating a module allocates linear memory, globals and the indirect
//! table; a fuzzing campaign re-invokes the same handful of contracts
//! thousands of times. The pool is purely an allocation cache: an instance
//! taken from it is [`Instance::reset`] back to the freshly-instantiated
//! state, so a pooled execution is indistinguishable from a fresh one. Both
//! the EOSIO chain and the CosmWasm-shaped chain key their pools by
//! `(account, compiled-module identity)` — the pooled instance keeps its
//! `CompiledModule` `Arc` alive, so the pointer half of such a key cannot be
//! reused by a different module while the entry exists.

use std::collections::HashMap;
use std::hash::Hash;

use crate::interp::Instance;

/// A keyed cache of reusable [`Instance`]s.
///
/// Never forked and never compared: pools are skipped when chains fork and
/// play no part in state equality, exactly like any other allocator.
#[derive(Debug)]
pub struct InstancePool<K: Eq + Hash> {
    slots: HashMap<K, Instance>,
}

impl<K: Eq + Hash> Default for InstancePool<K> {
    fn default() -> Self {
        InstancePool::new()
    }
}

impl<K: Eq + Hash> InstancePool<K> {
    /// An empty pool.
    pub fn new() -> Self {
        InstancePool {
            slots: HashMap::new(),
        }
    }

    /// Remove the pooled instance for `key`, if any. The caller decides when
    /// to [`Instance::reset`] it (typically after import resolution, so the
    /// host borrow does not overlap the pool borrow).
    pub fn take(&mut self, key: &K) -> Option<Instance> {
        self.slots.remove(key)
    }

    /// Return an instance to the pool under `key`. Pooling a trapped
    /// instance is fine — `reset` restores it before the next use, and
    /// trapping runs are common while fuzzing.
    pub fn put(&mut self, key: K, instance: Instance) {
        self.slots.insert(key, instance);
    }

    /// Number of pooled instances.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if nothing is pooled.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::NullHost;
    use crate::interp::CompiledModule;
    use wasai_wasm::builder::ModuleBuilder;

    #[test]
    fn take_put_roundtrip() {
        let mut b = ModuleBuilder::with_memory(1);
        let f = b.func(&[], &[], &[], vec![wasai_wasm::instr::Instr::End]);
        b.export_func("noop", f);
        let compiled = CompiledModule::compile(b.build()).unwrap();
        let inst = Instance::new(compiled, &mut NullHost).unwrap();

        let mut pool: InstancePool<(u64, usize)> = InstancePool::new();
        assert!(pool.is_empty());
        pool.put((7, 1), inst);
        assert_eq!(pool.len(), 1);
        assert!(pool.take(&(7, 2)).is_none(), "different key misses");
        let mut got = pool.take(&(7, 1)).expect("pooled instance comes back");
        assert!(pool.is_empty());
        got.reset().unwrap();
    }
}
