//! Compiled-tape execution: the concrete-execution fast path.
//!
//! [`lower_module`] flattens each validated function body once into a
//! threaded-code tape: structured control (`block`/`loop`/`end`/`nop`)
//! disappears entirely, branch targets are pre-resolved to tape offsets with
//! their stack adjustment (`trunc`/`keep`) baked in, common
//! `local.get`+`local.get`/`i32.const`+op windows are fused into
//! superinstructions, and fuel is charged in per-basic-block batches instead
//! of per instruction.
//!
//! # Fuel batching
//!
//! Every tape op carries a `cost`: its own tick plus the ticks of the
//! structural instructions (`block`/`loop`/`end`/`nop`) and fused operands
//! that *precede* it on the straight-line path. Costs attach forward — an
//! op is always the **last** covered instruction of its charge — so a trap
//! never needs a refund. At every potential jump target the pending
//! accumulator is flushed into a standalone [`OpKind::Charge`] op placed
//! *before* the target offset: fall-through execution pays the structural
//! fuel, branches land past it, exactly like the reference interpreter's
//! per-instruction `Fuel::tick`. When `fuel < cost` the op's observable
//! effect has not happened and every covered instruction is non-observable,
//! so `fuel = 0` + [`Trap::StepLimit`] reproduces the reference behavior
//! bit-for-bit.
//!
//! # Fallback
//!
//! Lowering is all-or-nothing per module: any function the mini-validator
//! cannot track (stack-height surprises, bad indices) makes the whole module
//! fall back to the reference interpreter. The differential suite
//! (`tests/vm_fastpath.rs` and the property tests below) pins tape and
//! reference to byte-identical results, traps, traces and fuel.

use std::sync::OnceLock;

use wasai_wasm::instr::{Instr, InstrClass};
use wasai_wasm::module::Module;
use wasai_wasm::types::ValType;

use crate::error::Trap;
use crate::host::Host;
use crate::interp::{CtrlTarget, Fuel, Instance, MAX_CALL_DEPTH};
use crate::numeric;
use crate::value::Value;

/// Is the tape + snapshot fast path enabled for this process?
///
/// Read once from `WASAI_VM_FAST` (default on; `0`/`false`/`off` disable).
/// The escape hatch forces every consumer back onto the reference
/// interpreter and genesis chain setup, which the fast path must be
/// byte-identical to.
pub fn fast_path_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        !matches!(
            std::env::var("WASAI_VM_FAST").ok().as_deref(),
            Some("0" | "false" | "off")
        )
    })
}

/// A branch destination with its pre-resolved stack adjustment.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BrDest {
    /// Tape offset to continue at (a pc during lowering, fixed up after).
    target: u32,
    /// Truncate the value stack to this height...
    trunc: u32,
    /// ...after saving this many top-of-stack values.
    keep: u32,
}

/// Comparison selector for fused compare superinstructions.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Cmp {
    Eq,
    Ne,
    LtS,
    LtU,
    GtS,
    GtU,
    LeS,
    LeU,
    GeS,
    GeU,
}

impl Cmp {
    fn of_i32(i: &Instr) -> Option<Cmp> {
        Some(match i {
            Instr::I32Eq => Cmp::Eq,
            Instr::I32Ne => Cmp::Ne,
            Instr::I32LtS => Cmp::LtS,
            Instr::I32LtU => Cmp::LtU,
            Instr::I32GtS => Cmp::GtS,
            Instr::I32GtU => Cmp::GtU,
            Instr::I32LeS => Cmp::LeS,
            Instr::I32LeU => Cmp::LeU,
            Instr::I32GeS => Cmp::GeS,
            Instr::I32GeU => Cmp::GeU,
            _ => return None,
        })
    }

    fn of_i64(i: &Instr) -> Option<Cmp> {
        Some(match i {
            Instr::I64Eq => Cmp::Eq,
            Instr::I64Ne => Cmp::Ne,
            Instr::I64LtS => Cmp::LtS,
            Instr::I64LtU => Cmp::LtU,
            Instr::I64GtS => Cmp::GtS,
            Instr::I64GtU => Cmp::GtU,
            Instr::I64LeS => Cmp::LeS,
            Instr::I64LeU => Cmp::LeU,
            Instr::I64GeS => Cmp::GeS,
            Instr::I64GeU => Cmp::GeU,
            _ => return None,
        })
    }

    #[inline]
    fn eval_i32(self, a: i32, b: i32) -> bool {
        match self {
            Cmp::Eq => a == b,
            Cmp::Ne => a != b,
            Cmp::LtS => a < b,
            Cmp::LtU => (a as u32) < (b as u32),
            Cmp::GtS => a > b,
            Cmp::GtU => (a as u32) > (b as u32),
            Cmp::LeS => a <= b,
            Cmp::LeU => (a as u32) <= (b as u32),
            Cmp::GeS => a >= b,
            Cmp::GeU => (a as u32) >= (b as u32),
        }
    }

    #[inline]
    fn eval_i64(self, a: i64, b: i64) -> bool {
        match self {
            Cmp::Eq => a == b,
            Cmp::Ne => a != b,
            Cmp::LtS => a < b,
            Cmp::LtU => (a as u64) < (b as u64),
            Cmp::GtS => a > b,
            Cmp::GtU => (a as u64) > (b as u64),
            Cmp::LeS => a <= b,
            Cmp::LeU => (a as u64) <= (b as u64),
            Cmp::GeS => a >= b,
            Cmp::GeU => (a as u64) >= (b as u64),
        }
    }
}

/// Binary-operator selector for fused arithmetic superinstructions. The
/// evaluation rules mirror [`numeric::exec`] exactly (wrapping arithmetic,
/// masked shift counts).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Bin {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Shl,
    ShrS,
    ShrU,
}

impl Bin {
    fn of_i32(i: &Instr) -> Option<Bin> {
        Some(match i {
            Instr::I32Add => Bin::Add,
            Instr::I32Sub => Bin::Sub,
            Instr::I32Mul => Bin::Mul,
            Instr::I32And => Bin::And,
            Instr::I32Or => Bin::Or,
            Instr::I32Xor => Bin::Xor,
            Instr::I32Shl => Bin::Shl,
            Instr::I32ShrS => Bin::ShrS,
            Instr::I32ShrU => Bin::ShrU,
            _ => return None,
        })
    }

    fn of_i64(i: &Instr) -> Option<Bin> {
        Some(match i {
            Instr::I64Add => Bin::Add,
            Instr::I64Sub => Bin::Sub,
            Instr::I64Mul => Bin::Mul,
            Instr::I64And => Bin::And,
            Instr::I64Or => Bin::Or,
            Instr::I64Xor => Bin::Xor,
            Instr::I64Shl => Bin::Shl,
            Instr::I64ShrS => Bin::ShrS,
            Instr::I64ShrU => Bin::ShrU,
            _ => return None,
        })
    }

    #[inline]
    fn eval_i32(self, a: i32, b: i32) -> i32 {
        match self {
            Bin::Add => a.wrapping_add(b),
            Bin::Sub => a.wrapping_sub(b),
            Bin::Mul => a.wrapping_mul(b),
            Bin::And => a & b,
            Bin::Or => a | b,
            Bin::Xor => a ^ b,
            Bin::Shl => a.wrapping_shl(b as u32),
            Bin::ShrS => a.wrapping_shr(b as u32),
            Bin::ShrU => ((a as u32).wrapping_shr(b as u32)) as i32,
        }
    }

    #[inline]
    fn eval_i64(self, a: i64, b: i64) -> i64 {
        match self {
            Bin::Add => a.wrapping_add(b),
            Bin::Sub => a.wrapping_sub(b),
            Bin::Mul => a.wrapping_mul(b),
            Bin::And => a & b,
            Bin::Or => a | b,
            Bin::Xor => a ^ b,
            Bin::Shl => a.wrapping_shl(b as u32),
            Bin::ShrS => a.wrapping_shr(b as u32),
            Bin::ShrU => ((a as u64).wrapping_shr(b as u32)) as i64,
        }
    }
}

/// One flattened tape operation.
#[derive(Debug, Clone)]
pub(crate) enum OpKind {
    /// Pure fuel charge for structural instructions before a jump target.
    Charge,
    /// `unreachable`.
    Unreachable,
    /// Unconditional jump (an `else` fallthrough).
    Jump(u32),
    /// `if`: pop the condition, jump when zero.
    JumpIfZero(u32),
    /// `br`.
    Br(BrDest),
    /// `br_if`.
    BrIf(BrDest),
    /// `br_table`; index into [`Tape::tables`], default entry last.
    BrTable(u32),
    /// Return from the function (explicit `return`, the final `end`, or a
    /// branch to the function label).
    Ret,
    /// Call a locally defined function.
    CallLocal {
        /// Callee in the global function index space.
        callee: u32,
        /// Number of arguments to pass.
        nargs: u32,
    },
    /// Call an imported host function.
    CallHost {
        /// Import index (into `Instance::host_ids`).
        import: u32,
        /// Number of arguments to pass.
        nargs: u32,
    },
    /// `call_indirect` with the expected type index.
    CallIndirect(u32),
    /// `drop`.
    Drop,
    /// `select`.
    Select,
    /// `local.get`.
    LocalGet(u32),
    /// `local.set`.
    LocalSet(u32),
    /// `local.tee`.
    LocalTee(u32),
    /// `global.get`.
    GlobalGet(u32),
    /// `global.set`.
    GlobalSet(u32),
    /// `memory.size`.
    MemorySize,
    /// `memory.grow`.
    MemoryGrow,
    /// `i32.const`.
    I32Const(i32),
    /// `i64.const`.
    I64Const(i64),
    /// `f32.const`.
    F32Const(f32),
    /// `f64.const`.
    F64Const(f64),
    /// Any of the 14 loads, pre-decoded.
    Load {
        offset: u32,
        bytes: u8,
        signed: bool,
        ty: ValType,
    },
    /// Any of the 9 stores, pre-decoded.
    Store { offset: u32, bytes: u8 },
    /// Fused `local.get a; local.get b; <i32 binop>`.
    GetGetBinI32 { a: u32, b: u32, op: Bin },
    /// Fused `local.get a; local.get b; <i64 binop>`.
    GetGetBinI64 { a: u32, b: u32, op: Bin },
    /// Fused `local.get a; local.get b; i32 comparison`.
    GetGetCmpI32 { a: u32, b: u32, cmp: Cmp },
    /// Fused `local.get a; local.get b; i64 comparison`.
    GetGetCmpI64 { a: u32, b: u32, cmp: Cmp },
    /// Fused `local.get x; i32.const c; <i32 binop>`.
    GetConstBinI32 { x: u32, c: i32, op: Bin },
    /// Fused `local.get x; i64.const c; <i64 binop>`.
    GetConstBinI64 { x: u32, c: i64, op: Bin },
    /// Fused `local.get x; i32.const c; i32 comparison`.
    GetConstCmpI32 { x: u32, c: i32, cmp: Cmp },
    /// Fused `local.get x; i64.const c; i64 comparison`.
    GetConstCmpI64 { x: u32, c: i64, cmp: Cmp },
    /// Fused `i32.const c; <i32 binop>` (left operand from the stack).
    ConstBinI32 { c: i32, op: Bin },
    /// Fused `i64.const c; <i64 binop>` (left operand from the stack).
    ConstBinI64 { c: i64, op: Bin },
    /// Fused `i32.const c; <i32 cmp>` (left operand from the stack).
    ConstCmpI32 { c: i32, cmp: Cmp },
    /// Fused `i64.const c; <i64 cmp>` (left operand from the stack).
    ConstCmpI64 { c: i64, cmp: Cmp },
    /// Fused `local.get a; local.get b; <i32 cmp>; br_if`.
    GetGetCmpBrI32 {
        a: u32,
        b: u32,
        cmp: Cmp,
        dest: BrDest,
    },
    /// Fused `local.get a; local.get b; <i64 cmp>; br_if`.
    GetGetCmpBrI64 {
        a: u32,
        b: u32,
        cmp: Cmp,
        dest: BrDest,
    },
    /// Fused `local.get x; i32.const c; <i32 cmp>; br_if`.
    GetConstCmpBrI32 {
        x: u32,
        c: i32,
        cmp: Cmp,
        dest: BrDest,
    },
    /// Fused `local.get x; i64.const c; <i64 cmp>; br_if`.
    GetConstCmpBrI64 {
        x: u32,
        c: i64,
        cmp: Cmp,
        dest: BrDest,
    },
    /// Fused `i32.const c; <i32 cmp>; br_if` (left operand from the stack).
    ConstCmpBrI32 { c: i32, cmp: Cmp, dest: BrDest },
    /// Fused `i64.const c; <i64 cmp>; br_if` (left operand from the stack).
    ConstCmpBrI64 { c: i64, cmp: Cmp, dest: BrDest },
    /// Fused `local.get a; local.get b; <i32 cmp>; if` — jump when false.
    GetGetCmpIfI32 { a: u32, b: u32, cmp: Cmp, t: u32 },
    /// Fused `local.get a; local.get b; <i64 cmp>; if` — jump when false.
    GetGetCmpIfI64 { a: u32, b: u32, cmp: Cmp, t: u32 },
    /// Fused `local.get x; i32.const c; <i32 cmp>; if` — jump when false.
    GetConstCmpIfI32 { x: u32, c: i32, cmp: Cmp, t: u32 },
    /// Fused `local.get x; i64.const c; <i64 cmp>; if` — jump when false.
    GetConstCmpIfI64 { x: u32, c: i64, cmp: Cmp, t: u32 },
    /// Fused `i32.const c; <i32 cmp>; if` (left from the stack).
    ConstCmpIfI32 { c: i32, cmp: Cmp, t: u32 },
    /// Fused `i64.const c; <i64 cmp>; if` (left from the stack).
    ConstCmpIfI64 { c: i64, cmp: Cmp, t: u32 },
    /// Fused non-trapping binary whose result sinks into `local.set x`.
    BinSet { wide: bool, op: Bin, x: u32 },
    /// Fused non-trapping binary whose result sinks into `local.tee x`.
    BinTee { wide: bool, op: Bin, x: u32 },
    /// The canonical counted-loop backedge every compiler emits:
    /// `local.get x; i32.const s; <i32 bin>; local.tee t; i32.const n;
    /// <i32 cmp>; br_if l` — seven instructions, one dispatch, zero value
    /// stack traffic.
    LoopBackedgeI32 {
        x: u32,
        s: i32,
        op: Bin,
        tee: u32,
        n: i32,
        cmp: Cmp,
        dest: BrDest,
    },
    /// The masked buffer-indexing idiom of SDK deserializers:
    /// `i32.const k; local.get x; i32.const c; <i32 bin>; i32.add; <load>`
    /// (plus an absorbable widening extend) — address computed directly
    /// from the local, loaded value pushed.
    IdxLoad {
        x: u32,
        c: i32,
        op: Bin,
        k: i32,
        offset: u32,
        bytes: u8,
        signed: bool,
        ty: ValType,
    },
    /// Numeric tail: shares [`numeric::exec`] with the reference loop.
    Num(Instr),
}

/// An op with its batched fuel cost.
#[derive(Debug, Clone)]
pub(crate) struct TapeOp {
    cost: u32,
    kind: OpKind,
}

/// A lowered function body.
#[derive(Debug, Clone)]
pub(crate) struct Tape {
    ops: Vec<TapeOp>,
    tables: Vec<Vec<BrDest>>,
    /// Maximum value-stack height of the function, from the lowering pass's
    /// abstract tracking — frames pre-allocate exactly this capacity so
    /// pushes never reallocate.
    max_stack: u32,
}

/// Truncate `stack` to `trunc` entries while preserving the top `keep`
/// values — the branch stack adjustment, shared by both dispatch loops.
#[inline]
pub(crate) fn adjust(stack: &mut Vec<Value>, trunc: usize, keep: usize) {
    let len = stack.len();
    if keep > 0 && len - keep != trunc {
        stack.copy_within(len - keep.., trunc);
    }
    stack.truncate(trunc + keep);
}

/// Lower every function of `module`; `None` if any function resists (the
/// whole module then stays on the reference interpreter).
pub(crate) fn lower_module(module: &Module, targets: &[Vec<CtrlTarget>]) -> Option<Vec<Tape>> {
    let mut tapes = Vec::with_capacity(module.funcs.len());
    for (local_i, func_targets) in targets.iter().enumerate().take(module.funcs.len()) {
        tapes.push(lower_function(module, local_i, func_targets)?);
    }
    Some(tapes)
}

/// A structured-control entry of the lowering pass's static label stack.
#[derive(Debug, Clone, Copy)]
struct CtrlFrame {
    height: u32,
    bt_arity: u32,
    is_loop: bool,
    start_pc: u32,
    end_pc: u32,
    dead: bool,
}

#[allow(clippy::too_many_lines)]
fn lower_function(module: &Module, local_i: usize, targets: &[CtrlTarget]) -> Option<Tape> {
    let f = &module.funcs[local_i];
    let n_imp = module.num_imported_funcs();
    let ftype = module.types.get(f.type_idx as usize)?;
    let result_arity = ftype.results.len() as u32;
    let body_len = f.body.len();

    // Pass 1: over-approximate the jump-target set. Marking a pc that is
    // never branched to only splits a charge, never changes semantics.
    let mut jt = vec![false; body_len + 1];
    jt[body_len] = true;
    for (pc, i) in f.body.iter().enumerate() {
        match i {
            Instr::Block(_) => jt[targets[pc].end_pc as usize + 1] = true,
            Instr::Loop(_) => jt[pc] = true,
            Instr::If(_) => {
                let t = targets[pc];
                jt[t.end_pc as usize + 1] = true;
                if let Some(e) = t.else_pc {
                    jt[e as usize + 1] = true;
                }
            }
            _ => {}
        }
    }

    // Pass 2: emission with abstract stack-height tracking.
    let mut ops: Vec<TapeOp> = Vec::with_capacity(body_len + 2);
    let mut tables: Vec<Vec<BrDest>> = Vec::new();
    let mut pc_to_ip = vec![0u32; body_len + 1];
    let mut ctrls: Vec<CtrlFrame> = Vec::new();
    let mut h: u32 = 0;
    let mut max_h: u32 = 0;
    let mut pending: u32 = 0;
    let mut dead = false;

    let resolve = |l: u32, ctrls: &[CtrlFrame], h: u32| -> Option<BrDest> {
        let depth = l as usize;
        if depth < ctrls.len() {
            let c = &ctrls[ctrls.len() - 1 - depth];
            let keep = if c.is_loop { 0 } else { c.bt_arity };
            let target = if c.is_loop { c.start_pc } else { c.end_pc + 1 };
            if c.dead || h < c.height + keep {
                return None;
            }
            Some(BrDest {
                target,
                trunc: c.height,
                keep,
            })
        } else if depth == ctrls.len() {
            if h < result_arity {
                return None;
            }
            Some(BrDest {
                target: body_len as u32,
                trunc: 0,
                keep: result_arity,
            })
        } else {
            None
        }
    };

    let mut pc = 0usize;
    while pc < body_len {
        max_h = max_h.max(h);
        if jt[pc] && pending > 0 {
            ops.push(TapeOp {
                cost: pending,
                kind: OpKind::Charge,
            });
            pending = 0;
        }
        pc_to_ip[pc] = ops.len() as u32;
        let instr = &f.body[pc];

        if dead {
            // Skipped code never executes and never charges; only the
            // structural nesting is tracked so reachability resumes at the
            // right `else`/`end`.
            match instr {
                Instr::Block(bt) | Instr::Loop(bt) | Instr::If(bt) => ctrls.push(CtrlFrame {
                    height: 0,
                    bt_arity: bt.arity() as u32,
                    is_loop: matches!(instr, Instr::Loop(_)),
                    start_pc: pc as u32,
                    end_pc: targets[pc].end_pc,
                    dead: true,
                }),
                Instr::Else => {
                    let c = *ctrls.last()?;
                    if !c.dead {
                        // A live `if` whose then-arm ended unreachable: the
                        // else-arm is reached via the if-false jump. The
                        // `else` itself never executes, so no charge.
                        h = c.height;
                        dead = false;
                    }
                }
                Instr::End => match ctrls.pop() {
                    Some(c) => {
                        if !c.dead {
                            // Branches to this construct land at end_pc+1;
                            // the `end` itself never executes.
                            h = c.height + c.bt_arity;
                            dead = false;
                        }
                    }
                    None => {
                        // Final `end` in dead code: still emit the
                        // fallthrough return — an inner block's end_pc+1 can
                        // land exactly here and must pay this end's tick.
                        ops.push(TapeOp {
                            cost: pending + 1,
                            kind: OpKind::Ret,
                        });
                        pending = 0;
                    }
                },
                _ => {}
            }
            pc += 1;
            continue;
        }

        match instr {
            Instr::Nop => pending += 1,
            Instr::Block(bt) | Instr::Loop(bt) => {
                ctrls.push(CtrlFrame {
                    height: h,
                    bt_arity: bt.arity() as u32,
                    is_loop: matches!(instr, Instr::Loop(_)),
                    start_pc: pc as u32,
                    end_pc: targets[pc].end_pc,
                    dead: false,
                });
                pending += 1;
            }
            Instr::If(bt) => {
                h = h.checked_sub(1)?;
                let t = targets[pc];
                let false_target = match t.else_pc {
                    Some(e) => e + 1,
                    None => t.end_pc + 1,
                };
                ctrls.push(CtrlFrame {
                    height: h,
                    bt_arity: bt.arity() as u32,
                    is_loop: false,
                    start_pc: pc as u32,
                    end_pc: t.end_pc,
                    dead: false,
                });
                ops.push(TapeOp {
                    cost: pending + 1,
                    kind: OpKind::JumpIfZero(false_target),
                });
                pending = 0;
            }
            Instr::Else => {
                let c = *ctrls.last()?;
                if c.dead || h != c.height + c.bt_arity {
                    return None;
                }
                ops.push(TapeOp {
                    cost: pending + 1,
                    kind: OpKind::Jump(c.end_pc + 1),
                });
                pending = 0;
                h = c.height;
            }
            Instr::End => match ctrls.pop() {
                Some(c) => {
                    if h != c.height + c.bt_arity {
                        return None;
                    }
                    pending += 1;
                }
                None => {
                    // The function's final `end`: fallthrough return.
                    if pc + 1 != body_len || h != result_arity {
                        return None;
                    }
                    ops.push(TapeOp {
                        cost: pending + 1,
                        kind: OpKind::Ret,
                    });
                    pending = 0;
                }
            },
            Instr::Br(l) => {
                let d = resolve(*l, &ctrls, h)?;
                ops.push(TapeOp {
                    cost: pending + 1,
                    kind: OpKind::Br(d),
                });
                pending = 0;
                dead = true;
            }
            Instr::BrIf(l) => {
                h = h.checked_sub(1)?;
                let d = resolve(*l, &ctrls, h)?;
                ops.push(TapeOp {
                    cost: pending + 1,
                    kind: OpKind::BrIf(d),
                });
                pending = 0;
            }
            Instr::BrTable(labels, default) => {
                h = h.checked_sub(1)?;
                let mut t = Vec::with_capacity(labels.len() + 1);
                for &l in labels {
                    t.push(resolve(l, &ctrls, h)?);
                }
                t.push(resolve(*default, &ctrls, h)?);
                ops.push(TapeOp {
                    cost: pending + 1,
                    kind: OpKind::BrTable(tables.len() as u32),
                });
                tables.push(t);
                pending = 0;
                dead = true;
            }
            Instr::Return => {
                if h < result_arity {
                    return None;
                }
                ops.push(TapeOp {
                    cost: pending + 1,
                    kind: OpKind::Ret,
                });
                pending = 0;
                dead = true;
            }
            Instr::Unreachable => {
                ops.push(TapeOp {
                    cost: pending + 1,
                    kind: OpKind::Unreachable,
                });
                pending = 0;
                dead = true;
            }
            Instr::Call(callee) => {
                let ft = module.func_type(*callee)?;
                let nargs = ft.params.len() as u32;
                h = h.checked_sub(nargs)?;
                h += ft.results.len() as u32;
                let kind = if *callee < n_imp {
                    OpKind::CallHost {
                        import: *callee,
                        nargs,
                    }
                } else {
                    OpKind::CallLocal {
                        callee: *callee,
                        nargs,
                    }
                };
                ops.push(TapeOp {
                    cost: pending + 1,
                    kind,
                });
                pending = 0;
            }
            Instr::CallIndirect(type_idx) => {
                let ft = module.types.get(*type_idx as usize)?;
                h = h.checked_sub(1)?;
                h = h.checked_sub(ft.params.len() as u32)?;
                h += ft.results.len() as u32;
                ops.push(TapeOp {
                    cost: pending + 1,
                    kind: OpKind::CallIndirect(*type_idx),
                });
                pending = 0;
            }
            Instr::Drop => {
                h = h.checked_sub(1)?;
                ops.push(TapeOp {
                    cost: pending + 1,
                    kind: OpKind::Drop,
                });
                pending = 0;
            }
            Instr::Select => {
                h = h.checked_sub(2)?;
                ops.push(TapeOp {
                    cost: pending + 1,
                    kind: OpKind::Select,
                });
                pending = 0;
            }
            Instr::LocalGet(x) => {
                // Superinstruction fusion: windows with no interior jump
                // target collapse into one op charging every covered tick.
                // Widest first: the seven-instruction counted-loop backedge
                // `local.get x; i32.const s; <bin>; local.tee t; i32.const n;
                // <cmp>; br_if l` — the `i += s; if i < n continue` shape.
                // Net stack effect is zero, so the label resolves at `h`.
                if pc + 6 < body_len && !jt[pc + 1..=pc + 6].iter().any(|&t| t) {
                    if let (
                        Instr::I32Const(s),
                        Instr::LocalTee(tee),
                        Instr::I32Const(n),
                        Instr::BrIf(l),
                    ) = (
                        &f.body[pc + 1],
                        &f.body[pc + 3],
                        &f.body[pc + 4],
                        &f.body[pc + 6],
                    ) {
                        if let (Some(op), Some(cmp)) =
                            (Bin::of_i32(&f.body[pc + 2]), Cmp::of_i32(&f.body[pc + 5]))
                        {
                            let dest = resolve(*l, &ctrls, h)?;
                            ops.push(TapeOp {
                                cost: pending + 7,
                                kind: OpKind::LoopBackedgeI32 {
                                    x: *x,
                                    s: *s,
                                    op,
                                    tee: *tee,
                                    n: *n,
                                    cmp,
                                    dest,
                                },
                            });
                            pending = 0;
                            let ip = ops.len() as u32 - 1;
                            for d in 1..=6 {
                                pc_to_ip[pc + d] = ip;
                            }
                            pc += 7;
                            continue;
                        }
                    }
                }
                // The four-instruction compare-and-branch window next — it
                // is the dominant guard shape.
                if pc + 3 < body_len && !jt[pc + 1] && !jt[pc + 2] && !jt[pc + 3] {
                    if let Some((rhs, cmp, wide)) = cmp_window(&f.body[pc + 1], &f.body[pc + 2]) {
                        let kind = match &f.body[pc + 3] {
                            Instr::BrIf(l) => {
                                // Net stack effect of get+operand+cmp+br_if
                                // is zero; resolve at the current height.
                                let dest = resolve(*l, &ctrls, h)?;
                                Some(match rhs {
                                    Rhs::Local(b) if wide => OpKind::GetGetCmpBrI64 {
                                        a: *x,
                                        b,
                                        cmp,
                                        dest,
                                    },
                                    Rhs::Local(b) => OpKind::GetGetCmpBrI32 {
                                        a: *x,
                                        b,
                                        cmp,
                                        dest,
                                    },
                                    Rhs::K32(c) => OpKind::GetConstCmpBrI32 {
                                        x: *x,
                                        c,
                                        cmp,
                                        dest,
                                    },
                                    Rhs::K64(c) => OpKind::GetConstCmpBrI64 {
                                        x: *x,
                                        c,
                                        cmp,
                                        dest,
                                    },
                                })
                            }
                            Instr::If(bt) => {
                                let t = targets[pc + 3];
                                let false_target = match t.else_pc {
                                    Some(e) => e + 1,
                                    None => t.end_pc + 1,
                                };
                                ctrls.push(CtrlFrame {
                                    height: h,
                                    bt_arity: bt.arity() as u32,
                                    is_loop: false,
                                    start_pc: (pc + 3) as u32,
                                    end_pc: t.end_pc,
                                    dead: false,
                                });
                                Some(match rhs {
                                    Rhs::Local(b) if wide => OpKind::GetGetCmpIfI64 {
                                        a: *x,
                                        b,
                                        cmp,
                                        t: false_target,
                                    },
                                    Rhs::Local(b) => OpKind::GetGetCmpIfI32 {
                                        a: *x,
                                        b,
                                        cmp,
                                        t: false_target,
                                    },
                                    Rhs::K32(c) => OpKind::GetConstCmpIfI32 {
                                        x: *x,
                                        c,
                                        cmp,
                                        t: false_target,
                                    },
                                    Rhs::K64(c) => OpKind::GetConstCmpIfI64 {
                                        x: *x,
                                        c,
                                        cmp,
                                        t: false_target,
                                    },
                                })
                            }
                            _ => None,
                        };
                        if let Some(kind) = kind {
                            ops.push(TapeOp {
                                cost: pending + 4,
                                kind,
                            });
                            pending = 0;
                            let ip = ops.len() as u32 - 1;
                            pc_to_ip[pc + 1] = ip;
                            pc_to_ip[pc + 2] = ip;
                            pc_to_ip[pc + 3] = ip;
                            pc += 4;
                            continue;
                        }
                    }
                }
                let fused = if pc + 2 < body_len && !jt[pc + 1] && !jt[pc + 2] {
                    fuse(*x, &f.body[pc + 1], &f.body[pc + 2])
                } else {
                    None
                };
                if let Some(kind) = fused {
                    ops.push(TapeOp {
                        cost: pending + 3,
                        kind,
                    });
                    pending = 0;
                    h += 1;
                    pc_to_ip[pc + 1] = ops.len() as u32 - 1;
                    pc_to_ip[pc + 2] = ops.len() as u32 - 1;
                    pc += 3;
                    continue;
                }
                h += 1;
                ops.push(TapeOp {
                    cost: pending + 1,
                    kind: OpKind::LocalGet(*x),
                });
                pending = 0;
            }
            Instr::LocalSet(x) => {
                h = h.checked_sub(1)?;
                ops.push(TapeOp {
                    cost: pending + 1,
                    kind: OpKind::LocalSet(*x),
                });
                pending = 0;
            }
            Instr::LocalTee(x) => {
                ops.push(TapeOp {
                    cost: pending + 1,
                    kind: OpKind::LocalTee(*x),
                });
                pending = 0;
            }
            Instr::GlobalGet(x) => {
                h += 1;
                ops.push(TapeOp {
                    cost: pending + 1,
                    kind: OpKind::GlobalGet(*x),
                });
                pending = 0;
            }
            Instr::GlobalSet(x) => {
                h = h.checked_sub(1)?;
                ops.push(TapeOp {
                    cost: pending + 1,
                    kind: OpKind::GlobalSet(*x),
                });
                pending = 0;
            }
            Instr::MemorySize => {
                h += 1;
                ops.push(TapeOp {
                    cost: pending + 1,
                    kind: OpKind::MemorySize,
                });
                pending = 0;
            }
            Instr::MemoryGrow => {
                ops.push(TapeOp {
                    cost: pending + 1,
                    kind: OpKind::MemoryGrow,
                });
                pending = 0;
            }
            Instr::I32Const(v) => {
                // Indexed-load window: `i32.const k; local.get x;
                // i32.const c; <i32 bin>; i32.add; <load>` (+ an absorbable
                // widening extend) — the masked buffer-indexing idiom of SDK
                // deserializers. Address comes straight from the local; the
                // only stack effect is the single loaded-value push.
                if pc + 5 < body_len && !jt[pc + 1..=pc + 5].iter().any(|&t| t) {
                    if let (Instr::LocalGet(x), Instr::I32Const(c), Instr::I32Add) =
                        (&f.body[pc + 1], &f.body[pc + 2], &f.body[pc + 4])
                    {
                        if let (Some(op), Some(acc)) =
                            (Bin::of_i32(&f.body[pc + 3]), f.body[pc + 5].memory_access())
                        {
                            if !acc.is_store {
                                let m = f.body[pc + 5].mem_arg().expect("load has memarg");
                                let bytes = acc.bytes as u8;
                                let mut signed = acc.signed;
                                let mut ty = acc.val_type;
                                let mut width = 6usize;
                                if pc + 6 < body_len && !jt[pc + 6] {
                                    if let Some((s2, t2)) =
                                        absorb_extend(bytes, signed, ty, &f.body[pc + 6])
                                    {
                                        signed = s2;
                                        ty = t2;
                                        width = 7;
                                    }
                                }
                                ops.push(TapeOp {
                                    cost: pending + width as u32,
                                    kind: OpKind::IdxLoad {
                                        x: *x,
                                        c: *c,
                                        op,
                                        k: *v,
                                        offset: m.offset,
                                        bytes,
                                        signed,
                                        ty,
                                    },
                                });
                                pending = 0;
                                h += 1;
                                let ip = ops.len() as u32 - 1;
                                for d in 1..width {
                                    pc_to_ip[pc + d] = ip;
                                }
                                pc += width;
                                continue;
                            }
                        }
                    }
                }
                // Const-folded windows: the constant becomes the RHS, the
                // LHS stays on the stack (`h >= 1` guarantees it exists).
                if h >= 1 && pc + 2 < body_len && !jt[pc + 1] && !jt[pc + 2] {
                    if let Some(cmp) = Cmp::of_i32(&f.body[pc + 1]) {
                        let kind = match &f.body[pc + 2] {
                            Instr::BrIf(l) => {
                                // cmp replaces the LHS, br_if pops the flag.
                                let dest = resolve(*l, &ctrls, h - 1)?;
                                h -= 1;
                                Some(OpKind::ConstCmpBrI32 { c: *v, cmp, dest })
                            }
                            Instr::If(bt) => {
                                let t = targets[pc + 2];
                                let false_target = match t.else_pc {
                                    Some(e) => e + 1,
                                    None => t.end_pc + 1,
                                };
                                h -= 1;
                                ctrls.push(CtrlFrame {
                                    height: h,
                                    bt_arity: bt.arity() as u32,
                                    is_loop: false,
                                    start_pc: (pc + 2) as u32,
                                    end_pc: t.end_pc,
                                    dead: false,
                                });
                                Some(OpKind::ConstCmpIfI32 {
                                    c: *v,
                                    cmp,
                                    t: false_target,
                                })
                            }
                            _ => None,
                        };
                        if let Some(kind) = kind {
                            ops.push(TapeOp {
                                cost: pending + 3,
                                kind,
                            });
                            pending = 0;
                            let ip = ops.len() as u32 - 1;
                            pc_to_ip[pc + 1] = ip;
                            pc_to_ip[pc + 2] = ip;
                            pc += 3;
                            continue;
                        }
                    }
                }
                if h >= 1 && pc + 1 < body_len && !jt[pc + 1] {
                    let kind = Bin::of_i32(&f.body[pc + 1])
                        .map(|op| OpKind::ConstBinI32 { c: *v, op })
                        .or_else(|| {
                            Cmp::of_i32(&f.body[pc + 1])
                                .map(|cmp| OpKind::ConstCmpI32 { c: *v, cmp })
                        });
                    if let Some(kind) = kind {
                        // LHS is replaced by the result: height unchanged.
                        ops.push(TapeOp {
                            cost: pending + 2,
                            kind,
                        });
                        pending = 0;
                        pc_to_ip[pc + 1] = ops.len() as u32 - 1;
                        pc += 2;
                        continue;
                    }
                }
                h += 1;
                ops.push(TapeOp {
                    cost: pending + 1,
                    kind: OpKind::I32Const(*v),
                });
                pending = 0;
            }
            Instr::I64Const(v) => {
                if h >= 1 && pc + 2 < body_len && !jt[pc + 1] && !jt[pc + 2] {
                    if let Some(cmp) = Cmp::of_i64(&f.body[pc + 1]) {
                        let kind = match &f.body[pc + 2] {
                            Instr::BrIf(l) => {
                                let dest = resolve(*l, &ctrls, h - 1)?;
                                h -= 1;
                                Some(OpKind::ConstCmpBrI64 { c: *v, cmp, dest })
                            }
                            Instr::If(bt) => {
                                let t = targets[pc + 2];
                                let false_target = match t.else_pc {
                                    Some(e) => e + 1,
                                    None => t.end_pc + 1,
                                };
                                h -= 1;
                                ctrls.push(CtrlFrame {
                                    height: h,
                                    bt_arity: bt.arity() as u32,
                                    is_loop: false,
                                    start_pc: (pc + 2) as u32,
                                    end_pc: t.end_pc,
                                    dead: false,
                                });
                                Some(OpKind::ConstCmpIfI64 {
                                    c: *v,
                                    cmp,
                                    t: false_target,
                                })
                            }
                            _ => None,
                        };
                        if let Some(kind) = kind {
                            ops.push(TapeOp {
                                cost: pending + 3,
                                kind,
                            });
                            pending = 0;
                            let ip = ops.len() as u32 - 1;
                            pc_to_ip[pc + 1] = ip;
                            pc_to_ip[pc + 2] = ip;
                            pc += 3;
                            continue;
                        }
                    }
                }
                if h >= 1 && pc + 1 < body_len && !jt[pc + 1] {
                    let kind = Bin::of_i64(&f.body[pc + 1])
                        .map(|op| OpKind::ConstBinI64 { c: *v, op })
                        .or_else(|| {
                            Cmp::of_i64(&f.body[pc + 1])
                                .map(|cmp| OpKind::ConstCmpI64 { c: *v, cmp })
                        });
                    if let Some(kind) = kind {
                        ops.push(TapeOp {
                            cost: pending + 2,
                            kind,
                        });
                        pending = 0;
                        pc_to_ip[pc + 1] = ops.len() as u32 - 1;
                        pc += 2;
                        continue;
                    }
                }
                h += 1;
                ops.push(TapeOp {
                    cost: pending + 1,
                    kind: OpKind::I64Const(*v),
                });
                pending = 0;
            }
            Instr::F32Const(v) => {
                h += 1;
                ops.push(TapeOp {
                    cost: pending + 1,
                    kind: OpKind::F32Const(*v),
                });
                pending = 0;
            }
            Instr::F64Const(v) => {
                h += 1;
                ops.push(TapeOp {
                    cost: pending + 1,
                    kind: OpKind::F64Const(*v),
                });
                pending = 0;
            }
            other if other.memory_access().is_some() => {
                let acc = other.memory_access().expect("guarded");
                let m = other.mem_arg().expect("memory instr has memarg");
                if acc.is_store {
                    h = h.checked_sub(2)?;
                    ops.push(TapeOp {
                        cost: pending + 1,
                        kind: OpKind::Store {
                            offset: m.offset,
                            bytes: acc.bytes as u8,
                        },
                    });
                    pending = 0;
                } else {
                    // Pop address, push value: net zero.
                    h.checked_sub(1)?;
                    let bytes = acc.bytes as u8;
                    let mut signed = acc.signed;
                    let mut ty = acc.val_type;
                    let mut width = 1usize;
                    // Fold a widening extend into the load itself
                    // (`i32.load8_u; i64.extend_i32_u` is `i64.load8_u`).
                    if pc + 1 < body_len && !jt[pc + 1] {
                        if let Some((s2, t2)) = absorb_extend(bytes, signed, ty, &f.body[pc + 1]) {
                            signed = s2;
                            ty = t2;
                            width = 2;
                        }
                    }
                    ops.push(TapeOp {
                        cost: pending + width as u32,
                        kind: OpKind::Load {
                            offset: m.offset,
                            bytes,
                            signed,
                            ty,
                        },
                    });
                    pending = 0;
                    if width == 2 {
                        pc_to_ip[pc + 1] = ops.len() as u32 - 1;
                        pc += 2;
                        continue;
                    }
                }
            }
            other => {
                // Sink a non-trapping binary straight into `local.set/tee`:
                // the accumulator-update idiom, one dispatch, no push.
                if pc + 1 < body_len && !jt[pc + 1] {
                    let wide = Bin::of_i64(other).is_some();
                    if let Some(op) = Bin::of_i32(other).or_else(|| Bin::of_i64(other)) {
                        let sink = match &f.body[pc + 1] {
                            Instr::LocalSet(t) => {
                                h = h.checked_sub(2)?;
                                Some(OpKind::BinSet { wide, op, x: *t })
                            }
                            Instr::LocalTee(t) => {
                                h = h.checked_sub(2)? + 1;
                                Some(OpKind::BinTee { wide, op, x: *t })
                            }
                            _ => None,
                        };
                        if let Some(kind) = sink {
                            ops.push(TapeOp {
                                cost: pending + 2,
                                kind,
                            });
                            pending = 0;
                            pc_to_ip[pc + 1] = ops.len() as u32 - 1;
                            pc += 2;
                            continue;
                        }
                    }
                }
                match other.class() {
                    InstrClass::Unary => {
                        h.checked_sub(1)?;
                    }
                    InstrClass::Binary => {
                        h = h.checked_sub(2)? + 1;
                    }
                    _ => return None,
                }
                ops.push(TapeOp {
                    cost: pending + 1,
                    kind: OpKind::Num(other.clone()),
                });
                pending = 0;
            }
        }
        pc += 1;
    }

    if !ctrls.is_empty() {
        return None;
    }
    // Branch-to-function-label exit: the final `end` is skipped, so no tick.
    pc_to_ip[body_len] = ops.len() as u32;
    ops.push(TapeOp {
        cost: 0,
        kind: OpKind::Ret,
    });

    // Pass 3: rewrite pc-encoded targets to tape offsets.
    let fix = |t: u32| pc_to_ip[t as usize];
    for op in &mut ops {
        match &mut op.kind {
            OpKind::Jump(t)
            | OpKind::JumpIfZero(t)
            | OpKind::GetGetCmpIfI32 { t, .. }
            | OpKind::GetGetCmpIfI64 { t, .. }
            | OpKind::GetConstCmpIfI32 { t, .. }
            | OpKind::GetConstCmpIfI64 { t, .. }
            | OpKind::ConstCmpIfI32 { t, .. }
            | OpKind::ConstCmpIfI64 { t, .. } => *t = fix(*t),
            OpKind::Br(d) | OpKind::BrIf(d) => d.target = fix(d.target),
            OpKind::GetGetCmpBrI32 { dest, .. }
            | OpKind::GetGetCmpBrI64 { dest, .. }
            | OpKind::GetConstCmpBrI32 { dest, .. }
            | OpKind::GetConstCmpBrI64 { dest, .. }
            | OpKind::ConstCmpBrI32 { dest, .. }
            | OpKind::ConstCmpBrI64 { dest, .. }
            | OpKind::LoopBackedgeI32 { dest, .. } => dest.target = fix(dest.target),
            _ => {}
        }
    }
    for t in &mut tables {
        for d in t {
            d.target = fix(d.target);
        }
    }

    // Pass 4: batch fuel per straight-line run. A batch is a maximal run of
    // ops where only the final op can trap, observe or branch, and no op
    // except the first is a jump target. The head op pre-charges the whole
    // run; interior ops become cost 0. See the module docs for why this is
    // observationally pure.
    let mut is_target = vec![false; ops.len() + 1];
    is_target[0] = true;
    for op in &ops {
        match &op.kind {
            OpKind::Jump(t)
            | OpKind::JumpIfZero(t)
            | OpKind::GetGetCmpIfI32 { t, .. }
            | OpKind::GetGetCmpIfI64 { t, .. }
            | OpKind::GetConstCmpIfI32 { t, .. }
            | OpKind::GetConstCmpIfI64 { t, .. }
            | OpKind::ConstCmpIfI32 { t, .. }
            | OpKind::ConstCmpIfI64 { t, .. } => is_target[*t as usize] = true,
            OpKind::Br(d) | OpKind::BrIf(d) => is_target[d.target as usize] = true,
            OpKind::GetGetCmpBrI32 { dest, .. }
            | OpKind::GetGetCmpBrI64 { dest, .. }
            | OpKind::GetConstCmpBrI32 { dest, .. }
            | OpKind::GetConstCmpBrI64 { dest, .. }
            | OpKind::ConstCmpBrI32 { dest, .. }
            | OpKind::ConstCmpBrI64 { dest, .. }
            | OpKind::LoopBackedgeI32 { dest, .. } => is_target[dest.target as usize] = true,
            _ => {}
        }
    }
    for t in &tables {
        for d in t {
            is_target[d.target as usize] = true;
        }
    }
    let mut i = 0;
    while i < ops.len() {
        let mut j = i;
        let mut total = ops[i].cost;
        while !ends_batch(&ops[j].kind) && j + 1 < ops.len() && !is_target[j + 1] {
            j += 1;
            total += ops[j].cost;
        }
        if j > i {
            ops[i].cost = total;
            for op in &mut ops[i + 1..=j] {
                op.cost = 0;
            }
        }
        i = j + 1;
    }

    Some(Tape {
        ops,
        tables,
        max_stack: max_h,
    })
}

/// Can `ext` be folded into a preceding load by widening the load's result
/// type? Returns the `(signed, ty)` of the equivalent single load.
///
/// Sign-extension composes with a prior sign-extension (`load8_s` then
/// `extend_i32_s` is `i64.load8_s`), and a zero-extended sub-word value is
/// non-negative, so sign- and zero-extension agree on it. A full-width
/// unsigned `i32.load` followed by `extend_i32_s`/`_u` is `i64.load32_s`/
/// `_u`. The one illegal pairing — a signed sub-word load zero-extended —
/// is excluded because the loaded i32 may be negative.
fn absorb_extend(bytes: u8, signed: bool, ty: ValType, ext: &Instr) -> Option<(bool, ValType)> {
    if ty != ValType::I32 {
        return None;
    }
    match ext {
        Instr::I64ExtendI32S => Some((signed || bytes == 4, ValType::I64)),
        Instr::I64ExtendI32U if !signed => Some((false, ValType::I64)),
        _ => None,
    }
}

/// Try to fuse `local.get x; i1; i2` into a superinstruction. Only windows
/// whose members are all non-trapping and non-observable are eligible.
fn fuse(x: u32, i1: &Instr, i2: &Instr) -> Option<OpKind> {
    match i1 {
        Instr::LocalGet(b) => {
            if let Some(op) = Bin::of_i32(i2) {
                Some(OpKind::GetGetBinI32 { a: x, b: *b, op })
            } else if let Some(op) = Bin::of_i64(i2) {
                Some(OpKind::GetGetBinI64 { a: x, b: *b, op })
            } else if let Some(cmp) = Cmp::of_i32(i2) {
                Some(OpKind::GetGetCmpI32 { a: x, b: *b, cmp })
            } else {
                Cmp::of_i64(i2).map(|cmp| OpKind::GetGetCmpI64 { a: x, b: *b, cmp })
            }
        }
        Instr::I32Const(c) => Bin::of_i32(i2)
            .map(|op| OpKind::GetConstBinI32 { x, c: *c, op })
            .or_else(|| Cmp::of_i32(i2).map(|cmp| OpKind::GetConstCmpI32 { x, c: *c, cmp })),
        Instr::I64Const(c) => Bin::of_i64(i2)
            .map(|op| OpKind::GetConstBinI64 { x, c: *c, op })
            .or_else(|| Cmp::of_i64(i2).map(|cmp| OpKind::GetConstCmpI64 { x, c: *c, cmp })),
        _ => None,
    }
}

/// The second operand of a four-wide compare-and-branch window.
enum Rhs {
    Local(u32),
    K32(i32),
    K64(i64),
}

/// Match the `<rhs>; <cmp>` tail of a `local.get`-led window: returns the
/// RHS producer and comparison, with `wide` selecting the i64 flavor.
fn cmp_window(i1: &Instr, i2: &Instr) -> Option<(Rhs, Cmp, bool)> {
    match i1 {
        Instr::LocalGet(b) => Cmp::of_i32(i2)
            .map(|c| (Rhs::Local(*b), c, false))
            .or_else(|| Cmp::of_i64(i2).map(|c| (Rhs::Local(*b), c, true))),
        Instr::I32Const(k) => Cmp::of_i32(i2).map(|c| (Rhs::K32(*k), c, false)),
        Instr::I64Const(k) => Cmp::of_i64(i2).map(|c| (Rhs::K64(*k), c, true)),
        _ => None,
    }
}

/// Can this numeric-tail instruction trap? Trapping ops may only ever end a
/// fuel batch, never sit inside one.
fn num_can_trap(i: &Instr) -> bool {
    matches!(
        i,
        Instr::I32DivS
            | Instr::I32DivU
            | Instr::I32RemS
            | Instr::I32RemU
            | Instr::I64DivS
            | Instr::I64DivU
            | Instr::I64RemS
            | Instr::I64RemU
            | Instr::I32TruncF32S
            | Instr::I32TruncF32U
            | Instr::I32TruncF64S
            | Instr::I32TruncF64U
            | Instr::I64TruncF32S
            | Instr::I64TruncF32U
            | Instr::I64TruncF64S
            | Instr::I64TruncF64U
    )
}

/// Does this op end a fuel batch? Anything that can trap, observe the
/// outside world, or transfer control must be the *last* op of its charge,
/// so a trap never charges for work that did not happen and a branch never
/// lands inside a pre-charged run.
fn ends_batch(kind: &OpKind) -> bool {
    match kind {
        OpKind::Unreachable
        | OpKind::Jump(_)
        | OpKind::JumpIfZero(_)
        | OpKind::Br(_)
        | OpKind::BrIf(_)
        | OpKind::BrTable(_)
        | OpKind::Ret
        | OpKind::CallLocal { .. }
        | OpKind::CallHost { .. }
        | OpKind::CallIndirect(_)
        | OpKind::MemoryGrow
        | OpKind::Load { .. }
        | OpKind::Store { .. }
        | OpKind::GetGetCmpBrI32 { .. }
        | OpKind::GetGetCmpBrI64 { .. }
        | OpKind::GetConstCmpBrI32 { .. }
        | OpKind::GetConstCmpBrI64 { .. }
        | OpKind::ConstCmpBrI32 { .. }
        | OpKind::ConstCmpBrI64 { .. }
        | OpKind::GetGetCmpIfI32 { .. }
        | OpKind::GetGetCmpIfI64 { .. }
        | OpKind::GetConstCmpIfI32 { .. }
        | OpKind::GetConstCmpIfI64 { .. }
        | OpKind::ConstCmpIfI32 { .. }
        | OpKind::ConstCmpIfI64 { .. }
        | OpKind::LoopBackedgeI32 { .. }
        | OpKind::IdxLoad { .. } => true,
        OpKind::Num(i) => num_can_trap(i),
        _ => false,
    }
}

/// Execute `entry` on the compiled tapes. Mirrors the reference
/// `run_frames` driver exactly: same frame discipline, same call-depth
/// bound, same trap order, batched fuel.
#[allow(clippy::too_many_lines)]
pub(crate) fn run(
    inst: &mut Instance,
    host: &mut dyn Host,
    entry: u32,
    entry_args: &[Value],
    fuel: &mut Fuel,
) -> Result<Vec<Value>, Trap> {
    let compiled = inst.compiled().clone();
    let module = compiled.module();
    let tapes = compiled.tapes().expect("tape execution requires tapes");
    let n_imp = module.num_imported_funcs();

    enum Next {
        Push(u32, Vec<Value>),
        Pop(Vec<Value>),
    }

    struct TFrame {
        local_i: usize,
        locals: Vec<Value>,
        stack: Vec<Value>,
        ip: usize,
        result_arity: usize,
    }

    let new_frame = |func_idx: u32, args: Vec<Value>| -> TFrame {
        let local_i = (func_idx - n_imp) as usize;
        let f = &module.funcs[local_i];
        let ftype = &module.types[f.type_idx as usize];
        let mut locals = args;
        locals.extend(f.locals.iter().map(|&t| Value::zero(t)));
        TFrame {
            local_i,
            locals,
            stack: Vec::with_capacity(tapes[local_i].max_stack as usize),
            ip: 0,
            result_arity: ftype.results.len(),
        }
    };

    let mut frames: Vec<TFrame> = vec![new_frame(entry, entry_args.to_vec())];

    // Fuel lives in a register for the whole run; every exit path — trap,
    // host error or completion — writes it back through `fuel` first. The
    // `tri!` macro is the fallible-op `?` with that write-back attached.
    let mut f = fuel.0;
    macro_rules! tri {
        ($e:expr) => {
            match $e {
                Ok(v) => v,
                Err(t) => {
                    fuel.0 = f;
                    return Err(t);
                }
            }
        };
    }

    loop {
        let next: Next = 'frame: {
            let fi = frames.len() - 1;
            let frame = &mut frames[fi];
            let tape = &tapes[frame.local_i];
            let mut ip = frame.ip;

            macro_rules! pop {
                () => {
                    frame.stack.pop().expect("validated stack never underflows")
                };
            }

            loop {
                let op = &tape.ops[ip];
                let c = op.cost as u64;
                if f < c {
                    fuel.0 = 0;
                    return Err(Trap::StepLimit);
                }
                f -= c;
                let mut next_ip = ip + 1;
                match &op.kind {
                    OpKind::Charge => {}
                    OpKind::Unreachable => {
                        fuel.0 = f;
                        return Err(Trap::Unreachable);
                    }
                    OpKind::Jump(t) => next_ip = *t as usize,
                    OpKind::JumpIfZero(t) => {
                        if pop!().as_i32() == 0 {
                            next_ip = *t as usize;
                        }
                    }
                    OpKind::Br(d) => {
                        adjust(&mut frame.stack, d.trunc as usize, d.keep as usize);
                        next_ip = d.target as usize;
                    }
                    OpKind::BrIf(d) => {
                        if pop!().as_i32() != 0 {
                            adjust(&mut frame.stack, d.trunc as usize, d.keep as usize);
                            next_ip = d.target as usize;
                        }
                    }
                    OpKind::BrTable(ti) => {
                        let t = &tape.tables[*ti as usize];
                        let idx = pop!().as_i32() as u32 as usize;
                        let d = if idx < t.len() - 1 {
                            t[idx]
                        } else {
                            t[t.len() - 1]
                        };
                        adjust(&mut frame.stack, d.trunc as usize, d.keep as usize);
                        next_ip = d.target as usize;
                    }
                    OpKind::Ret => {
                        let at = frame.stack.len() - frame.result_arity;
                        let results = frame.stack.split_off(at);
                        break 'frame Next::Pop(results);
                    }
                    OpKind::CallLocal { callee, nargs } => {
                        let at = frame.stack.len() - *nargs as usize;
                        let call_args = frame.stack.split_off(at);
                        frame.ip = next_ip;
                        break 'frame Next::Push(*callee, call_args);
                    }
                    OpKind::CallHost { import, nargs } => {
                        let at = frame.stack.len() - *nargs as usize;
                        let id = inst.host_ids[*import as usize];
                        let r = tri!(host.call(id, &frame.stack[at..], &mut inst.mem));
                        frame.stack.truncate(at);
                        frame.stack.extend(r);
                    }
                    OpKind::CallIndirect(type_idx) => {
                        let idx = pop!().as_i32() as u32;
                        let slot = tri!(inst
                            .table
                            .get(idx as usize)
                            .copied()
                            .ok_or(Trap::TableOutOfBounds));
                        let callee = tri!(slot.ok_or(Trap::UndefinedElement));
                        let expected = tri!(module
                            .types
                            .get(*type_idx as usize)
                            .ok_or_else(|| Trap::Host(format!("bad type index {type_idx}"))));
                        let actual = tri!(module
                            .func_type(callee)
                            .ok_or_else(|| Trap::Host(format!("bad table target {callee}"))));
                        if expected != actual {
                            fuel.0 = f;
                            return Err(Trap::IndirectCallTypeMismatch);
                        }
                        let n = expected.params.len();
                        let at = frame.stack.len() - n;
                        if callee < n_imp {
                            let id = inst.host_ids[callee as usize];
                            let r = tri!(host.call(id, &frame.stack[at..], &mut inst.mem));
                            frame.stack.truncate(at);
                            frame.stack.extend(r);
                        } else {
                            let call_args = frame.stack.split_off(at);
                            frame.ip = next_ip;
                            break 'frame Next::Push(callee, call_args);
                        }
                    }
                    OpKind::Drop => {
                        pop!();
                    }
                    OpKind::Select => {
                        let cond = pop!().as_i32();
                        let b = pop!();
                        let a = pop!();
                        frame.stack.push(if cond != 0 { a } else { b });
                    }
                    OpKind::LocalGet(x) => frame.stack.push(frame.locals[*x as usize]),
                    OpKind::LocalSet(x) => frame.locals[*x as usize] = pop!(),
                    OpKind::LocalTee(x) => {
                        frame.locals[*x as usize] = *frame.stack.last().expect("tee operand");
                    }
                    OpKind::GlobalGet(x) => frame.stack.push(inst.globals[*x as usize]),
                    OpKind::GlobalSet(x) => inst.globals[*x as usize] = pop!(),
                    OpKind::MemorySize => {
                        frame.stack.push(Value::I32(inst.mem.size_pages() as i32));
                    }
                    OpKind::MemoryGrow => {
                        let delta = pop!().as_i32();
                        let r = if delta < 0 {
                            -1
                        } else {
                            inst.mem.grow(delta as u32)
                        };
                        frame.stack.push(Value::I32(r));
                    }
                    OpKind::I32Const(v) => frame.stack.push(Value::I32(*v)),
                    OpKind::I64Const(v) => frame.stack.push(Value::I64(*v)),
                    OpKind::F32Const(v) => frame.stack.push(Value::F32(*v)),
                    OpKind::F64Const(v) => frame.stack.push(Value::F64(*v)),
                    OpKind::Load {
                        offset,
                        bytes,
                        signed,
                        ty,
                    } => {
                        let base = pop!().as_i32() as u32 as u64;
                        let addr = base + *offset as u64;
                        let raw = tri!(inst.mem.load_uint(addr, *bytes as u32));
                        frame
                            .stack
                            .push(numeric::extend_loaded(raw, *bytes as u32, *signed, *ty));
                    }
                    OpKind::Store { offset, bytes } => {
                        let value = pop!();
                        let base = pop!().as_i32() as u32 as u64;
                        let addr = base + *offset as u64;
                        tri!(inst.mem.store_uint(addr, *bytes as u32, value.to_bits()));
                    }
                    OpKind::GetGetBinI32 { a, b, op } => {
                        let x = frame.locals[*a as usize].as_i32();
                        let y = frame.locals[*b as usize].as_i32();
                        frame.stack.push(Value::I32(op.eval_i32(x, y)));
                    }
                    OpKind::GetGetBinI64 { a, b, op } => {
                        let x = frame.locals[*a as usize].as_i64();
                        let y = frame.locals[*b as usize].as_i64();
                        frame.stack.push(Value::I64(op.eval_i64(x, y)));
                    }
                    OpKind::GetGetCmpI32 { a, b, cmp } => {
                        let x = frame.locals[*a as usize].as_i32();
                        let y = frame.locals[*b as usize].as_i32();
                        frame.stack.push(Value::I32(cmp.eval_i32(x, y) as i32));
                    }
                    OpKind::GetGetCmpI64 { a, b, cmp } => {
                        let x = frame.locals[*a as usize].as_i64();
                        let y = frame.locals[*b as usize].as_i64();
                        frame.stack.push(Value::I32(cmp.eval_i64(x, y) as i32));
                    }
                    OpKind::GetConstBinI32 { x, c, op } => {
                        let v = frame.locals[*x as usize].as_i32();
                        frame.stack.push(Value::I32(op.eval_i32(v, *c)));
                    }
                    OpKind::GetConstBinI64 { x, c, op } => {
                        let v = frame.locals[*x as usize].as_i64();
                        frame.stack.push(Value::I64(op.eval_i64(v, *c)));
                    }
                    OpKind::GetConstCmpI32 { x, c, cmp } => {
                        let v = frame.locals[*x as usize].as_i32();
                        frame.stack.push(Value::I32(cmp.eval_i32(v, *c) as i32));
                    }
                    OpKind::GetConstCmpI64 { x, c, cmp } => {
                        let v = frame.locals[*x as usize].as_i64();
                        frame.stack.push(Value::I32(cmp.eval_i64(v, *c) as i32));
                    }
                    OpKind::ConstBinI32 { c, op } => {
                        let a = pop!().as_i32();
                        frame.stack.push(Value::I32(op.eval_i32(a, *c)));
                    }
                    OpKind::ConstBinI64 { c, op } => {
                        let a = pop!().as_i64();
                        frame.stack.push(Value::I64(op.eval_i64(a, *c)));
                    }
                    OpKind::ConstCmpI32 { c, cmp } => {
                        let a = pop!().as_i32();
                        frame.stack.push(Value::I32(cmp.eval_i32(a, *c) as i32));
                    }
                    OpKind::ConstCmpI64 { c, cmp } => {
                        let a = pop!().as_i64();
                        frame.stack.push(Value::I32(cmp.eval_i64(a, *c) as i32));
                    }
                    OpKind::GetGetCmpBrI32 { a, b, cmp, dest } => {
                        let x = frame.locals[*a as usize].as_i32();
                        let y = frame.locals[*b as usize].as_i32();
                        if cmp.eval_i32(x, y) {
                            adjust(&mut frame.stack, dest.trunc as usize, dest.keep as usize);
                            next_ip = dest.target as usize;
                        }
                    }
                    OpKind::GetGetCmpBrI64 { a, b, cmp, dest } => {
                        let x = frame.locals[*a as usize].as_i64();
                        let y = frame.locals[*b as usize].as_i64();
                        if cmp.eval_i64(x, y) {
                            adjust(&mut frame.stack, dest.trunc as usize, dest.keep as usize);
                            next_ip = dest.target as usize;
                        }
                    }
                    OpKind::GetConstCmpBrI32 { x, c, cmp, dest } => {
                        let v = frame.locals[*x as usize].as_i32();
                        if cmp.eval_i32(v, *c) {
                            adjust(&mut frame.stack, dest.trunc as usize, dest.keep as usize);
                            next_ip = dest.target as usize;
                        }
                    }
                    OpKind::GetConstCmpBrI64 { x, c, cmp, dest } => {
                        let v = frame.locals[*x as usize].as_i64();
                        if cmp.eval_i64(v, *c) {
                            adjust(&mut frame.stack, dest.trunc as usize, dest.keep as usize);
                            next_ip = dest.target as usize;
                        }
                    }
                    OpKind::ConstCmpBrI32 { c, cmp, dest } => {
                        let a = pop!().as_i32();
                        if cmp.eval_i32(a, *c) {
                            adjust(&mut frame.stack, dest.trunc as usize, dest.keep as usize);
                            next_ip = dest.target as usize;
                        }
                    }
                    OpKind::ConstCmpBrI64 { c, cmp, dest } => {
                        let a = pop!().as_i64();
                        if cmp.eval_i64(a, *c) {
                            adjust(&mut frame.stack, dest.trunc as usize, dest.keep as usize);
                            next_ip = dest.target as usize;
                        }
                    }
                    OpKind::GetGetCmpIfI32 { a, b, cmp, t } => {
                        let x = frame.locals[*a as usize].as_i32();
                        let y = frame.locals[*b as usize].as_i32();
                        if !cmp.eval_i32(x, y) {
                            next_ip = *t as usize;
                        }
                    }
                    OpKind::GetGetCmpIfI64 { a, b, cmp, t } => {
                        let x = frame.locals[*a as usize].as_i64();
                        let y = frame.locals[*b as usize].as_i64();
                        if !cmp.eval_i64(x, y) {
                            next_ip = *t as usize;
                        }
                    }
                    OpKind::GetConstCmpIfI32 { x, c, cmp, t } => {
                        let v = frame.locals[*x as usize].as_i32();
                        if !cmp.eval_i32(v, *c) {
                            next_ip = *t as usize;
                        }
                    }
                    OpKind::GetConstCmpIfI64 { x, c, cmp, t } => {
                        let v = frame.locals[*x as usize].as_i64();
                        if !cmp.eval_i64(v, *c) {
                            next_ip = *t as usize;
                        }
                    }
                    OpKind::ConstCmpIfI32 { c, cmp, t } => {
                        let a = pop!().as_i32();
                        if !cmp.eval_i32(a, *c) {
                            next_ip = *t as usize;
                        }
                    }
                    OpKind::ConstCmpIfI64 { c, cmp, t } => {
                        let a = pop!().as_i64();
                        if !cmp.eval_i64(a, *c) {
                            next_ip = *t as usize;
                        }
                    }
                    OpKind::BinSet { wide, op, x } => {
                        let b = pop!();
                        let a = pop!();
                        frame.locals[*x as usize] = if *wide {
                            Value::I64(op.eval_i64(a.as_i64(), b.as_i64()))
                        } else {
                            Value::I32(op.eval_i32(a.as_i32(), b.as_i32()))
                        };
                    }
                    OpKind::BinTee { wide, op, x } => {
                        let b = pop!();
                        let a = pop!();
                        let v = if *wide {
                            Value::I64(op.eval_i64(a.as_i64(), b.as_i64()))
                        } else {
                            Value::I32(op.eval_i32(a.as_i32(), b.as_i32()))
                        };
                        frame.locals[*x as usize] = v;
                        frame.stack.push(v);
                    }
                    OpKind::LoopBackedgeI32 {
                        x,
                        s,
                        op,
                        tee,
                        n,
                        cmp,
                        dest,
                    } => {
                        let v = op.eval_i32(frame.locals[*x as usize].as_i32(), *s);
                        frame.locals[*tee as usize] = Value::I32(v);
                        if cmp.eval_i32(v, *n) {
                            adjust(&mut frame.stack, dest.trunc as usize, dest.keep as usize);
                            next_ip = dest.target as usize;
                        }
                    }
                    OpKind::IdxLoad {
                        x,
                        c,
                        op,
                        k,
                        offset,
                        bytes,
                        signed,
                        ty,
                    } => {
                        let idx = op.eval_i32(frame.locals[*x as usize].as_i32(), *c);
                        let base = k.wrapping_add(idx) as u32 as u64;
                        let addr = base + *offset as u64;
                        let raw = tri!(inst.mem.load_uint(addr, *bytes as u32));
                        frame
                            .stack
                            .push(numeric::extend_loaded(raw, *bytes as u32, *signed, *ty));
                    }
                    OpKind::Num(instr) => tri!(numeric::exec(instr, &mut frame.stack)),
                }
                ip = next_ip;
            }
        };
        match next {
            Next::Push(callee, args) => {
                if frames.len() as u32 >= MAX_CALL_DEPTH {
                    fuel.0 = f;
                    return Err(Trap::CallStackExhausted);
                }
                frames.push(new_frame(callee, args));
            }
            Next::Pop(results) => {
                frames.pop();
                match frames.last_mut() {
                    None => {
                        fuel.0 = f;
                        return Ok(results);
                    }
                    Some(parent) => parent.stack.extend(results),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::NullHost;
    use crate::interp::{CompiledModule, Fuel};
    use wasai_wasm::builder::ModuleBuilder;
    use wasai_wasm::module::Module;
    use wasai_wasm::types::{BlockType, ValType::*};

    /// Run `apply(args)` on both paths for every fuel budget in `0..=max`
    /// and demand identical results, traps and remaining fuel — the
    /// bit-exactness contract the whole fast path rests on.
    fn assert_differential(module: Module, args: &[Value], max_fuel: u64) {
        let fast = CompiledModule::compile(module.clone()).expect("fast compile");
        assert!(fast.has_fast_path(), "lowering unexpectedly bailed");
        let refr = CompiledModule::compile_reference(module).expect("ref compile");
        assert!(!refr.has_fast_path());
        for budget in 0..=max_fuel {
            let mut host = NullHost;
            let mut fi = Instance::new(fast.clone(), &mut host).expect("fast instance");
            let mut ff = Fuel(budget);
            let fr = fi.invoke_export(&mut host, "apply", args, &mut ff);
            let mut ri = Instance::new(refr.clone(), &mut host).expect("ref instance");
            let mut rf = Fuel(budget);
            let rr = ri.invoke_export(&mut host, "apply", args, &mut rf);
            assert_eq!(fr, rr, "result diverged at fuel {budget}");
            assert_eq!(ff, rf, "remaining fuel diverged at budget {budget}");
        }
    }

    #[test]
    fn loop_with_fused_windows_matches_reference() {
        // Sums 1..=n with `local.get`+`i32.const`+`i32.add` windows the
        // fuser collapses; exercises loop back-edges and charge flushes.
        let mut b = ModuleBuilder::new();
        let f = b.func(
            &[I32],
            &[I32],
            &[I32],
            vec![
                Instr::Block(BlockType::Empty),
                Instr::Loop(BlockType::Empty),
                Instr::LocalGet(0),
                Instr::I32Eqz,
                Instr::BrIf(1),
                Instr::LocalGet(1),
                Instr::LocalGet(0),
                Instr::I32Add,
                Instr::LocalSet(1),
                Instr::LocalGet(0),
                Instr::I32Const(-1),
                Instr::I32Add,
                Instr::LocalSet(0),
                Instr::Br(0),
                Instr::End,
                Instr::End,
                Instr::LocalGet(1),
                Instr::End,
            ],
        );
        b.export_func("apply", f);
        assert_differential(b.build(), &[Value::I32(5)], 120);
    }

    #[test]
    fn if_else_and_nops_match_reference() {
        let mut b = ModuleBuilder::new();
        let f = b.func(
            &[I32],
            &[I32],
            &[],
            vec![
                Instr::Nop,
                Instr::LocalGet(0),
                Instr::If(BlockType::Value(I32)),
                Instr::Nop,
                Instr::I32Const(7),
                Instr::Else,
                Instr::Nop,
                Instr::Nop,
                Instr::I32Const(9),
                Instr::End,
                Instr::End,
            ],
        );
        b.export_func("apply", f);
        assert_differential(b.build(), &[Value::I32(1)], 20);
        let mut b = ModuleBuilder::new();
        let f = b.func(
            &[I32],
            &[I32],
            &[],
            vec![
                Instr::Nop,
                Instr::LocalGet(0),
                Instr::If(BlockType::Value(I32)),
                Instr::Nop,
                Instr::I32Const(7),
                Instr::Else,
                Instr::Nop,
                Instr::Nop,
                Instr::I32Const(9),
                Instr::End,
                Instr::End,
            ],
        );
        b.export_func("apply", f);
        assert_differential(b.build(), &[Value::I32(0)], 20);
    }

    #[test]
    fn br_table_and_dead_code_match_reference() {
        let mut b = ModuleBuilder::new();
        let f = b.func(
            &[I32],
            &[I32],
            &[],
            vec![
                Instr::Block(BlockType::Empty),
                Instr::Block(BlockType::Empty),
                Instr::Block(BlockType::Empty),
                Instr::LocalGet(0),
                Instr::BrTable(vec![0, 1], 2),
                Instr::I32Const(-1), // dead
                Instr::Drop,         // dead
                Instr::End,
                Instr::I32Const(10),
                Instr::Return,
                Instr::End,
                Instr::I32Const(20),
                Instr::Return,
                Instr::End,
                Instr::I32Const(30),
                Instr::End,
            ],
        );
        b.export_func("apply", f);
        let m = b.build();
        for v in [-1, 0, 1, 2, 7] {
            assert_differential(m.clone(), &[Value::I32(v)], 20);
        }
    }

    #[test]
    fn traps_and_branch_to_function_label_match_reference() {
        // Division traps mid-body, plus a `br` to the function label from a
        // nested block (skips the final end's tick on the reference too).
        let mut b = ModuleBuilder::new();
        let f = b.func(
            &[I32, I32],
            &[I32],
            &[],
            vec![
                Instr::Block(BlockType::Empty),
                Instr::LocalGet(0),
                Instr::LocalGet(1),
                Instr::I32DivS,
                Instr::Br(1),
                Instr::End,
                Instr::Unreachable,
                Instr::End,
            ],
        );
        b.export_func("apply", f);
        let m = b.build();
        for (a, v) in [(7, 2), (7, 0), (i32::MIN, -1)] {
            assert_differential(m.clone(), &[Value::I32(a), Value::I32(v)], 20);
        }
    }

    #[test]
    fn nested_calls_match_reference() {
        let mut b = ModuleBuilder::new();
        let helper = b.func(
            &[I64, I64],
            &[I64],
            &[],
            vec![
                Instr::LocalGet(0),
                Instr::LocalGet(1),
                Instr::I64Add,
                Instr::End,
            ],
        );
        let f = b.func(
            &[I64],
            &[I64],
            &[],
            vec![
                Instr::LocalGet(0),
                Instr::I64Const(5),
                Instr::Call(helper),
                Instr::LocalGet(0),
                Instr::Call(helper),
                Instr::End,
            ],
        );
        b.export_func("apply", f);
        assert_differential(b.build(), &[Value::I64(100)], 30);
    }

    #[test]
    fn fused_compare_and_branch_matches_reference() {
        // The sdk_work byte-mix shape: a loop whose backedge is a
        // `local.get; i32.const; i32.lt_u; br_if` window and whose body is
        // dense with const/bin fusions — exercises GetConstCmpBr, ConstBin,
        // GetGetBin and fuel batching across the backedge target.
        let mut b = ModuleBuilder::new();
        let f = b.func(
            &[I32],
            &[I64],
            &[I32, I64],
            vec![
                Instr::Loop(BlockType::Empty),
                Instr::LocalGet(2),
                Instr::I64Const(0x100_0000_01b3),
                Instr::I64Mul,
                Instr::LocalGet(1),
                Instr::I64ExtendI32U,
                Instr::I64Xor,
                Instr::LocalSet(2),
                Instr::LocalGet(1),
                Instr::I32Const(1),
                Instr::I32Add,
                Instr::LocalTee(1),
                Instr::LocalGet(0),
                Instr::I32LtU,
                Instr::BrIf(0),
                Instr::End,
                Instr::LocalGet(2),
                Instr::End,
            ],
        );
        b.export_func("apply", f);
        assert_differential(b.build(), &[Value::I32(6)], 120);
    }

    #[test]
    fn fused_compare_and_if_matches_reference() {
        // Dispatcher shape: `local.get; i64.const; i64.eq; if` plus a
        // guard `local.get; local.get; i64.ne; if` — exercises
        // GetConstCmpIf/GetGetCmpIf on both taken and not-taken arms.
        let mut b = ModuleBuilder::new();
        let f = b.func(
            &[I64, I64],
            &[I64],
            &[I64],
            vec![
                Instr::LocalGet(0),
                Instr::I64Const(7),
                Instr::I64Eq,
                Instr::If(BlockType::Empty),
                Instr::I64Const(100),
                Instr::LocalSet(2),
                Instr::End,
                Instr::LocalGet(0),
                Instr::LocalGet(1),
                Instr::I64Ne,
                Instr::If(BlockType::Empty),
                Instr::LocalGet(2),
                Instr::I64Const(1),
                Instr::I64Add,
                Instr::LocalSet(2),
                Instr::End,
                Instr::LocalGet(2),
                Instr::End,
            ],
        );
        b.export_func("apply", f);
        let m = b.build();
        for (a, bb) in [(7, 7), (7, 8), (3, 3), (3, 9)] {
            assert_differential(m.clone(), &[Value::I64(a), Value::I64(bb)], 40);
        }
    }

    #[test]
    fn const_folded_windows_match_reference() {
        // Stack-LHS const windows: `i32.const; i32.and` (ConstBin),
        // `i64.const; i64.gt_s; br_if` (ConstCmpBr) and a trapping div as a
        // batch-final op, swept over every fuel budget.
        let mut b = ModuleBuilder::new();
        let f = b.func(
            &[I32, I32],
            &[I32],
            &[],
            vec![
                Instr::Block(BlockType::Empty),
                Instr::LocalGet(0),
                Instr::LocalGet(1),
                Instr::I32DivS,
                Instr::I32Const(255),
                Instr::I32And,
                Instr::I32Const(64),
                Instr::I32Shl,
                Instr::Drop,
                Instr::LocalGet(0),
                Instr::I64ExtendI32S,
                Instr::I64Const(50),
                Instr::I64GtS,
                Instr::BrIf(0),
                Instr::I32Const(-1),
                Instr::Return,
                Instr::End,
                Instr::I32Const(1),
                Instr::End,
            ],
        );
        b.export_func("apply", f);
        let m = b.build();
        for (a, d) in [(100, 3), (10, 3), (7, 0), (i32::MIN, -1)] {
            assert_differential(m.clone(), &[Value::I32(a), Value::I32(d)], 30);
        }
    }

    #[test]
    fn backedge_sink_and_idx_load_windows_match_reference() {
        // The full SDK byte-mix loop: `acc = acc*k ^ mem[16 + (i & 63)];
        // i += 1; if i < n continue` — per iteration this lowers to four
        // ops (GetConstBin, IdxLoad with an absorbed extend, BinSet wide,
        // LoopBackedgeI32). The prologue exercises the narrow BinSet and
        // the epilogue the wide BinTee, swept over every fuel budget.
        use wasai_wasm::instr::MemArg;
        let mut b = ModuleBuilder::with_memory(1);
        b.data(16, (0u8..64).map(|i| i.wrapping_mul(37) ^ 0x5a).collect());
        let f = b.func(
            &[I64],
            &[I64],
            &[I32, I64, I32],
            vec![
                // scratch3 = eqz(i) + i — a stack-fed i32 add sunk by BinSet.
                Instr::LocalGet(1),
                Instr::I32Eqz,
                Instr::LocalGet(1),
                Instr::I32Add,
                Instr::LocalSet(3),
                Instr::LocalGet(0),
                Instr::LocalSet(2),
                Instr::Loop(BlockType::Empty),
                Instr::LocalGet(2),
                Instr::I64Const(0x100_0000_01b3),
                Instr::I64Mul,
                Instr::I32Const(16),
                Instr::LocalGet(1),
                Instr::I32Const(63),
                Instr::I32And,
                Instr::I32Add,
                Instr::I32Load8U(MemArg::offset(0)),
                Instr::I64ExtendI32U,
                Instr::I64Xor,
                Instr::LocalSet(2),
                Instr::LocalGet(1),
                Instr::I32Const(1),
                Instr::I32Add,
                Instr::LocalTee(1),
                Instr::I32Const(9),
                Instr::I32LtU,
                Instr::BrIf(0),
                Instr::End,
                // acc*k2 + acc — the trailing add is stack-fed, sunk by BinTee.
                Instr::LocalGet(2),
                Instr::I64Const(0x9e37),
                Instr::I64Mul,
                Instr::LocalGet(2),
                Instr::I64Add,
                Instr::LocalTee(2),
                Instr::End,
            ],
        );
        b.export_func("apply", f);
        assert_differential(b.build(), &[Value::I64(0xcbf2_9ce4)], 260);
    }

    #[test]
    fn load_extend_absorption_matches_reference() {
        // Every load/extend pairing over bytes that exercise the sign bit,
        // including the non-absorbable `i32.load8_s; i64.extend_i32_u`
        // (the loaded byte is negative, so zero- and sign-extension
        // genuinely differ and the pair must stay two ops).
        use wasai_wasm::instr::MemArg;
        let cases = vec![
            (Instr::I32Load8S(MemArg::offset(0)), Instr::I64ExtendI32S),
            (Instr::I32Load8S(MemArg::offset(0)), Instr::I64ExtendI32U),
            (Instr::I32Load8U(MemArg::offset(0)), Instr::I64ExtendI32S),
            (Instr::I32Load8U(MemArg::offset(0)), Instr::I64ExtendI32U),
            (Instr::I32Load16S(MemArg::offset(0)), Instr::I64ExtendI32S),
            (Instr::I32Load16U(MemArg::offset(0)), Instr::I64ExtendI32U),
            (Instr::I32Load(MemArg::offset(0)), Instr::I64ExtendI32S),
            (Instr::I32Load(MemArg::offset(0)), Instr::I64ExtendI32U),
        ];
        for (load, ext) in cases {
            let mut b = ModuleBuilder::with_memory(1);
            b.data(8, vec![0x80, 0xff, 0x7f, 0xee, 0x80, 0x01, 0x00, 0xcc]);
            let f = b.func(
                &[I32],
                &[I64],
                &[],
                vec![Instr::LocalGet(0), load.clone(), ext.clone(), Instr::End],
            );
            b.export_func("apply", f);
            assert_differential(b.build(), &[Value::I32(8)], 8);
        }
    }

    #[test]
    fn adjust_matches_split_off_semantics() {
        let mut s = vec![
            Value::I32(1),
            Value::I32(2),
            Value::I32(3),
            Value::I32(4),
            Value::I32(5),
        ];
        adjust(&mut s, 1, 2);
        assert_eq!(s, vec![Value::I32(1), Value::I32(4), Value::I32(5)]);
        let mut s = vec![Value::I32(1), Value::I32(2)];
        adjust(&mut s, 0, 0);
        assert!(s.is_empty());
        let mut s = vec![Value::I32(1), Value::I32(2)];
        adjust(&mut s, 1, 1);
        assert_eq!(s, vec![Value::I32(1), Value::I32(2)]);
    }

    #[test]
    fn fast_path_toggles_off_for_reference_compiles() {
        let mut b = ModuleBuilder::new();
        let f = b.func(&[], &[I32], &[], vec![Instr::I32Const(1), Instr::End]);
        b.export_func("apply", f);
        let m = b.build();
        assert!(CompiledModule::compile(m.clone())
            .expect("compile")
            .has_fast_path());
        assert!(!CompiledModule::compile_reference(m)
            .expect("compile")
            .has_fast_path());
    }
}
