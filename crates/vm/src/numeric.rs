//! Pure numeric instruction semantics, shared by the reference interpreter
//! ([`crate::interp`]) and the compiled-tape executor ([`crate::tape`]).
//!
//! Keeping every comparison, arithmetic and conversion arm in one function
//! means the fast path cannot drift from the reference semantics: both
//! dispatch loops call [`exec`] for the numeric tail, so a divergence would
//! have to be introduced in the structural/branch handling where the
//! differential suite (`tests/vm_fastpath.rs`) pins it down.

use wasai_wasm::instr::Instr;
use wasai_wasm::types::ValType;

use crate::error::Trap;
use crate::value::Value;

macro_rules! pop {
    ($s:expr) => {
        $s.pop().expect("validated stack never underflows")
    };
}

macro_rules! bin_i32 {
    ($s:expr, |$a:ident, $b:ident| $e:expr) => {{
        let $b = pop!($s).as_i32();
        let $a = pop!($s).as_i32();
        $s.push(Value::I32($e));
    }};
}
macro_rules! bin_i64 {
    ($s:expr, |$a:ident, $b:ident| $e:expr) => {{
        let $b = pop!($s).as_i64();
        let $a = pop!($s).as_i64();
        $s.push(Value::I64($e));
    }};
}
macro_rules! cmp_i32 {
    ($s:expr, |$a:ident, $b:ident| $e:expr) => {{
        let $b = pop!($s).as_i32();
        let $a = pop!($s).as_i32();
        $s.push(Value::I32(($e) as i32));
    }};
}
macro_rules! cmp_i64 {
    ($s:expr, |$a:ident, $b:ident| $e:expr) => {{
        let $b = pop!($s).as_i64();
        let $a = pop!($s).as_i64();
        $s.push(Value::I32(($e) as i32));
    }};
}
macro_rules! bin_f32 {
    ($s:expr, |$a:ident, $b:ident| $e:expr) => {{
        let $b = pop!($s).as_f32();
        let $a = pop!($s).as_f32();
        $s.push(Value::F32($e));
    }};
}
macro_rules! bin_f64 {
    ($s:expr, |$a:ident, $b:ident| $e:expr) => {{
        let $b = pop!($s).as_f64();
        let $a = pop!($s).as_f64();
        $s.push(Value::F64($e));
    }};
}
macro_rules! cmp_f32 {
    ($s:expr, |$a:ident, $b:ident| $e:expr) => {{
        let $b = pop!($s).as_f32();
        let $a = pop!($s).as_f32();
        $s.push(Value::I32(($e) as i32));
    }};
}
macro_rules! cmp_f64 {
    ($s:expr, |$a:ident, $b:ident| $e:expr) => {{
        let $b = pop!($s).as_f64();
        let $a = pop!($s).as_f64();
        $s.push(Value::I32(($e) as i32));
    }};
}
macro_rules! un_i32 {
    ($s:expr, |$a:ident| $e:expr) => {{
        let $a = pop!($s).as_i32();
        $s.push(Value::I32($e));
    }};
}
macro_rules! un_i64 {
    ($s:expr, |$a:ident| $e:expr) => {{
        let $a = pop!($s).as_i64();
        $s.push(Value::I64($e));
    }};
}
macro_rules! un_f32 {
    ($s:expr, |$a:ident| $e:expr) => {{
        let $a = pop!($s).as_f32();
        $s.push(Value::F32($e));
    }};
}
macro_rules! un_f64 {
    ($s:expr, |$a:ident| $e:expr) => {{
        let $a = pop!($s).as_f64();
        $s.push(Value::F64($e));
    }};
}

/// Execute one pure numeric instruction (comparison, arithmetic, conversion)
/// against the value stack.
///
/// # Errors
///
/// Division, remainder and float→int truncation arms trap exactly like the
/// reference interpreter always has.
///
/// # Panics
///
/// Panics if called with a non-numeric instruction — both dispatch loops
/// route only their numeric tails here.
#[allow(clippy::too_many_lines)]
pub(crate) fn exec(instr: &Instr, stack: &mut Vec<Value>) -> Result<(), Trap> {
    match instr {
        // i32 compare.
        Instr::I32Eqz => un_i32!(stack, |a| (a == 0) as i32),
        Instr::I32Eq => cmp_i32!(stack, |a, b| a == b),
        Instr::I32Ne => cmp_i32!(stack, |a, b| a != b),
        Instr::I32LtS => cmp_i32!(stack, |a, b| a < b),
        Instr::I32LtU => cmp_i32!(stack, |a, b| (a as u32) < (b as u32)),
        Instr::I32GtS => cmp_i32!(stack, |a, b| a > b),
        Instr::I32GtU => cmp_i32!(stack, |a, b| (a as u32) > (b as u32)),
        Instr::I32LeS => cmp_i32!(stack, |a, b| a <= b),
        Instr::I32LeU => cmp_i32!(stack, |a, b| (a as u32) <= (b as u32)),
        Instr::I32GeS => cmp_i32!(stack, |a, b| a >= b),
        Instr::I32GeU => cmp_i32!(stack, |a, b| (a as u32) >= (b as u32)),

        // i64 compare.
        Instr::I64Eqz => {
            let a = pop!(stack).as_i64();
            stack.push(Value::I32((a == 0) as i32));
        }
        Instr::I64Eq => cmp_i64!(stack, |a, b| a == b),
        Instr::I64Ne => cmp_i64!(stack, |a, b| a != b),
        Instr::I64LtS => cmp_i64!(stack, |a, b| a < b),
        Instr::I64LtU => cmp_i64!(stack, |a, b| (a as u64) < (b as u64)),
        Instr::I64GtS => cmp_i64!(stack, |a, b| a > b),
        Instr::I64GtU => cmp_i64!(stack, |a, b| (a as u64) > (b as u64)),
        Instr::I64LeS => cmp_i64!(stack, |a, b| a <= b),
        Instr::I64LeU => cmp_i64!(stack, |a, b| (a as u64) <= (b as u64)),
        Instr::I64GeS => cmp_i64!(stack, |a, b| a >= b),
        Instr::I64GeU => cmp_i64!(stack, |a, b| (a as u64) >= (b as u64)),

        // f32/f64 compare.
        Instr::F32Eq => cmp_f32!(stack, |a, b| a == b),
        Instr::F32Ne => cmp_f32!(stack, |a, b| a != b),
        Instr::F32Lt => cmp_f32!(stack, |a, b| a < b),
        Instr::F32Gt => cmp_f32!(stack, |a, b| a > b),
        Instr::F32Le => cmp_f32!(stack, |a, b| a <= b),
        Instr::F32Ge => cmp_f32!(stack, |a, b| a >= b),
        Instr::F64Eq => cmp_f64!(stack, |a, b| a == b),
        Instr::F64Ne => cmp_f64!(stack, |a, b| a != b),
        Instr::F64Lt => cmp_f64!(stack, |a, b| a < b),
        Instr::F64Gt => cmp_f64!(stack, |a, b| a > b),
        Instr::F64Le => cmp_f64!(stack, |a, b| a <= b),
        Instr::F64Ge => cmp_f64!(stack, |a, b| a >= b),

        // i32 arithmetic.
        Instr::I32Clz => un_i32!(stack, |a| a.leading_zeros() as i32),
        Instr::I32Ctz => un_i32!(stack, |a| a.trailing_zeros() as i32),
        Instr::I32Popcnt => un_i32!(stack, |a| a.count_ones() as i32),
        Instr::I32Add => bin_i32!(stack, |a, b| a.wrapping_add(b)),
        Instr::I32Sub => bin_i32!(stack, |a, b| a.wrapping_sub(b)),
        Instr::I32Mul => bin_i32!(stack, |a, b| a.wrapping_mul(b)),
        Instr::I32DivS => {
            let b = pop!(stack).as_i32();
            let a = pop!(stack).as_i32();
            if b == 0 {
                return Err(Trap::DivideByZero);
            }
            if a == i32::MIN && b == -1 {
                return Err(Trap::IntegerOverflow);
            }
            stack.push(Value::I32(a.wrapping_div(b)));
        }
        Instr::I32DivU => {
            let b = pop!(stack).as_i32() as u32;
            let a = pop!(stack).as_i32() as u32;
            if b == 0 {
                return Err(Trap::DivideByZero);
            }
            stack.push(Value::I32((a / b) as i32));
        }
        Instr::I32RemS => {
            let b = pop!(stack).as_i32();
            let a = pop!(stack).as_i32();
            if b == 0 {
                return Err(Trap::DivideByZero);
            }
            stack.push(Value::I32(a.wrapping_rem(b)));
        }
        Instr::I32RemU => {
            let b = pop!(stack).as_i32() as u32;
            let a = pop!(stack).as_i32() as u32;
            if b == 0 {
                return Err(Trap::DivideByZero);
            }
            stack.push(Value::I32((a % b) as i32));
        }
        Instr::I32And => bin_i32!(stack, |a, b| a & b),
        Instr::I32Or => bin_i32!(stack, |a, b| a | b),
        Instr::I32Xor => bin_i32!(stack, |a, b| a ^ b),
        Instr::I32Shl => bin_i32!(stack, |a, b| a.wrapping_shl(b as u32)),
        Instr::I32ShrS => bin_i32!(stack, |a, b| a.wrapping_shr(b as u32)),
        Instr::I32ShrU => {
            bin_i32!(stack, |a, b| ((a as u32).wrapping_shr(b as u32)) as i32)
        }
        Instr::I32Rotl => bin_i32!(stack, |a, b| a.rotate_left(b as u32 % 32)),
        Instr::I32Rotr => bin_i32!(stack, |a, b| a.rotate_right(b as u32 % 32)),

        // i64 arithmetic.
        Instr::I64Clz => un_i64!(stack, |a| a.leading_zeros() as i64),
        Instr::I64Ctz => un_i64!(stack, |a| a.trailing_zeros() as i64),
        Instr::I64Popcnt => un_i64!(stack, |a| a.count_ones() as i64),
        Instr::I64Add => bin_i64!(stack, |a, b| a.wrapping_add(b)),
        Instr::I64Sub => bin_i64!(stack, |a, b| a.wrapping_sub(b)),
        Instr::I64Mul => bin_i64!(stack, |a, b| a.wrapping_mul(b)),
        Instr::I64DivS => {
            let b = pop!(stack).as_i64();
            let a = pop!(stack).as_i64();
            if b == 0 {
                return Err(Trap::DivideByZero);
            }
            if a == i64::MIN && b == -1 {
                return Err(Trap::IntegerOverflow);
            }
            stack.push(Value::I64(a.wrapping_div(b)));
        }
        Instr::I64DivU => {
            let b = pop!(stack).as_i64() as u64;
            let a = pop!(stack).as_i64() as u64;
            if b == 0 {
                return Err(Trap::DivideByZero);
            }
            stack.push(Value::I64((a / b) as i64));
        }
        Instr::I64RemS => {
            let b = pop!(stack).as_i64();
            let a = pop!(stack).as_i64();
            if b == 0 {
                return Err(Trap::DivideByZero);
            }
            stack.push(Value::I64(a.wrapping_rem(b)));
        }
        Instr::I64RemU => {
            let b = pop!(stack).as_i64() as u64;
            let a = pop!(stack).as_i64() as u64;
            if b == 0 {
                return Err(Trap::DivideByZero);
            }
            stack.push(Value::I64((a % b) as i64));
        }
        Instr::I64And => bin_i64!(stack, |a, b| a & b),
        Instr::I64Or => bin_i64!(stack, |a, b| a | b),
        Instr::I64Xor => bin_i64!(stack, |a, b| a ^ b),
        Instr::I64Shl => bin_i64!(stack, |a, b| a.wrapping_shl(b as u32)),
        Instr::I64ShrS => bin_i64!(stack, |a, b| a.wrapping_shr(b as u32)),
        Instr::I64ShrU => {
            bin_i64!(stack, |a, b| ((a as u64).wrapping_shr(b as u32)) as i64)
        }
        Instr::I64Rotl => bin_i64!(stack, |a, b| a.rotate_left((b as u32) % 64)),
        Instr::I64Rotr => bin_i64!(stack, |a, b| a.rotate_right((b as u32) % 64)),

        // f32 arithmetic.
        Instr::F32Abs => un_f32!(stack, |a| a.abs()),
        Instr::F32Neg => un_f32!(stack, |a| -a),
        Instr::F32Ceil => un_f32!(stack, |a| a.ceil()),
        Instr::F32Floor => un_f32!(stack, |a| a.floor()),
        Instr::F32Trunc => un_f32!(stack, |a| a.trunc()),
        Instr::F32Nearest => un_f32!(stack, |a| nearest_f32(a)),
        Instr::F32Sqrt => un_f32!(stack, |a| a.sqrt()),
        Instr::F32Add => bin_f32!(stack, |a, b| a + b),
        Instr::F32Sub => bin_f32!(stack, |a, b| a - b),
        Instr::F32Mul => bin_f32!(stack, |a, b| a * b),
        Instr::F32Div => bin_f32!(stack, |a, b| a / b),
        Instr::F32Min => bin_f32!(stack, |a, b| a.min(b)),
        Instr::F32Max => bin_f32!(stack, |a, b| a.max(b)),
        Instr::F32Copysign => bin_f32!(stack, |a, b| a.copysign(b)),

        // f64 arithmetic.
        Instr::F64Abs => un_f64!(stack, |a| a.abs()),
        Instr::F64Neg => un_f64!(stack, |a| -a),
        Instr::F64Ceil => un_f64!(stack, |a| a.ceil()),
        Instr::F64Floor => un_f64!(stack, |a| a.floor()),
        Instr::F64Trunc => un_f64!(stack, |a| a.trunc()),
        Instr::F64Nearest => un_f64!(stack, |a| nearest_f64(a)),
        Instr::F64Sqrt => un_f64!(stack, |a| a.sqrt()),
        Instr::F64Add => bin_f64!(stack, |a, b| a + b),
        Instr::F64Sub => bin_f64!(stack, |a, b| a - b),
        Instr::F64Mul => bin_f64!(stack, |a, b| a * b),
        Instr::F64Div => bin_f64!(stack, |a, b| a / b),
        Instr::F64Min => bin_f64!(stack, |a, b| a.min(b)),
        Instr::F64Max => bin_f64!(stack, |a, b| a.max(b)),
        Instr::F64Copysign => bin_f64!(stack, |a, b| a.copysign(b)),

        // Conversions.
        Instr::I32WrapI64 => {
            let a = pop!(stack).as_i64();
            stack.push(Value::I32(a as i32));
        }
        Instr::I32TruncF32S => {
            let a = pop!(stack).as_f32();
            stack.push(Value::I32(trunc_to_i32(a as f64)?));
        }
        Instr::I32TruncF32U => {
            let a = pop!(stack).as_f32();
            stack.push(Value::I32(trunc_to_u32(a as f64)? as i32));
        }
        Instr::I32TruncF64S => {
            let a = pop!(stack).as_f64();
            stack.push(Value::I32(trunc_to_i32(a)?));
        }
        Instr::I32TruncF64U => {
            let a = pop!(stack).as_f64();
            stack.push(Value::I32(trunc_to_u32(a)? as i32));
        }
        Instr::I64ExtendI32S => {
            let a = pop!(stack).as_i32();
            stack.push(Value::I64(a as i64));
        }
        Instr::I64ExtendI32U => {
            let a = pop!(stack).as_i32();
            stack.push(Value::I64(a as u32 as i64));
        }
        Instr::I64TruncF32S => {
            let a = pop!(stack).as_f32();
            stack.push(Value::I64(trunc_to_i64(a as f64)?));
        }
        Instr::I64TruncF32U => {
            let a = pop!(stack).as_f32();
            stack.push(Value::I64(trunc_to_u64(a as f64)? as i64));
        }
        Instr::I64TruncF64S => {
            let a = pop!(stack).as_f64();
            stack.push(Value::I64(trunc_to_i64(a)?));
        }
        Instr::I64TruncF64U => {
            let a = pop!(stack).as_f64();
            stack.push(Value::I64(trunc_to_u64(a)? as i64));
        }
        Instr::F32ConvertI32S => {
            let a = pop!(stack).as_i32();
            stack.push(Value::F32(a as f32));
        }
        Instr::F32ConvertI32U => {
            let a = pop!(stack).as_i32() as u32;
            stack.push(Value::F32(a as f32));
        }
        Instr::F32ConvertI64S => {
            let a = pop!(stack).as_i64();
            stack.push(Value::F32(a as f32));
        }
        Instr::F32ConvertI64U => {
            let a = pop!(stack).as_i64() as u64;
            stack.push(Value::F32(a as f32));
        }
        Instr::F32DemoteF64 => {
            let a = pop!(stack).as_f64();
            stack.push(Value::F32(a as f32));
        }
        Instr::F64ConvertI32S => {
            let a = pop!(stack).as_i32();
            stack.push(Value::F64(a as f64));
        }
        Instr::F64ConvertI32U => {
            let a = pop!(stack).as_i32() as u32;
            stack.push(Value::F64(a as f64));
        }
        Instr::F64ConvertI64S => {
            let a = pop!(stack).as_i64();
            stack.push(Value::F64(a as f64));
        }
        Instr::F64ConvertI64U => {
            let a = pop!(stack).as_i64() as u64;
            stack.push(Value::F64(a as f64));
        }
        Instr::F64PromoteF32 => {
            let a = pop!(stack).as_f32();
            stack.push(Value::F64(a as f64));
        }
        Instr::I32ReinterpretF32 => {
            let a = pop!(stack).as_f32();
            stack.push(Value::I32(a.to_bits() as i32));
        }
        Instr::I64ReinterpretF64 => {
            let a = pop!(stack).as_f64();
            stack.push(Value::I64(a.to_bits() as i64));
        }
        Instr::F32ReinterpretI32 => {
            let a = pop!(stack).as_i32();
            stack.push(Value::F32(f32::from_bits(a as u32)));
        }
        Instr::F64ReinterpretI64 => {
            let a = pop!(stack).as_i64();
            stack.push(Value::F64(f64::from_bits(a as u64)));
        }
        other => unreachable!("non-numeric instruction {other:?} in numeric::exec"),
    }
    Ok(())
}

/// Extend a raw little-endian load to a full stack value.
pub(crate) fn extend_loaded(raw: u64, bytes: u32, signed: bool, t: ValType) -> Value {
    let bits = if signed {
        let shift = 64 - bytes * 8;
        (((raw << shift) as i64) >> shift) as u64
    } else {
        raw
    };
    match t {
        ValType::I32 => Value::I32(bits as u32 as i32),
        ValType::I64 => Value::I64(bits as i64),
        ValType::F32 => Value::F32(f32::from_bits(bits as u32)),
        ValType::F64 => Value::F64(f64::from_bits(bits)),
    }
}

fn nearest_f32(a: f32) -> f32 {
    let r = a.round();
    if (r - a).abs() == 0.5 && r % 2.0 != 0.0 {
        r - a.signum()
    } else {
        r
    }
}

fn nearest_f64(a: f64) -> f64 {
    let r = a.round();
    if (r - a).abs() == 0.5 && r % 2.0 != 0.0 {
        r - a.signum()
    } else {
        r
    }
}

fn trunc_to_i32(a: f64) -> Result<i32, Trap> {
    if a.is_nan() {
        return Err(Trap::InvalidConversion);
    }
    let t = a.trunc();
    if t < i32::MIN as f64 || t > i32::MAX as f64 {
        return Err(Trap::IntegerOverflow);
    }
    Ok(t as i32)
}

fn trunc_to_u32(a: f64) -> Result<u32, Trap> {
    if a.is_nan() {
        return Err(Trap::InvalidConversion);
    }
    let t = a.trunc();
    if t < 0.0 || t > u32::MAX as f64 {
        return Err(Trap::IntegerOverflow);
    }
    Ok(t as u32)
}

fn trunc_to_i64(a: f64) -> Result<i64, Trap> {
    if a.is_nan() {
        return Err(Trap::InvalidConversion);
    }
    let t = a.trunc();
    if t < -(2f64.powi(63)) || t >= 2f64.powi(63) {
        return Err(Trap::IntegerOverflow);
    }
    Ok(t as i64)
}

fn trunc_to_u64(a: f64) -> Result<u64, Trap> {
    if a.is_nan() {
        return Err(Trap::InvalidConversion);
    }
    let t = a.trunc();
    if t < 0.0 || t >= 2f64.powi(64) {
        return Err(Trap::IntegerOverflow);
    }
    Ok(t as u64)
}
