//! Trap and error types of the EOSVM.

use std::fmt;

/// A runtime trap: execution of the current action aborts and — at the chain
/// level — the enclosing transaction is rolled back (§2.3.5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// `unreachable` executed (the complicated-verification injector of §4.3
    /// terminates failing inputs this way).
    Unreachable,
    /// Out-of-bounds linear memory access.
    MemoryOutOfBounds {
        /// Byte address of the access.
        addr: u64,
        /// Access width in bytes.
        len: u32,
    },
    /// Integer division or remainder by zero.
    DivideByZero,
    /// `INT_MIN / -1` style overflow, or an unrepresentable float→int cast.
    IntegerOverflow,
    /// An invalid float-to-int conversion (NaN).
    InvalidConversion,
    /// Call stack exceeded the configured depth.
    CallStackExhausted,
    /// Step (fuel) budget exhausted — the VM's deterministic time-out.
    StepLimit,
    /// `call_indirect` through a null table slot.
    UndefinedElement,
    /// `call_indirect` signature mismatch.
    IndirectCallTypeMismatch,
    /// Table index out of range.
    TableOutOfBounds,
    /// An `eosio_assert` with a false condition.
    AssertFailed(String),
    /// A host function reported an error.
    Host(String),
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::Unreachable => write!(f, "unreachable executed"),
            Trap::MemoryOutOfBounds { addr, len } => {
                write!(f, "out-of-bounds memory access of {len} bytes at {addr:#x}")
            }
            Trap::DivideByZero => write!(f, "integer divide by zero"),
            Trap::IntegerOverflow => write!(f, "integer overflow"),
            Trap::InvalidConversion => write!(f, "invalid conversion to integer"),
            Trap::CallStackExhausted => write!(f, "call stack exhausted"),
            Trap::StepLimit => write!(f, "step limit exceeded"),
            Trap::UndefinedElement => write!(f, "undefined table element"),
            Trap::IndirectCallTypeMismatch => write!(f, "indirect call type mismatch"),
            Trap::TableOutOfBounds => write!(f, "table index out of bounds"),
            Trap::AssertFailed(msg) => write!(f, "eosio_assert failed: {msg}"),
            Trap::Host(msg) => write!(f, "host error: {msg}"),
        }
    }
}

impl std::error::Error for Trap {}

/// An error constructing or linking an instance (before execution starts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceError {
    /// An import could not be resolved by the host.
    UnresolvedImport {
        /// Import namespace.
        module: String,
        /// Import name.
        name: String,
    },
    /// The module references a function/type/global that does not exist.
    BadIndex(String),
    /// A data segment does not fit in the initial memory.
    DataSegmentOutOfBounds,
    /// An element segment does not fit in the table.
    ElemSegmentOutOfBounds,
    /// The module has no memory but contracts require one.
    MissingExport(String),
    /// Structured control flow is malformed (unmatched block/end).
    MalformedControlFlow {
        /// The function with the problem.
        func: u32,
    },
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::UnresolvedImport { module, name } => {
                write!(f, "unresolved import {module}.{name}")
            }
            InstanceError::BadIndex(what) => write!(f, "bad index: {what}"),
            InstanceError::DataSegmentOutOfBounds => write!(f, "data segment out of bounds"),
            InstanceError::ElemSegmentOutOfBounds => write!(f, "element segment out of bounds"),
            InstanceError::MissingExport(name) => write!(f, "missing export {name}"),
            InstanceError::MalformedControlFlow { func } => {
                write!(f, "malformed control flow in function {func}")
            }
        }
    }
}

impl std::error::Error for InstanceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trap_messages_are_informative() {
        let t = Trap::MemoryOutOfBounds {
            addr: 0x100,
            len: 8,
        };
        assert!(t.to_string().contains("0x100"));
        assert!(Trap::AssertFailed("only eosio.token".into())
            .to_string()
            .contains("only eosio.token"));
    }

    #[test]
    fn instance_error_messages() {
        let e = InstanceError::UnresolvedImport {
            module: "env".into(),
            name: "foo".into(),
        };
        assert_eq!(e.to_string(), "unresolved import env.foo");
    }
}
