//! The EOSVM interpreter: a stack-based Wasm machine with a call stack,
//! Local/Global sections and a linear memory (§2.2).
//!
//! Contracts are compiled once per module ([`CompiledModule`] precomputes
//! structured-control targets) and instantiated per action execution
//! ([`Instance`]), matching EOSIO's fresh-instance-per-action semantics.
//! Execution is metered ([`Fuel`]) so the fuzzer's virtual clock and the
//! deterministic time-outs of §4 have a cost model to charge against.

use std::sync::Arc;

use wasai_wasm::instr::Instr;
use wasai_wasm::module::{ImportDesc, Module};

use crate::error::{InstanceError, Trap};
use crate::host::{Host, HostFnId};
use crate::memory::LinearMemory;
use crate::numeric;
use crate::tape::{self, Tape};
use crate::value::Value;

/// Maximum nested call depth (EOSVM isolates function namespaces with
/// sub-stacks; we bound them to keep the obfuscator's decoy recursion safe).
pub const MAX_CALL_DEPTH: u32 = 250;

/// A step budget. One unit ≈ one executed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fuel(pub u64);

impl Fuel {
    /// Consume one step.
    fn tick(&mut self) -> Result<(), Trap> {
        if self.0 == 0 {
            return Err(Trap::StepLimit);
        }
        self.0 -= 1;
        Ok(())
    }
}

/// Per-pc structured-control targets, precomputed at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct CtrlTarget {
    /// For `if`: pc of the matching `else`, if present.
    pub(crate) else_pc: Option<u32>,
    /// For block/loop/if: pc of the matching `end`.
    pub(crate) end_pc: u32,
}

/// A module plus the metadata the interpreter needs (control-flow targets),
/// and — when the fast path is enabled — the compiled execution tapes.
#[derive(Debug)]
pub struct CompiledModule {
    module: Arc<Module>,
    /// `targets[local_func][pc]` is meaningful for Block/Loop/If pcs.
    targets: Vec<Vec<CtrlTarget>>,
    /// Flattened threaded-code tapes, one per local function; `None` when the
    /// fast path is disabled or lowering bailed (all-or-nothing per module).
    tapes: Option<Vec<Tape>>,
}

impl CompiledModule {
    /// Compile a module (which should already validate). Builds the
    /// threaded-code tapes unless `WASAI_VM_FAST=0` disables the fast path.
    ///
    /// # Errors
    ///
    /// Returns [`InstanceError::MalformedControlFlow`] on unmatched
    /// block/if/end nesting.
    pub fn compile(module: Module) -> Result<Arc<Self>, InstanceError> {
        Self::compile_inner(module, tape::fast_path_enabled())
    }

    /// Compile without building tapes: the reference interpreter path.
    ///
    /// Differential tests use this to pin the fast path against the
    /// reference without racing on process-wide environment state.
    ///
    /// # Errors
    ///
    /// Same as [`CompiledModule::compile`].
    pub fn compile_reference(module: Module) -> Result<Arc<Self>, InstanceError> {
        Self::compile_inner(module, false)
    }

    fn compile_inner(module: Module, build_tapes: bool) -> Result<Arc<Self>, InstanceError> {
        let module = Arc::new(module);
        let mut targets = Vec::with_capacity(module.funcs.len());
        for (local_i, f) in module.funcs.iter().enumerate() {
            let func = module.num_imported_funcs() + local_i as u32;
            let mut t = vec![CtrlTarget::default(); f.body.len()];
            let mut stack: Vec<u32> = Vec::new();
            for (pc, i) in f.body.iter().enumerate() {
                match i {
                    Instr::Block(_) | Instr::Loop(_) | Instr::If(_) => stack.push(pc as u32),
                    Instr::Else => {
                        let open = *stack
                            .last()
                            .ok_or(InstanceError::MalformedControlFlow { func })?;
                        t[open as usize].else_pc = Some(pc as u32);
                    }
                    Instr::End => {
                        // The final End closes the function body itself.
                        if let Some(open) = stack.pop() {
                            t[open as usize].end_pc = pc as u32;
                        } else if pc + 1 != f.body.len() {
                            return Err(InstanceError::MalformedControlFlow { func });
                        }
                    }
                    _ => {}
                }
            }
            if !stack.is_empty() {
                return Err(InstanceError::MalformedControlFlow { func });
            }
            targets.push(t);
        }
        let tapes = if build_tapes {
            let timer = wasai_obs::ScopeTimer::start(wasai_obs::Histogram::TapeCompileWallSeconds);
            let tapes = tape::lower_module(&module, &targets);
            if tapes.is_some() {
                wasai_obs::inc(wasai_obs::Counter::VmTapeCompiles);
            }
            drop(timer);
            tapes
        } else {
            None
        };
        Ok(Arc::new(CompiledModule {
            module,
            targets,
            tapes,
        }))
    }

    /// The underlying module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The compiled tapes, when the fast path built them.
    pub(crate) fn tapes(&self) -> Option<&Vec<Tape>> {
        self.tapes.as_ref()
    }

    /// Does this module execute on the compiled-tape fast path?
    pub fn has_fast_path(&self) -> bool {
        self.tapes.is_some()
    }
}

/// A control label on the per-function label stack.
#[derive(Debug, Clone, Copy)]
struct Label {
    /// Value-stack height at label entry.
    height: usize,
    /// Values a branch to this label carries (0 for loops).
    arity: usize,
    /// Where a branch to this label continues.
    target: u32,
    /// Loops branch backwards and keep re-pushing their label.
    is_loop: bool,
}

/// Resolve a compiled module's function imports against `host`.
///
/// Split out of [`Instance::new`] so callers that instantiate the same
/// module many times (the chain's fresh-instance-per-action loop) can
/// resolve once and reuse the table via [`Instance::with_host_ids`].
///
/// # Errors
///
/// Fails if an import cannot be resolved or names a bad type index.
pub fn resolve_imports(
    compiled: &CompiledModule,
    host: &mut dyn Host,
) -> Result<Arc<Vec<HostFnId>>, InstanceError> {
    let module = &compiled.module;
    let mut host_ids = Vec::new();
    for imp in &module.imports {
        if let ImportDesc::Func(type_idx) = imp.desc {
            let ty = module
                .types
                .get(type_idx as usize)
                .ok_or_else(|| InstanceError::BadIndex(format!("type {type_idx}")))?;
            let id = host.resolve(&imp.module, &imp.name, ty).ok_or_else(|| {
                InstanceError::UnresolvedImport {
                    module: imp.module.clone(),
                    name: imp.name.clone(),
                }
            })?;
            host_ids.push(id);
        }
    }
    Ok(Arc::new(host_ids))
}

fn init_globals(module: &Module) -> Result<Vec<Value>, InstanceError> {
    let mut globals = Vec::with_capacity(module.globals.len());
    for g in &module.globals {
        let v = match g.init {
            Instr::I32Const(v) => Value::I32(v),
            Instr::I64Const(v) => Value::I64(v),
            Instr::F32Const(v) => Value::F32(v),
            Instr::F64Const(v) => Value::F64(v),
            ref other => return Err(InstanceError::BadIndex(format!("global init {other:?}"))),
        };
        globals.push(v);
    }
    Ok(globals)
}

fn init_table(module: &Module) -> Result<Vec<Option<u32>>, InstanceError> {
    let table_size = module.tables.first().map(|l| l.min).unwrap_or(0);
    let mut table = vec![None; table_size as usize];
    for e in &module.elems {
        for (k, &f) in e.funcs.iter().enumerate() {
            let slot = e.offset as usize + k;
            if slot >= table.len() {
                return Err(InstanceError::ElemSegmentOutOfBounds);
            }
            table[slot] = Some(f);
        }
    }
    Ok(table)
}

/// A live contract instance: memory, globals, table, resolved imports.
#[derive(Debug)]
pub struct Instance {
    compiled: Arc<CompiledModule>,
    /// The instance's linear memory (public so hosts can service APIs like
    /// `read_action_data` between calls).
    pub mem: LinearMemory,
    pub(crate) globals: Vec<Value>,
    pub(crate) table: Vec<Option<u32>>,
    pub(crate) host_ids: Arc<Vec<HostFnId>>,
}

impl Instance {
    /// Instantiate a compiled module, resolving imports against `host` and
    /// applying data/element segments.
    ///
    /// # Errors
    ///
    /// Fails if an import cannot be resolved, a segment is out of bounds, or
    /// an index is invalid.
    pub fn new(compiled: Arc<CompiledModule>, host: &mut dyn Host) -> Result<Self, InstanceError> {
        let host_ids = resolve_imports(&compiled, host)?;
        Self::with_host_ids(compiled, host_ids)
    }

    /// Instantiate with an import table resolved earlier by
    /// [`resolve_imports`] (skips the per-instantiation resolve loop).
    ///
    /// # Errors
    ///
    /// Fails if a segment is out of bounds or an index is invalid.
    pub fn with_host_ids(
        compiled: Arc<CompiledModule>,
        host_ids: Arc<Vec<HostFnId>>,
    ) -> Result<Self, InstanceError> {
        let module = compiled.module.clone();
        let mem = match module.memories.first() {
            Some(l) => LinearMemory::new(l.min, l.max),
            None => LinearMemory::new(0, Some(0)),
        };

        let globals = init_globals(&module)?;
        let table = init_table(&module)?;

        let mut inst = Instance {
            compiled,
            mem,
            globals,
            table,
            host_ids,
        };
        inst.apply_data_segments()?;
        Ok(inst)
    }

    /// Restore the freshly-instantiated state so the instance (and its
    /// linear-memory allocation) can be reused for another top-level call:
    /// memory back to min pages and all zeroes, globals and table re-derived
    /// from their init expressions, data segments re-applied. A reset
    /// instance is indistinguishable from one built by
    /// [`Instance::with_host_ids`].
    ///
    /// # Errors
    ///
    /// The same segment/index validation as instantiation; cannot fail for a
    /// module that instantiated successfully before.
    pub fn reset(&mut self) -> Result<(), InstanceError> {
        self.mem.reset();
        self.globals = init_globals(&self.compiled.module)?;
        self.table = init_table(&self.compiled.module)?;
        self.apply_data_segments()
    }

    fn apply_data_segments(&mut self) -> Result<(), InstanceError> {
        for d in &self.compiled.module.data.clone() {
            self.mem
                .write(d.offset as u64, &d.bytes)
                .map_err(|_| InstanceError::DataSegmentOutOfBounds)?;
        }
        Ok(())
    }

    /// The compiled module this instance runs.
    pub fn compiled(&self) -> &Arc<CompiledModule> {
        &self.compiled
    }

    /// Invoke an exported function by name.
    ///
    /// # Errors
    ///
    /// Traps propagate from execution; a missing export is a `Host` trap.
    pub fn invoke_export(
        &mut self,
        host: &mut dyn Host,
        name: &str,
        args: &[Value],
        fuel: &mut Fuel,
    ) -> Result<Vec<Value>, Trap> {
        let idx = self
            .compiled
            .module
            .exported_func(name)
            .ok_or_else(|| Trap::Host(format!("no exported function named {name}")))?;
        self.invoke(host, idx, args, fuel)
    }

    /// Invoke a function by index.
    ///
    /// # Errors
    ///
    /// Any [`Trap`] raised during execution.
    pub fn invoke(
        &mut self,
        host: &mut dyn Host,
        func_idx: u32,
        args: &[Value],
        fuel: &mut Fuel,
    ) -> Result<Vec<Value>, Trap> {
        let fuel_before = fuel.0;
        let r = self.call_function(host, func_idx, args, fuel);
        // Fuel only decreases during a call, so the delta is the executed
        // instruction count; one batched counter add per invoke keeps the
        // per-instruction loop untouched.
        wasai_obs::add(
            wasai_obs::Counter::VmInstructions,
            fuel_before.saturating_sub(fuel.0),
        );
        r
    }

    fn call_function(
        &mut self,
        host: &mut dyn Host,
        func_idx: u32,
        args: &[Value],
        fuel: &mut Fuel,
    ) -> Result<Vec<Value>, Trap> {
        let n_imp = self.compiled.module.num_imported_funcs();
        if func_idx < n_imp {
            let id = self.host_ids[func_idx as usize];
            let r = host.call(id, args, &mut self.mem)?;
            return Ok(r.into_iter().collect());
        }
        if self.compiled.tapes.is_some() {
            return tape::run(self, host, func_idx, args, fuel);
        }
        self.run_frames(host, func_idx, args, fuel)
    }

    #[allow(clippy::too_many_lines)]
    fn run_frames(
        &mut self,
        host: &mut dyn Host,
        entry: u32,
        entry_args: &[Value],
        fuel: &mut Fuel,
    ) -> Result<Vec<Value>, Trap> {
        let compiled = self.compiled.clone();
        let module = &*compiled.module;
        let n_imp = module.num_imported_funcs();

        /// What the current frame wants the driver loop to do next.
        enum Next {
            /// Call into another local function with the given arguments.
            Push(u32, Vec<Value>),
            /// The frame finished with these results.
            Pop(Vec<Value>),
        }

        /// One activation record: the per-function sub-stack of EOSVM.
        struct Frame {
            local_i: usize,
            locals: Vec<Value>,
            stack: Vec<Value>,
            labels: Vec<Label>,
            pc: u32,
            result_arity: usize,
        }

        let new_frame = |func_idx: u32, args: Vec<Value>| -> Frame {
            let local_i = (func_idx - n_imp) as usize;
            let f = &module.funcs[local_i];
            let ftype = &module.types[f.type_idx as usize];
            let mut locals = args;
            locals.extend(f.locals.iter().map(|&t| Value::zero(t)));
            Frame {
                local_i,
                locals,
                stack: Vec::new(),
                labels: vec![Label {
                    height: 0,
                    arity: ftype.results.len(),
                    target: f.body.len() as u32,
                    is_loop: false,
                }],
                pc: 0,
                result_arity: ftype.results.len(),
            }
        };

        /// Execute a branch to relative depth `l`; returns the new pc.
        fn do_branch(labels: &mut Vec<Label>, stack: &mut Vec<Value>, l: u32) -> u32 {
            let idx = labels.len() - 1 - l as usize;
            let lab = labels[idx];
            let keep = if lab.is_loop { 0 } else { lab.arity };
            tape::adjust(stack, lab.height, keep);
            // Loops jump back to the Loop instruction, which re-pushes the
            // label; forward branches discard the label.
            labels.truncate(idx);
            lab.target
        }

        let mut frames: Vec<Frame> = vec![new_frame(entry, entry_args.to_vec())];

        loop {
            let next: Next = 'frame: {
                let fi = frames.len() - 1;
                let frame = &mut frames[fi];
                let f = &module.funcs[frame.local_i];
                let targets = &compiled.targets[frame.local_i];
                let body_len = f.body.len() as u32;

                macro_rules! pop {
                    () => {
                        frame.stack.pop().expect("validated stack never underflows")
                    };
                }

                loop {
                    if frame.pc >= body_len {
                        let at = frame.stack.len() - frame.result_arity;
                        let results = frame.stack.split_off(at);
                        break 'frame Next::Pop(results);
                    }
                    fuel.tick()?;
                    let instr = &f.body[frame.pc as usize];
                    let mut next_pc = frame.pc + 1;
                    match instr {
                        Instr::Unreachable => return Err(Trap::Unreachable),
                        Instr::Nop => {}
                        Instr::Block(bt) => {
                            frame.labels.push(Label {
                                height: frame.stack.len(),
                                arity: bt.arity(),
                                target: targets[frame.pc as usize].end_pc + 1,
                                is_loop: false,
                            });
                        }
                        Instr::Loop(_) => {
                            frame.labels.push(Label {
                                height: frame.stack.len(),
                                arity: 0,
                                target: frame.pc,
                                is_loop: true,
                            });
                        }
                        Instr::If(bt) => {
                            let cond = pop!().as_i32();
                            let t = targets[frame.pc as usize];
                            if cond != 0 {
                                frame.labels.push(Label {
                                    height: frame.stack.len(),
                                    arity: bt.arity(),
                                    target: t.end_pc + 1,
                                    is_loop: false,
                                });
                            } else if let Some(else_pc) = t.else_pc {
                                frame.labels.push(Label {
                                    height: frame.stack.len(),
                                    arity: bt.arity(),
                                    target: t.end_pc + 1,
                                    is_loop: false,
                                });
                                next_pc = else_pc + 1;
                            } else {
                                next_pc = t.end_pc + 1;
                            }
                        }
                        Instr::Else => {
                            // Fallthrough from the then-arm: jump past the matching end.
                            let lab = frame.labels.pop().expect("else inside if");
                            next_pc = lab.target;
                        }
                        Instr::End => {
                            frame.labels.pop();
                        }
                        Instr::Br(l) => {
                            next_pc = do_branch(&mut frame.labels, &mut frame.stack, *l)
                        }
                        Instr::BrIf(l) => {
                            let cond = pop!().as_i32();
                            if cond != 0 {
                                next_pc = do_branch(&mut frame.labels, &mut frame.stack, *l);
                            }
                        }
                        Instr::BrTable(table_labels, default) => {
                            let idx = pop!().as_i32() as u32;
                            let l = table_labels.get(idx as usize).copied().unwrap_or(*default);
                            next_pc = do_branch(&mut frame.labels, &mut frame.stack, l);
                        }
                        Instr::Return => {
                            let results = frame
                                .stack
                                .split_off(frame.stack.len() - frame.result_arity);
                            break 'frame Next::Pop(results);
                        }
                        Instr::Call(callee) => {
                            let ft = module.func_type(*callee).ok_or_else(|| {
                                Trap::Host(format!("call target {callee} missing"))
                            })?;
                            let n = ft.params.len();
                            let call_args = frame.stack.split_off(frame.stack.len() - n);
                            if *callee < n_imp {
                                let id = self.host_ids[*callee as usize];
                                let r = host.call(id, &call_args, &mut self.mem)?;
                                frame.stack.extend(r);
                            } else {
                                frame.pc = next_pc;
                                break 'frame Next::Push(*callee, call_args);
                            }
                        }
                        Instr::CallIndirect(type_idx) => {
                            let idx = pop!().as_i32() as u32;
                            let slot = self
                                .table
                                .get(idx as usize)
                                .copied()
                                .ok_or(Trap::TableOutOfBounds)?;
                            let callee = slot.ok_or(Trap::UndefinedElement)?;
                            let expected = module
                                .types
                                .get(*type_idx as usize)
                                .ok_or_else(|| Trap::Host(format!("bad type index {type_idx}")))?;
                            let actual = module
                                .func_type(callee)
                                .ok_or_else(|| Trap::Host(format!("bad table target {callee}")))?;
                            if expected != actual {
                                return Err(Trap::IndirectCallTypeMismatch);
                            }
                            let n = expected.params.len();
                            let call_args = frame.stack.split_off(frame.stack.len() - n);
                            if callee < n_imp {
                                let id = self.host_ids[callee as usize];
                                let r = host.call(id, &call_args, &mut self.mem)?;
                                frame.stack.extend(r);
                            } else {
                                frame.pc = next_pc;
                                break 'frame Next::Push(callee, call_args);
                            }
                        }
                        Instr::Drop => {
                            pop!();
                        }
                        Instr::Select => {
                            let cond = pop!().as_i32();
                            let b = pop!();
                            let a = pop!();
                            frame.stack.push(if cond != 0 { a } else { b });
                        }
                        Instr::LocalGet(x) => frame.stack.push(frame.locals[*x as usize]),
                        Instr::LocalSet(x) => frame.locals[*x as usize] = pop!(),
                        Instr::LocalTee(x) => {
                            frame.locals[*x as usize] = *frame.stack.last().expect("tee operand");
                        }
                        Instr::GlobalGet(x) => frame.stack.push(self.globals[*x as usize]),
                        Instr::GlobalSet(x) => self.globals[*x as usize] = pop!(),
                        Instr::MemorySize => {
                            frame.stack.push(Value::I32(self.mem.size_pages() as i32))
                        }
                        Instr::MemoryGrow => {
                            let delta = pop!().as_i32();
                            let r = if delta < 0 {
                                -1
                            } else {
                                self.mem.grow(delta as u32)
                            };
                            frame.stack.push(Value::I32(r));
                        }
                        Instr::I32Const(v) => frame.stack.push(Value::I32(*v)),
                        Instr::I64Const(v) => frame.stack.push(Value::I64(*v)),
                        Instr::F32Const(v) => frame.stack.push(Value::F32(*v)),
                        Instr::F64Const(v) => frame.stack.push(Value::F64(*v)),

                        // Loads / stores.
                        other if other.memory_access().is_some() => {
                            let acc = other.memory_access().expect("guarded");
                            let m = other.mem_arg().expect("memory instr has memarg");
                            if acc.is_store {
                                let value = pop!();
                                let base = pop!().as_i32() as u32 as u64;
                                let addr = base + m.offset as u64;
                                self.mem.store_uint(addr, acc.bytes, value.to_bits())?;
                            } else {
                                let base = pop!().as_i32() as u32 as u64;
                                let addr = base + m.offset as u64;
                                let raw = self.mem.load_uint(addr, acc.bytes)?;
                                let v = numeric::extend_loaded(
                                    raw,
                                    acc.bytes,
                                    acc.signed,
                                    acc.val_type,
                                );
                                frame.stack.push(v);
                            }
                        }

                        // Numeric tail (compares, arithmetic, conversions):
                        // shared with the tape executor via [`numeric::exec`]
                        // so the two dispatch loops cannot drift.
                        other => numeric::exec(other, &mut frame.stack)?,
                    }

                    frame.pc = next_pc;
                }
            };
            match next {
                Next::Push(callee, args) => {
                    if frames.len() as u32 >= MAX_CALL_DEPTH {
                        return Err(Trap::CallStackExhausted);
                    }
                    frames.push(new_frame(callee, args));
                }
                Next::Pop(results) => {
                    frames.pop();
                    match frames.last_mut() {
                        None => return Ok(results),
                        Some(parent) => parent.stack.extend(results),
                    }
                }
            }
        }
    }
}
