//! The EOSVM interpreter: a stack-based Wasm machine with a call stack,
//! Local/Global sections and a linear memory (§2.2).
//!
//! Contracts are compiled once per module ([`CompiledModule`] precomputes
//! structured-control targets) and instantiated per action execution
//! ([`Instance`]), matching EOSIO's fresh-instance-per-action semantics.
//! Execution is metered ([`Fuel`]) so the fuzzer's virtual clock and the
//! deterministic time-outs of §4 have a cost model to charge against.

use std::sync::Arc;

use wasai_wasm::instr::Instr;
use wasai_wasm::module::{ImportDesc, Module};
use wasai_wasm::types::ValType;

use crate::error::{InstanceError, Trap};
use crate::host::{Host, HostFnId};
use crate::memory::LinearMemory;
use crate::value::Value;

/// Maximum nested call depth (EOSVM isolates function namespaces with
/// sub-stacks; we bound them to keep the obfuscator's decoy recursion safe).
pub const MAX_CALL_DEPTH: u32 = 250;

/// A step budget. One unit ≈ one executed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fuel(pub u64);

impl Fuel {
    /// Consume one step.
    fn tick(&mut self) -> Result<(), Trap> {
        if self.0 == 0 {
            return Err(Trap::StepLimit);
        }
        self.0 -= 1;
        Ok(())
    }
}

/// Per-pc structured-control targets, precomputed at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct CtrlTarget {
    /// For `if`: pc of the matching `else`, if present.
    else_pc: Option<u32>,
    /// For block/loop/if: pc of the matching `end`.
    end_pc: u32,
}

/// A module plus the metadata the interpreter needs (control-flow targets).
#[derive(Debug)]
pub struct CompiledModule {
    module: Arc<Module>,
    /// `targets[local_func][pc]` is meaningful for Block/Loop/If pcs.
    targets: Vec<Vec<CtrlTarget>>,
}

impl CompiledModule {
    /// Compile a module (which should already validate).
    ///
    /// # Errors
    ///
    /// Returns [`InstanceError::MalformedControlFlow`] on unmatched
    /// block/if/end nesting.
    pub fn compile(module: Module) -> Result<Arc<Self>, InstanceError> {
        let module = Arc::new(module);
        let mut targets = Vec::with_capacity(module.funcs.len());
        for (local_i, f) in module.funcs.iter().enumerate() {
            let func = module.num_imported_funcs() + local_i as u32;
            let mut t = vec![CtrlTarget::default(); f.body.len()];
            let mut stack: Vec<u32> = Vec::new();
            for (pc, i) in f.body.iter().enumerate() {
                match i {
                    Instr::Block(_) | Instr::Loop(_) | Instr::If(_) => stack.push(pc as u32),
                    Instr::Else => {
                        let open = *stack
                            .last()
                            .ok_or(InstanceError::MalformedControlFlow { func })?;
                        t[open as usize].else_pc = Some(pc as u32);
                    }
                    Instr::End => {
                        // The final End closes the function body itself.
                        if let Some(open) = stack.pop() {
                            t[open as usize].end_pc = pc as u32;
                        } else if pc + 1 != f.body.len() {
                            return Err(InstanceError::MalformedControlFlow { func });
                        }
                    }
                    _ => {}
                }
            }
            if !stack.is_empty() {
                return Err(InstanceError::MalformedControlFlow { func });
            }
            targets.push(t);
        }
        Ok(Arc::new(CompiledModule { module, targets }))
    }

    /// The underlying module.
    pub fn module(&self) -> &Module {
        &self.module
    }
}

/// A control label on the per-function label stack.
#[derive(Debug, Clone, Copy)]
struct Label {
    /// Value-stack height at label entry.
    height: usize,
    /// Values a branch to this label carries (0 for loops).
    arity: usize,
    /// Where a branch to this label continues.
    target: u32,
    /// Loops branch backwards and keep re-pushing their label.
    is_loop: bool,
}

/// A live contract instance: memory, globals, table, resolved imports.
#[derive(Debug)]
pub struct Instance {
    compiled: Arc<CompiledModule>,
    /// The instance's linear memory (public so hosts can service APIs like
    /// `read_action_data` between calls).
    pub mem: LinearMemory,
    globals: Vec<Value>,
    table: Vec<Option<u32>>,
    host_ids: Vec<HostFnId>,
}

impl Instance {
    /// Instantiate a compiled module, resolving imports against `host` and
    /// applying data/element segments.
    ///
    /// # Errors
    ///
    /// Fails if an import cannot be resolved, a segment is out of bounds, or
    /// an index is invalid.
    pub fn new(compiled: Arc<CompiledModule>, host: &mut dyn Host) -> Result<Self, InstanceError> {
        let module = compiled.module.clone();
        let mut host_ids = Vec::new();
        for imp in &module.imports {
            if let ImportDesc::Func(type_idx) = imp.desc {
                let ty = module
                    .types
                    .get(type_idx as usize)
                    .ok_or_else(|| InstanceError::BadIndex(format!("type {type_idx}")))?;
                let id = host.resolve(&imp.module, &imp.name, ty).ok_or_else(|| {
                    InstanceError::UnresolvedImport {
                        module: imp.module.clone(),
                        name: imp.name.clone(),
                    }
                })?;
                host_ids.push(id);
            }
        }

        let mem = match module.memories.first() {
            Some(l) => LinearMemory::new(l.min, l.max),
            None => LinearMemory::new(0, Some(0)),
        };

        let mut globals = Vec::with_capacity(module.globals.len());
        for g in &module.globals {
            let v = match g.init {
                Instr::I32Const(v) => Value::I32(v),
                Instr::I64Const(v) => Value::I64(v),
                Instr::F32Const(v) => Value::F32(v),
                Instr::F64Const(v) => Value::F64(v),
                ref other => return Err(InstanceError::BadIndex(format!("global init {other:?}"))),
            };
            globals.push(v);
        }

        let table_size = module.tables.first().map(|l| l.min).unwrap_or(0);
        let mut table = vec![None; table_size as usize];
        for e in &module.elems {
            for (k, &f) in e.funcs.iter().enumerate() {
                let slot = e.offset as usize + k;
                if slot >= table.len() {
                    return Err(InstanceError::ElemSegmentOutOfBounds);
                }
                table[slot] = Some(f);
            }
        }

        let mut inst = Instance {
            compiled,
            mem,
            globals,
            table,
            host_ids,
        };
        for d in &inst.compiled.module.data.clone() {
            inst.mem
                .write(d.offset as u64, &d.bytes)
                .map_err(|_| InstanceError::DataSegmentOutOfBounds)?;
        }
        Ok(inst)
    }

    /// The compiled module this instance runs.
    pub fn compiled(&self) -> &Arc<CompiledModule> {
        &self.compiled
    }

    /// Invoke an exported function by name.
    ///
    /// # Errors
    ///
    /// Traps propagate from execution; a missing export is a `Host` trap.
    pub fn invoke_export(
        &mut self,
        host: &mut dyn Host,
        name: &str,
        args: &[Value],
        fuel: &mut Fuel,
    ) -> Result<Vec<Value>, Trap> {
        let idx = self
            .compiled
            .module
            .exported_func(name)
            .ok_or_else(|| Trap::Host(format!("no exported function named {name}")))?;
        self.invoke(host, idx, args, fuel)
    }

    /// Invoke a function by index.
    ///
    /// # Errors
    ///
    /// Any [`Trap`] raised during execution.
    pub fn invoke(
        &mut self,
        host: &mut dyn Host,
        func_idx: u32,
        args: &[Value],
        fuel: &mut Fuel,
    ) -> Result<Vec<Value>, Trap> {
        let fuel_before = fuel.0;
        let r = self.call_function(host, func_idx, args, fuel);
        // Fuel only decreases during a call, so the delta is the executed
        // instruction count; one batched counter add per invoke keeps the
        // per-instruction loop untouched.
        wasai_obs::add(
            wasai_obs::Counter::VmInstructions,
            fuel_before.saturating_sub(fuel.0),
        );
        r
    }

    fn call_function(
        &mut self,
        host: &mut dyn Host,
        func_idx: u32,
        args: &[Value],
        fuel: &mut Fuel,
    ) -> Result<Vec<Value>, Trap> {
        let n_imp = self.compiled.module.num_imported_funcs();
        if func_idx < n_imp {
            let id = self.host_ids[func_idx as usize];
            let r = host.call(id, args, &mut self.mem)?;
            return Ok(r.into_iter().collect());
        }
        self.run_frames(host, func_idx, args, fuel)
    }

    #[allow(clippy::too_many_lines)]
    fn run_frames(
        &mut self,
        host: &mut dyn Host,
        entry: u32,
        entry_args: &[Value],
        fuel: &mut Fuel,
    ) -> Result<Vec<Value>, Trap> {
        let compiled = self.compiled.clone();
        let module = &*compiled.module;
        let n_imp = module.num_imported_funcs();

        /// What the current frame wants the driver loop to do next.
        enum Next {
            /// Call into another local function with the given arguments.
            Push(u32, Vec<Value>),
            /// The frame finished with these results.
            Pop(Vec<Value>),
        }

        /// One activation record: the per-function sub-stack of EOSVM.
        struct Frame {
            local_i: usize,
            locals: Vec<Value>,
            stack: Vec<Value>,
            labels: Vec<Label>,
            pc: u32,
            result_arity: usize,
        }

        let new_frame = |func_idx: u32, args: Vec<Value>| -> Frame {
            let local_i = (func_idx - n_imp) as usize;
            let f = &module.funcs[local_i];
            let ftype = &module.types[f.type_idx as usize];
            let mut locals = args;
            locals.extend(f.locals.iter().map(|&t| Value::zero(t)));
            Frame {
                local_i,
                locals,
                stack: Vec::new(),
                labels: vec![Label {
                    height: 0,
                    arity: ftype.results.len(),
                    target: f.body.len() as u32,
                    is_loop: false,
                }],
                pc: 0,
                result_arity: ftype.results.len(),
            }
        };

        /// Execute a branch to relative depth `l`; returns the new pc.
        fn do_branch(labels: &mut Vec<Label>, stack: &mut Vec<Value>, l: u32) -> u32 {
            let idx = labels.len() - 1 - l as usize;
            let lab = labels[idx];
            let keep = if lab.is_loop { 0 } else { lab.arity };
            let kept: Vec<Value> = stack.split_off(stack.len() - keep);
            stack.truncate(lab.height);
            stack.extend(kept);
            // Loops jump back to the Loop instruction, which re-pushes the
            // label; forward branches discard the label.
            labels.truncate(idx);
            lab.target
        }

        let mut frames: Vec<Frame> = vec![new_frame(entry, entry_args.to_vec())];

        loop {
            let next: Next = 'frame: {
                let fi = frames.len() - 1;
                let frame = &mut frames[fi];
                let f = &module.funcs[frame.local_i];
                let targets = &compiled.targets[frame.local_i];
                let body_len = f.body.len() as u32;

                macro_rules! pop {
                    () => {
                        frame.stack.pop().expect("validated stack never underflows")
                    };
                }

                macro_rules! bin_i32 {
                    (|$a:ident, $b:ident| $e:expr) => {{
                        let $b = pop!().as_i32();
                        let $a = pop!().as_i32();
                        frame.stack.push(Value::I32($e));
                    }};
                }
                macro_rules! bin_i64 {
                    (|$a:ident, $b:ident| $e:expr) => {{
                        let $b = pop!().as_i64();
                        let $a = pop!().as_i64();
                        frame.stack.push(Value::I64($e));
                    }};
                }
                macro_rules! cmp_i64 {
                    (|$a:ident, $b:ident| $e:expr) => {{
                        let $b = pop!().as_i64();
                        let $a = pop!().as_i64();
                        frame.stack.push(Value::I32(($e) as i32));
                    }};
                }
                macro_rules! cmp_i32 {
                    (|$a:ident, $b:ident| $e:expr) => {{
                        let $b = pop!().as_i32();
                        let $a = pop!().as_i32();
                        frame.stack.push(Value::I32(($e) as i32));
                    }};
                }
                macro_rules! bin_f32 {
                    (|$a:ident, $b:ident| $e:expr) => {{
                        let $b = pop!().as_f32();
                        let $a = pop!().as_f32();
                        frame.stack.push(Value::F32($e));
                    }};
                }
                macro_rules! bin_f64 {
                    (|$a:ident, $b:ident| $e:expr) => {{
                        let $b = pop!().as_f64();
                        let $a = pop!().as_f64();
                        frame.stack.push(Value::F64($e));
                    }};
                }
                macro_rules! cmp_f32 {
                    (|$a:ident, $b:ident| $e:expr) => {{
                        let $b = pop!().as_f32();
                        let $a = pop!().as_f32();
                        frame.stack.push(Value::I32(($e) as i32));
                    }};
                }
                macro_rules! cmp_f64 {
                    (|$a:ident, $b:ident| $e:expr) => {{
                        let $b = pop!().as_f64();
                        let $a = pop!().as_f64();
                        frame.stack.push(Value::I32(($e) as i32));
                    }};
                }
                macro_rules! un_i32 {
                    (|$a:ident| $e:expr) => {{
                        let $a = pop!().as_i32();
                        frame.stack.push(Value::I32($e));
                    }};
                }
                macro_rules! un_i64 {
                    (|$a:ident| $e:expr) => {{
                        let $a = pop!().as_i64();
                        frame.stack.push(Value::I64($e));
                    }};
                }
                macro_rules! un_f32 {
                    (|$a:ident| $e:expr) => {{
                        let $a = pop!().as_f32();
                        frame.stack.push(Value::F32($e));
                    }};
                }
                macro_rules! un_f64 {
                    (|$a:ident| $e:expr) => {{
                        let $a = pop!().as_f64();
                        frame.stack.push(Value::F64($e));
                    }};
                }

                loop {
                    if frame.pc >= body_len {
                        let at = frame.stack.len() - frame.result_arity;
                        let results = frame.stack.split_off(at);
                        break 'frame Next::Pop(results);
                    }
                    fuel.tick()?;
                    let instr = &f.body[frame.pc as usize];
                    let mut next_pc = frame.pc + 1;
                    match instr {
                        Instr::Unreachable => return Err(Trap::Unreachable),
                        Instr::Nop => {}
                        Instr::Block(bt) => {
                            frame.labels.push(Label {
                                height: frame.stack.len(),
                                arity: bt.arity(),
                                target: targets[frame.pc as usize].end_pc + 1,
                                is_loop: false,
                            });
                        }
                        Instr::Loop(_) => {
                            frame.labels.push(Label {
                                height: frame.stack.len(),
                                arity: 0,
                                target: frame.pc,
                                is_loop: true,
                            });
                        }
                        Instr::If(bt) => {
                            let cond = pop!().as_i32();
                            let t = targets[frame.pc as usize];
                            if cond != 0 {
                                frame.labels.push(Label {
                                    height: frame.stack.len(),
                                    arity: bt.arity(),
                                    target: t.end_pc + 1,
                                    is_loop: false,
                                });
                            } else if let Some(else_pc) = t.else_pc {
                                frame.labels.push(Label {
                                    height: frame.stack.len(),
                                    arity: bt.arity(),
                                    target: t.end_pc + 1,
                                    is_loop: false,
                                });
                                next_pc = else_pc + 1;
                            } else {
                                next_pc = t.end_pc + 1;
                            }
                        }
                        Instr::Else => {
                            // Fallthrough from the then-arm: jump past the matching end.
                            let lab = frame.labels.pop().expect("else inside if");
                            next_pc = lab.target;
                        }
                        Instr::End => {
                            frame.labels.pop();
                        }
                        Instr::Br(l) => {
                            next_pc = do_branch(&mut frame.labels, &mut frame.stack, *l)
                        }
                        Instr::BrIf(l) => {
                            let cond = pop!().as_i32();
                            if cond != 0 {
                                next_pc = do_branch(&mut frame.labels, &mut frame.stack, *l);
                            }
                        }
                        Instr::BrTable(table_labels, default) => {
                            let idx = pop!().as_i32() as u32;
                            let l = table_labels.get(idx as usize).copied().unwrap_or(*default);
                            next_pc = do_branch(&mut frame.labels, &mut frame.stack, l);
                        }
                        Instr::Return => {
                            let results = frame
                                .stack
                                .split_off(frame.stack.len() - frame.result_arity);
                            break 'frame Next::Pop(results);
                        }
                        Instr::Call(callee) => {
                            let ft = module.func_type(*callee).ok_or_else(|| {
                                Trap::Host(format!("call target {callee} missing"))
                            })?;
                            let n = ft.params.len();
                            let call_args = frame.stack.split_off(frame.stack.len() - n);
                            if *callee < n_imp {
                                let id = self.host_ids[*callee as usize];
                                let r = host.call(id, &call_args, &mut self.mem)?;
                                frame.stack.extend(r);
                            } else {
                                frame.pc = next_pc;
                                break 'frame Next::Push(*callee, call_args);
                            }
                        }
                        Instr::CallIndirect(type_idx) => {
                            let idx = pop!().as_i32() as u32;
                            let slot = self
                                .table
                                .get(idx as usize)
                                .copied()
                                .ok_or(Trap::TableOutOfBounds)?;
                            let callee = slot.ok_or(Trap::UndefinedElement)?;
                            let expected = module
                                .types
                                .get(*type_idx as usize)
                                .ok_or_else(|| Trap::Host(format!("bad type index {type_idx}")))?;
                            let actual = module
                                .func_type(callee)
                                .ok_or_else(|| Trap::Host(format!("bad table target {callee}")))?;
                            if expected != actual {
                                return Err(Trap::IndirectCallTypeMismatch);
                            }
                            let n = expected.params.len();
                            let call_args = frame.stack.split_off(frame.stack.len() - n);
                            if callee < n_imp {
                                let id = self.host_ids[callee as usize];
                                let r = host.call(id, &call_args, &mut self.mem)?;
                                frame.stack.extend(r);
                            } else {
                                frame.pc = next_pc;
                                break 'frame Next::Push(callee, call_args);
                            }
                        }
                        Instr::Drop => {
                            pop!();
                        }
                        Instr::Select => {
                            let cond = pop!().as_i32();
                            let b = pop!();
                            let a = pop!();
                            frame.stack.push(if cond != 0 { a } else { b });
                        }
                        Instr::LocalGet(x) => frame.stack.push(frame.locals[*x as usize]),
                        Instr::LocalSet(x) => frame.locals[*x as usize] = pop!(),
                        Instr::LocalTee(x) => {
                            frame.locals[*x as usize] = *frame.stack.last().expect("tee operand");
                        }
                        Instr::GlobalGet(x) => frame.stack.push(self.globals[*x as usize]),
                        Instr::GlobalSet(x) => self.globals[*x as usize] = pop!(),
                        Instr::MemorySize => {
                            frame.stack.push(Value::I32(self.mem.size_pages() as i32))
                        }
                        Instr::MemoryGrow => {
                            let delta = pop!().as_i32();
                            let r = if delta < 0 {
                                -1
                            } else {
                                self.mem.grow(delta as u32)
                            };
                            frame.stack.push(Value::I32(r));
                        }
                        Instr::I32Const(v) => frame.stack.push(Value::I32(*v)),
                        Instr::I64Const(v) => frame.stack.push(Value::I64(*v)),
                        Instr::F32Const(v) => frame.stack.push(Value::F32(*v)),
                        Instr::F64Const(v) => frame.stack.push(Value::F64(*v)),

                        // Loads / stores.
                        other if other.memory_access().is_some() => {
                            let acc = other.memory_access().expect("guarded");
                            let m = other.mem_arg().expect("memory instr has memarg");
                            if acc.is_store {
                                let value = pop!();
                                let base = pop!().as_i32() as u32 as u64;
                                let addr = base + m.offset as u64;
                                self.mem.store_uint(addr, acc.bytes, value.to_bits())?;
                            } else {
                                let base = pop!().as_i32() as u32 as u64;
                                let addr = base + m.offset as u64;
                                let raw = self.mem.load_uint(addr, acc.bytes)?;
                                let v = extend_loaded(raw, acc.bytes, acc.signed, acc.val_type);
                                frame.stack.push(v);
                            }
                        }

                        // i32 compare.
                        Instr::I32Eqz => un_i32!(|a| (a == 0) as i32),
                        Instr::I32Eq => cmp_i32!(|a, b| a == b),
                        Instr::I32Ne => cmp_i32!(|a, b| a != b),
                        Instr::I32LtS => cmp_i32!(|a, b| a < b),
                        Instr::I32LtU => cmp_i32!(|a, b| (a as u32) < (b as u32)),
                        Instr::I32GtS => cmp_i32!(|a, b| a > b),
                        Instr::I32GtU => cmp_i32!(|a, b| (a as u32) > (b as u32)),
                        Instr::I32LeS => cmp_i32!(|a, b| a <= b),
                        Instr::I32LeU => cmp_i32!(|a, b| (a as u32) <= (b as u32)),
                        Instr::I32GeS => cmp_i32!(|a, b| a >= b),
                        Instr::I32GeU => cmp_i32!(|a, b| (a as u32) >= (b as u32)),

                        // i64 compare.
                        Instr::I64Eqz => {
                            let a = pop!().as_i64();
                            frame.stack.push(Value::I32((a == 0) as i32));
                        }
                        Instr::I64Eq => cmp_i64!(|a, b| a == b),
                        Instr::I64Ne => cmp_i64!(|a, b| a != b),
                        Instr::I64LtS => cmp_i64!(|a, b| a < b),
                        Instr::I64LtU => cmp_i64!(|a, b| (a as u64) < (b as u64)),
                        Instr::I64GtS => cmp_i64!(|a, b| a > b),
                        Instr::I64GtU => cmp_i64!(|a, b| (a as u64) > (b as u64)),
                        Instr::I64LeS => cmp_i64!(|a, b| a <= b),
                        Instr::I64LeU => cmp_i64!(|a, b| (a as u64) <= (b as u64)),
                        Instr::I64GeS => cmp_i64!(|a, b| a >= b),
                        Instr::I64GeU => cmp_i64!(|a, b| (a as u64) >= (b as u64)),

                        // f32/f64 compare.
                        Instr::F32Eq => cmp_f32!(|a, b| a == b),
                        Instr::F32Ne => cmp_f32!(|a, b| a != b),
                        Instr::F32Lt => cmp_f32!(|a, b| a < b),
                        Instr::F32Gt => cmp_f32!(|a, b| a > b),
                        Instr::F32Le => cmp_f32!(|a, b| a <= b),
                        Instr::F32Ge => cmp_f32!(|a, b| a >= b),
                        Instr::F64Eq => cmp_f64!(|a, b| a == b),
                        Instr::F64Ne => cmp_f64!(|a, b| a != b),
                        Instr::F64Lt => cmp_f64!(|a, b| a < b),
                        Instr::F64Gt => cmp_f64!(|a, b| a > b),
                        Instr::F64Le => cmp_f64!(|a, b| a <= b),
                        Instr::F64Ge => cmp_f64!(|a, b| a >= b),

                        // i32 arithmetic.
                        Instr::I32Clz => un_i32!(|a| a.leading_zeros() as i32),
                        Instr::I32Ctz => un_i32!(|a| a.trailing_zeros() as i32),
                        Instr::I32Popcnt => un_i32!(|a| a.count_ones() as i32),
                        Instr::I32Add => bin_i32!(|a, b| a.wrapping_add(b)),
                        Instr::I32Sub => bin_i32!(|a, b| a.wrapping_sub(b)),
                        Instr::I32Mul => bin_i32!(|a, b| a.wrapping_mul(b)),
                        Instr::I32DivS => {
                            let b = pop!().as_i32();
                            let a = pop!().as_i32();
                            if b == 0 {
                                return Err(Trap::DivideByZero);
                            }
                            if a == i32::MIN && b == -1 {
                                return Err(Trap::IntegerOverflow);
                            }
                            frame.stack.push(Value::I32(a.wrapping_div(b)));
                        }
                        Instr::I32DivU => {
                            let b = pop!().as_i32() as u32;
                            let a = pop!().as_i32() as u32;
                            if b == 0 {
                                return Err(Trap::DivideByZero);
                            }
                            frame.stack.push(Value::I32((a / b) as i32));
                        }
                        Instr::I32RemS => {
                            let b = pop!().as_i32();
                            let a = pop!().as_i32();
                            if b == 0 {
                                return Err(Trap::DivideByZero);
                            }
                            frame.stack.push(Value::I32(a.wrapping_rem(b)));
                        }
                        Instr::I32RemU => {
                            let b = pop!().as_i32() as u32;
                            let a = pop!().as_i32() as u32;
                            if b == 0 {
                                return Err(Trap::DivideByZero);
                            }
                            frame.stack.push(Value::I32((a % b) as i32));
                        }
                        Instr::I32And => bin_i32!(|a, b| a & b),
                        Instr::I32Or => bin_i32!(|a, b| a | b),
                        Instr::I32Xor => bin_i32!(|a, b| a ^ b),
                        Instr::I32Shl => bin_i32!(|a, b| a.wrapping_shl(b as u32)),
                        Instr::I32ShrS => bin_i32!(|a, b| a.wrapping_shr(b as u32)),
                        Instr::I32ShrU => {
                            bin_i32!(|a, b| ((a as u32).wrapping_shr(b as u32)) as i32)
                        }
                        Instr::I32Rotl => bin_i32!(|a, b| a.rotate_left(b as u32 % 32)),
                        Instr::I32Rotr => bin_i32!(|a, b| a.rotate_right(b as u32 % 32)),

                        // i64 arithmetic.
                        Instr::I64Clz => un_i64!(|a| a.leading_zeros() as i64),
                        Instr::I64Ctz => un_i64!(|a| a.trailing_zeros() as i64),
                        Instr::I64Popcnt => un_i64!(|a| a.count_ones() as i64),
                        Instr::I64Add => bin_i64!(|a, b| a.wrapping_add(b)),
                        Instr::I64Sub => bin_i64!(|a, b| a.wrapping_sub(b)),
                        Instr::I64Mul => bin_i64!(|a, b| a.wrapping_mul(b)),
                        Instr::I64DivS => {
                            let b = pop!().as_i64();
                            let a = pop!().as_i64();
                            if b == 0 {
                                return Err(Trap::DivideByZero);
                            }
                            if a == i64::MIN && b == -1 {
                                return Err(Trap::IntegerOverflow);
                            }
                            frame.stack.push(Value::I64(a.wrapping_div(b)));
                        }
                        Instr::I64DivU => {
                            let b = pop!().as_i64() as u64;
                            let a = pop!().as_i64() as u64;
                            if b == 0 {
                                return Err(Trap::DivideByZero);
                            }
                            frame.stack.push(Value::I64((a / b) as i64));
                        }
                        Instr::I64RemS => {
                            let b = pop!().as_i64();
                            let a = pop!().as_i64();
                            if b == 0 {
                                return Err(Trap::DivideByZero);
                            }
                            frame.stack.push(Value::I64(a.wrapping_rem(b)));
                        }
                        Instr::I64RemU => {
                            let b = pop!().as_i64() as u64;
                            let a = pop!().as_i64() as u64;
                            if b == 0 {
                                return Err(Trap::DivideByZero);
                            }
                            frame.stack.push(Value::I64((a % b) as i64));
                        }
                        Instr::I64And => bin_i64!(|a, b| a & b),
                        Instr::I64Or => bin_i64!(|a, b| a | b),
                        Instr::I64Xor => bin_i64!(|a, b| a ^ b),
                        Instr::I64Shl => bin_i64!(|a, b| a.wrapping_shl(b as u32)),
                        Instr::I64ShrS => bin_i64!(|a, b| a.wrapping_shr(b as u32)),
                        Instr::I64ShrU => {
                            bin_i64!(|a, b| ((a as u64).wrapping_shr(b as u32)) as i64)
                        }
                        Instr::I64Rotl => bin_i64!(|a, b| a.rotate_left((b as u32) % 64)),
                        Instr::I64Rotr => bin_i64!(|a, b| a.rotate_right((b as u32) % 64)),

                        // f32 arithmetic.
                        Instr::F32Abs => un_f32!(|a| a.abs()),
                        Instr::F32Neg => un_f32!(|a| -a),
                        Instr::F32Ceil => un_f32!(|a| a.ceil()),
                        Instr::F32Floor => un_f32!(|a| a.floor()),
                        Instr::F32Trunc => un_f32!(|a| a.trunc()),
                        Instr::F32Nearest => un_f32!(|a| nearest_f32(a)),
                        Instr::F32Sqrt => un_f32!(|a| a.sqrt()),
                        Instr::F32Add => bin_f32!(|a, b| a + b),
                        Instr::F32Sub => bin_f32!(|a, b| a - b),
                        Instr::F32Mul => bin_f32!(|a, b| a * b),
                        Instr::F32Div => bin_f32!(|a, b| a / b),
                        Instr::F32Min => bin_f32!(|a, b| a.min(b)),
                        Instr::F32Max => bin_f32!(|a, b| a.max(b)),
                        Instr::F32Copysign => bin_f32!(|a, b| a.copysign(b)),

                        // f64 arithmetic.
                        Instr::F64Abs => un_f64!(|a| a.abs()),
                        Instr::F64Neg => un_f64!(|a| -a),
                        Instr::F64Ceil => un_f64!(|a| a.ceil()),
                        Instr::F64Floor => un_f64!(|a| a.floor()),
                        Instr::F64Trunc => un_f64!(|a| a.trunc()),
                        Instr::F64Nearest => un_f64!(|a| nearest_f64(a)),
                        Instr::F64Sqrt => un_f64!(|a| a.sqrt()),
                        Instr::F64Add => bin_f64!(|a, b| a + b),
                        Instr::F64Sub => bin_f64!(|a, b| a - b),
                        Instr::F64Mul => bin_f64!(|a, b| a * b),
                        Instr::F64Div => bin_f64!(|a, b| a / b),
                        Instr::F64Min => bin_f64!(|a, b| a.min(b)),
                        Instr::F64Max => bin_f64!(|a, b| a.max(b)),
                        Instr::F64Copysign => bin_f64!(|a, b| a.copysign(b)),

                        // Conversions.
                        Instr::I32WrapI64 => {
                            let a = pop!().as_i64();
                            frame.stack.push(Value::I32(a as i32));
                        }
                        Instr::I32TruncF32S => {
                            let a = pop!().as_f32();
                            frame.stack.push(Value::I32(trunc_to_i32(a as f64)?));
                        }
                        Instr::I32TruncF32U => {
                            let a = pop!().as_f32();
                            frame.stack.push(Value::I32(trunc_to_u32(a as f64)? as i32));
                        }
                        Instr::I32TruncF64S => {
                            let a = pop!().as_f64();
                            frame.stack.push(Value::I32(trunc_to_i32(a)?));
                        }
                        Instr::I32TruncF64U => {
                            let a = pop!().as_f64();
                            frame.stack.push(Value::I32(trunc_to_u32(a)? as i32));
                        }
                        Instr::I64ExtendI32S => {
                            let a = pop!().as_i32();
                            frame.stack.push(Value::I64(a as i64));
                        }
                        Instr::I64ExtendI32U => {
                            let a = pop!().as_i32();
                            frame.stack.push(Value::I64(a as u32 as i64));
                        }
                        Instr::I64TruncF32S => {
                            let a = pop!().as_f32();
                            frame.stack.push(Value::I64(trunc_to_i64(a as f64)?));
                        }
                        Instr::I64TruncF32U => {
                            let a = pop!().as_f32();
                            frame.stack.push(Value::I64(trunc_to_u64(a as f64)? as i64));
                        }
                        Instr::I64TruncF64S => {
                            let a = pop!().as_f64();
                            frame.stack.push(Value::I64(trunc_to_i64(a)?));
                        }
                        Instr::I64TruncF64U => {
                            let a = pop!().as_f64();
                            frame.stack.push(Value::I64(trunc_to_u64(a)? as i64));
                        }
                        Instr::F32ConvertI32S => {
                            let a = pop!().as_i32();
                            frame.stack.push(Value::F32(a as f32));
                        }
                        Instr::F32ConvertI32U => {
                            let a = pop!().as_i32() as u32;
                            frame.stack.push(Value::F32(a as f32));
                        }
                        Instr::F32ConvertI64S => {
                            let a = pop!().as_i64();
                            frame.stack.push(Value::F32(a as f32));
                        }
                        Instr::F32ConvertI64U => {
                            let a = pop!().as_i64() as u64;
                            frame.stack.push(Value::F32(a as f32));
                        }
                        Instr::F32DemoteF64 => {
                            let a = pop!().as_f64();
                            frame.stack.push(Value::F32(a as f32));
                        }
                        Instr::F64ConvertI32S => {
                            let a = pop!().as_i32();
                            frame.stack.push(Value::F64(a as f64));
                        }
                        Instr::F64ConvertI32U => {
                            let a = pop!().as_i32() as u32;
                            frame.stack.push(Value::F64(a as f64));
                        }
                        Instr::F64ConvertI64S => {
                            let a = pop!().as_i64();
                            frame.stack.push(Value::F64(a as f64));
                        }
                        Instr::F64ConvertI64U => {
                            let a = pop!().as_i64() as u64;
                            frame.stack.push(Value::F64(a as f64));
                        }
                        Instr::F64PromoteF32 => {
                            let a = pop!().as_f32();
                            frame.stack.push(Value::F64(a as f64));
                        }
                        Instr::I32ReinterpretF32 => {
                            let a = pop!().as_f32();
                            frame.stack.push(Value::I32(a.to_bits() as i32));
                        }
                        Instr::I64ReinterpretF64 => {
                            let a = pop!().as_f64();
                            frame.stack.push(Value::I64(a.to_bits() as i64));
                        }
                        Instr::F32ReinterpretI32 => {
                            let a = pop!().as_i32();
                            frame.stack.push(Value::F32(f32::from_bits(a as u32)));
                        }
                        Instr::F64ReinterpretI64 => {
                            let a = pop!().as_i64();
                            frame.stack.push(Value::F64(f64::from_bits(a as u64)));
                        }
                        // All memory instructions were handled by the guarded arm
                        // above; every other opcode has an explicit arm.
                        other => unreachable!("unhandled instruction {other:?}"),
                    }

                    frame.pc = next_pc;
                }
            };
            match next {
                Next::Push(callee, args) => {
                    if frames.len() as u32 >= MAX_CALL_DEPTH {
                        return Err(Trap::CallStackExhausted);
                    }
                    frames.push(new_frame(callee, args));
                }
                Next::Pop(results) => {
                    frames.pop();
                    match frames.last_mut() {
                        None => return Ok(results),
                        Some(parent) => parent.stack.extend(results),
                    }
                }
            }
        }
    }
}

fn extend_loaded(raw: u64, bytes: u32, signed: bool, t: ValType) -> Value {
    let bits = if signed {
        let shift = 64 - bytes * 8;
        (((raw << shift) as i64) >> shift) as u64
    } else {
        raw
    };
    match t {
        ValType::I32 => Value::I32(bits as u32 as i32),
        ValType::I64 => Value::I64(bits as i64),
        ValType::F32 => Value::F32(f32::from_bits(bits as u32)),
        ValType::F64 => Value::F64(f64::from_bits(bits)),
    }
}

fn nearest_f32(a: f32) -> f32 {
    let r = a.round();
    if (r - a).abs() == 0.5 && r % 2.0 != 0.0 {
        r - a.signum()
    } else {
        r
    }
}

fn nearest_f64(a: f64) -> f64 {
    let r = a.round();
    if (r - a).abs() == 0.5 && r % 2.0 != 0.0 {
        r - a.signum()
    } else {
        r
    }
}

fn trunc_to_i32(a: f64) -> Result<i32, Trap> {
    if a.is_nan() {
        return Err(Trap::InvalidConversion);
    }
    let t = a.trunc();
    if t < i32::MIN as f64 || t > i32::MAX as f64 {
        return Err(Trap::IntegerOverflow);
    }
    Ok(t as i32)
}

fn trunc_to_u32(a: f64) -> Result<u32, Trap> {
    if a.is_nan() {
        return Err(Trap::InvalidConversion);
    }
    let t = a.trunc();
    if t < 0.0 || t > u32::MAX as f64 {
        return Err(Trap::IntegerOverflow);
    }
    Ok(t as u32)
}

fn trunc_to_i64(a: f64) -> Result<i64, Trap> {
    if a.is_nan() {
        return Err(Trap::InvalidConversion);
    }
    let t = a.trunc();
    if t < -(2f64.powi(63)) || t >= 2f64.powi(63) {
        return Err(Trap::IntegerOverflow);
    }
    Ok(t as i64)
}

fn trunc_to_u64(a: f64) -> Result<u64, Trap> {
    if a.is_nan() {
        return Err(Trap::InvalidConversion);
    }
    let t = a.trunc();
    if t < 0.0 || t >= 2f64.powi(64) {
        return Err(Trap::IntegerOverflow);
    }
    Ok(t as u64)
}
