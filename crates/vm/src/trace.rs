//! Execution trace records (the τ⟨i, p⃗⟩ tuples of §3.1).
//!
//! Instrumented contracts emit these through the `wasai.*` hook imports (see
//! `wasai_wasm::instrument`). The sink groups the raw hook calls into
//! [`TraceRecord`]s: a `trace_site`/`trace_call_*` call opens a record and
//! subsequent `logi`/`logsf`/`logdf` calls append its operands — exactly the
//! "duplicate the operands and invoke library APIs to print the traces"
//! mechanism of §3.3.1.

/// A single logged operand value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceVal {
    /// Integer operand (i32 operands arrive zero-extended).
    I(i64),
    /// f32 operand.
    F32(f32),
    /// f64 operand.
    F64(f64),
}

impl TraceVal {
    /// The operand as raw 64 bits.
    pub fn bits(self) -> u64 {
        match self {
            TraceVal::I(v) => v as u64,
            TraceVal::F32(v) => v.to_bits() as u64,
            TraceVal::F64(v) => v.to_bits(),
        }
    }

    /// The operand as an integer, if it is one.
    pub fn as_int(self) -> Option<i64> {
        match self {
            TraceVal::I(v) => Some(v),
            _ => None,
        }
    }
}

/// The kind of a trace record (mirrors the hook taxonomy of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// An instruction at `(func, pc)` in the *original* module executed.
    Site {
        /// Original function index.
        func: u32,
        /// Instruction offset within that function's body.
        pc: u32,
    },
    /// A call is about to happen; operands are the invocation arguments
    /// "duplicated from the caller's stack" (Table 1, `call_pre`).
    CallPre {
        /// Original callee index; `-1` for indirect calls.
        callee: i32,
    },
    /// A call returned; operands are the returned values (`call_post`).
    CallPost {
        /// Original callee index; `-1` for indirect calls.
        callee: i32,
    },
    /// A function body started executing (`function_begin`).
    FuncBegin {
        /// Original function index.
        func: u32,
    },
    /// A function body finished (`function_end`).
    FuncEnd {
        /// Original function index.
        func: u32,
    },
}

/// One grouped trace record: τ⟨i, p⃗⟩.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// What happened.
    pub kind: TraceKind,
    /// The duplicated operand values, bottom → top.
    pub operands: Vec<TraceVal>,
}

/// Collects hook calls into an ordered list of [`TraceRecord`]s.
///
/// The paper redirects traces "to offline files once one EOSVM thread
/// finishes" (§3.3.1); [`TraceSink::take`] plays the role of that export.
#[derive(Debug, Default)]
pub struct TraceSink {
    records: Vec<TraceRecord>,
    enabled: bool,
}

impl TraceSink {
    /// A new, enabled sink.
    pub fn new() -> Self {
        TraceSink {
            records: Vec::new(),
            enabled: true,
        }
    }

    /// Enable or disable collection (auxiliary contracts run with the sink
    /// disabled so their hook calls — if any — are dropped).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether records are currently being collected.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn push(&mut self, kind: TraceKind) {
        if self.enabled {
            self.records.push(TraceRecord {
                kind,
                operands: Vec::new(),
            });
        }
    }

    /// Record a `trace_site(func, pc)` hook call.
    pub fn site(&mut self, func: u32, pc: u32) {
        self.push(TraceKind::Site { func, pc });
    }

    /// Record a `trace_call_pre(callee)` hook call.
    pub fn call_pre(&mut self, callee: i32) {
        self.push(TraceKind::CallPre { callee });
    }

    /// Record a `trace_call_post(callee)` hook call.
    pub fn call_post(&mut self, callee: i32) {
        self.push(TraceKind::CallPost { callee });
    }

    /// Record a `trace_func_begin(func)` hook call.
    pub fn func_begin(&mut self, func: u32) {
        self.push(TraceKind::FuncBegin { func });
    }

    /// Record a `trace_func_end(func)` hook call.
    pub fn func_end(&mut self, func: u32) {
        self.push(TraceKind::FuncEnd { func });
    }

    /// Append an operand to the most recent record (a `logi`/`logsf`/`logdf`
    /// hook call).
    pub fn log(&mut self, v: TraceVal) {
        if self.enabled {
            if let Some(last) = self.records.last_mut() {
                last.operands.push(v);
            }
        }
    }

    /// Number of records collected so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Export the collected trace, leaving the sink empty.
    pub fn take(&mut self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.records)
    }

    /// Read-only view of the collected records.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_operands_under_latest_record() {
        let mut sink = TraceSink::new();
        sink.site(3, 7);
        sink.log(TraceVal::I(10));
        sink.log(TraceVal::I(20));
        sink.site(3, 8);
        let records = sink.take();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].operands, vec![TraceVal::I(10), TraceVal::I(20)]);
        assert!(records[1].operands.is_empty());
        assert!(sink.is_empty());
    }

    #[test]
    fn disabled_sink_drops_everything() {
        let mut sink = TraceSink::new();
        sink.set_enabled(false);
        sink.site(0, 0);
        sink.log(TraceVal::F64(1.0));
        assert!(sink.is_empty());
    }

    #[test]
    fn traceval_bits() {
        assert_eq!(TraceVal::I(-1).bits(), u64::MAX);
        assert_eq!(TraceVal::F32(1.0).bits(), 1.0f32.to_bits() as u64);
        assert_eq!(TraceVal::I(5).as_int(), Some(5));
        assert_eq!(TraceVal::F64(5.0).as_int(), None);
    }
}
