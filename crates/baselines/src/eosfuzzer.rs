//! EOSFuzzer — the black-box random fuzzer baseline.
//!
//! Reimplemented from its description in the WASAI paper and the EOSFuzzer
//! paper (Huang, Jiang, Chan — Internetware 2020): "it only generates random
//! seeds without leveraging feedback" (§1), covers Fake EOS, Fake
//! Notification and Blockinfo Dependency, and carries the documented oracle
//! flaws the WASAI evaluation measures:
//!
//! - "it reports positive no matter which action is invoked after receiving
//!   fake EOS" (§4.2) — the honeypot false-positive source;
//! - "it outputs a positive report in detecting Fake EOS if none of the
//!   transactions is executed successfully" (§4.3) — the failure mode that
//!   collapses its precision to 50% under complicated verification;
//! - no feedback: coverage saturates at what random inputs reach, so gated
//!   code is never explored (0 TP on BlockinfoDep, Table 4).
//!
//! It shares WASAI's harness (chain setup, payload templates, virtual clock
//! and branch metric) so Figure 3 compares like with like; the *only*
//! differences are seed generation and the oracles — exactly the deltas the
//! paper attributes to the tools.

use std::collections::{BTreeSet, HashSet};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use wasai_chain::action::ApiEvent;
use wasai_chain::name::Name;
use wasai_chain::{Chain, Receipt, Transaction};
use wasai_core::coverage::BranchKey;
use wasai_core::harness::{self, accounts, PreparedTarget, TargetInfo};
use wasai_core::report::{ExploitRecord, FuzzReport, VulnClass};
use wasai_core::seed::random_seed;
use wasai_core::{CostModel, FuzzConfig, VirtualClock};
use wasai_vm::TraceKind;

/// The EOSFuzzer campaign runner.
#[derive(Debug)]
pub struct EosFuzzer {
    cfg: FuzzConfig,
    prepared: Arc<PreparedTarget>,
    chain: Chain,
    rng: StdRng,
    clock: VirtualClock,
    explored: HashSet<BranchKey>,
    coverage_series: wasai_core::CoverageSeries,
    iterations: u64,
    // Oracle state.
    any_tx_succeeded: bool,
    fake_apply_ran: bool,
    forwarded_effect: bool,
    blockinfo_seen: bool,
    stall: u64,
}

impl EosFuzzer {
    /// Set up the chain (instrumented target, for the shared coverage
    /// metric) and the fuzzer.
    ///
    /// # Errors
    ///
    /// Fails when the target cannot be deployed.
    pub fn new(target: TargetInfo, cfg: FuzzConfig) -> Result<Self, wasai_chain::ChainError> {
        Self::from_prepared(PreparedTarget::prepare(target)?, cfg)
    }

    /// [`EosFuzzer::new`] against a cached [`PreparedTarget`], sharing the
    /// instrumented + compiled module with other campaigns.
    ///
    /// # Errors
    ///
    /// Fails when the harness chain cannot be initialized.
    pub fn from_prepared(
        prepared: Arc<PreparedTarget>,
        cfg: FuzzConfig,
    ) -> Result<Self, wasai_chain::ChainError> {
        let chain = harness::setup_chain_prepared(&prepared)?;
        Ok(EosFuzzer {
            rng: StdRng::seed_from_u64(cfg.rng_seed ^ 0xe05f),
            cfg,
            prepared,
            chain,
            clock: VirtualClock::new(),
            explored: HashSet::new(),
            coverage_series: wasai_core::CoverageSeries::new(),
            iterations: 0,
            any_tx_succeeded: false,
            fake_apply_ran: false,
            forwarded_effect: false,
            blockinfo_seen: false,
            stall: 0,
        })
    }

    /// Run the campaign.
    pub fn run(mut self) -> FuzzReport {
        while !self.clock.timed_out(self.cfg.timeout_us) && self.stall < self.cfg.stall_iters * 4 {
            self.iterate();
            self.iterations += 1;
        }
        let mut findings = BTreeSet::new();
        let mut exploits = Vec::new();
        // Flaw: with zero successful transactions, EOSFuzzer claims Fake EOS.
        if self.fake_apply_ran || !self.any_tx_succeeded {
            findings.insert(VulnClass::FakeEos);
            exploits.push(ExploitRecord {
                class: VulnClass::FakeEos,
                payload: if self.fake_apply_ran {
                    "an action executed after receiving fake EOS".into()
                } else {
                    "no transaction executed successfully (oracle fallback)".into()
                },
            });
        }
        if self.forwarded_effect {
            findings.insert(VulnClass::FakeNotif);
        }
        if self.blockinfo_seen {
            findings.insert(VulnClass::BlockinfoDep);
        }
        let branches = self.explored.len();
        let mut coverage_series = std::mem::take(&mut self.coverage_series);
        coverage_series.push(self.cfg.timeout_us.max(self.clock.micros()), branches);
        FuzzReport {
            findings,
            exploits,
            branches,
            coverage_series,
            iterations: self.iterations,
            virtual_us: self.clock.micros(),
            // Black-box baseline: all virtual time is execution time.
            exec_virtual_us: self.clock.micros(),
            solve_virtual_us: 0,
            smt_queries: 0,
            custom_findings: Vec::new(),
            truncated: false,
        }
    }

    fn cost(&self) -> CostModel {
        self.cfg.cost
    }

    fn iterate(&mut self) {
        // One Arc bump instead of cloning the declarations every iteration.
        let prepared = self.prepared.clone();
        let actions = &prepared.info.abi.actions;
        if actions.is_empty() {
            self.stall = u64::MAX;
            return;
        }
        let decl = &actions[(self.iterations as usize) % actions.len()];
        let seed = random_seed(&mut self.rng, decl, accounts::target());
        if decl.name == Name::new("transfer") {
            // EOSFuzzer cycles its attack payloads with random parameters.
            match self.iterations % 4 {
                0 => {
                    let p = harness::forced_transfer_params(
                        &seed.params,
                        accounts::attacker(),
                        accounts::target(),
                    );
                    self.execute(harness::official_transfer(&p), Delivery::Official);
                }
                1 => {
                    self.execute(harness::direct_fake_transfer(&seed.params), Delivery::Fake);
                }
                2 => {
                    let p = harness::forced_transfer_params(
                        &seed.params,
                        accounts::attacker(),
                        accounts::target(),
                    );
                    self.execute(harness::fake_token_transfer(&p), Delivery::Fake);
                }
                _ => {
                    let p = harness::forced_transfer_params(
                        &seed.params,
                        accounts::attacker(),
                        accounts::fake_notif(),
                    );
                    self.execute(harness::fake_notif_transfer(&p), Delivery::Forwarded);
                }
            }
        } else {
            self.execute(
                harness::direct_action(decl.name, &seed.params),
                Delivery::Plain,
            );
        }
    }

    fn execute(&mut self, tx: Transaction, delivery: Delivery) {
        let (receipt, ok): (Receipt, bool) = match self.chain.push_transaction(&tx) {
            Ok(r) => (r, true),
            Err(e) => (e.receipt, false),
        };
        let cost = self.cost();
        self.clock.charge_execution(&cost, receipt.steps_used);
        // The flawed oracle watches the transfer payloads specifically:
        // "EOSFuzzer fails to execute the fuzzing target every time and
        // flags all samples as vulnerable in detecting the Fake EOS" (§4.3).
        if ok && delivery != Delivery::Plain {
            self.any_tx_succeeded = true;
        }

        // Oracles.
        let target = accounts::target();
        let apply_ran = receipt
            .trace
            .iter()
            .any(|r| matches!(r.kind, TraceKind::FuncBegin { .. }));
        match delivery {
            Delivery::Fake => {
                // Flawed oracle: ANY successful execution after fake EOS.
                if ok && apply_ran {
                    self.fake_apply_ran = true;
                }
            }
            Delivery::Forwarded => {
                // Side effect on a forwarded notification = forged-notification
                // acceptance.
                if ok
                    && receipt.api_events.iter().any(|e| match e {
                        ApiEvent::Db(op) => op.contract == target,
                        ApiEvent::SendInline { contract, .. } => *contract == target,
                        _ => false,
                    })
                {
                    self.forwarded_effect = true;
                }
            }
            Delivery::Official | Delivery::Plain => {}
        }
        if receipt
            .api_events
            .iter()
            .any(|e| matches!(e, ApiEvent::TaposRead { contract } if *contract == target))
        {
            self.blockinfo_seen = true;
        }

        // Coverage (same metric as WASAI, via the shared branch-site table).
        let before = self.explored.len();
        self.prepared
            .branch_sites
            .extend_from_trace(&mut self.explored, &receipt.trace);
        if self.explored.len() > before {
            self.stall = 0;
        } else {
            self.stall += 1;
        }
        self.coverage_series
            .push(self.clock.micros(), self.explored.len());
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Delivery {
    Official,
    Fake,
    Forwarded,
    Plain,
}
