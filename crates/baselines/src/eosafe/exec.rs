//! EOSAFE's bounded static symbolic executor.
//!
//! Unlike WASAI's trace replay, this explores *all* statically reachable
//! paths of a function (He et al., USENIX Security '21): every value is a
//! term over the entry parameters and fresh unknowns, both arms of every
//! branch are followed, loops are unrolled a fixed number of times and
//! exploration stops at a path/step budget — the "path explosion" and
//! "timeout" behaviours the WASAI evaluation measures (§4.2–4.3).

use wasai_smt::{BvOp, CmpOp, TermId, TermPool};
use wasai_symex::SymMemory;
use wasai_wasm::instr::{Instr, InstrClass};
use wasai_wasm::module::{ImportDesc, Module};
use wasai_wasm::types::ValType;

/// Exploration budgets.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Maximum number of completed paths before declaring a timeout.
    pub max_paths: usize,
    /// Maximum instructions along one path.
    pub max_steps: u64,
    /// Maximum call-inlining depth.
    pub max_call_depth: u32,
    /// Loop unroll factor.
    pub unroll: u32,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            max_paths: 64,
            max_steps: 8_000,
            max_call_depth: 4,
            unroll: 2,
        }
    }
}

/// What one explored path observed.
#[derive(Debug, Clone, Default)]
pub struct PathSummary {
    /// Path constraints (branch conditions as taken).
    pub constraints: Vec<TermId>,
    /// Host-API names invoked, in order.
    pub api_calls: Vec<String>,
    /// Operand pairs of every `i64.eq`/`i64.ne` executed (guard detection).
    pub guard_compares: Vec<(TermId, TermId)>,
}

/// Result of exploring one function.
#[derive(Debug)]
pub struct ExploreResult {
    /// Completed paths (up to the budget).
    pub paths: Vec<PathSummary>,
    /// True when a budget was exhausted — the EOSAFE "timeout".
    pub timeout: bool,
    /// The pool owning all terms in the summaries.
    pub pool: TermPool,
}

struct Explorer<'m> {
    module: &'m Module,
    cfg: ExecConfig,
    pool: TermPool,
    paths: Vec<PathSummary>,
    timeout: bool,
    fresh: u32,
    import_names: Vec<String>,
}

#[derive(Clone)]
struct PathState {
    stack: Vec<TermId>,
    locals: Vec<TermId>,
    labels: Vec<Label>,
    mem: SymMemory,
    summary: PathSummary,
    steps: u64,
}

#[derive(Clone, Copy)]
struct Label {
    height: usize,
    arity: usize,
    target: u32,
    /// For loops: the pc just past the matching `end` (unroll exit).
    exit: u32,
    is_loop: bool,
    visits: u32,
}

impl<'m> Explorer<'m> {
    fn fresh_var(&mut self, width: u32) -> TermId {
        self.fresh += 1;
        let name = format!("u{}", self.fresh);
        self.pool.var(&name, width)
    }

    fn zero(&mut self, t: ValType) -> TermId {
        self.pool.bv_const(0, t.bit_width().max(32))
    }

    /// Explore `func` with `state`, starting at `pc`. Forks recursively.
    #[allow(clippy::too_many_lines)]
    fn walk(&mut self, func: u32, mut state: PathState, mut pc: u32, depth: u32) {
        if self.paths.len() >= self.cfg.max_paths {
            self.timeout = true;
            return;
        }
        let Some(f) = self.module.local_func(func) else {
            self.paths.push(state.summary);
            return;
        };
        let body_len = f.body.len() as u32;
        // Precompute structured targets (else/end) for this function.
        let targets = control_targets(&f.body);

        while pc < body_len {
            state.steps += 1;
            if state.steps > self.cfg.max_steps {
                self.timeout = true;
                self.paths.push(state.summary);
                return;
            }
            let instr = f.body[pc as usize].clone();
            let mut next_pc = pc + 1;
            match instr {
                Instr::Unreachable => {
                    // Path terminates (EOSAFE still records it).
                    self.paths.push(state.summary);
                    return;
                }
                Instr::Nop => {}
                Instr::Block(bt) => state.labels.push(Label {
                    height: state.stack.len(),
                    arity: bt.arity(),
                    target: targets[pc as usize].1 + 1,
                    exit: targets[pc as usize].1 + 1,
                    is_loop: false,
                    visits: 0,
                }),
                Instr::Loop(_) => state.labels.push(Label {
                    height: state.stack.len(),
                    arity: 0,
                    target: pc,
                    exit: targets[pc as usize].1 + 1,
                    is_loop: true,
                    visits: 0,
                }),
                Instr::If(bt) => {
                    let cond = state.stack.pop().unwrap_or_else(|| self.zero(ValType::I32));
                    let (else_pc, end_pc) = targets[pc as usize];
                    let zero = self.pool.bv_const(0, 32);
                    let taken_c = self.pool.ne(cond, zero);
                    let skip_c = self.pool.eq(cond, zero);
                    // Fork: else/skip arm first (bounded recursion), then
                    // continue this state through the then-arm.
                    if self.paths.len() < self.cfg.max_paths {
                        let mut other = state.clone();
                        if self.pool.as_const(skip_c) != Some(0) {
                            other.summary.constraints.push(skip_c);
                            if else_pc != u32::MAX {
                                other.labels.push(Label {
                                    height: other.stack.len(),
                                    arity: bt.arity(),
                                    target: end_pc + 1,
                                    exit: end_pc + 1,
                                    is_loop: false,
                                    visits: 0,
                                });
                                self.walk(func, other, else_pc + 1, depth);
                            } else {
                                self.walk(func, other, end_pc + 1, depth);
                            }
                        }
                    } else {
                        self.timeout = true;
                    }
                    if self.pool.as_const(taken_c) == Some(0) {
                        // Then-arm statically impossible; this state is done.
                        return;
                    }
                    state.summary.constraints.push(taken_c);
                    state.labels.push(Label {
                        height: state.stack.len(),
                        arity: bt.arity(),
                        target: end_pc + 1,
                        exit: end_pc + 1,
                        is_loop: false,
                        visits: 0,
                    });
                }
                Instr::Else => {
                    // Fallthrough from the then-arm: jump past end.
                    let lab = state.labels.pop().expect("if label");
                    next_pc = lab.target;
                }
                Instr::End => {
                    if let Some(lab) = state.labels.pop() {
                        let keep = lab.arity.min(state.stack.len());
                        let kept = state.stack.split_off(state.stack.len() - keep);
                        state.stack.truncate(lab.height);
                        state.stack.extend(kept);
                    }
                }
                Instr::Br(l) => match self.do_branch(&mut state, l) {
                    Some(t) => next_pc = t,
                    None => {
                        self.paths.push(state.summary);
                        return;
                    }
                },
                Instr::BrIf(l) => {
                    let cond = state.stack.pop().unwrap_or_else(|| self.zero(ValType::I32));
                    let zero = self.pool.bv_const(0, 32);
                    let taken_c = self.pool.ne(cond, zero);
                    let skip_c = self.pool.eq(cond, zero);
                    // Fork the taken side; continue with not-taken.
                    if self.pool.as_const(taken_c) != Some(0)
                        && self.paths.len() < self.cfg.max_paths
                    {
                        let mut other = state.clone();
                        other.summary.constraints.push(taken_c);
                        match self.do_branch(&mut other, l) {
                            Some(t) => self.walk(func, other, t, depth),
                            None => self.paths.push(other.summary),
                        }
                    }
                    if self.pool.as_const(skip_c) == Some(0) {
                        return;
                    }
                    state.summary.constraints.push(skip_c);
                }
                Instr::BrTable(_, default) => {
                    state.stack.pop();
                    // Follow only the default label (bounded abstraction).
                    match self.do_branch(&mut state, default) {
                        Some(t) => next_pc = t,
                        None => {
                            self.paths.push(state.summary);
                            return;
                        }
                    }
                }
                Instr::Return => {
                    self.paths.push(state.summary);
                    return;
                }
                Instr::Call(callee) => {
                    let ft = self.module.func_type(callee).cloned().unwrap_or_default();
                    let n = ft.params.len().min(state.stack.len());
                    let args = state.stack.split_off(state.stack.len() - n);
                    if let Some(name) = self.import_names.get(callee as usize) {
                        let name = name.clone();
                        if name == "eosio_assert" {
                            if let Some(&cond) = args.first() {
                                let zero = self.pool.bv_const(0, 32);
                                let c = self.pool.ne(cond, zero);
                                state.summary.constraints.push(c);
                            }
                        }
                        state.summary.api_calls.push(name);
                        for r in &ft.results {
                            let v = self.fresh_var(r.bit_width());
                            state.stack.push(v);
                        }
                    } else if depth < self.cfg.max_call_depth {
                        // Inline the callee: explore it flatly by treating
                        // its effects abstractly (API calls recorded through
                        // a nested exploration of its straight-line summary
                        // would fork again; to stay bounded, record a marker
                        // and approximate results).
                        self.inline_call(&mut state, callee, args, depth + 1);
                        for r in &ft.results {
                            let v = self.fresh_var(r.bit_width());
                            state.stack.push(v);
                        }
                    } else {
                        for r in &ft.results {
                            let v = self.fresh_var(r.bit_width());
                            state.stack.push(v);
                        }
                    }
                }
                Instr::CallIndirect(type_idx) => {
                    let ft = self
                        .module
                        .types
                        .get(type_idx as usize)
                        .cloned()
                        .unwrap_or_default();
                    state.stack.pop(); // table index
                    let n = ft.params.len().min(state.stack.len());
                    let _ = state.stack.split_off(state.stack.len() - n);
                    state.summary.api_calls.push("call_indirect".into());
                    for r in &ft.results {
                        let v = self.fresh_var(r.bit_width());
                        state.stack.push(v);
                    }
                }
                Instr::Drop => {
                    state.stack.pop();
                }
                Instr::Select => {
                    let c = state.stack.pop();
                    let b = state.stack.pop();
                    let a = state.stack.pop();
                    match (a, b, c) {
                        (Some(a), Some(b), Some(c)) => {
                            let zero = self.pool.bv_const(0, 32);
                            let cond = self.pool.ne(c, zero);
                            let v = self.pool.ite(cond, a, b);
                            state.stack.push(v);
                        }
                        _ => {
                            let v = self.fresh_var(64);
                            state.stack.push(v);
                        }
                    }
                }
                Instr::LocalGet(x) => {
                    let v = state
                        .locals
                        .get(x as usize)
                        .copied()
                        .unwrap_or_else(|| self.pool.bv_const(0, 64));
                    state.stack.push(v);
                }
                Instr::LocalSet(x) => {
                    let v = state.stack.pop().unwrap_or_else(|| self.zero(ValType::I64));
                    set_local(&mut state.locals, x, v, &mut self.pool);
                }
                Instr::LocalTee(x) => {
                    let v = *state.stack.last().expect("tee operand");
                    set_local(&mut state.locals, x, v, &mut self.pool);
                }
                Instr::GlobalGet(_) | Instr::MemorySize => {
                    let v = self.fresh_var(32);
                    state.stack.push(v);
                }
                Instr::GlobalSet(_) => {
                    state.stack.pop();
                }
                Instr::MemoryGrow => {
                    state.stack.pop();
                    let v = self.fresh_var(32);
                    state.stack.push(v);
                }
                Instr::I32Const(v) => state.stack.push(self.pool.bv_const(v as u32 as u64, 32)),
                Instr::I64Const(v) => state.stack.push(self.pool.bv_const(v as u64, 64)),
                Instr::F32Const(_) | Instr::F64Const(_) => {
                    let v = self.fresh_var(64);
                    state.stack.push(v);
                }
                ref other if other.memory_access().is_some() => {
                    self.memory_op(&mut state, other);
                }
                ref other => match other.class() {
                    InstrClass::Unary => {
                        let a = state.stack.pop().unwrap_or_else(|| self.zero(ValType::I64));
                        let v = self.unary_term(other, a);
                        state.stack.push(v);
                    }
                    InstrClass::Binary => {
                        let b = state.stack.pop().unwrap_or_else(|| self.zero(ValType::I64));
                        let a = state.stack.pop().unwrap_or_else(|| self.zero(ValType::I64));
                        if other.is_i64_guard_compare() {
                            state.summary.guard_compares.push((a, b));
                        }
                        let v = self.binary_term(other, a, b);
                        state.stack.push(v);
                    }
                    _ => {}
                },
            }
            pc = next_pc;
        }
        self.paths.push(state.summary);
    }

    /// Abstractly inline a local call: record its API usage without forking
    /// (a linear scan of the callee body, the common EOSAFE summarization).
    fn inline_call(&mut self, state: &mut PathState, callee: u32, args: Vec<TermId>, depth: u32) {
        let Some(f) = self.module.local_func(callee) else {
            return;
        };
        if depth > self.cfg.max_call_depth {
            return;
        }
        // Track the callee's guard compares over its parameters.
        let mut locals = args;
        for l in &f.locals {
            let z = self.pool.bv_const(0, l.bit_width().max(32));
            locals.push(z);
        }
        let mut stack: Vec<TermId> = Vec::new();
        for instr in &f.body {
            state.steps += 1;
            if state.steps > self.cfg.max_steps {
                self.timeout = true;
                return;
            }
            match instr {
                Instr::LocalGet(x) => {
                    let v = locals
                        .get(*x as usize)
                        .copied()
                        .unwrap_or_else(|| self.pool.bv_const(0, 64));
                    stack.push(v);
                }
                Instr::LocalSet(x) => {
                    if let Some(v) = stack.pop() {
                        set_local(&mut locals, *x, v, &mut self.pool);
                    }
                }
                Instr::LocalTee(x) => {
                    if let Some(&v) = stack.last() {
                        set_local(&mut locals, *x, v, &mut self.pool);
                    }
                }
                Instr::I32Const(v) => stack.push(self.pool.bv_const(*v as u32 as u64, 32)),
                Instr::I64Const(v) => stack.push(self.pool.bv_const(*v as u64, 64)),
                Instr::Call(c2) => {
                    if let Some(name) = self.import_names.get(*c2 as usize) {
                        state.summary.api_calls.push(name.clone());
                        let ft = self.module.func_type(*c2).cloned().unwrap_or_default();
                        let keep = stack.len().saturating_sub(ft.params.len());
                        stack.truncate(keep);
                        for r in &ft.results {
                            let v = self.fresh_var(r.bit_width());
                            stack.push(v);
                        }
                    } else {
                        let remaining: Vec<TermId> = Vec::new();
                        self.inline_call(state, *c2, remaining, depth + 1);
                    }
                }
                i if i.is_i64_guard_compare() => {
                    let b = stack.pop();
                    let a = stack.pop();
                    if let (Some(a), Some(b)) = (a, b) {
                        state.summary.guard_compares.push((a, b));
                        let v = self.binary_term(i, a, b);
                        stack.push(v);
                    }
                }
                i => match i.class() {
                    InstrClass::Binary => {
                        let b = stack.pop();
                        let a = stack.pop();
                        if let (Some(a), Some(b)) = (a, b) {
                            let v = self.binary_term(i, a, b);
                            stack.push(v);
                        }
                    }
                    InstrClass::Unary => {
                        if let Some(a) = stack.pop() {
                            let v = self.unary_term(i, a);
                            stack.push(v);
                        }
                    }
                    InstrClass::Const => {}
                    InstrClass::Load => {
                        stack.pop();
                        let v = self.fresh_var(64);
                        stack.push(v);
                    }
                    InstrClass::Store => {
                        stack.pop();
                        stack.pop();
                    }
                    InstrClass::Drop => {
                        stack.pop();
                    }
                    _ => {}
                },
            }
        }
    }

    fn memory_op(&mut self, state: &mut PathState, instr: &Instr) {
        let acc = instr.memory_access().expect("memory instr");
        let offset = instr.mem_arg().expect("memarg").offset as u64;
        if acc.is_store {
            let value = state.stack.pop().unwrap_or_else(|| self.zero(acc.val_type));
            let addr = state.stack.pop();
            if let Some(a) = addr.and_then(|a| self.pool.as_const(a)) {
                let w = acc.val_type.bit_width();
                let v = if self.pool.sort(value).width() != w {
                    // Defensive width fix for under-approximated stacks.
                    self.fresh_var(w)
                } else {
                    value
                };
                let stored = if acc.bytes * 8 < w {
                    self.pool.extract(v, acc.bytes * 8 - 1, 0)
                } else {
                    v
                };
                state
                    .mem
                    .store(&mut self.pool, a + offset, acc.bytes, stored);
            }
        } else {
            let addr = state.stack.pop();
            let loaded = addr
                .and_then(|a| self.pool.as_const(a))
                .and_then(|a| state.mem.load(&mut self.pool, a + offset, acc.bytes));
            let w = acc.val_type.bit_width();
            let v = match loaded {
                Some(t) => {
                    let add = w - acc.bytes * 8;
                    if add == 0 {
                        t
                    } else if acc.signed {
                        self.pool.sign_ext(t, add)
                    } else {
                        self.pool.zero_ext(t, add)
                    }
                }
                None => self.fresh_var(w),
            };
            state.stack.push(v);
        }
    }

    fn do_branch(&mut self, state: &mut PathState, l: u32) -> Option<u32> {
        if state.labels.len() <= l as usize {
            return None;
        }
        let idx = state.labels.len() - 1 - l as usize;
        let lab = state.labels[idx];
        if lab.is_loop {
            state.stack.truncate(lab.height);
            state.labels[idx].visits += 1;
            if state.labels[idx].visits >= self.cfg.unroll {
                // Stop unrolling: continue past the loop's `end`.
                state.labels.truncate(idx);
                return Some(lab.exit);
            }
            state.labels.truncate(idx + 1);
            Some(lab.target + 1)
        } else {
            let keep = lab.arity.min(state.stack.len());
            let kept = state.stack.split_off(state.stack.len() - keep);
            state.stack.truncate(lab.height);
            state.stack.extend(kept);
            state.labels.truncate(idx);
            Some(lab.target)
        }
    }

    fn unary_term(&mut self, instr: &Instr, a: TermId) -> TermId {
        match instr {
            Instr::I32Eqz | Instr::I64Eqz => {
                let w = self.pool.sort(a).width();
                let zero = self.pool.bv_const(0, w);
                let c = self.pool.eq(a, zero);
                self.pool.bool_to_bv(c, 32)
            }
            Instr::I32Popcnt | Instr::I64Popcnt => self.pool.popcnt(a),
            Instr::I32WrapI64 if self.pool.sort(a).width() == 64 => self.pool.extract(a, 31, 0),
            Instr::I64ExtendI32S if self.pool.sort(a).width() == 32 => self.pool.sign_ext(a, 32),
            Instr::I64ExtendI32U if self.pool.sort(a).width() == 32 => self.pool.zero_ext(a, 32),
            _ => {
                let w = result_width(instr);
                self.fresh_var(w)
            }
        }
    }

    fn binary_term(&mut self, instr: &Instr, a: TermId, b: TermId) -> TermId {
        use Instr::*;
        let (wa, wb) = (self.pool.sort(a).width(), self.pool.sort(b).width());
        if wa != wb {
            return self.fresh_var(result_width(instr));
        }
        let bv = |s: &mut Self, op: BvOp| s.pool.bv(op, a, b);
        let cmp = |s: &mut Self, op: CmpOp, swap: bool| {
            let (x, y) = if swap { (b, a) } else { (a, b) };
            let c = s.pool.cmp(op, x, y);
            s.pool.bool_to_bv(c, 32)
        };
        match instr {
            I32Add | I64Add => bv(self, BvOp::Add),
            I32Sub | I64Sub => bv(self, BvOp::Sub),
            I32Mul | I64Mul => bv(self, BvOp::Mul),
            I32And | I64And => bv(self, BvOp::And),
            I32Or | I64Or => bv(self, BvOp::Or),
            I32Xor | I64Xor => bv(self, BvOp::Xor),
            I32Shl | I64Shl => bv(self, BvOp::Shl),
            I32ShrS | I64ShrS => bv(self, BvOp::AShr),
            I32ShrU | I64ShrU => bv(self, BvOp::LShr),
            I32Eq | I64Eq => cmp(self, CmpOp::Eq, false),
            I32Ne | I64Ne => {
                let c = self.pool.ne(a, b);
                self.pool.bool_to_bv(c, 32)
            }
            I32LtS | I64LtS => cmp(self, CmpOp::Slt, false),
            I32LtU | I64LtU => cmp(self, CmpOp::Ult, false),
            I32GtS | I64GtS => cmp(self, CmpOp::Slt, true),
            I32GtU | I64GtU => cmp(self, CmpOp::Ult, true),
            I32LeS | I64LeS => cmp(self, CmpOp::Sle, false),
            I32LeU | I64LeU => cmp(self, CmpOp::Ule, false),
            I32GeS | I64GeS => cmp(self, CmpOp::Sle, true),
            I32GeU | I64GeU => cmp(self, CmpOp::Ule, true),
            _ => self.fresh_var(result_width(instr)),
        }
    }
}

fn result_width(instr: &Instr) -> u32 {
    if instr.mnemonic().starts_with("i64") {
        64
    } else {
        32
    }
}

fn set_local(locals: &mut Vec<TermId>, x: u32, v: TermId, pool: &mut TermPool) {
    while locals.len() <= x as usize {
        let z = pool.bv_const(0, 64);
        locals.push(z);
    }
    locals[x as usize] = v;
}

/// `(else_pc or u32::MAX, end_pc)` for structured instructions.
fn control_targets(body: &[Instr]) -> Vec<(u32, u32)> {
    let mut out = vec![(u32::MAX, 0u32); body.len()];
    let mut stack: Vec<u32> = Vec::new();
    for (pc, i) in body.iter().enumerate() {
        match i {
            Instr::Block(_) | Instr::Loop(_) | Instr::If(_) => stack.push(pc as u32),
            Instr::Else => {
                if let Some(&open) = stack.last() {
                    out[open as usize].0 = pc as u32;
                }
            }
            Instr::End => {
                if let Some(open) = stack.pop() {
                    out[open as usize].1 = pc as u32;
                }
            }
            _ => {}
        }
    }
    out
}

/// Explore a function: entry parameters become symbolic variables named
/// `p0..pn` (so oracles can recognize guard compares over parameters).
pub fn explore(module: &Module, func: u32, cfg: ExecConfig) -> ExploreResult {
    let mut pool = TermPool::new();
    let params: Vec<TermId> = match module.func_type(func) {
        Some(ft) => ft
            .params
            .iter()
            .enumerate()
            .map(|(i, p)| pool.var(&format!("p{i}"), p.bit_width()))
            .collect(),
        None => Vec::new(),
    };
    let mut locals = params;
    if let Some(f) = module.local_func(func) {
        for l in &f.locals {
            let z = pool.bv_const(0, l.bit_width());
            locals.push(z);
        }
    }
    let import_names: Vec<String> = (0..module.num_imported_funcs())
        .map(|i| {
            module
                .imported_func(i)
                .map(|imp| imp.name.clone())
                .unwrap_or_default()
        })
        .collect();
    let mut ex = Explorer {
        module,
        cfg,
        pool,
        paths: Vec::new(),
        timeout: false,
        fresh: 0,
        import_names,
    };
    let state = PathState {
        stack: Vec::new(),
        locals,
        labels: Vec::new(),
        mem: SymMemory::new(),
        summary: PathSummary::default(),
        steps: 0,
    };
    ex.walk(func, state, 0, 0);
    ExploreResult {
        paths: ex.paths,
        timeout: ex.timeout,
        pool: ex.pool,
    }
}

/// The import check used by the dispatcher heuristic.
pub fn import_index(module: &Module, name: &str) -> Option<u32> {
    (0..module.num_imported_funcs()).find(|&i| {
        module
            .imported_func(i)
            .map(|imp| imp.name == name)
            .unwrap_or(false)
    })
}

/// True if the module imports anything besides `env` Wasm intrinsics —
/// unused helper kept for the oracle layer.
pub fn has_import(module: &Module, name: &str) -> bool {
    import_index(module, name).is_some()
}

#[allow(unused)]
fn unused_import_desc(_: &ImportDesc) {}
