//! EOSAFE — the static symbolic-execution baseline (He et al., USENIX
//! Security '21), reimplemented from its description in the WASAI paper:
//!
//! - it locates action functions with a *heuristic pattern match* on the
//!   dispatcher (`code == N(eosio.token) && action == N(transfer)`); when
//!   developers (or an obfuscator) deviate from the pattern "EOSAFE may fail
//!   to locate the paths to action functions and report FNs" (§4.2, and the
//!   0-TP Fake EOS row of Table 5);
//! - detecting Fake Notif, it "regards timeout as a positive sample", buying
//!   recall at the cost of precision (§4.2);
//! - detecting Rollback, it "analyzes all branches in the conditional
//!   states, even if the constraints are impossible to be satisfied",
//!   producing FPs on dead code (§4.2 — precision ≈ 50%);
//! - it has no BlockinfoDep oracle (the "-" cells of Table 4).

pub mod exec;
pub mod memory;

use std::collections::BTreeSet;

use wasai_chain::abi::Abi;
use wasai_core::report::VulnClass;
use wasai_smt::{check, Budget, SolveResult};
use wasai_wasm::instr::Instr;
use wasai_wasm::types::ValType;
use wasai_wasm::Module;

pub use exec::{explore, ExecConfig, ExploreResult, PathSummary};
pub use memory::RangeMemory;

/// Host APIs EOSAFE treats as side effects for MissAuth.
const EFFECT_APIS: &[&str] = &[
    "db_store_i64",
    "db_update_i64",
    "db_remove_i64",
    "send_inline",
];

/// EOSAFE configuration.
#[derive(Debug, Clone, Copy)]
pub struct EosafeConfig {
    /// Path-exploration budgets.
    pub exec: ExecConfig,
    /// Feasibility-check budget (MissAuth only).
    pub smt_budget: Budget,
}

impl Default for EosafeConfig {
    fn default() -> Self {
        EosafeConfig {
            exec: ExecConfig::default(),
            smt_budget: Budget::conflicts(5_000),
        }
    }
}

/// EOSAFE's verdicts for one contract.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EosafeReport {
    /// Flagged classes.
    pub findings: BTreeSet<VulnClass>,
    /// The dispatcher pattern heuristic succeeded.
    pub located_dispatcher: bool,
    /// Some exploration hit its budget (the "timeout" the paper discusses).
    pub timed_out: bool,
}

impl EosafeReport {
    /// True if the class was flagged.
    pub fn has(&self, class: VulnClass) -> bool {
        self.findings.contains(&class)
    }
}

/// The dispatcher pattern heuristic: scan `apply` for literal name
/// comparisons (the EOSIO SDK idiom EOSAFE matches on).
fn dispatcher_heuristic(module: &Module) -> (bool, bool) {
    let Some(apply_idx) = module.exported_func("apply") else {
        return (false, false);
    };
    let Some(apply) = module.local_func(apply_idx) else {
        return (false, false);
    };
    let transfer = wasai_chain::name::Name::new("transfer").as_i64();
    let token = wasai_chain::name::Name::new("eosio.token").as_i64();
    let mut has_transfer_dispatch = false;
    let mut has_code_guard = false;
    for w in apply.body.windows(2) {
        match (&w[0], &w[1]) {
            (Instr::I64Const(c), i) if i.is_i64_guard_compare() => {
                if *c == transfer {
                    has_transfer_dispatch = true;
                }
                if *c == token {
                    has_code_guard = true;
                }
            }
            _ => {}
        }
    }
    (has_transfer_dispatch, has_code_guard)
}

/// Action functions reachable through the indirect-call table.
fn table_functions(module: &Module) -> Vec<u32> {
    module
        .elems
        .iter()
        .flat_map(|e| e.funcs.iter().copied())
        .collect()
}

/// Locate the eosponser by signature: the table function whose type matches
/// `transfer(self, from, to, qty*, memo*)`.
fn locate_eosponser(module: &Module) -> Option<u32> {
    use ValType::*;
    table_functions(module).into_iter().find(|&f| {
        module
            .func_type(f)
            .map(|t| t.params == [I64, I64, I64, I32, I32] && t.results.is_empty())
            .unwrap_or(false)
    })
}

/// Does any path contain a guard compare between two entry parameters (the
/// `to == _self` check — both operands are `p…` variables)?
fn has_param_guard(result: &ExploreResult) -> bool {
    let p0 = result.pool.var_index("p0");
    result.paths.iter().any(|p| {
        p.guard_compares.iter().any(|&(a, b)| {
            let var_of = |t| match *result.pool.kind(t) {
                wasai_smt::TermKind::Var { var, .. } => Some(var),
                _ => None,
            };
            match (var_of(a), var_of(b), p0) {
                (Some(x), Some(y), Some(self_var)) => (x == self_var || y == self_var) && x != y,
                _ => false,
            }
        })
    })
}

/// Analyze one contract statically.
pub fn analyze(module: &Module, abi: &Abi, cfg: EosafeConfig) -> EosafeReport {
    let mut report = EosafeReport::default();
    let _ = abi;
    let (has_dispatch, has_code_guard) = dispatcher_heuristic(module);
    report.located_dispatcher = has_dispatch;
    let eosponser = locate_eosponser(module);

    // Fake EOS: needs the located dispatcher pattern; vulnerable when the
    // code guard literal is absent. Without the pattern, EOSAFE "cannot
    // identify reachable paths" and stays silent (FNs under obfuscation).
    if has_dispatch && eosponser.is_some() && !has_code_guard {
        report.findings.insert(VulnClass::FakeEos);
    }

    // Fake Notif: explore the eosponser; timeout ⇒ positive (the flaw).
    if let Some(ep) = eosponser {
        let result = explore(module, ep, cfg.exec);
        if result.timeout {
            report.timed_out = true;
            report.findings.insert(VulnClass::FakeNotif);
        } else if !has_param_guard(&result) {
            report.findings.insert(VulnClass::FakeNotif);
        }
    }

    // MissAuth (feasibility-checked) and Rollback (deliberately NOT
    // feasibility-checked) over every table function.
    for f in table_functions(module) {
        let result = explore(module, f, cfg.exec);
        if result.timeout {
            report.timed_out = true;
        }
        for path in &result.paths {
            // Rollback: any occurrence of send_inline, feasible or not.
            if path.api_calls.iter().any(|a| a == "send_inline") {
                report.findings.insert(VulnClass::Rollback);
            }
            // MissAuth: skip the eosponser (payments are its authorization);
            // flag effect-before-auth paths that are actually satisfiable.
            // Finding the path from `apply` to the action function depends on
            // the dispatcher heuristic — obfuscated dispatchers mean "EOSAFE
            // cannot find any feasible paths to detect … MissAuth" (§4.3).
            if !has_dispatch
                || Some(f) == eosponser
                || report.findings.contains(&VulnClass::MissAuth)
            {
                continue;
            }
            let mut authed = false;
            let mut effect_without_auth = false;
            for api in &path.api_calls {
                if api == "require_auth" || api == "require_auth2" || api == "has_auth" {
                    authed = true;
                }
                if EFFECT_APIS.contains(&api.as_str()) && !authed {
                    effect_without_auth = true;
                    break;
                }
            }
            if effect_without_auth {
                let (res, _) = check(&result.pool, &path.constraints, cfg.smt_budget);
                if matches!(res, SolveResult::Sat(_)) {
                    report.findings.insert(VulnClass::MissAuth);
                }
            }
        }
    }

    report
}
