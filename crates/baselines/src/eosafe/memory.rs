//! EOSAFE's memory model, reimplemented for the ablation benchmark.
//!
//! Per §3.2: EOSAFE "adopts a mapping structure to map the address and the
//! memory content … in each memory access, it needs to search all items in
//! its memory model to merge the overlapped contents". This list-of-writes
//! model is O(writes) per load; WASAI's concrete-address byte map
//! (`wasai_symex::SymMemory`) is O(log n). The `memory_model` Criterion
//! bench quantifies the gap the paper claims.

use wasai_smt::{TermId, TermPool};

/// One recorded write: `(address, size, value-term)`.
type WriteEntry = (u64, u32, TermId);

/// The merge-on-access memory model.
#[derive(Debug, Default, Clone)]
pub struct RangeMemory {
    writes: Vec<WriteEntry>,
}

impl RangeMemory {
    /// An empty model.
    pub fn new() -> Self {
        RangeMemory::default()
    }

    /// Number of recorded writes.
    pub fn len(&self) -> usize {
        self.writes.len()
    }

    /// True when nothing was written.
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty()
    }

    /// Record a store of `size` bytes (term width `size * 8`) at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the value width does not match `size`.
    pub fn store(&mut self, pool: &TermPool, addr: u64, size: u32, value: TermId) {
        assert_eq!(pool.sort(value).width(), size * 8, "store width mismatch");
        self.writes.push((addr, size, value));
    }

    /// Load `size` bytes at `addr`, merging all overlapping prior writes
    /// (latest wins per byte). Returns `None` when no byte is covered.
    pub fn load(&mut self, pool: &mut TermPool, addr: u64, size: u32) -> Option<TermId> {
        let mut any = false;
        let mut result: Option<TermId> = None;
        for i in (0..size).rev() {
            let byte_addr = addr + i as u64;
            // Scan the WHOLE write list for the latest covering entry —
            // the O(n) merge the paper calls out.
            let mut byte: Option<TermId> = None;
            for &(waddr, wsize, value) in self.writes.iter().rev() {
                if byte_addr >= waddr && byte_addr < waddr + wsize as u64 {
                    let k = (byte_addr - waddr) as u32;
                    byte = Some(pool.extract(value, k * 8 + 7, k * 8));
                    break;
                }
            }
            let byte = match byte {
                Some(b) => {
                    any = true;
                    b
                }
                None => pool.bv_const(0, 8),
            };
            result = Some(match result {
                None => byte,
                Some(hi) => pool.concat(hi, byte),
            });
        }
        if any {
            result
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_merge_matches_symmemory_semantics() {
        // Same §3.2 example the fast model is tested with.
        let mut pool = TermPool::new();
        let mut mem = RangeMemory::new();
        let zeros = pool.bv_const(0x0000, 16);
        let ones = pool.bv_const(0xffff, 16);
        mem.store(&pool, 10, 2, zeros);
        mem.store(&pool, 11, 2, ones);
        let loaded = mem.load(&mut pool, 10, 2).expect("covered");
        assert_eq!(pool.as_const(loaded), Some(0xff00));
    }

    #[test]
    fn uncovered_load_is_none() {
        let mut pool = TermPool::new();
        let mut mem = RangeMemory::new();
        assert_eq!(mem.load(&mut pool, 64, 8), None);
    }

    #[test]
    fn agrees_with_fast_model_on_random_workload() {
        use wasai_symex::SymMemory;
        let mut pool = TermPool::new();
        let mut slow = RangeMemory::new();
        let mut fast = SymMemory::new();
        let mut lcg = 0x2545f4914f6cdd1du64;
        let mut rnd = move || {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
            lcg >> 33
        };
        for _ in 0..200 {
            let addr = rnd() % 256;
            let size = [1u32, 2, 4, 8][(rnd() % 4) as usize];
            if rnd() % 2 == 0 {
                let v = pool.bv_const(rnd(), size * 8);
                slow.store(&pool, addr, size, v);
                fast.store(&mut pool, addr, size, v);
            } else {
                let a = slow.load(&mut pool, addr, size);
                let b = fast.load(&mut pool, addr, size);
                // Coverage may legitimately differ: the fast model
                // materializes fresh vars for gap bytes on partial loads
                // (making them "covered" afterwards); with all-zero vars
                // both views agree on the value 0.
                if let (Some(x), Some(y)) = (a, b) {
                    // Both models may synthesize different-but-equal terms;
                    // compare concretely (all stores were consts, gaps read
                    // as 0 / fresh vars — evaluate with all-zero vars).
                    let vals = vec![0u64; pool.vars().len()];
                    assert_eq!(pool.eval(x, &vals), pool.eval(y, &vals));
                }
            }
        }
    }
}
