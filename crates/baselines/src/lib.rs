#![warn(missing_docs)]

//! # wasai-baselines — reimplementations of the comparison tools (§4)
//!
//! The WASAI evaluation compares against two published tools. Both are
//! rebuilt here as *real algorithms* (sharing WASAI's harness, virtual clock
//! and coverage metric so comparisons are apples-to-apples), including the
//! documented weaknesses the paper measures — their accuracy numbers in our
//! tables fall out of running them, not of hard-coding the paper's values:
//!
//! - [`eosfuzzer`]: the black-box random fuzzer (no feedback, flawed
//!   Fake-EOS oracle, no MissAuth/Rollback detectors);
//! - [`eosafe`]: the static symbolic executor (dispatcher pattern
//!   heuristics, timeout-as-positive Fake Notif, feasibility-blind
//!   Rollback), plus its merge-on-access memory model for the ablation
//!   benchmark.

pub mod eosafe;
pub mod eosfuzzer;

pub use eosafe::{analyze as eosafe_analyze, EosafeConfig, EosafeReport};
pub use eosfuzzer::EosFuzzer;
