//! Contract blueprints: what shape of contract to generate and the ground
//! truth that follows from it.

use std::collections::BTreeSet;

use wasai_chain::abi::Abi;
use wasai_chain::name::Name;
use wasai_core::VulnClass;
use wasai_wasm::Module;

/// How the lottery-style reveal pays out (§2.3.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewardKind {
    /// No payout at all.
    None,
    /// Inline action — revertable by the caller (the Rollback bug).
    Inline,
    /// Deferred action — the §2.3.5 mitigation.
    Deferred,
}

/// The verification gate guarding the reveal's deep code (how the §4.2
/// benchmark controls reachability: "by generating inaccessible branches, we
/// can generate non-vulnerable samples").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateKind {
    /// No gate: the template is reached unconditionally.
    Open,
    /// Nested parameter checks against random constants, mutually
    /// consistent — reachable, but only with solver-grade inputs.
    Solvable {
        /// Nesting depth (number of chained checks).
        depth: u32,
    },
    /// Nested checks that contradict each other — the guarded code is dead.
    Unsatisfiable {
        /// Nesting depth.
        depth: u32,
    },
}

/// A generation blueprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blueprint {
    /// RNG seed for all random constants in the contract.
    pub seed: u64,
    /// Dispatcher checks `code == N(eosio.token)` (Listing 1's patch).
    pub code_guard: bool,
    /// Eosponser checks `to == _self` (Listing 2's patch).
    pub payee_guard: bool,
    /// The admin action calls `require_auth` before its side effects.
    pub auth_check: bool,
    /// The reveal action derives randomness from tapos state (§2.3.4).
    pub blockinfo: bool,
    /// Payout mechanism.
    pub reward: RewardKind,
    /// Gate guarding the reveal's blockinfo/reward template.
    pub gate: GateKind,
    /// Benign nested branches in the eosponser (amount/memo verification).
    pub eosponser_branches: u32,
    /// Iterations of SDK-style deserialization/checksum work (a byte-mixing
    /// loop over the action buffer) at the top of the eosponser. `0` — the
    /// default — emits nothing, leaving the module byte-identical to
    /// pre-knob generations; throughput benchmarks raise it to make samples
    /// execution-bound the way `datastream`-deserializing SDK contracts are.
    pub sdk_work: u32,
}

impl Default for Blueprint {
    fn default() -> Self {
        Blueprint {
            seed: 0,
            code_guard: true,
            payee_guard: true,
            auth_check: true,
            blockinfo: false,
            reward: RewardKind::None,
            gate: GateKind::Open,
            eosponser_branches: 2,
            sdk_work: 0,
        }
    }
}

impl Blueprint {
    /// The ground-truth label implied by the blueprint: which classes are
    /// *present and reachable*.
    pub fn label(&self) -> BTreeSet<VulnClass> {
        let mut out = BTreeSet::new();
        if !self.code_guard {
            out.insert(VulnClass::FakeEos);
        }
        if !self.payee_guard {
            out.insert(VulnClass::FakeNotif);
        }
        if !self.auth_check {
            out.insert(VulnClass::MissAuth);
        }
        let gate_reachable = !matches!(self.gate, GateKind::Unsatisfiable { .. });
        if self.blockinfo && gate_reachable {
            out.insert(VulnClass::BlockinfoDep);
        }
        if self.reward == RewardKind::Inline && gate_reachable {
            out.insert(VulnClass::Rollback);
        }
        out
    }
}

/// Where an action function lives in the generated module — consumed by the
/// bytecode-level injectors (`inject`, `obfuscate`, `verification`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenMeta {
    /// Function index of the eosponser (transfer action).
    pub transfer_func: u32,
    /// Function index of the reveal action.
    pub reveal_func: u32,
    /// Function index of the admin action.
    pub admin_func: u32,
    /// The blueprint the module was generated from.
    pub blueprint: Blueprint,
}

/// A generated, labeled benchmark sample.
#[derive(Debug, Clone)]
pub struct LabeledContract {
    /// The contract bytecode (uninstrumented).
    pub module: Module,
    /// Its ABI.
    pub abi: Abi,
    /// Ground-truth classes present.
    pub label: BTreeSet<VulnClass>,
    /// Layout metadata for injectors.
    pub meta: GenMeta,
}

impl LabeledContract {
    /// Whether the ground truth marks the sample vulnerable to `class`.
    pub fn is_vulnerable_to(&self, class: VulnClass) -> bool {
        self.label.contains(&class)
    }
}

/// Action names used by every generated contract.
pub mod actions {
    use super::Name;

    /// The eosponser.
    pub fn transfer() -> Name {
        Name::new("transfer")
    }

    /// The lottery reveal.
    pub fn reveal() -> Name {
        Name::new("reveal")
    }

    /// The admin configuration action (MissAuth probe).
    pub fn setowner() -> Name {
        Name::new("setowner")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_follow_blueprint() {
        let safe = Blueprint::default();
        assert!(safe.label().is_empty());

        let vulnerable = Blueprint {
            code_guard: false,
            payee_guard: false,
            auth_check: false,
            blockinfo: true,
            reward: RewardKind::Inline,
            gate: GateKind::Solvable { depth: 2 },
            ..Blueprint::default()
        };
        assert_eq!(vulnerable.label().len(), 5);
    }

    #[test]
    fn unsatisfiable_gate_hides_template_vulns() {
        let dead = Blueprint {
            blockinfo: true,
            reward: RewardKind::Inline,
            gate: GateKind::Unsatisfiable { depth: 2 },
            ..Blueprint::default()
        };
        let label = dead.label();
        assert!(!label.contains(&VulnClass::BlockinfoDep));
        assert!(!label.contains(&VulnClass::Rollback));
    }
}
