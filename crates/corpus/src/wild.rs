//! The wild corpus of RQ4 (§4.4): a synthetic stand-in for the 991
//! profitable Mainnet contracts.
//!
//! The Mainnet population is not available offline, so this module samples
//! blueprints with per-class base rates calibrated to the paper's findings
//! (241 Fake EOS, 264 Fake Notif, 470 MissAuth, 22 BlockinfoDep, 122
//! Rollback among 991 → ~71% vulnerable overall), and attaches the
//! §4.4 lifecycle: whether the contract's *latest* version is still
//! operating, and whether it was patched.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::realistic::generate;
use crate::spec::{Blueprint, GateKind, LabeledContract, RewardKind};

/// The §4.4 lifecycle of a deployed contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lifecycle {
    /// Still operating, never patched.
    OperatingUnpatched,
    /// Still operating; the latest version added the missing guards.
    OperatingPatched,
    /// Abandoned (the latest version is an empty file).
    Abandoned,
}

/// One wild contract: the deployed version, its lifecycle, and (when
/// patched) the fixed latest version WASAI re-analyzes.
#[derive(Debug, Clone)]
pub struct WildContract {
    /// The originally deployed (analyzed) version.
    pub deployed: LabeledContract,
    /// What happened to it since.
    pub lifecycle: Lifecycle,
    /// The patched latest version, when `lifecycle` is `OperatingPatched`.
    pub latest: Option<LabeledContract>,
}

/// Base rates per class, calibrated to §4.4's flagged counts.
#[derive(Debug, Clone, Copy)]
pub struct WildRates {
    /// P(code guard missing) — Fake EOS.
    pub fake_eos: f64,
    /// P(payee guard missing) — Fake Notif.
    pub fake_notif: f64,
    /// P(auth checks missing) — MissAuth.
    pub missauth: f64,
    /// P(blockinfo randomness) — BlockinfoDep.
    pub blockinfo: f64,
    /// P(inline reward) — Rollback.
    pub rollback: f64,
    /// [`Blueprint::sdk_work`] applied to every generated contract. `0`
    /// (the default) keeps the corpus byte-identical to pre-knob output;
    /// throughput benchmarks raise it for execution-bound samples.
    pub sdk_work: u32,
}

impl Default for WildRates {
    fn default() -> Self {
        // 241/991, 264/991, 470/991, 22/991, 122/991.
        WildRates {
            fake_eos: 0.243,
            fake_notif: 0.266,
            missauth: 0.474,
            blockinfo: 0.022,
            rollback: 0.123,
            sdk_work: 0,
        }
    }
}

/// Generate `count` wild contracts.
pub fn wild_corpus(seed: u64, count: usize, rates: WildRates) -> Vec<WildContract> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let vulnerable_reward = rng.gen_bool(rates.rollback);
            let bp = Blueprint {
                seed: rng.gen(),
                code_guard: !rng.gen_bool(rates.fake_eos),
                payee_guard: !rng.gen_bool(rates.fake_notif),
                auth_check: !rng.gen_bool(rates.missauth),
                blockinfo: rng.gen_bool(rates.blockinfo),
                reward: if vulnerable_reward {
                    RewardKind::Inline
                } else if rng.gen_bool(0.3) {
                    RewardKind::Deferred
                } else {
                    RewardKind::None
                },
                // Wild contracts rarely gate their reveal behind exact
                // constants; a shallow solvable gate occasionally.
                gate: if rng.gen_bool(0.2) {
                    GateKind::Solvable { depth: 1 }
                } else {
                    GateKind::Open
                },
                eosponser_branches: rng.gen_range(1..5),
                sdk_work: rates.sdk_work,
            };
            let deployed = generate(bp);
            let vulnerable = !deployed.label.is_empty();
            // §4.4: 58.4% of flagged contracts still operate; of those, 72 of
            // 413 were patched.
            let lifecycle = if !vulnerable {
                if rng.gen_bool(0.7) {
                    Lifecycle::OperatingUnpatched
                } else {
                    Lifecycle::Abandoned
                }
            } else if rng.gen_bool(0.584) {
                if rng.gen_bool(0.174) {
                    Lifecycle::OperatingPatched
                } else {
                    Lifecycle::OperatingUnpatched
                }
            } else {
                Lifecycle::Abandoned
            };
            let latest = if lifecycle == Lifecycle::OperatingPatched {
                // The patch restores every guard.
                let fixed = Blueprint {
                    code_guard: true,
                    payee_guard: true,
                    auth_check: true,
                    blockinfo: false,
                    reward: if bp.reward == RewardKind::Inline {
                        RewardKind::Deferred
                    } else {
                        bp.reward
                    },
                    ..bp
                };
                Some(generate(fixed))
            } else {
                None
            };
            WildContract {
                deployed,
                lifecycle,
                latest,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasai_core::VulnClass;

    #[test]
    fn base_rates_land_near_the_paper() {
        let corpus = wild_corpus(42, 991, WildRates::default());
        assert_eq!(corpus.len(), 991);
        let count = |c: VulnClass| {
            corpus
                .iter()
                .filter(|w| w.deployed.label.contains(&c))
                .count() as f64
        };
        // Within loose tolerance of the paper's flagged counts.
        assert!((count(VulnClass::FakeEos) - 241.0).abs() < 60.0);
        assert!((count(VulnClass::MissAuth) - 470.0).abs() < 80.0);
        let vulnerable = corpus
            .iter()
            .filter(|w| !w.deployed.label.is_empty())
            .count() as f64;
        assert!(
            (0.6..0.85).contains(&(vulnerable / 991.0)),
            "~70% vulnerable, got {}",
            vulnerable / 991.0
        );
    }

    #[test]
    fn patched_versions_are_clean() {
        let corpus = wild_corpus(7, 200, WildRates::default());
        for w in &corpus {
            if let Some(latest) = &w.latest {
                assert_eq!(w.lifecycle, Lifecycle::OperatingPatched);
                assert!(
                    latest.label.is_empty(),
                    "patched versions must carry no label"
                );
            }
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = wild_corpus(9, 20, WildRates::default());
        let b = wild_corpus(9, 20, WildRates::default());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.deployed.module, y.deployed.module);
            assert_eq!(x.lifecycle, y.lifecycle);
        }
    }
}
