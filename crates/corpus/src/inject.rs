//! LAVA-style bytecode-level vulnerability injection (§4.2).
//!
//! The paper builds its 3,340-sample benchmark by editing real contracts'
//! *bytecode*: "we remove the guard code to generate new vulnerable
//! samples"; "we remove/add the invocation of the permission APIs". These
//! transformations operate on [`Module`]s the same way — they locate the
//! guard instruction patterns and neutralize them while preserving stack
//! balance (so the result still validates).

use wasai_chain::name::Name;
use wasai_core::VulnClass;
use wasai_wasm::instr::Instr;
use wasai_wasm::module::Module;

use crate::spec::LabeledContract;

/// Neutralize a guard comparison at `pc`: the two i64 operands are dropped
/// and replaced with the constant verdict that keeps the guard branch cold.
fn neutralize_compare(body: &mut Vec<Instr>, pc: usize, pass_value: i32) {
    body.splice(
        pc..=pc,
        [Instr::Drop, Instr::Drop, Instr::I32Const(pass_value)],
    );
}

/// Remove the Fake EOS guard (`code == N(eosio.token)` in `apply`) from a
/// contract — §4.2's vulnerable-sample construction.
///
/// Returns `true` if a guard was found and stripped.
pub fn strip_code_guard(module: &mut Module) -> bool {
    let token = Name::new("eosio.token").as_i64();
    let Some(apply_idx) = module.exported_func("apply") else {
        return false;
    };
    let Some(apply) = module.local_func_mut(apply_idx) else {
        return false;
    };
    for pc in 1..apply.body.len() {
        let is_token_const = matches!(apply.body[pc - 1], Instr::I64Const(c) if c == token);
        if !is_token_const {
            continue;
        }
        match apply.body[pc] {
            // `code != token → abort` guards: make the comparison yield 0.
            Instr::I64Ne => {
                neutralize_compare(&mut apply.body, pc, 0);
                return true;
            }
            // `assert(code == token)` guards: make the comparison yield 1.
            Instr::I64Eq => {
                neutralize_compare(&mut apply.body, pc, 1);
                return true;
            }
            _ => {}
        }
    }
    false
}

/// Remove the Fake Notif guard (`to == _self` at the eosponser entry).
///
/// Returns `true` if a guard was found and stripped.
pub fn strip_payee_guard(module: &mut Module, transfer_func: u32) -> bool {
    let Some(f) = module.local_func_mut(transfer_func) else {
        return false;
    };
    for pc in 2..f.body.len() {
        let params_compared = matches!(
            (&f.body[pc - 2], &f.body[pc - 1]),
            (Instr::LocalGet(a), Instr::LocalGet(b)) if *a <= 4 && *b <= 4 && a != b
        );
        if params_compared && f.body[pc].is_i64_guard_compare() {
            let pass = if f.body[pc] == Instr::I64Ne { 0 } else { 1 };
            neutralize_compare(&mut f.body, pc, pass);
            return true;
        }
    }
    false
}

/// Remove every `require_auth`/`require_auth2` invocation (§4.2's MissAuth
/// construction). The call is replaced by a `drop` of its argument.
///
/// Returns the number of calls removed.
pub fn strip_auth(module: &mut Module) -> usize {
    let auth_indices: Vec<u32> = (0..module.num_imported_funcs())
        .filter(|&i| {
            module
                .imported_func(i)
                .map(|imp| imp.name == "require_auth" || imp.name == "require_auth2")
                .unwrap_or(false)
        })
        .collect();
    let mut removed = 0;
    for f in &mut module.funcs {
        for instr in &mut f.body {
            if matches!(instr, Instr::Call(c) if auth_indices.contains(c)) {
                *instr = Instr::Drop;
                removed += 1;
            }
        }
    }
    removed
}

/// Apply a strip to a labeled contract, updating its ground-truth label.
///
/// # Panics
///
/// Panics if the transformation breaks validation (a bug in the injector).
pub fn make_vulnerable(contract: &LabeledContract, class: VulnClass) -> LabeledContract {
    let mut out = contract.clone();
    let changed = match class {
        VulnClass::FakeEos => strip_code_guard(&mut out.module),
        VulnClass::FakeNotif => strip_payee_guard(&mut out.module, out.meta.transfer_func),
        VulnClass::MissAuth => strip_auth(&mut out.module) > 0,
        // Template classes are generated, not injected.
        VulnClass::BlockinfoDep | VulnClass::Rollback => false,
    };
    if changed {
        out.label.insert(class);
        let mut bp = out.meta.blueprint;
        match class {
            VulnClass::FakeEos => bp.code_guard = false,
            VulnClass::FakeNotif => bp.payee_guard = false,
            VulnClass::MissAuth => bp.auth_check = false,
            _ => {}
        }
        out.meta.blueprint = bp;
    }
    wasai_wasm::validate::validate(&out.module)
        .unwrap_or_else(|e| panic!("injector produced invalid module: {e}"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::realistic::generate;
    use crate::spec::Blueprint;

    #[test]
    fn stripping_the_code_guard_flips_the_label() {
        let safe = generate(Blueprint {
            seed: 100,
            ..Blueprint::default()
        });
        assert!(!safe.is_vulnerable_to(VulnClass::FakeEos));
        let vuln = make_vulnerable(&safe, VulnClass::FakeEos);
        assert!(vuln.is_vulnerable_to(VulnClass::FakeEos));
        assert_ne!(safe.module, vuln.module);
    }

    #[test]
    fn stripping_is_idempotent_on_already_vulnerable() {
        let mut c = generate(Blueprint {
            seed: 101,
            code_guard: false,
            ..Blueprint::default()
        });
        assert!(!strip_code_guard(&mut c.module), "nothing to strip");
    }

    #[test]
    fn payee_guard_strip_targets_the_eosponser() {
        let safe = generate(Blueprint {
            seed: 102,
            ..Blueprint::default()
        });
        let vuln = make_vulnerable(&safe, VulnClass::FakeNotif);
        assert!(vuln.is_vulnerable_to(VulnClass::FakeNotif));
        // Only the eosponser changed.
        let f_old = safe.module.local_func(safe.meta.transfer_func).unwrap();
        let f_new = vuln.module.local_func(vuln.meta.transfer_func).unwrap();
        assert_ne!(f_old.body, f_new.body);
    }

    #[test]
    fn auth_strip_removes_all_permission_calls() {
        let safe = generate(Blueprint {
            seed: 103,
            ..Blueprint::default()
        });
        let mut m = safe.module.clone();
        let removed = strip_auth(&mut m);
        assert!(
            removed >= 2,
            "setowner and reveal both check auth, removed {removed}"
        );
        assert_eq!(strip_auth(&mut m), 0);
    }

    #[test]
    fn all_strips_preserve_validation() {
        for class in [
            VulnClass::FakeEos,
            VulnClass::FakeNotif,
            VulnClass::MissAuth,
        ] {
            let safe = generate(Blueprint {
                seed: 104,
                ..Blueprint::default()
            });
            let vuln = make_vulnerable(&safe, class);
            wasai_wasm::validate::validate(&vuln.module).unwrap();
        }
    }
}
