//! Assembly of the paper's evaluation corpora with the exact group sizes of
//! Tables 4–6.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wasai_core::VulnClass;

use crate::inject::make_vulnerable;
use crate::obfuscate::obfuscate;
use crate::realistic::generate;
use crate::spec::{Blueprint, GateKind, LabeledContract, RewardKind};
use crate::verification::inject_verification;

/// One benchmark sample: the contract and the class its group evaluates.
#[derive(Debug, Clone)]
pub struct BenchmarkSample {
    /// The contract with ground truth.
    pub contract: LabeledContract,
    /// Which detector this sample grades (per-group P/R/F1, Table 4 style).
    pub group: VulnClass,
}

impl BenchmarkSample {
    /// Ground truth for this sample's group.
    pub fn is_vulnerable(&self) -> bool {
        self.contract.is_vulnerable_to(self.group)
    }
}

/// Group sizes `(class, vulnerable, non_vulnerable)` of Table 4.
pub const TABLE4_GROUPS: [(VulnClass, usize, usize); 5] = [
    (VulnClass::FakeEos, 127, 127),
    (VulnClass::FakeNotif, 689, 689),
    (VulnClass::MissAuth, 445, 445),
    (VulnClass::BlockinfoDep, 200, 200),
    (VulnClass::Rollback, 209, 209),
];

/// Group sizes of Table 6 (the complicated-verification benchmark).
pub const TABLE6_GROUPS: [(VulnClass, usize, usize); 5] = [
    (VulnClass::FakeEos, 95, 95),
    (VulnClass::FakeNotif, 589, 589),
    (VulnClass::MissAuth, 378, 378),
    (VulnClass::BlockinfoDep, 200, 200),
    (VulnClass::Rollback, 200, 200),
];

/// A safe-by-default blueprint with randomized incidental structure.
fn base_blueprint(rng: &mut StdRng) -> Blueprint {
    Blueprint {
        seed: rng.gen(),
        code_guard: true,
        payee_guard: true,
        auth_check: true,
        blockinfo: false,
        reward: RewardKind::None,
        gate: GateKind::Open,
        eosponser_branches: rng.gen_range(1..4),
        sdk_work: 0,
    }
}

/// Build one group's samples: `vul` vulnerable + `nonvul` safe, isolated to
/// `class` (every other dimension stays safe), following §4.2's three
/// construction recipes.
fn build_group(
    class: VulnClass,
    vul: usize,
    nonvul: usize,
    rng: &mut StdRng,
) -> Vec<BenchmarkSample> {
    let mut out = Vec::with_capacity(vul + nonvul);
    for i in 0..(vul + nonvul) {
        let make_vul = i < vul;
        let contract = match class {
            // Guard/auth classes: generate the guarded contract, then strip
            // the guard at the bytecode level for the vulnerable half.
            VulnClass::FakeEos | VulnClass::FakeNotif | VulnClass::MissAuth => {
                let base = generate(base_blueprint(rng));
                if make_vul {
                    make_vulnerable(&base, class)
                } else {
                    base
                }
            }
            // CosmWasm-substrate classes live in `crate::cw`; the §4.2
            // benchmark is EOSIO-only and never groups by them.
            VulnClass::UnauthInstantiate | VulnClass::UncheckedReply => {
                unreachable!("benchmark groups cover only VulnClass::ALL")
            }
            // Template classes: generated directly; the non-vulnerable half
            // hides the template behind inaccessible branches (§4.2).
            VulnClass::BlockinfoDep | VulnClass::Rollback => {
                let mut bp = base_blueprint(rng);
                // Keep each group isolated to its class: the BlockinfoDep
                // group never pays inline, the Rollback group never reads
                // block state.
                bp.blockinfo = class == VulnClass::BlockinfoDep;
                bp.reward = if class == VulnClass::Rollback {
                    RewardKind::Inline
                } else if rng.gen_bool(0.5) {
                    RewardKind::Deferred
                } else {
                    RewardKind::None
                };
                bp.gate = if make_vul {
                    GateKind::Solvable {
                        depth: rng.gen_range(1..4),
                    }
                } else {
                    GateKind::Unsatisfiable {
                        depth: rng.gen_range(1..4),
                    }
                };
                generate(bp)
            }
        };
        debug_assert_eq!(contract.is_vulnerable_to(class), make_vul);
        out.push(BenchmarkSample {
            contract,
            group: class,
        });
    }
    out
}

/// The Table 4 ground-truth benchmark, scaled by `scale ∈ (0, 1]` (the full
/// corpus is 3,340 samples; experiments can subsample deterministically).
pub fn table4_benchmark(seed: u64, scale: f64) -> Vec<BenchmarkSample> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for (class, vul, nonvul) in TABLE4_GROUPS {
        let v = ((vul as f64 * scale).round() as usize).max(1);
        let n = ((nonvul as f64 * scale).round() as usize).max(1);
        out.extend(build_group(class, v, n, &mut rng));
    }
    out
}

/// The Table 5 benchmark: Table 4 passed through the obfuscator (§4.3).
pub fn table5_benchmark(seed: u64, scale: f64) -> Vec<BenchmarkSample> {
    table4_benchmark(seed, scale)
        .into_iter()
        .enumerate()
        .map(|(i, s)| BenchmarkSample {
            contract: obfuscate(&s.contract, seed ^ (i as u64)),
            group: s.group,
        })
        .collect()
}

/// The Table 6 benchmark: complicated verification injected at the
/// eosponser entry (§4.3), with the paper's reduced group sizes.
pub fn table6_benchmark(seed: u64, scale: f64) -> Vec<BenchmarkSample> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7ab1e6);
    let mut out = Vec::new();
    for (class, vul, nonvul) in TABLE6_GROUPS {
        let v = ((vul as f64 * scale).round() as usize).max(1);
        let n = ((nonvul as f64 * scale).round() as usize).max(1);
        for s in build_group(class, v, n, &mut rng) {
            let checks = rng.gen_range(1..3);
            let (contract, _key) = inject_verification(&s.contract, rng.gen(), checks);
            out.push(BenchmarkSample {
                contract,
                group: s.group,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_counts_scale() {
        let full: usize = TABLE4_GROUPS.iter().map(|(_, v, n)| v + n).sum();
        assert_eq!(full, 3_340, "the paper's benchmark size");
        let sampled = table4_benchmark(1, 0.01);
        assert!(sampled.len() >= 10);
        // Balanced-ish per group.
        let vul = sampled.iter().filter(|s| s.is_vulnerable()).count();
        assert!(vul * 2 >= sampled.len() - 5 && vul * 2 <= sampled.len() + 5);
    }

    #[test]
    fn table6_total_matches_paper() {
        let full: usize = TABLE6_GROUPS.iter().map(|(_, v, n)| v + n).sum();
        assert_eq!(full, 2_924);
    }

    #[test]
    fn groups_isolate_their_class() {
        for s in table4_benchmark(2, 0.01) {
            for other in VulnClass::ALL {
                if other != s.group {
                    assert!(
                        !s.contract.is_vulnerable_to(other),
                        "{:?} sample also vulnerable to {other}",
                        s.group
                    );
                }
            }
        }
    }

    #[test]
    fn benchmarks_are_deterministic() {
        let a = table4_benchmark(3, 0.005);
        let b = table4_benchmark(3, 0.005);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.contract.module, y.contract.module);
        }
    }
}
