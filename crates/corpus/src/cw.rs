//! CosmWasm-shaped labeled contracts: the ground-truth corpus for the
//! second substrate.
//!
//! Mirrors [`crate::spec`]'s philosophy — the blueprint *is* the ground
//! truth: every vulnerability is present exactly when its guard knob is
//! off, so labels are derived, never asserted by hand. The generated shape
//! follows real CosmWasm CTF patterns: an `instantiate` that persists the
//! owner, a `play` message that queues a funded submessage, a `reply` that
//! credits the ledger, and benign filler messages for coverage realism.
//!
//! The message opcode space stays inside `0..8` — the range the CosmWasm
//! campaign sweeps exhaustively — so every labeled bug is reachable by the
//! fuzzer and the precision/recall gate (`tests/cw_ground_truth.rs`) can
//! demand 100% recall with zero false positives.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wasai_core::cw::cw_accounts;
use wasai_core::VulnClass;
use wasai_wasm::builder::ModuleBuilder;
use wasai_wasm::instr::Instr;
use wasai_wasm::types::{BlockType, ValType::*};
use wasai_wasm::Module;

/// A CosmWasm generation blueprint. Each `*_guard` knob removes one
/// vulnerability; the all-guards-on contract is the clean twin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CwBlueprint {
    /// RNG seed for the contract's random constants.
    pub seed: u64,
    /// `instantiate` refuses to run twice (aborts when the owner key is
    /// already set). Off → [`VulnClass::UnauthInstantiate`].
    pub instantiate_auth: bool,
    /// `reply` returns early when the submessage failed. Off →
    /// [`VulnClass::UncheckedReply`].
    pub reply_check: bool,
    /// Export a read-only `query` entry.
    pub has_query: bool,
    /// Benign extra execute opcodes (0–4): storage writes under distinct
    /// keys, for coverage realism.
    pub filler_msgs: u32,
}

impl Default for CwBlueprint {
    fn default() -> Self {
        CwBlueprint {
            seed: 0,
            instantiate_auth: true,
            reply_check: true,
            has_query: true,
            filler_msgs: 2,
        }
    }
}

impl CwBlueprint {
    /// The ground-truth label implied by the blueprint.
    pub fn label(&self) -> BTreeSet<VulnClass> {
        let mut out = BTreeSet::new();
        if !self.instantiate_auth {
            out.insert(VulnClass::UnauthInstantiate);
        }
        if !self.reply_check {
            out.insert(VulnClass::UncheckedReply);
        }
        out
    }
}

/// A generated, labeled CosmWasm sample.
#[derive(Debug, Clone)]
pub struct LabeledCwContract {
    /// The contract bytecode (uninstrumented).
    pub module: Module,
    /// Ground-truth classes present.
    pub label: BTreeSet<VulnClass>,
    /// The blueprint it was generated from.
    pub blueprint: CwBlueprint,
}

/// Storage keys the generated contracts use.
mod keys {
    /// Owner address, set by `instantiate`.
    pub const OWNER: i64 = 0;
    /// Deposit ledger, written by the `deposit` message.
    pub const DEPOSITS: i64 = 2;
    /// Reply credit, written by `reply`.
    pub const CREDIT: i64 = 5;
    /// First filler key (one per filler message).
    pub const FILLER: i64 = 16;
}

/// Execute message opcodes (kept inside the campaign's `0..8` sweep).
mod msgs {
    /// Queue the submessage whose reply credits the ledger.
    pub const PLAY: i64 = 1;
    /// Record the attached funds.
    pub const DEPOSIT: i64 = 2;
    /// First filler opcode.
    pub const FILLER: i64 = 3;
}

/// Generate one contract from a blueprint.
pub fn generate_cw(bp: CwBlueprint) -> LabeledCwContract {
    let mut rng = StdRng::seed_from_u64(bp.seed);
    let mut b = ModuleBuilder::new();
    let read = b.import_func("env", "storage_read", &[I64], &[I64]);
    let has = b.import_func("env", "storage_has", &[I64], &[I32]);
    let write = b.import_func("env", "storage_write", &[I64, I64], &[]);
    let abort = b.import_func("env", "cw_abort", &[I64], &[]);
    let submsg = b.import_func("env", "submsg", &[I64, I64, I64, I64], &[]);

    // instantiate(sender, msg, funds): optionally refuse a second run, then
    // persist the caller as owner.
    let mut inst_body = vec![];
    if bp.instantiate_auth {
        inst_body.extend([
            Instr::I64Const(keys::OWNER),
            Instr::Call(has),
            Instr::If(BlockType::Empty),
            Instr::I64Const(1),
            Instr::Call(abort),
            Instr::End,
        ]);
    }
    inst_body.extend([
        Instr::I64Const(keys::OWNER),
        Instr::LocalGet(0),
        Instr::Call(write),
        Instr::End,
    ]);
    let inst = b.func(&[I64, I64, I64], &[], &[], inst_body);

    // execute(sender, msg, funds): play / deposit / filler dispatch.
    let stake: i64 = rng.gen_range(60..120);
    let case = |opcode: i64, then: Vec<Instr>| {
        let mut v = vec![
            Instr::LocalGet(1),
            Instr::I64Const(opcode),
            Instr::I64Eq,
            Instr::If(BlockType::Empty),
        ];
        v.extend(then);
        v.push(Instr::End);
        v
    };
    let mut exec_body = case(
        msgs::PLAY,
        vec![
            Instr::I64Const(cw_accounts::payee().as_i64()),
            Instr::I64Const(0),
            Instr::I64Const(stake),
            Instr::I64Const(7),
            Instr::Call(submsg),
        ],
    );
    exec_body.extend(case(
        msgs::DEPOSIT,
        vec![
            Instr::I64Const(keys::DEPOSITS),
            Instr::LocalGet(2),
            Instr::Call(write),
        ],
    ));
    let fillers = bp.filler_msgs.min(4) as i64;
    for i in 0..fillers {
        let marker: i64 = rng.gen_range(1..1_000);
        exec_body.extend(case(
            msgs::FILLER + i,
            vec![
                Instr::I64Const(keys::FILLER + i),
                Instr::I64Const(marker),
                Instr::Call(write),
            ],
        ));
    }
    exec_body.push(Instr::End);
    let exec = b.func(&[I64, I64, I64], &[], &[], exec_body);

    // reply(id, success): optionally bail on failure, then credit.
    let mut reply_body = vec![];
    if bp.reply_check {
        reply_body.extend([
            Instr::LocalGet(1),
            Instr::I32Eqz,
            Instr::If(BlockType::Empty),
            Instr::Return,
            Instr::End,
        ]);
    }
    reply_body.extend([
        Instr::I64Const(keys::CREDIT),
        Instr::LocalGet(0),
        Instr::Call(write),
        Instr::End,
    ]);
    let reply = b.func(&[I64, I32], &[], &[], reply_body);

    b.export_func("instantiate", inst);
    b.export_func("execute", exec);
    b.export_func("reply", reply);
    if bp.has_query {
        let query = b.func(
            &[I64],
            &[I64],
            &[],
            vec![Instr::LocalGet(0), Instr::Call(read), Instr::End],
        );
        b.export_func("query", query);
    }

    LabeledCwContract {
        module: b.build(),
        label: bp.label(),
        blueprint: bp,
    }
}

/// Generate a labeled corpus of `count` contracts: a deterministic mix of
/// vulnerable samples and their clean twins (every guard combination
/// appears when `count >= 4`).
pub fn cw_corpus(seed: u64, count: usize) -> Vec<LabeledCwContract> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            // Cycle the four guard combinations so small corpora still
            // contain every label, then randomize the rest.
            let combo = i % 4;
            generate_cw(CwBlueprint {
                seed: rng.gen(),
                instantiate_auth: combo & 1 == 0,
                reply_check: combo & 2 == 0,
                has_query: rng.gen_bool(0.5),
                filler_msgs: rng.gen_range(0..5),
            })
        })
        .collect()
}

/// Serialize a ground-truth label to the `.label` sidecar format: class
/// [`std::fmt::Display`] names, comma-joined, newline-terminated (the same
/// schema the EOSIO corpus writes). An empty label is a bare newline.
pub fn label_sidecar(label: &BTreeSet<VulnClass>) -> String {
    let names: Vec<String> = label.iter().map(|c| c.to_string()).collect();
    names.join(",") + "\n"
}

/// Parse a `.label` sidecar. Returns `None` if any entry is not a known
/// class name — the schema check the ground-truth gate relies on.
pub fn parse_label_sidecar(text: &str) -> Option<BTreeSet<VulnClass>> {
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return Some(BTreeSet::new());
    }
    trimmed
        .split(',')
        .map(|s| VulnClass::from_label(s.trim()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasai_chain::name::Name;
    use wasai_wasm::validate::validate;

    #[test]
    fn labels_follow_blueprint() {
        assert!(CwBlueprint::default().label().is_empty());
        let both = CwBlueprint {
            instantiate_auth: false,
            reply_check: false,
            ..CwBlueprint::default()
        };
        assert_eq!(
            both.label(),
            BTreeSet::from([VulnClass::UnauthInstantiate, VulnClass::UncheckedReply])
        );
    }

    #[test]
    fn generated_modules_validate_and_export_the_entry_model() {
        for bp in [
            CwBlueprint::default(),
            CwBlueprint {
                instantiate_auth: false,
                reply_check: false,
                has_query: false,
                filler_msgs: 4,
                ..CwBlueprint::default()
            },
        ] {
            let c = generate_cw(bp);
            validate(&c.module).expect("generated module validates");
            for export in ["instantiate", "execute", "reply"] {
                assert!(c.module.exported_func(export).is_some(), "missing {export}");
            }
            assert_eq!(c.module.exported_func("query").is_some(), bp.has_query);
        }
    }

    #[test]
    fn corpus_is_deterministic_and_covers_every_label_combo() {
        let a = cw_corpus(42, 8);
        let b = cw_corpus(42, 8);
        assert_eq!(a.len(), 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.blueprint, y.blueprint);
            assert_eq!(x.label, y.label);
        }
        let labels: BTreeSet<Vec<VulnClass>> = a
            .iter()
            .map(|c| c.label.iter().copied().collect())
            .collect();
        assert_eq!(labels.len(), 4, "all four guard combinations present");
    }

    #[test]
    fn label_sidecar_schema_roundtrips() {
        let corpus = cw_corpus(7, 8);
        for c in &corpus {
            let text = label_sidecar(&c.label);
            assert!(text.ends_with('\n'));
            assert_eq!(parse_label_sidecar(&text).expect("sidecar parses"), c.label);
        }
        assert_eq!(parse_label_sidecar("\n"), Some(BTreeSet::new()));
        assert_eq!(
            parse_label_sidecar("UnauthInstantiate,UncheckedReply\n"),
            Some(BTreeSet::from([
                VulnClass::UnauthInstantiate,
                VulnClass::UncheckedReply
            ]))
        );
        assert_eq!(
            parse_label_sidecar("NotAClass\n"),
            None,
            "unknown names fail the schema check"
        );
        // EOSIO sidecars parse under the same schema.
        assert_eq!(
            parse_label_sidecar("Fake EOS,MissAuth\n"),
            Some(BTreeSet::from([VulnClass::FakeEos, VulnClass::MissAuth]))
        );
    }

    #[test]
    fn sender_name_constants_fit_the_campaign_cast() {
        // The generated `play` submessage targets the campaign's payee
        // wallet by name — drift here would break the ground-truth gate.
        assert_eq!(cw_accounts::payee(), Name::new("payee"));
    }
}
