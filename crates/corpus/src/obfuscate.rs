//! The Wasm bytecode obfuscator of RQ3 (§4.3).
//!
//! "Since there is no available obfuscation tool for Wasm bytecode, we
//! develop one with two obfuscation methods. First, it obfuscates the data
//! flow by encoding function arguments with the popcount algorithm. Second,
//! it obfuscates the control flow by inserting recursion invocations to the
//! bytecode, where the entry condition is impossibly satisfied."
//!
//! Three semantic-preserving passes:
//!
//! 1. **Constant splitting** — every `i64.const c` in a guard context
//!    becomes `i64.const k; i64.const c⊕k; i64.xor`. This is what blinds
//!    EOSAFE's literal-pattern dispatcher heuristic (Table 5's 0-TP rows);
//!    WASAI's constant folding sees straight through it.
//! 2. **Popcount opaque predicates** — action functions gain a
//!    `popcnt(arg) ≥ 65 → unreachable` prologue: a new data-flow branch over
//!    an argument encoding that never fires at runtime.
//! 3. **Decoy recursion** — a self-recursive function whose entry condition
//!    (`popcnt(arg) > 100`) is unsatisfiable, invoked from `apply`: static
//!    path exploration must budget for it; dynamic execution never enters.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wasai_wasm::instr::Instr;
use wasai_wasm::module::{Function, Module};
use wasai_wasm::types::{BlockType, FuncType, ValType};

use crate::spec::LabeledContract;

/// Split every `i64.const` immediately feeding an `i64.eq`/`i64.ne` into an
/// xor of two random halves. Returns the number of constants split.
pub fn split_guard_consts(module: &mut Module, rng: &mut StdRng) -> usize {
    let mut split = 0;
    for f in &mut module.funcs {
        let mut pc = 0;
        while pc + 1 < f.body.len() {
            let splittable =
                matches!(f.body[pc], Instr::I64Const(_)) && f.body[pc + 1].is_i64_guard_compare();
            if splittable {
                let Instr::I64Const(c) = f.body[pc] else {
                    unreachable!()
                };
                let k: i64 = rng.gen();
                f.body.splice(
                    pc..=pc,
                    [Instr::I64Const(k), Instr::I64Const(c ^ k), Instr::I64Xor],
                );
                split += 1;
                pc += 4; // skip past the expansion and the compare
            } else {
                pc += 1;
            }
        }
    }
    split
}

/// Prepend a popcount opaque predicate to each listed function (which must
/// have an i64 first parameter): `if (popcnt(p0) >= 65) unreachable`.
pub fn insert_popcount_predicates(module: &mut Module, funcs: &[u32]) {
    for &func in funcs {
        let has_i64_param = module
            .func_type(func)
            .map(|t| t.params.first() == Some(&ValType::I64))
            .unwrap_or(false);
        if !has_i64_param {
            continue;
        }
        if let Some(f) = module.local_func_mut(func) {
            let prologue = [
                Instr::LocalGet(0),
                Instr::I64Popcnt,
                Instr::I64Const(65),
                Instr::I64GeS,
                Instr::If(BlockType::Empty),
                Instr::Unreachable,
                Instr::End,
            ];
            f.body.splice(0..0, prologue);
        }
    }
}

/// Append the decoy recursive function and call it from `apply`'s entry.
pub fn insert_decoy_recursion(module: &mut Module) {
    let type_idx = module.intern_type(FuncType::new(vec![ValType::I64], vec![]));
    let decoy_idx = module.num_funcs();
    module.funcs.push(Function {
        type_idx,
        locals: vec![],
        body: vec![
            // if (popcnt(n) > 100) decoy(n)  — never satisfiable.
            Instr::LocalGet(0),
            Instr::I64Popcnt,
            Instr::I64Const(100),
            Instr::I64GtS,
            Instr::If(BlockType::Empty),
            Instr::LocalGet(0),
            Instr::Call(decoy_idx),
            Instr::End,
            Instr::End,
        ],
    });
    if let Some(apply_idx) = module.exported_func("apply") {
        if let Some(apply) = module.local_func_mut(apply_idx) {
            apply
                .body
                .splice(0..0, [Instr::LocalGet(0), Instr::Call(decoy_idx)]);
        }
    }
}

/// Obfuscate a labeled contract (labels are semantics, so they are
/// unchanged — §4.3 evaluates the same ground truth under obfuscation).
///
/// # Panics
///
/// Panics if the output fails validation (an obfuscator bug).
pub fn obfuscate(contract: &LabeledContract, seed: u64) -> LabeledContract {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = contract.clone();
    split_guard_consts(&mut out.module, &mut rng);
    insert_popcount_predicates(
        &mut out.module,
        &[
            out.meta.transfer_func,
            out.meta.reveal_func,
            out.meta.admin_func,
        ],
    );
    insert_decoy_recursion(&mut out.module);
    wasai_wasm::validate::validate(&out.module)
        .unwrap_or_else(|e| panic!("obfuscator produced invalid module: {e}"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::realistic::generate;
    use crate::spec::Blueprint;

    #[test]
    fn obfuscation_validates_and_differs() {
        let c = generate(Blueprint {
            seed: 200,
            ..Blueprint::default()
        });
        let o = obfuscate(&c, 7);
        assert_ne!(c.module, o.module);
        assert_eq!(c.label, o.label, "obfuscation must not change semantics");
    }

    #[test]
    fn guard_literals_disappear() {
        use wasai_chain::name::Name;
        let c = generate(Blueprint {
            seed: 201,
            ..Blueprint::default()
        });
        let o = obfuscate(&c, 7);
        let token = Name::new("eosio.token").as_i64();
        let apply = o.module.exported_func("apply").unwrap();
        let body = &o.module.local_func(apply).unwrap().body;
        // No i64 guard compare is directly preceded by the token literal.
        for pc in 1..body.len() {
            if body[pc].is_i64_guard_compare() {
                assert!(
                    !matches!(body[pc - 1], Instr::I64Const(v) if v == token),
                    "guard literal survived at pc {pc}"
                );
            }
        }
    }

    #[test]
    fn decoy_recursion_is_added_and_called() {
        let c = generate(Blueprint {
            seed: 202,
            ..Blueprint::default()
        });
        let before = c.module.funcs.len();
        let o = obfuscate(&c, 7);
        assert_eq!(o.module.funcs.len(), before + 1);
        let decoy_idx = o.module.num_funcs() - 1;
        let apply = o.module.exported_func("apply").unwrap();
        let body = &o.module.local_func(apply).unwrap().body;
        assert!(body.contains(&Instr::Call(decoy_idx)));
        // The decoy calls itself.
        let decoy = o.module.local_func(decoy_idx).unwrap();
        assert!(decoy.body.contains(&Instr::Call(decoy_idx)));
    }

    #[test]
    fn obfuscated_contract_behaves_identically() {
        use wasai_chain::abi::ParamValue;
        use wasai_chain::asset::Asset;
        use wasai_chain::name::Name;
        use wasai_chain::{Chain, NativeKind};

        let c = generate(Blueprint {
            seed: 203,
            code_guard: false,
            ..Blueprint::default()
        });
        let o = obfuscate(&c, 7);
        let run = |module: wasai_wasm::Module| {
            let mut chain = Chain::new();
            chain.deploy_native(Name::new("eosio.token"), NativeKind::Token);
            chain.create_account(Name::new("alice")).unwrap();
            chain
                .deploy_wasm(Name::new("victim"), module, c.abi.clone())
                .unwrap();
            chain.issue(
                Name::new("eosio.token"),
                Name::new("alice"),
                Asset::eos(100),
            );
            let r = chain.push_action(
                Name::new("eosio.token"),
                Name::new("transfer"),
                &[Name::new("alice")],
                &[
                    ParamValue::Name(Name::new("alice")),
                    ParamValue::Name(Name::new("victim")),
                    ParamValue::Asset(Asset::eos(10)),
                    ParamValue::String("play".into()),
                ],
            );
            (
                r.is_ok(),
                chain.balance(Name::new("eosio.token"), Name::new("victim")),
            )
        };
        assert_eq!(run(c.module.clone()), run(o.module.clone()));
    }
}
