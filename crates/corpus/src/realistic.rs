//! Generation of realistic EOSIO-shaped contracts.
//!
//! Every sample is a small lottery dApp with the structure the paper's
//! examples revolve around (Listings 1–4): an `apply` dispatcher with the
//! SDK's `call_indirect` pattern (§3.4.2), a byte-stream deserializer
//! (`read_action_data` into linear memory, C3), an eosponser with optional
//! Fake-EOS/Fake-Notif guard code, a `reveal` action with a verification
//! gate, optional blockinfo randomness and an inline/deferred payout, and a
//! `setowner` admin action with optional authorization.
//!
//! The [`Blueprint`] controls which guards exist, so the ground-truth label
//! is known by construction (§4.2's benchmark methodology).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wasai_chain::abi::{Abi, ActionDecl, ParamType};
use wasai_chain::name::Name;
use wasai_wasm::builder::ModuleBuilder;
use wasai_wasm::instr::{Instr, MemArg};
use wasai_wasm::types::{BlockType, ValType::*};

use crate::spec::{actions, Blueprint, GateKind, GenMeta, LabeledContract, RewardKind};

/// Byte offset of the action-data buffer in linear memory.
pub const BUF: i32 = 1024;
/// Byte offset where inline-action payloads are assembled.
pub const OUT: i32 = 512;
/// Byte offset of the stored owner value.
pub const OWNER_ADDR: i32 = 256;

fn n(s: &str) -> Name {
    Name::new(s)
}

struct Imports {
    assert: u32,
    read_action_data: u32,
    action_data_size: u32,
    require_auth: u32,
    tapos_num: u32,
    tapos_prefix: u32,
    send_inline: u32,
    send_deferred: u32,
    db_store: u32,
    db_find: u32,
    db_update: u32,
}

fn declare_imports(b: &mut ModuleBuilder) -> Imports {
    Imports {
        assert: b.import_func("env", "eosio_assert", &[I32, I32], &[]),
        read_action_data: b.import_func("env", "read_action_data", &[I32, I32], &[I32]),
        action_data_size: b.import_func("env", "action_data_size", &[], &[I32]),
        require_auth: b.import_func("env", "require_auth", &[I64], &[]),
        tapos_num: b.import_func("env", "tapos_block_num", &[], &[I32]),
        tapos_prefix: b.import_func("env", "tapos_block_prefix", &[], &[I32]),
        send_inline: b.import_func("env", "send_inline", &[I64, I64, I32, I32], &[]),
        send_deferred: b.import_func("env", "send_deferred", &[I64, I64, I64, I32, I32], &[]),
        db_store: b.import_func(
            "env",
            "db_store_i64",
            &[I64, I64, I64, I64, I32, I32],
            &[I32],
        ),
        db_find: b.import_func("env", "db_find_i64", &[I64, I64, I64, I64], &[I32]),
        db_update: b.import_func("env", "db_update_i64", &[I32, I64, I32, I32], &[]),
    }
}

/// The nested verification gate over the reveal's `nonce` parameter.
///
/// Emits `open_count` nested `if`s; the caller must close them. The checks
/// are derived from one random secret `v`: consistent for `Solvable`, with a
/// contradicting innermost check for `Unsatisfiable`.
fn emit_gate(body: &mut Vec<Instr>, gate: GateKind, rng: &mut StdRng) -> u32 {
    let depth = match gate {
        GateKind::Open => return 0,
        GateKind::Solvable { depth } => depth.max(1),
        // A lone "contradicting" check is just a different satisfiable
        // check; dead code needs the consistent outer check too.
        GateKind::Unsatisfiable { depth } => depth.max(2),
    };
    let v: i64 = rng.gen();
    let mut opened = 0;
    for k in 0..depth {
        let contradiction = matches!(gate, GateKind::Unsatisfiable { .. }) && k == depth - 1;
        match k % 3 {
            // nonce == v  (or v+1 for the dead innermost check)
            0 => {
                body.push(Instr::LocalGet(2));
                body.push(Instr::I64Const(if contradiction {
                    v.wrapping_add(1)
                } else {
                    v
                }));
                body.push(Instr::I64Eq);
            }
            // (nonce & mask) == (v & mask)
            1 => {
                let mask: i64 = 0xffff_ffff;
                body.push(Instr::LocalGet(2));
                body.push(Instr::I64Const(mask));
                body.push(Instr::I64And);
                let expect = if contradiction {
                    (v & mask) ^ 1
                } else {
                    v & mask
                };
                body.push(Instr::I64Const(expect));
                body.push(Instr::I64Eq);
            }
            // (nonce ^ key) == (v ^ key)
            _ => {
                let key: i64 = rng.gen();
                body.push(Instr::LocalGet(2));
                body.push(Instr::I64Const(key));
                body.push(Instr::I64Xor);
                let expect = if contradiction {
                    (v ^ key).wrapping_add(1)
                } else {
                    v ^ key
                };
                body.push(Instr::I64Const(expect));
                body.push(Instr::I64Eq);
            }
        }
        body.push(Instr::If(BlockType::Empty));
        opened += 1;
    }
    opened
}

/// Emit the payout-data serialization (`transfer(self, who, 1.0000 EOS, "")`
/// at [`OUT`]) followed by the chosen send API.
fn emit_reward(body: &mut Vec<Instr>, imports: &Imports, reward: RewardKind) {
    if reward == RewardKind::None {
        return;
    }
    // from = self
    body.push(Instr::I32Const(OUT));
    body.push(Instr::LocalGet(0));
    body.push(Instr::I64Store(MemArg::default()));
    // to = who
    body.push(Instr::I32Const(OUT + 8));
    body.push(Instr::LocalGet(1));
    body.push(Instr::I64Store(MemArg::default()));
    // amount = 1.0000 EOS
    body.push(Instr::I32Const(OUT + 16));
    body.push(Instr::I64Const(10_000));
    body.push(Instr::I64Store(MemArg::default()));
    // symbol
    body.push(Instr::I32Const(OUT + 24));
    body.push(Instr::I64Const(
        wasai_chain::asset::eos_symbol().raw() as i64
    ));
    body.push(Instr::I64Store(MemArg::default()));
    // memo: zero-length string
    body.push(Instr::I32Const(OUT + 32));
    body.push(Instr::I32Const(0));
    body.push(Instr::I32Store8(MemArg::default()));
    match reward {
        RewardKind::Inline => {
            body.push(Instr::I64Const(n("eosio.token").as_i64()));
            body.push(Instr::I64Const(n("transfer").as_i64()));
            body.push(Instr::I32Const(OUT));
            body.push(Instr::I32Const(33));
            body.push(Instr::Call(imports.send_inline));
        }
        RewardKind::Deferred => {
            body.push(Instr::I64Const(1)); // sender id
            body.push(Instr::I64Const(n("eosio.token").as_i64()));
            body.push(Instr::I64Const(n("transfer").as_i64()));
            body.push(Instr::I32Const(OUT));
            body.push(Instr::I32Const(33));
            body.push(Instr::Call(imports.send_deferred));
        }
        RewardKind::None => unreachable!(),
    }
}

/// The eosponser: `transfer(self, from, to, qty_ptr, memo_ptr)` — Table 2's
/// exact Local-section layout.
fn build_eosponser(bp: &Blueprint, imports: &Imports, rng: &mut StdRng) -> Vec<Instr> {
    let mut body = Vec::new();
    if bp.sdk_work > 0 {
        // SDK-style deserialization work: an FNV-ish byte-mixing loop over
        // the action buffer (locals 7 = index, 8 = accumulator), run before
        // any guard — real SDKs unpack the datastream before dispatching.
        body.push(Instr::Loop(BlockType::Empty));
        body.push(Instr::LocalGet(8));
        body.push(Instr::I64Const(0x100_0000_01b3));
        body.push(Instr::I64Mul);
        body.push(Instr::I32Const(BUF));
        body.push(Instr::LocalGet(7));
        body.push(Instr::I32Const(63));
        body.push(Instr::I32And);
        body.push(Instr::I32Add);
        body.push(Instr::I32Load8U(MemArg::default()));
        body.push(Instr::I64ExtendI32U);
        body.push(Instr::I64Xor);
        body.push(Instr::LocalSet(8));
        body.push(Instr::LocalGet(7));
        body.push(Instr::I32Const(1));
        body.push(Instr::I32Add);
        body.push(Instr::LocalTee(7));
        body.push(Instr::I32Const(bp.sdk_work as i32));
        body.push(Instr::I32LtU);
        body.push(Instr::BrIf(0));
        body.push(Instr::End);
    }
    if bp.payee_guard {
        // Listing 2's patch: if (to != _self) return.
        body.push(Instr::LocalGet(2));
        body.push(Instr::LocalGet(0));
        body.push(Instr::I64Ne);
        body.push(Instr::If(BlockType::Empty));
        body.push(Instr::Return);
        body.push(Instr::End);
    }
    // amount = quantity.amount (local 5)
    body.push(Instr::LocalGet(3));
    body.push(Instr::I64Load(MemArg::default()));
    body.push(Instr::LocalSet(5));
    // Benign verification branches: nested amount thresholds (ascending so
    // large payments reach the deepest code).
    let mut thresholds: Vec<i64> = (0..bp.eosponser_branches)
        .map(|_| rng.gen_range(1..500_000))
        .collect();
    thresholds.sort_unstable();
    for t in &thresholds {
        body.push(Instr::LocalGet(5));
        body.push(Instr::I64Const(*t));
        body.push(Instr::I64GeS);
        body.push(Instr::If(BlockType::Empty));
    }
    body.push(Instr::Nop);
    for _ in &thresholds {
        body.push(Instr::End);
    }
    // Record the bet: itr = db_find(self, self, bets, from)
    body.push(Instr::LocalGet(0));
    body.push(Instr::LocalGet(0));
    body.push(Instr::I64Const(n("bets").as_i64()));
    body.push(Instr::LocalGet(1));
    body.push(Instr::Call(imports.db_find));
    body.push(Instr::LocalSet(6));
    body.push(Instr::LocalGet(6));
    body.push(Instr::I32Const(0));
    body.push(Instr::I32LtS);
    body.push(Instr::If(BlockType::Empty));
    // db_store(scope=self, table=bets, payer=self, id=from, qty_ptr, 16)
    body.push(Instr::LocalGet(0));
    body.push(Instr::I64Const(n("bets").as_i64()));
    body.push(Instr::LocalGet(0));
    body.push(Instr::LocalGet(1));
    body.push(Instr::LocalGet(3));
    body.push(Instr::I32Const(16));
    body.push(Instr::Call(imports.db_store));
    body.push(Instr::Drop);
    body.push(Instr::Else);
    body.push(Instr::LocalGet(6));
    body.push(Instr::LocalGet(0));
    body.push(Instr::LocalGet(3));
    body.push(Instr::I32Const(16));
    body.push(Instr::Call(imports.db_update));
    body.push(Instr::End);
    body.push(Instr::End);
    body
}

/// The reveal action: `reveal(self, who, nonce)` (Listing 4's shape).
fn build_reveal(bp: &Blueprint, imports: &Imports, rng: &mut StdRng) -> Vec<Instr> {
    let mut body = Vec::new();
    if bp.auth_check {
        // Listing 3's pattern: the claimed player must be the actual caller.
        body.push(Instr::LocalGet(1));
        body.push(Instr::Call(imports.require_auth));
    }
    // itr = db_find(self, self, bets, who): the transaction dependency —
    // reveal only proceeds for players who transferred first (§3.3.2).
    body.push(Instr::LocalGet(0));
    body.push(Instr::LocalGet(0));
    body.push(Instr::I64Const(n("bets").as_i64()));
    body.push(Instr::LocalGet(1));
    body.push(Instr::Call(imports.db_find));
    body.push(Instr::LocalSet(3));
    body.push(Instr::LocalGet(3));
    body.push(Instr::I32Const(0));
    body.push(Instr::I32GeS);
    body.push(Instr::If(BlockType::Empty));
    let mut open = 1u32;
    open += emit_gate(&mut body, bp.gate, rng);
    if bp.blockinfo {
        // Listing 4: a = tapos_block_prefix() * tapos_block_num()
        body.push(Instr::Call(imports.tapos_prefix));
        body.push(Instr::Call(imports.tapos_num));
        body.push(Instr::I32Mul);
        body.push(Instr::I32Const(1));
        body.push(Instr::I32And);
        body.push(Instr::I32Eqz);
        body.push(Instr::If(BlockType::Empty));
        emit_reward(&mut body, imports, bp.reward);
        body.push(Instr::End);
    } else {
        emit_reward(&mut body, imports, bp.reward);
    }
    for _ in 0..open {
        body.push(Instr::End);
    }
    body.push(Instr::End);
    body
}

/// The admin action: `setowner(self, owner)` — the MissAuth probe (§2.3.3).
fn build_setowner(bp: &Blueprint, imports: &Imports) -> Vec<Instr> {
    let mut body = Vec::new();
    if bp.auth_check {
        // Listing 3's patch: only the contract's own authority may configure.
        body.push(Instr::LocalGet(0));
        body.push(Instr::Call(imports.require_auth));
    }
    body.push(Instr::I32Const(OWNER_ADDR));
    body.push(Instr::LocalGet(1));
    body.push(Instr::I64Store(MemArg::default()));
    body.push(Instr::LocalGet(0));
    body.push(Instr::LocalGet(0));
    body.push(Instr::I64Const(n("config").as_i64()));
    body.push(Instr::I64Const(0));
    body.push(Instr::Call(imports.db_find));
    body.push(Instr::LocalSet(2));
    body.push(Instr::LocalGet(2));
    body.push(Instr::I32Const(0));
    body.push(Instr::I32LtS);
    body.push(Instr::If(BlockType::Empty));
    body.push(Instr::LocalGet(0));
    body.push(Instr::I64Const(n("config").as_i64()));
    body.push(Instr::LocalGet(0));
    body.push(Instr::I64Const(0));
    body.push(Instr::I32Const(OWNER_ADDR));
    body.push(Instr::I32Const(8));
    body.push(Instr::Call(imports.db_store));
    body.push(Instr::Drop);
    body.push(Instr::Else);
    body.push(Instr::LocalGet(2));
    body.push(Instr::LocalGet(0));
    body.push(Instr::I32Const(OWNER_ADDR));
    body.push(Instr::I32Const(8));
    body.push(Instr::Call(imports.db_update));
    body.push(Instr::End);
    body.push(Instr::End);
    body
}

/// Deserialize + dispatch one action: emits argument loads per the packed
/// layout, then `call_indirect` through the table (the SDK pattern EOSAFE's
/// heuristics look for, §3.4.2).
fn emit_dispatch(
    body: &mut Vec<Instr>,
    imports: &Imports,
    params: &[ParamType],
    table_slot: u32,
    type_idx: u32,
) {
    body.push(Instr::Call(imports.action_data_size));
    body.push(Instr::LocalSet(3));
    body.push(Instr::I32Const(BUF));
    body.push(Instr::LocalGet(3));
    body.push(Instr::Call(imports.read_action_data));
    body.push(Instr::Drop);
    body.push(Instr::LocalGet(0)); // self
    let mut off = 0u32;
    for p in params {
        match p {
            ParamType::Name | ParamType::U64 | ParamType::I64 => {
                body.push(Instr::I32Const(BUF + off as i32));
                body.push(Instr::I64Load(MemArg::default()));
                off += 8;
            }
            ParamType::U32 => {
                body.push(Instr::I32Const(BUF + off as i32));
                body.push(Instr::I32Load(MemArg::default()));
                off += 4;
            }
            ParamType::U8 => {
                body.push(Instr::I32Const(BUF + off as i32));
                body.push(Instr::I32Load8U(MemArg::default()));
                off += 1;
            }
            ParamType::F64 => {
                body.push(Instr::I32Const(BUF + off as i32));
                body.push(Instr::F64Load(MemArg::default()));
                off += 8;
            }
            ParamType::Asset => {
                // Pointer into the raw buffer (Table 2's asset layout).
                body.push(Instr::I32Const(BUF + off as i32));
                off += 16;
            }
            ParamType::String => {
                // Pointer to length ‖ content; must be the final parameter.
                body.push(Instr::I32Const(BUF + off as i32));
                off += 0; // variable length: nothing follows
            }
        }
    }
    body.push(Instr::I32Const(table_slot as i32));
    body.push(Instr::CallIndirect(type_idx));
}

/// Generate a labeled contract from a blueprint.
pub fn generate(bp: Blueprint) -> LabeledContract {
    let mut rng = StdRng::seed_from_u64(bp.seed);
    let mut b = ModuleBuilder::with_memory(1);
    let imports = declare_imports(&mut b);

    let transfer_body = build_eosponser(&bp, &imports, &mut rng);
    // The sdk_work loop needs two extra locals; only declare them when the
    // loop exists so sdk_work = 0 modules stay byte-identical to pre-knob
    // generations.
    let transfer_locals: &[wasai_wasm::types::ValType] = if bp.sdk_work > 0 {
        &[I64, I32, I32, I64]
    } else {
        &[I64, I32]
    };
    let transfer_fn = b.func(
        &[I64, I64, I64, I32, I32],
        &[],
        transfer_locals,
        transfer_body,
    );
    let reveal_body = build_reveal(&bp, &imports, &mut rng);
    let reveal_fn = b.func(&[I64, I64, I64], &[], &[I32], reveal_body);
    let setowner_body = build_setowner(&bp, &imports);
    let setowner_fn = b.func(&[I64, I64], &[], &[I32], setowner_body);

    b.table(3)
        .elem(0, vec![transfer_fn, reveal_fn, setowner_fn]);
    let t_transfer = b
        .module()
        .local_func(transfer_fn)
        .expect("defined")
        .type_idx;
    let t_reveal = b.module().local_func(reveal_fn).expect("defined").type_idx;
    let t_setowner = b
        .module()
        .local_func(setowner_fn)
        .expect("defined")
        .type_idx;

    // The dispatcher (Listing 1's structure).
    let mut body = vec![
        Instr::LocalGet(2),
        Instr::I64Const(n("transfer").as_i64()),
        Instr::I64Eq,
        Instr::If(BlockType::Empty),
    ];
    if bp.code_guard {
        // patch: assert(code == N(eosio.token), "")
        body.push(Instr::LocalGet(1));
        body.push(Instr::I64Const(n("eosio.token").as_i64()));
        body.push(Instr::I64Ne);
        body.push(Instr::If(BlockType::Empty));
        body.push(Instr::I32Const(0));
        body.push(Instr::I32Const(0));
        body.push(Instr::Call(imports.assert));
        body.push(Instr::End);
    }
    emit_dispatch(
        &mut body,
        &imports,
        &[
            ParamType::Name,
            ParamType::Name,
            ParamType::Asset,
            ParamType::String,
        ],
        0,
        t_transfer,
    );
    body.push(Instr::Else);
    // Other actions only execute when addressed directly (code == receiver).
    body.push(Instr::LocalGet(1));
    body.push(Instr::LocalGet(0));
    body.push(Instr::I64Eq);
    body.push(Instr::If(BlockType::Empty));
    body.push(Instr::LocalGet(2));
    body.push(Instr::I64Const(actions::reveal().as_i64()));
    body.push(Instr::I64Eq);
    body.push(Instr::If(BlockType::Empty));
    emit_dispatch(
        &mut body,
        &imports,
        &[ParamType::Name, ParamType::U64],
        1,
        t_reveal,
    );
    body.push(Instr::End);
    body.push(Instr::LocalGet(2));
    body.push(Instr::I64Const(actions::setowner().as_i64()));
    body.push(Instr::I64Eq);
    body.push(Instr::If(BlockType::Empty));
    emit_dispatch(&mut body, &imports, &[ParamType::Name], 2, t_setowner);
    body.push(Instr::End);
    body.push(Instr::End);
    body.push(Instr::End);
    body.push(Instr::End);
    let apply = b.func(&[I64, I64, I64], &[], &[I32], body);
    b.export_func("apply", apply);

    let module = b.build();
    debug_assert!(
        wasai_wasm::validate::validate(&module).is_ok(),
        "generated contract must validate: {:?}",
        wasai_wasm::validate::validate(&module)
    );

    let abi = Abi::new(vec![
        ActionDecl::transfer(),
        ActionDecl::new(actions::reveal(), vec![ParamType::Name, ParamType::U64]),
        ActionDecl::new(actions::setowner(), vec![ParamType::Name]),
    ]);

    LabeledContract {
        module,
        abi,
        label: bp.label(),
        meta: GenMeta {
            transfer_func: transfer_fn,
            reveal_func: reveal_fn,
            admin_func: setowner_fn,
            blueprint: bp,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasai_wasm::validate::validate;

    #[test]
    fn all_blueprint_corners_validate() {
        for code_guard in [false, true] {
            for payee_guard in [false, true] {
                for auth in [false, true] {
                    for gate in [
                        GateKind::Open,
                        GateKind::Solvable { depth: 3 },
                        GateKind::Unsatisfiable { depth: 2 },
                    ] {
                        for reward in [RewardKind::None, RewardKind::Inline, RewardKind::Deferred] {
                            let bp = Blueprint {
                                seed: 11,
                                code_guard,
                                payee_guard,
                                auth_check: auth,
                                blockinfo: reward != RewardKind::None,
                                reward,
                                gate,
                                eosponser_branches: 2,
                                sdk_work: 8,
                            };
                            let c = generate(bp);
                            validate(&c.module).unwrap_or_else(|e| {
                                panic!("blueprint {bp:?} generated invalid module: {e}")
                            });
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let bp = Blueprint {
            seed: 42,
            ..Blueprint::default()
        };
        assert_eq!(generate(bp).module, generate(bp).module);
        let other = Blueprint {
            seed: 43,
            ..Blueprint::default()
        };
        assert_ne!(generate(other).module, generate(bp).module);
    }

    #[test]
    fn instrumented_samples_still_validate() {
        let c = generate(Blueprint {
            seed: 5,
            ..Blueprint::default()
        });
        let inst = wasai_wasm::instrument::instrument(&c.module).unwrap();
        validate(&inst.module).unwrap();
    }

    #[test]
    fn binary_roundtrip_of_generated_contract() {
        let c = generate(Blueprint {
            seed: 9,
            ..Blueprint::default()
        });
        let bytes = wasai_wasm::encode::encode(&c.module);
        assert_eq!(wasai_wasm::decode::decode(&bytes).unwrap(), c.module);
    }

    #[test]
    fn meta_points_at_real_functions() {
        let c = generate(Blueprint::default());
        assert!(c.module.local_func(c.meta.transfer_func).is_some());
        assert!(c.module.local_func(c.meta.reveal_func).is_some());
        assert!(c.module.local_func(c.meta.admin_func).is_some());
        assert_eq!(c.abi.actions.len(), 3);
    }
}
