//! The complicated-verification injector of RQ3 (§4.3).
//!
//! "To generate samples with complicated verification, we inject several
//! `if` code constructs, which verify the input data with random data. If
//! the verification fails, the injected code will enforce the smart contract
//! to terminate the execution by a Wasm instruction, i.e., `unreachable`."
//!
//! The paper's own example pins the transfer quantity:
//!
//! ```wasm
//! if (i64.ne local.get 3 (i64.load)          i64.const 100000)     unreachable
//! if (i64.ne local.get 3 (i64.load offset=8) i64.const 1397703940) unreachable
//! ```
//!
//! Only solver-grade inputs pass; random fuzzing dies at the prologue —
//! which is why EOSFuzzer collapses in Table 6 while WASAI's adaptive seeds
//! walk straight through.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wasai_wasm::instr::{Instr, MemArg};
use wasai_wasm::types::BlockType;

use crate::spec::LabeledContract;

/// The exact values an injected prologue demands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerificationKey {
    /// Required `quantity.amount` (sub-units).
    pub amount: i64,
    /// Required `quantity.symbol` raw value.
    pub symbol: u64,
    /// Required first memo byte (length), if a third check was injected.
    pub memo_len: Option<u8>,
}

/// Inject a verification prologue of `checks ∈ 1..=3` conditions at the
/// eosponser entry. Returns the key that passes.
///
/// # Panics
///
/// Panics if the output fails validation.
pub fn inject_verification(
    contract: &LabeledContract,
    seed: u64,
    checks: u32,
) -> (LabeledContract, VerificationKey) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = contract.clone();
    // An exact whole-EOS amount within the harness clamp (1..1000 EOS).
    let amount = 10_000 * rng.gen_range(1..1_000i64);
    let symbol = wasai_chain::asset::eos_symbol().raw();
    let memo_len = if checks >= 3 {
        Some(rng.gen_range(1..26u8))
    } else {
        None
    };

    let mut prologue: Vec<Instr> = Vec::new();
    // if (quantity.amount != AMT) unreachable
    prologue.extend([
        Instr::LocalGet(3),
        Instr::I64Load(MemArg::default()),
        Instr::I64Const(amount),
        Instr::I64Ne,
        Instr::If(BlockType::Empty),
        Instr::Unreachable,
        Instr::End,
    ]);
    if checks >= 2 {
        // if (quantity.symbol != "4,EOS") unreachable
        prologue.extend([
            Instr::LocalGet(3),
            Instr::I64Load(MemArg::offset(8)),
            Instr::I64Const(symbol as i64),
            Instr::I64Ne,
            Instr::If(BlockType::Empty),
            Instr::Unreachable,
            Instr::End,
        ]);
    }
    if let Some(len) = memo_len {
        // if (memo.length != L) unreachable
        prologue.extend([
            Instr::LocalGet(4),
            Instr::I32Load8U(MemArg::default()),
            Instr::I32Const(len as i32),
            Instr::I32Ne,
            Instr::If(BlockType::Empty),
            Instr::Unreachable,
            Instr::End,
        ]);
    }

    let f = out
        .module
        .local_func_mut(out.meta.transfer_func)
        .expect("eosponser exists");
    f.body.splice(0..0, prologue);

    wasai_wasm::validate::validate(&out.module)
        .unwrap_or_else(|e| panic!("verification injector produced invalid module: {e}"));
    (
        out,
        VerificationKey {
            amount,
            symbol,
            memo_len,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::realistic::generate;
    use crate::spec::Blueprint;
    use wasai_chain::abi::ParamValue;
    use wasai_chain::asset::Asset;
    use wasai_chain::name::Name;
    use wasai_chain::{Chain, NativeKind};

    fn pay(module: wasai_wasm::Module, abi: wasai_chain::abi::Abi, amount: i64) -> bool {
        let mut chain = Chain::new();
        chain.deploy_native(Name::new("eosio.token"), NativeKind::Token);
        chain.create_account(Name::new("alice")).unwrap();
        chain.deploy_wasm(Name::new("victim"), module, abi).unwrap();
        chain.issue(
            Name::new("eosio.token"),
            Name::new("alice"),
            Asset::eos(100_000),
        );
        chain
            .push_action(
                Name::new("eosio.token"),
                Name::new("transfer"),
                &[Name::new("alice")],
                &[
                    ParamValue::Name(Name::new("alice")),
                    ParamValue::Name(Name::new("victim")),
                    ParamValue::Asset(Asset::new(amount, wasai_chain::asset::eos_symbol())),
                    ParamValue::String(String::new()),
                ],
            )
            .is_ok()
    }

    #[test]
    fn only_the_exact_key_passes() {
        let c = generate(Blueprint {
            seed: 300,
            ..Blueprint::default()
        });
        let (v, key) = inject_verification(&c, 301, 2);
        assert!(
            pay(v.module.clone(), v.abi.clone(), key.amount),
            "exact amount passes"
        );
        assert!(
            !pay(v.module.clone(), v.abi.clone(), key.amount + 1),
            "off-by-one traps"
        );
        assert!(!pay(v.module, v.abi, 10_000), "a random-ish amount traps");
    }

    #[test]
    fn uninjected_contract_accepts_anything_positive() {
        let c = generate(Blueprint {
            seed: 302,
            ..Blueprint::default()
        });
        assert!(pay(c.module.clone(), c.abi.clone(), 12_345));
        assert!(pay(c.module, c.abi, 10_000));
    }

    #[test]
    fn three_checks_include_memo_length() {
        let c = generate(Blueprint {
            seed: 303,
            ..Blueprint::default()
        });
        let (v, key) = inject_verification(&c, 304, 3);
        assert!(key.memo_len.is_some());
        // Even the exact amount now fails with an empty memo.
        assert!(!pay(v.module, v.abi, key.amount));
    }

    #[test]
    fn labels_are_preserved() {
        let c = generate(Blueprint {
            seed: 305,
            code_guard: false,
            ..Blueprint::default()
        });
        let (v, _) = inject_verification(&c, 306, 2);
        assert_eq!(c.label, v.label);
    }
}
