#![warn(missing_docs)]

//! # wasai-corpus — the benchmark factory (§4.2–4.4)
//!
//! Generates the labeled corpora every experiment runs on: realistic
//! EOSIO-shaped contracts with ground-truth vulnerability labels
//! ([`realistic`]), LAVA-style bytecode-level vulnerability injection
//! ([`inject`]), the code obfuscator of RQ3 ([`mod@obfuscate`]), the
//! complicated-verification injector ([`verification`]) and the wild-corpus
//! mix of RQ4 ([`wild`]).

pub mod benchmark;
pub mod cw;
pub mod inject;
pub mod obfuscate;
pub mod realistic;
pub mod spec;
pub mod verification;
pub mod wild;

pub use benchmark::{table4_benchmark, table5_benchmark, table6_benchmark, BenchmarkSample};
pub use cw::{
    cw_corpus, generate_cw, label_sidecar, parse_label_sidecar, CwBlueprint, LabeledCwContract,
};
pub use inject::make_vulnerable;
pub use obfuscate::obfuscate;
pub use realistic::generate;
pub use spec::{Blueprint, GateKind, GenMeta, LabeledContract, RewardKind};
pub use verification::{inject_verification, VerificationKey};
pub use wild::{wild_corpus, Lifecycle, WildContract, WildRates};
