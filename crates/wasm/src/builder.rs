//! Programmatic construction of Wasm modules.
//!
//! [`ModuleBuilder`] is the workhorse behind `wasai-corpus`: the benchmark
//! factory assembles EOSIO-shaped contracts (dispatcher, deserializer, action
//! functions) directly as instruction sequences, then encodes them to real
//! bytecode.

use crate::instr::Instr;
use crate::module::{Data, Elem, Export, ExportDesc, Function, Global, Import, ImportDesc, Module};
use crate::types::{FuncType, GlobalType, Limits, ValType};

/// Incrementally builds a [`Module`].
///
/// Function index space rule: all imported functions must be declared before
/// the first local function so that indices handed out by
/// [`ModuleBuilder::import_func`] and [`ModuleBuilder::func`] remain stable.
///
/// # Examples
///
/// ```
/// use wasai_wasm::builder::ModuleBuilder;
/// use wasai_wasm::instr::Instr;
/// use wasai_wasm::types::ValType;
///
/// let mut b = ModuleBuilder::new();
/// let f = b.func(&[ValType::I32], &[ValType::I32], &[], vec![
///     Instr::LocalGet(0),
///     Instr::I32Const(1),
///     Instr::I32Add,
///     Instr::End,
/// ]);
/// b.export_func("inc", f);
/// let module = b.build();
/// assert_eq!(module.exported_func("inc"), Some(f));
/// ```
#[derive(Debug, Default)]
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Start an empty module.
    pub fn new() -> Self {
        ModuleBuilder {
            module: Module::new(),
        }
    }

    /// Start a module with one linear memory of `pages` 64 KiB pages,
    /// exported as `"memory"` (the EOSIO contract convention).
    pub fn with_memory(pages: u32) -> Self {
        let mut b = ModuleBuilder::new();
        b.module.memories.push(Limits::at_least(pages));
        b.module.exports.push(Export {
            name: "memory".into(),
            desc: ExportDesc::Memory(0),
        });
        b
    }

    /// Declare an imported function and return its index.
    ///
    /// # Panics
    ///
    /// Panics if a local function has already been defined (imports must come
    /// first to keep the index space stable).
    pub fn import_func(
        &mut self,
        module: &str,
        name: &str,
        params: &[ValType],
        results: &[ValType],
    ) -> u32 {
        assert!(
            self.module.funcs.is_empty(),
            "imports must be declared before local functions"
        );
        let ty = self
            .module
            .intern_type(FuncType::new(params.to_vec(), results.to_vec()));
        self.module.imports.push(Import {
            module: module.to_string(),
            name: name.to_string(),
            desc: ImportDesc::Func(ty),
        });
        self.module.num_imported_funcs() - 1
    }

    /// Define a local function and return its index in the function space.
    pub fn func(
        &mut self,
        params: &[ValType],
        results: &[ValType],
        locals: &[ValType],
        body: Vec<Instr>,
    ) -> u32 {
        let type_idx = self
            .module
            .intern_type(FuncType::new(params.to_vec(), results.to_vec()));
        self.module.funcs.push(Function {
            type_idx,
            locals: locals.to_vec(),
            body,
        });
        self.module.num_funcs() - 1
    }

    /// Export a function under `name`.
    pub fn export_func(&mut self, name: &str, func_idx: u32) -> &mut Self {
        self.module.exports.push(Export {
            name: name.into(),
            desc: ExportDesc::Func(func_idx),
        });
        self
    }

    /// Define a global and return its index.
    pub fn global(&mut self, ty: GlobalType, init: Instr) -> u32 {
        self.module.globals.push(Global { ty, init });
        (self.module.globals.len() - 1) as u32
    }

    /// Define the function table with the given minimum size.
    pub fn table(&mut self, min: u32) -> &mut Self {
        self.module.tables.push(Limits::at_least(min));
        self
    }

    /// Add an element segment placing `funcs` at `offset` in table 0.
    pub fn elem(&mut self, offset: u32, funcs: Vec<u32>) -> &mut Self {
        self.module.elems.push(Elem {
            table: 0,
            offset,
            funcs,
        });
        self
    }

    /// Add a data segment initializing memory 0 at `offset`.
    pub fn data(&mut self, offset: u32, bytes: Vec<u8>) -> &mut Self {
        self.module.data.push(Data {
            memory: 0,
            offset,
            bytes,
        });
        self
    }

    /// The number of functions declared so far (imports + locals).
    pub fn num_funcs(&self) -> u32 {
        self.module.num_funcs()
    }

    /// Read-only access to the module under construction.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Finish and return the module.
    pub fn build(self) -> Module {
        self.module
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ValType::*;

    #[test]
    fn builds_indices_in_order() {
        let mut b = ModuleBuilder::with_memory(1);
        let imp0 = b.import_func("env", "eosio_assert", &[I32, I32], &[]);
        let imp1 = b.import_func("env", "require_auth", &[I64], &[]);
        let f = b.func(&[I64, I64, I64], &[], &[], vec![Instr::End]);
        assert_eq!(imp0, 0);
        assert_eq!(imp1, 1);
        assert_eq!(f, 2);
        b.export_func("apply", f);
        let m = b.build();
        assert_eq!(m.exported_func("apply"), Some(2));
        assert_eq!(m.memories.len(), 1);
    }

    #[test]
    #[should_panic(expected = "imports must be declared before local functions")]
    fn import_after_func_panics() {
        let mut b = ModuleBuilder::new();
        b.func(&[], &[], &[], vec![Instr::End]);
        b.import_func("env", "late", &[], &[]);
    }

    #[test]
    fn elem_and_data_segments() {
        let mut b = ModuleBuilder::new();
        let f = b.func(&[], &[], &[], vec![Instr::End]);
        b.table(4).elem(1, vec![f]).data(16, vec![0xaa, 0xbb]);
        let m = b.build();
        assert_eq!(m.elems[0].funcs, vec![f]);
        assert_eq!(m.data[0].offset, 16);
    }
}
