//! Core WebAssembly type definitions shared across the workspace.

use std::fmt;

/// A WebAssembly value type.
///
/// EOSVM components (stack, Local section, Global section) hold values of
/// exactly these four types (§2.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ValType {
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// 32-bit IEEE-754 float.
    F32,
    /// 64-bit IEEE-754 float.
    F64,
}

impl ValType {
    /// Byte used for this type in the binary format.
    pub fn binary_code(self) -> u8 {
        match self {
            ValType::I32 => 0x7f,
            ValType::I64 => 0x7e,
            ValType::F32 => 0x7d,
            ValType::F64 => 0x7c,
        }
    }

    /// Parse a binary type code.
    pub fn from_binary(code: u8) -> Option<ValType> {
        match code {
            0x7f => Some(ValType::I32),
            0x7e => Some(ValType::I64),
            0x7d => Some(ValType::F32),
            0x7c => Some(ValType::F64),
            _ => None,
        }
    }

    /// Width of the type in bits (32 or 64).
    pub fn bit_width(self) -> u32 {
        match self {
            ValType::I32 | ValType::F32 => 32,
            ValType::I64 | ValType::F64 => 64,
        }
    }

    /// True for `i32`/`i64`.
    pub fn is_int(self) -> bool {
        matches!(self, ValType::I32 | ValType::I64)
    }
}

impl fmt::Display for ValType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValType::I32 => "i32",
            ValType::I64 => "i64",
            ValType::F32 => "f32",
            ValType::F64 => "f64",
        };
        f.write_str(s)
    }
}

/// A function signature: parameter types and result types.
///
/// The Wasm MVP (which EOSIO targets) allows at most one result.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FuncType {
    /// Parameter value types, in declaration order.
    pub params: Vec<ValType>,
    /// Result value types (zero or one in the MVP).
    pub results: Vec<ValType>,
}

impl FuncType {
    /// Create a new signature.
    pub fn new(params: Vec<ValType>, results: Vec<ValType>) -> Self {
        FuncType { params, results }
    }
}

impl fmt::Display for FuncType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ") -> (")?;
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, ")")
    }
}

/// Size limits for tables and memories, counted in elements / 64 KiB pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Limits {
    /// Initial size.
    pub min: u32,
    /// Optional maximum size.
    pub max: Option<u32>,
}

impl Limits {
    /// Limits with only a minimum.
    pub fn at_least(min: u32) -> Self {
        Limits { min, max: None }
    }

    /// Limits with both bounds.
    pub fn bounded(min: u32, max: u32) -> Self {
        Limits {
            min,
            max: Some(max),
        }
    }
}

/// Mutability of a global.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mutability {
    /// Immutable (`const`).
    Const,
    /// Mutable (`var`).
    Var,
}

/// The type of a global variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalType {
    /// Value type stored in the global.
    pub val_type: ValType,
    /// Whether the global may be mutated.
    pub mutability: Mutability,
}

impl GlobalType {
    /// An immutable global of the given type.
    pub fn immutable(val_type: ValType) -> Self {
        GlobalType {
            val_type,
            mutability: Mutability::Const,
        }
    }

    /// A mutable global of the given type.
    pub fn mutable(val_type: ValType) -> Self {
        GlobalType {
            val_type,
            mutability: Mutability::Var,
        }
    }
}

/// The type annotation of a structured control instruction (block/loop/if).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BlockType {
    /// The block produces no values.
    #[default]
    Empty,
    /// The block produces a single value of the given type.
    Value(ValType),
}

impl BlockType {
    /// Number of result values the block produces.
    pub fn arity(self) -> usize {
        match self {
            BlockType::Empty => 0,
            BlockType::Value(_) => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valtype_binary_roundtrip() {
        for t in [ValType::I32, ValType::I64, ValType::F32, ValType::F64] {
            assert_eq!(ValType::from_binary(t.binary_code()), Some(t));
        }
        assert_eq!(ValType::from_binary(0x00), None);
    }

    #[test]
    fn valtype_widths() {
        assert_eq!(ValType::I32.bit_width(), 32);
        assert_eq!(ValType::I64.bit_width(), 64);
        assert_eq!(ValType::F32.bit_width(), 32);
        assert_eq!(ValType::F64.bit_width(), 64);
        assert!(ValType::I32.is_int());
        assert!(!ValType::F64.is_int());
    }

    #[test]
    fn functype_display() {
        let ft = FuncType::new(vec![ValType::I64, ValType::I32], vec![ValType::I32]);
        assert_eq!(ft.to_string(), "(i64 i32) -> (i32)");
    }

    #[test]
    fn blocktype_arity() {
        assert_eq!(BlockType::Empty.arity(), 0);
        assert_eq!(BlockType::Value(ValType::I64).arity(), 1);
    }

    #[test]
    fn limits_constructors() {
        assert_eq!(Limits::at_least(1), Limits { min: 1, max: None });
        assert_eq!(
            Limits::bounded(1, 4),
            Limits {
                min: 1,
                max: Some(4)
            }
        );
    }
}
