//! Decoding of WebAssembly binary bytes into a [`Module`].
//!
//! The decoder accepts exactly the MVP feature set produced by
//! [`crate::encode`] and by the EOSIO C++ SDK toolchain shape this workspace
//! models. Unknown or custom sections are skipped.

use std::fmt;

use crate::instr::{Instr, MemArg};
use crate::module::{Data, Elem, Export, ExportDesc, Function, Global, Import, ImportDesc, Module};
use crate::types::{BlockType, FuncType, GlobalType, Limits, Mutability, ValType};

/// An error produced while decoding a Wasm binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset at which decoding failed.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for DecodeError {}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, DecodeError> {
        Err(DecodeError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn byte(&mut self) -> Result<u8, DecodeError> {
        let b = *self.bytes.get(self.pos).ok_or(DecodeError {
            offset: self.pos,
            message: "unexpected end of input".into(),
        })?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.bytes.len() {
            return self.err("unexpected end of input");
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let mut result: u32 = 0;
        let mut shift = 0;
        loop {
            let b = self.byte()?;
            if shift >= 32 {
                // Continuation bytes past the 32-bit value space must be
                // zero padding; shifting by >= 32 would also panic in debug.
                if b & 0x7f != 0 {
                    return self.err("u32 LEB128 overflow");
                }
            } else {
                result |= ((b & 0x7f) as u32) << shift;
            }
            if b & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
            if shift > 35 {
                return self.err("u32 LEB128 too long");
            }
        }
    }

    fn i64(&mut self) -> Result<i64, DecodeError> {
        let mut result: i64 = 0;
        let mut shift = 0;
        loop {
            let b = self.byte()?;
            if shift < 64 {
                result |= ((b & 0x7f) as i64) << shift;
            }
            shift += 7;
            if b & 0x80 == 0 {
                if shift < 64 && b & 0x40 != 0 {
                    result |= -1i64 << shift;
                }
                return Ok(result);
            }
            if shift > 70 {
                return self.err("i64 LEB128 too long");
            }
        }
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        Ok(self.i64()? as i32)
    }

    fn name(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).or_else(|_| self.err("invalid UTF-8 in name"))
    }

    fn valtype(&mut self) -> Result<ValType, DecodeError> {
        let b = self.byte()?;
        ValType::from_binary(b).ok_or(DecodeError {
            offset: self.pos - 1,
            message: format!("invalid value type 0x{b:02x}"),
        })
    }

    fn blocktype(&mut self) -> Result<BlockType, DecodeError> {
        let b = self.byte()?;
        if b == 0x40 {
            Ok(BlockType::Empty)
        } else {
            ValType::from_binary(b)
                .map(BlockType::Value)
                .ok_or(DecodeError {
                    offset: self.pos - 1,
                    message: format!("invalid block type 0x{b:02x}"),
                })
        }
    }

    fn limits(&mut self) -> Result<Limits, DecodeError> {
        match self.byte()? {
            0x00 => Ok(Limits {
                min: self.u32()?,
                max: None,
            }),
            0x01 => Ok(Limits {
                min: self.u32()?,
                max: Some(self.u32()?),
            }),
            other => self.err(format!("invalid limits flag 0x{other:02x}")),
        }
    }

    fn globaltype(&mut self) -> Result<GlobalType, DecodeError> {
        let val_type = self.valtype()?;
        let mutability = match self.byte()? {
            0x00 => Mutability::Const,
            0x01 => Mutability::Var,
            other => return self.err(format!("invalid mutability 0x{other:02x}")),
        };
        Ok(GlobalType {
            val_type,
            mutability,
        })
    }

    fn memarg(&mut self) -> Result<MemArg, DecodeError> {
        Ok(MemArg {
            align: self.u32()?,
            offset: self.u32()?,
        })
    }

    fn const_offset(&mut self) -> Result<u32, DecodeError> {
        // Constant expression: `i32.const N end`.
        let offset = match self.instr()? {
            Instr::I32Const(v) => v as u32,
            other => return self.err(format!("expected i32.const in offset expr, got {other:?}")),
        };
        match self.instr()? {
            Instr::End => Ok(offset),
            other => self.err(format!("expected end in offset expr, got {other:?}")),
        }
    }

    fn instr(&mut self) -> Result<Instr, DecodeError> {
        use Instr::*;
        let op = self.byte()?;
        Ok(match op {
            0x00 => Unreachable,
            0x01 => Nop,
            0x02 => Block(self.blocktype()?),
            0x03 => Loop(self.blocktype()?),
            0x04 => If(self.blocktype()?),
            0x05 => Else,
            0x0b => End,
            0x0c => Br(self.u32()?),
            0x0d => BrIf(self.u32()?),
            0x0e => {
                let n = self.u32()? as usize;
                let mut labels = Vec::with_capacity(n);
                for _ in 0..n {
                    labels.push(self.u32()?);
                }
                BrTable(labels, self.u32()?)
            }
            0x0f => Return,
            0x10 => Call(self.u32()?),
            0x11 => {
                let t = self.u32()?;
                let table = self.byte()?;
                if table != 0 {
                    return self.err("call_indirect table index must be 0");
                }
                CallIndirect(t)
            }
            0x1a => Drop,
            0x1b => Select,
            0x20 => LocalGet(self.u32()?),
            0x21 => LocalSet(self.u32()?),
            0x22 => LocalTee(self.u32()?),
            0x23 => GlobalGet(self.u32()?),
            0x24 => GlobalSet(self.u32()?),
            0x28 => I32Load(self.memarg()?),
            0x29 => I64Load(self.memarg()?),
            0x2a => F32Load(self.memarg()?),
            0x2b => F64Load(self.memarg()?),
            0x2c => I32Load8S(self.memarg()?),
            0x2d => I32Load8U(self.memarg()?),
            0x2e => I32Load16S(self.memarg()?),
            0x2f => I32Load16U(self.memarg()?),
            0x30 => I64Load8S(self.memarg()?),
            0x31 => I64Load8U(self.memarg()?),
            0x32 => I64Load16S(self.memarg()?),
            0x33 => I64Load16U(self.memarg()?),
            0x34 => I64Load32S(self.memarg()?),
            0x35 => I64Load32U(self.memarg()?),
            0x36 => I32Store(self.memarg()?),
            0x37 => I64Store(self.memarg()?),
            0x38 => F32Store(self.memarg()?),
            0x39 => F64Store(self.memarg()?),
            0x3a => I32Store8(self.memarg()?),
            0x3b => I32Store16(self.memarg()?),
            0x3c => I64Store8(self.memarg()?),
            0x3d => I64Store16(self.memarg()?),
            0x3e => I64Store32(self.memarg()?),
            0x3f => {
                self.byte()?;
                MemorySize
            }
            0x40 => {
                self.byte()?;
                MemoryGrow
            }
            0x41 => I32Const(self.i32()?),
            0x42 => I64Const(self.i64()?),
            0x43 => {
                let b = self.take(4)?;
                F32Const(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            }
            0x44 => {
                let b = self.take(8)?;
                F64Const(f64::from_le_bytes([
                    b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
                ]))
            }
            0x45..=0xbf => numeric_from_opcode(op).ok_or(DecodeError {
                offset: self.pos - 1,
                message: format!("unknown numeric opcode 0x{op:02x}"),
            })?,
            other => return self.err(format!("unknown opcode 0x{other:02x}")),
        })
    }
}

fn numeric_from_opcode(op: u8) -> Option<Instr> {
    use Instr::*;
    Some(match op {
        0x45 => I32Eqz,
        0x46 => I32Eq,
        0x47 => I32Ne,
        0x48 => I32LtS,
        0x49 => I32LtU,
        0x4a => I32GtS,
        0x4b => I32GtU,
        0x4c => I32LeS,
        0x4d => I32LeU,
        0x4e => I32GeS,
        0x4f => I32GeU,
        0x50 => I64Eqz,
        0x51 => I64Eq,
        0x52 => I64Ne,
        0x53 => I64LtS,
        0x54 => I64LtU,
        0x55 => I64GtS,
        0x56 => I64GtU,
        0x57 => I64LeS,
        0x58 => I64LeU,
        0x59 => I64GeS,
        0x5a => I64GeU,
        0x5b => F32Eq,
        0x5c => F32Ne,
        0x5d => F32Lt,
        0x5e => F32Gt,
        0x5f => F32Le,
        0x60 => F32Ge,
        0x61 => F64Eq,
        0x62 => F64Ne,
        0x63 => F64Lt,
        0x64 => F64Gt,
        0x65 => F64Le,
        0x66 => F64Ge,
        0x67 => I32Clz,
        0x68 => I32Ctz,
        0x69 => I32Popcnt,
        0x6a => I32Add,
        0x6b => I32Sub,
        0x6c => I32Mul,
        0x6d => I32DivS,
        0x6e => I32DivU,
        0x6f => I32RemS,
        0x70 => I32RemU,
        0x71 => I32And,
        0x72 => I32Or,
        0x73 => I32Xor,
        0x74 => I32Shl,
        0x75 => I32ShrS,
        0x76 => I32ShrU,
        0x77 => I32Rotl,
        0x78 => I32Rotr,
        0x79 => I64Clz,
        0x7a => I64Ctz,
        0x7b => I64Popcnt,
        0x7c => I64Add,
        0x7d => I64Sub,
        0x7e => I64Mul,
        0x7f => I64DivS,
        0x80 => I64DivU,
        0x81 => I64RemS,
        0x82 => I64RemU,
        0x83 => I64And,
        0x84 => I64Or,
        0x85 => I64Xor,
        0x86 => I64Shl,
        0x87 => I64ShrS,
        0x88 => I64ShrU,
        0x89 => I64Rotl,
        0x8a => I64Rotr,
        0x8b => F32Abs,
        0x8c => F32Neg,
        0x8d => F32Ceil,
        0x8e => F32Floor,
        0x8f => F32Trunc,
        0x90 => F32Nearest,
        0x91 => F32Sqrt,
        0x92 => F32Add,
        0x93 => F32Sub,
        0x94 => F32Mul,
        0x95 => F32Div,
        0x96 => F32Min,
        0x97 => F32Max,
        0x98 => F32Copysign,
        0x99 => F64Abs,
        0x9a => F64Neg,
        0x9b => F64Ceil,
        0x9c => F64Floor,
        0x9d => F64Trunc,
        0x9e => F64Nearest,
        0x9f => F64Sqrt,
        0xa0 => F64Add,
        0xa1 => F64Sub,
        0xa2 => F64Mul,
        0xa3 => F64Div,
        0xa4 => F64Min,
        0xa5 => F64Max,
        0xa6 => F64Copysign,
        0xa7 => I32WrapI64,
        0xa8 => I32TruncF32S,
        0xa9 => I32TruncF32U,
        0xaa => I32TruncF64S,
        0xab => I32TruncF64U,
        0xac => I64ExtendI32S,
        0xad => I64ExtendI32U,
        0xae => I64TruncF32S,
        0xaf => I64TruncF32U,
        0xb0 => I64TruncF64S,
        0xb1 => I64TruncF64U,
        0xb2 => F32ConvertI32S,
        0xb3 => F32ConvertI32U,
        0xb4 => F32ConvertI64S,
        0xb5 => F32ConvertI64U,
        0xb6 => F32DemoteF64,
        0xb7 => F64ConvertI32S,
        0xb8 => F64ConvertI32U,
        0xb9 => F64ConvertI64S,
        0xba => F64ConvertI64U,
        0xbb => F64PromoteF32,
        0xbc => I32ReinterpretF32,
        0xbd => I64ReinterpretF64,
        0xbe => F32ReinterpretI32,
        0xbf => F64ReinterpretI64,
        _ => return None,
    })
}

/// Decode a Wasm binary into a [`Module`].
///
/// # Errors
///
/// Returns a [`DecodeError`] if the input is not a well-formed MVP binary.
pub fn decode(bytes: &[u8]) -> Result<Module, DecodeError> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != crate::encode::MAGIC {
        return r.err("bad magic number");
    }
    if r.take(4)? != crate::encode::VERSION {
        return r.err("unsupported version");
    }

    let mut m = Module::new();
    let mut func_type_indices: Vec<u32> = Vec::new();

    while r.pos < r.bytes.len() {
        let id = r.byte()?;
        let size = r.u32()? as usize;
        let section_end = r.pos + size;
        if section_end > r.bytes.len() {
            return r.err("section extends past end of input");
        }
        match id {
            0 => {
                // Custom section: skip.
                r.pos = section_end;
            }
            1 => {
                let n = r.u32()?;
                for _ in 0..n {
                    if r.byte()? != 0x60 {
                        return r.err("expected functype tag 0x60");
                    }
                    let np = r.u32()? as usize;
                    let mut params = Vec::with_capacity(np);
                    for _ in 0..np {
                        params.push(r.valtype()?);
                    }
                    let nr = r.u32()? as usize;
                    let mut results = Vec::with_capacity(nr);
                    for _ in 0..nr {
                        results.push(r.valtype()?);
                    }
                    m.types.push(FuncType { params, results });
                }
            }
            2 => {
                let n = r.u32()?;
                for _ in 0..n {
                    let module = r.name()?;
                    let name = r.name()?;
                    let desc = match r.byte()? {
                        0x00 => ImportDesc::Func(r.u32()?),
                        0x01 => {
                            if r.byte()? != 0x70 {
                                return r.err("expected funcref table element type");
                            }
                            ImportDesc::Table(r.limits()?)
                        }
                        0x02 => ImportDesc::Memory(r.limits()?),
                        0x03 => ImportDesc::Global(r.globaltype()?),
                        other => return r.err(format!("invalid import kind 0x{other:02x}")),
                    };
                    m.imports.push(Import { module, name, desc });
                }
            }
            3 => {
                let n = r.u32()?;
                for _ in 0..n {
                    func_type_indices.push(r.u32()?);
                }
            }
            4 => {
                let n = r.u32()?;
                for _ in 0..n {
                    if r.byte()? != 0x70 {
                        return r.err("expected funcref table element type");
                    }
                    m.tables.push(r.limits()?);
                }
            }
            5 => {
                let n = r.u32()?;
                for _ in 0..n {
                    m.memories.push(r.limits()?);
                }
            }
            6 => {
                let n = r.u32()?;
                for _ in 0..n {
                    let ty = r.globaltype()?;
                    let init = r.instr()?;
                    match r.instr()? {
                        Instr::End => {}
                        other => return r.err(format!("expected end after init, got {other:?}")),
                    }
                    m.globals.push(Global { ty, init });
                }
            }
            7 => {
                let n = r.u32()?;
                for _ in 0..n {
                    let name = r.name()?;
                    let tag = r.byte()?;
                    let idx = r.u32()?;
                    let desc = match tag {
                        0x00 => ExportDesc::Func(idx),
                        0x01 => ExportDesc::Table(idx),
                        0x02 => ExportDesc::Memory(idx),
                        0x03 => ExportDesc::Global(idx),
                        other => return r.err(format!("invalid export kind 0x{other:02x}")),
                    };
                    m.exports.push(Export { name, desc });
                }
            }
            8 => {
                m.start = Some(r.u32()?);
            }
            9 => {
                let n = r.u32()?;
                for _ in 0..n {
                    let table = r.u32()?;
                    let offset = r.const_offset()?;
                    let cnt = r.u32()? as usize;
                    let mut funcs = Vec::with_capacity(cnt);
                    for _ in 0..cnt {
                        funcs.push(r.u32()?);
                    }
                    m.elems.push(Elem {
                        table,
                        offset,
                        funcs,
                    });
                }
            }
            10 => {
                let n = r.u32()? as usize;
                if n != func_type_indices.len() {
                    return r.err("code section count mismatch with function section");
                }
                for type_idx in func_type_indices.iter().copied() {
                    let body_size = r.u32()? as usize;
                    let body_end = r.pos + body_size;
                    let mut locals = Vec::new();
                    let runs = r.u32()?;
                    for _ in 0..runs {
                        let count = r.u32()?;
                        let ty = r.valtype()?;
                        for _ in 0..count {
                            locals.push(ty);
                        }
                    }
                    let mut body = Vec::new();
                    while r.pos < body_end {
                        body.push(r.instr()?);
                    }
                    if body.last() != Some(&Instr::End) {
                        return r.err("function body must end with `end`");
                    }
                    m.funcs.push(Function {
                        type_idx,
                        locals,
                        body,
                    });
                }
            }
            11 => {
                let n = r.u32()?;
                for _ in 0..n {
                    let memory = r.u32()?;
                    let offset = r.const_offset()?;
                    let len = r.u32()? as usize;
                    let bytes = r.take(len)?.to_vec();
                    m.data.push(Data {
                        memory,
                        offset,
                        bytes,
                    });
                }
            }
            other => return r.err(format!("unknown section id {other}")),
        }
        if r.pos != section_end && id != 0 {
            return r.err(format!("section {id} size mismatch"));
        }
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    #[test]
    fn rejects_bad_magic() {
        let err = decode(&[0, 0, 0, 0, 1, 0, 0, 0]).unwrap_err();
        assert!(err.message.contains("magic"));
    }

    #[test]
    fn rejects_truncated_input() {
        assert!(decode(&[0x00, 0x61, 0x73]).is_err());
    }

    #[test]
    fn empty_roundtrip() {
        let m = Module::new();
        assert_eq!(decode(&encode(&m)).unwrap(), m);
    }

    #[test]
    fn skips_custom_sections() {
        let mut bytes = encode(&Module::new());
        // custom section: id 0, size 5, name "ab", payload [1,2]
        bytes.extend_from_slice(&[0x00, 0x05, 0x02, b'a', b'b', 1, 2]);
        assert_eq!(decode(&bytes).unwrap(), Module::new());
    }
}
