#![warn(missing_docs)]

//! # wasai-wasm — the WebAssembly substrate of the WASAI reproduction
//!
//! Everything WASAI needs to manipulate EOSIO contract bytecode, built from
//! scratch:
//!
//! - [`types`] / [`instr`] / [`module`]: the Wasm MVP type system, the full
//!   instruction set (including all 23 memory instructions the paper's memory
//!   model handles, §3.4.1), and the module representation;
//! - [`encode`] / [`decode`]: a lossless binary-format round trip;
//! - [`builder`]: programmatic module construction (used by the benchmark
//!   factory in `wasai-corpus`);
//! - [`validate`]: the spec-appendix type-checking algorithm, plus the
//!   operand-type analysis the instrumenter needs;
//! - [`instrument`]: the contract-level trace instrumentation pass (C1,
//!   §3.3.1) — Wasabi-style low-level hooks that make the contract report
//!   every executed instruction and its operands through imported log APIs;
//! - [`display`]: WAT-flavoured dumps for debugging.
//!
//! # Examples
//!
//! Build, validate, encode and decode a module:
//!
//! ```
//! use wasai_wasm::builder::ModuleBuilder;
//! use wasai_wasm::instr::Instr;
//! use wasai_wasm::types::ValType;
//!
//! let mut b = ModuleBuilder::with_memory(1);
//! let f = b.func(&[ValType::I64], &[ValType::I64], &[], vec![
//!     Instr::LocalGet(0),
//!     Instr::I64Const(1),
//!     Instr::I64Add,
//!     Instr::End,
//! ]);
//! b.export_func("inc", f);
//! let module = b.build();
//! wasai_wasm::validate::validate(&module)?;
//! let bytes = wasai_wasm::encode::encode(&module);
//! assert_eq!(wasai_wasm::decode::decode(&bytes)?, module);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod builder;
pub mod decode;
pub mod display;
pub mod encode;
pub mod error;
pub mod instr;
pub mod instrument;
pub mod module;
pub mod types;
pub mod validate;

pub use builder::ModuleBuilder;
pub use error::WasmError;
pub use instr::{Instr, InstrClass, MemArg};
pub use module::Module;
pub use types::{BlockType, FuncType, GlobalType, Limits, Mutability, ValType};
