//! Human-readable (WAT-flavoured) dumps of modules, used in examples,
//! debugging output and `Debug` reports throughout the workspace.

use std::fmt::Write as _;

use crate::instr::Instr;
use crate::module::{ImportDesc, Module};

/// Render one instruction in a WAT-like notation.
pub fn instr_to_string(i: &Instr) -> String {
    use Instr::*;
    match i {
        I32Const(v) => format!("i32.const {v}"),
        I64Const(v) => format!("i64.const {v}"),
        F32Const(v) => format!("f32.const {v}"),
        F64Const(v) => format!("f64.const {v}"),
        LocalGet(x) => format!("local.get {x}"),
        LocalSet(x) => format!("local.set {x}"),
        LocalTee(x) => format!("local.tee {x}"),
        GlobalGet(x) => format!("global.get {x}"),
        GlobalSet(x) => format!("global.set {x}"),
        Br(l) => format!("br {l}"),
        BrIf(l) => format!("br_if {l}"),
        BrTable(ls, d) => format!("br_table {ls:?} {d}"),
        Call(f) => format!("call {f}"),
        CallIndirect(t) => format!("call_indirect (type {t})"),
        other => match other.mem_arg() {
            Some(m) if m.offset != 0 => format!("{} offset={}", other.mnemonic(), m.offset),
            _ => other.mnemonic().to_string(),
        },
    }
}

/// Render a whole module as an indented WAT-like listing.
pub fn module_to_string(m: &Module) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "(module");
    for (i, t) in m.types.iter().enumerate() {
        let _ = writeln!(s, "  (type {i} {t})");
    }
    for imp in &m.imports {
        let kind = match &imp.desc {
            ImportDesc::Func(t) => format!("func (type {t})"),
            ImportDesc::Table(_) => "table".into(),
            ImportDesc::Memory(_) => "memory".into(),
            ImportDesc::Global(_) => "global".into(),
        };
        let _ = writeln!(s, "  (import \"{}\" \"{}\" ({kind}))", imp.module, imp.name);
    }
    for (idx, f) in m.iter_local_funcs() {
        let ty = &m.types[f.type_idx as usize];
        let _ = writeln!(s, "  (func {idx} {ty} (locals {:?})", f.locals);
        let mut indent = 2usize;
        for ins in &f.body {
            if matches!(ins, Instr::End | Instr::Else) {
                indent = indent.saturating_sub(1);
            }
            let _ = writeln!(s, "  {}{}", "  ".repeat(indent), instr_to_string(ins));
            if matches!(
                ins,
                Instr::Block(_) | Instr::Loop(_) | Instr::If(_) | Instr::Else
            ) {
                indent += 1;
            }
        }
        let _ = writeln!(s, "  )");
    }
    for e in &m.exports {
        let _ = writeln!(s, "  (export \"{}\" {:?})", e.name, e.desc);
    }
    s.push(')');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::instr::MemArg;
    use crate::types::ValType::*;

    #[test]
    fn instruction_rendering() {
        assert_eq!(instr_to_string(&Instr::I64Const(-5)), "i64.const -5");
        assert_eq!(instr_to_string(&Instr::I64Ne), "i64.ne");
        assert_eq!(
            instr_to_string(&Instr::I64Load(MemArg::offset(8))),
            "i64.load offset=8"
        );
    }

    #[test]
    fn module_rendering_mentions_exports() {
        let mut b = ModuleBuilder::new();
        let f = b.func(&[I64], &[], &[], vec![Instr::End]);
        b.export_func("apply", f);
        let text = module_to_string(b.module());
        assert!(text.contains("(module"));
        assert!(text.contains("\"apply\""));
    }
}
