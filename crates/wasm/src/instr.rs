//! The WebAssembly instruction set used by EOSIO contracts (Wasm MVP).
//!
//! The enum covers the full MVP opcode space: control flow, parametric,
//! variable, all 23 memory instructions (§2.2 / C2 of the paper), and the
//! numeric operations. Classification helpers ([`Instr::class`],
//! [`Instr::memory_access`]) drive the interpreter, the instrumentation pass
//! and the Symback trace replayer from a single source of truth.

use crate::types::{BlockType, ValType};

/// Static description of a memory access: how many bytes it touches and the
/// value type it produces/consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Number of bytes read or written (`size` in the paper's △.load/△.store).
    pub bytes: u32,
    /// The stack value type involved.
    pub val_type: ValType,
    /// For narrow loads: whether to sign-extend.
    pub signed: bool,
    /// True for stores, false for loads.
    pub is_store: bool,
}

/// Alignment/offset immediate carried by every memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MemArg {
    /// Expected alignment exponent (ignored semantically).
    pub align: u32,
    /// Constant byte offset added to the dynamic address.
    pub offset: u32,
}

impl MemArg {
    /// A memarg with the given static offset and natural alignment 0.
    pub fn offset(offset: u32) -> Self {
        MemArg { align: 0, offset }
    }
}

/// Coarse classification of an instruction, mirroring the operational
/// semantics table of the paper (Table 3) and the hook taxonomy (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// `i32.const` etc.
    Const,
    /// One stack operand, one result (`unary` row of Table 3).
    Unary,
    /// Two stack operands, one result (`binary` row of Table 3).
    Binary,
    /// `drop`.
    Drop,
    /// `select`.
    Select,
    /// `local.get` / `local.set` / `local.tee`.
    Local,
    /// `global.get` / `global.set`.
    Global,
    /// One of the 14 load instructions.
    Load,
    /// One of the 9 store instructions.
    Store,
    /// Structured control (block/loop/if/else/end).
    Structured,
    /// Branches (`br`, `br_if`, `br_table`) and `return`.
    Branch,
    /// Direct or indirect call.
    Call,
    /// `memory.size` / `memory.grow`.
    MemoryAdmin,
    /// `unreachable` / `nop`.
    Misc,
}

macro_rules! instrs {
    ($( $(#[$doc:meta])* $name:ident $(($($fty:ty),+))? = $text:literal ),+ $(,)?) => {
        /// A single WebAssembly instruction.
        #[derive(Debug, Clone, PartialEq)]
        pub enum Instr {
            $( $(#[$doc])* $name $(($($fty),+))? ),+
        }

        impl Instr {
            /// The canonical text-format mnemonic (e.g. `"i64.ne"`).
            pub fn mnemonic(&self) -> &'static str {
                match self {
                    $( instrs!(@pat $name $(($($fty),+))?) => $text ),+
                }
            }
        }
    };
    (@pat $name:ident) => { Instr::$name };
    (@pat $name:ident ($($fty:ty),+)) => { Instr::$name(..) };
}

instrs! {
    // Control.
    /// Trap unconditionally.
    Unreachable = "unreachable",
    /// Do nothing.
    Nop = "nop",
    /// Begin a block; branches to it jump past its `end`.
    Block(BlockType) = "block",
    /// Begin a loop; branches to it jump back to its start.
    Loop(BlockType) = "loop",
    /// Begin a conditional; pops the condition.
    If(BlockType) = "if",
    /// Switch to the false arm of the innermost `if`.
    Else = "else",
    /// Close the innermost structured instruction (or the function body).
    End = "end",
    /// Unconditional branch to the given relative label depth.
    Br(u32) = "br",
    /// Conditional branch; pops the condition.
    BrIf(u32) = "br_if",
    /// Table branch; pops the index. Fields: table of labels, default label.
    BrTable(Vec<u32>, u32) = "br_table",
    /// Return from the current function.
    Return = "return",
    /// Direct call to the function with the given index.
    Call(u32) = "call",
    /// Indirect call through the table; field is the expected type index.
    CallIndirect(u32) = "call_indirect",

    // Parametric.
    /// Pop and discard one value.
    Drop = "drop",
    /// Pop condition, then two values; push one of them.
    Select = "select",

    // Variable.
    /// Push the value of a local.
    LocalGet(u32) = "local.get",
    /// Pop into a local.
    LocalSet(u32) = "local.set",
    /// Copy stack top into a local without popping.
    LocalTee(u32) = "local.tee",
    /// Push the value of a global.
    GlobalGet(u32) = "global.get",
    /// Pop into a global.
    GlobalSet(u32) = "global.set",

    // The 23 memory instructions (14 loads, 9 stores).
    /// Load 4 bytes as i32.
    I32Load(MemArg) = "i32.load",
    /// Load 8 bytes as i64.
    I64Load(MemArg) = "i64.load",
    /// Load 4 bytes as f32.
    F32Load(MemArg) = "f32.load",
    /// Load 8 bytes as f64.
    F64Load(MemArg) = "f64.load",
    /// Load 1 byte, sign-extend to i32.
    I32Load8S(MemArg) = "i32.load8_s",
    /// Load 1 byte, zero-extend to i32.
    I32Load8U(MemArg) = "i32.load8_u",
    /// Load 2 bytes, sign-extend to i32.
    I32Load16S(MemArg) = "i32.load16_s",
    /// Load 2 bytes, zero-extend to i32.
    I32Load16U(MemArg) = "i32.load16_u",
    /// Load 1 byte, sign-extend to i64.
    I64Load8S(MemArg) = "i64.load8_s",
    /// Load 1 byte, zero-extend to i64.
    I64Load8U(MemArg) = "i64.load8_u",
    /// Load 2 bytes, sign-extend to i64.
    I64Load16S(MemArg) = "i64.load16_s",
    /// Load 2 bytes, zero-extend to i64.
    I64Load16U(MemArg) = "i64.load16_u",
    /// Load 4 bytes, sign-extend to i64.
    I64Load32S(MemArg) = "i64.load32_s",
    /// Load 4 bytes, zero-extend to i64.
    I64Load32U(MemArg) = "i64.load32_u",
    /// Store 4 bytes of an i32.
    I32Store(MemArg) = "i32.store",
    /// Store 8 bytes of an i64.
    I64Store(MemArg) = "i64.store",
    /// Store 4 bytes of an f32.
    F32Store(MemArg) = "f32.store",
    /// Store 8 bytes of an f64.
    F64Store(MemArg) = "f64.store",
    /// Store the low byte of an i32.
    I32Store8(MemArg) = "i32.store8",
    /// Store the low 2 bytes of an i32.
    I32Store16(MemArg) = "i32.store16",
    /// Store the low byte of an i64.
    I64Store8(MemArg) = "i64.store8",
    /// Store the low 2 bytes of an i64.
    I64Store16(MemArg) = "i64.store16",
    /// Store the low 4 bytes of an i64.
    I64Store32(MemArg) = "i64.store32",
    /// Push the current memory size in pages.
    MemorySize = "memory.size",
    /// Grow memory; pushes the previous size or -1.
    MemoryGrow = "memory.grow",

    // Numeric constants.
    /// Push an i32 constant.
    I32Const(i32) = "i32.const",
    /// Push an i64 constant.
    I64Const(i64) = "i64.const",
    /// Push an f32 constant.
    F32Const(f32) = "f32.const",
    /// Push an f64 constant.
    F64Const(f64) = "f64.const",

    // i32 comparisons.
    /// Test i32 == 0.
    I32Eqz = "i32.eqz",
    /// i32 equality.
    I32Eq = "i32.eq",
    /// i32 inequality.
    I32Ne = "i32.ne",
    /// i32 signed less-than.
    I32LtS = "i32.lt_s",
    /// i32 unsigned less-than.
    I32LtU = "i32.lt_u",
    /// i32 signed greater-than.
    I32GtS = "i32.gt_s",
    /// i32 unsigned greater-than.
    I32GtU = "i32.gt_u",
    /// i32 signed less-or-equal.
    I32LeS = "i32.le_s",
    /// i32 unsigned less-or-equal.
    I32LeU = "i32.le_u",
    /// i32 signed greater-or-equal.
    I32GeS = "i32.ge_s",
    /// i32 unsigned greater-or-equal.
    I32GeU = "i32.ge_u",

    // i64 comparisons.
    /// Test i64 == 0.
    I64Eqz = "i64.eqz",
    /// i64 equality (the Fake EOS guard instruction, §2.3.1).
    I64Eq = "i64.eq",
    /// i64 inequality (the Fake EOS guard instruction, §2.3.1).
    I64Ne = "i64.ne",
    /// i64 signed less-than.
    I64LtS = "i64.lt_s",
    /// i64 unsigned less-than.
    I64LtU = "i64.lt_u",
    /// i64 signed greater-than.
    I64GtS = "i64.gt_s",
    /// i64 unsigned greater-than.
    I64GtU = "i64.gt_u",
    /// i64 signed less-or-equal.
    I64LeS = "i64.le_s",
    /// i64 unsigned less-or-equal.
    I64LeU = "i64.le_u",
    /// i64 signed greater-or-equal.
    I64GeS = "i64.ge_s",
    /// i64 unsigned greater-or-equal.
    I64GeU = "i64.ge_u",

    // f32 comparisons.
    /// f32 equality.
    F32Eq = "f32.eq",
    /// f32 inequality.
    F32Ne = "f32.ne",
    /// f32 less-than.
    F32Lt = "f32.lt",
    /// f32 greater-than.
    F32Gt = "f32.gt",
    /// f32 less-or-equal.
    F32Le = "f32.le",
    /// f32 greater-or-equal.
    F32Ge = "f32.ge",

    // f64 comparisons.
    /// f64 equality.
    F64Eq = "f64.eq",
    /// f64 inequality.
    F64Ne = "f64.ne",
    /// f64 less-than.
    F64Lt = "f64.lt",
    /// f64 greater-than.
    F64Gt = "f64.gt",
    /// f64 less-or-equal.
    F64Le = "f64.le",
    /// f64 greater-or-equal.
    F64Ge = "f64.ge",

    // i32 arithmetic.
    /// Count leading zeros.
    I32Clz = "i32.clz",
    /// Count trailing zeros.
    I32Ctz = "i32.ctz",
    /// Population count (the obfuscator's encoding primitive, §4.3).
    I32Popcnt = "i32.popcnt",
    /// Wrapping addition.
    I32Add = "i32.add",
    /// Wrapping subtraction.
    I32Sub = "i32.sub",
    /// Wrapping multiplication.
    I32Mul = "i32.mul",
    /// Signed division (traps on 0 and overflow).
    I32DivS = "i32.div_s",
    /// Unsigned division (traps on 0).
    I32DivU = "i32.div_u",
    /// Signed remainder (traps on 0).
    I32RemS = "i32.rem_s",
    /// Unsigned remainder (traps on 0).
    I32RemU = "i32.rem_u",
    /// Bitwise and.
    I32And = "i32.and",
    /// Bitwise or.
    I32Or = "i32.or",
    /// Bitwise xor.
    I32Xor = "i32.xor",
    /// Shift left.
    I32Shl = "i32.shl",
    /// Arithmetic shift right.
    I32ShrS = "i32.shr_s",
    /// Logical shift right.
    I32ShrU = "i32.shr_u",
    /// Rotate left.
    I32Rotl = "i32.rotl",
    /// Rotate right.
    I32Rotr = "i32.rotr",

    // i64 arithmetic.
    /// Count leading zeros.
    I64Clz = "i64.clz",
    /// Count trailing zeros.
    I64Ctz = "i64.ctz",
    /// Population count.
    I64Popcnt = "i64.popcnt",
    /// Wrapping addition.
    I64Add = "i64.add",
    /// Wrapping subtraction.
    I64Sub = "i64.sub",
    /// Wrapping multiplication.
    I64Mul = "i64.mul",
    /// Signed division (traps on 0 and overflow).
    I64DivS = "i64.div_s",
    /// Unsigned division (traps on 0).
    I64DivU = "i64.div_u",
    /// Signed remainder (traps on 0).
    I64RemS = "i64.rem_s",
    /// Unsigned remainder (traps on 0).
    I64RemU = "i64.rem_u",
    /// Bitwise and.
    I64And = "i64.and",
    /// Bitwise or.
    I64Or = "i64.or",
    /// Bitwise xor.
    I64Xor = "i64.xor",
    /// Shift left.
    I64Shl = "i64.shl",
    /// Arithmetic shift right.
    I64ShrS = "i64.shr_s",
    /// Logical shift right.
    I64ShrU = "i64.shr_u",
    /// Rotate left.
    I64Rotl = "i64.rotl",
    /// Rotate right.
    I64Rotr = "i64.rotr",

    // f32 arithmetic.
    /// Absolute value.
    F32Abs = "f32.abs",
    /// Negation.
    F32Neg = "f32.neg",
    /// Round up.
    F32Ceil = "f32.ceil",
    /// Round down.
    F32Floor = "f32.floor",
    /// Round toward zero.
    F32Trunc = "f32.trunc",
    /// Round to nearest even.
    F32Nearest = "f32.nearest",
    /// Square root.
    F32Sqrt = "f32.sqrt",
    /// Addition.
    F32Add = "f32.add",
    /// Subtraction.
    F32Sub = "f32.sub",
    /// Multiplication.
    F32Mul = "f32.mul",
    /// Division.
    F32Div = "f32.div",
    /// IEEE minimum.
    F32Min = "f32.min",
    /// IEEE maximum.
    F32Max = "f32.max",
    /// Copy sign.
    F32Copysign = "f32.copysign",

    // f64 arithmetic.
    /// Absolute value.
    F64Abs = "f64.abs",
    /// Negation.
    F64Neg = "f64.neg",
    /// Round up.
    F64Ceil = "f64.ceil",
    /// Round down.
    F64Floor = "f64.floor",
    /// Round toward zero.
    F64Trunc = "f64.trunc",
    /// Round to nearest even.
    F64Nearest = "f64.nearest",
    /// Square root.
    F64Sqrt = "f64.sqrt",
    /// Addition.
    F64Add = "f64.add",
    /// Subtraction.
    F64Sub = "f64.sub",
    /// Multiplication.
    F64Mul = "f64.mul",
    /// Division.
    F64Div = "f64.div",
    /// IEEE minimum.
    F64Min = "f64.min",
    /// IEEE maximum.
    F64Max = "f64.max",
    /// Copy sign.
    F64Copysign = "f64.copysign",

    // Conversions.
    /// Truncate i64 to i32.
    I32WrapI64 = "i32.wrap_i64",
    /// Truncate f32 to signed i32 (traps on NaN/overflow).
    I32TruncF32S = "i32.trunc_f32_s",
    /// Truncate f32 to unsigned i32.
    I32TruncF32U = "i32.trunc_f32_u",
    /// Truncate f64 to signed i32.
    I32TruncF64S = "i32.trunc_f64_s",
    /// Truncate f64 to unsigned i32.
    I32TruncF64U = "i32.trunc_f64_u",
    /// Sign-extend i32 to i64.
    I64ExtendI32S = "i64.extend_i32_s",
    /// Zero-extend i32 to i64.
    I64ExtendI32U = "i64.extend_i32_u",
    /// Truncate f32 to signed i64.
    I64TruncF32S = "i64.trunc_f32_s",
    /// Truncate f32 to unsigned i64.
    I64TruncF32U = "i64.trunc_f32_u",
    /// Truncate f64 to signed i64.
    I64TruncF64S = "i64.trunc_f64_s",
    /// Truncate f64 to unsigned i64.
    I64TruncF64U = "i64.trunc_f64_u",
    /// Convert signed i32 to f32.
    F32ConvertI32S = "f32.convert_i32_s",
    /// Convert unsigned i32 to f32.
    F32ConvertI32U = "f32.convert_i32_u",
    /// Convert signed i64 to f32.
    F32ConvertI64S = "f32.convert_i64_s",
    /// Convert unsigned i64 to f32.
    F32ConvertI64U = "f32.convert_i64_u",
    /// Demote f64 to f32.
    F32DemoteF64 = "f32.demote_f64",
    /// Convert signed i32 to f64.
    F64ConvertI32S = "f64.convert_i32_s",
    /// Convert unsigned i32 to f64.
    F64ConvertI32U = "f64.convert_i32_u",
    /// Convert signed i64 to f64.
    F64ConvertI64S = "f64.convert_i64_s",
    /// Convert unsigned i64 to f64.
    F64ConvertI64U = "f64.convert_i64_u",
    /// Promote f32 to f64.
    F64PromoteF32 = "f64.promote_f32",
    /// Reinterpret f32 bits as i32.
    I32ReinterpretF32 = "i32.reinterpret_f32",
    /// Reinterpret f64 bits as i64.
    I64ReinterpretF64 = "i64.reinterpret_f64",
    /// Reinterpret i32 bits as f32.
    F32ReinterpretI32 = "f32.reinterpret_i32",
    /// Reinterpret i64 bits as f64.
    F64ReinterpretI64 = "f64.reinterpret_i64",
}

impl Instr {
    /// Classify the instruction per Table 3 of the paper.
    pub fn class(&self) -> InstrClass {
        use Instr::*;
        match self {
            Unreachable | Nop => InstrClass::Misc,
            Block(_) | Loop(_) | If(_) | Else | End => InstrClass::Structured,
            Br(_) | BrIf(_) | BrTable(..) | Return => InstrClass::Branch,
            Call(_) | CallIndirect(_) => InstrClass::Call,
            Drop => InstrClass::Drop,
            Select => InstrClass::Select,
            LocalGet(_) | LocalSet(_) | LocalTee(_) => InstrClass::Local,
            GlobalGet(_) | GlobalSet(_) => InstrClass::Global,
            MemorySize | MemoryGrow => InstrClass::MemoryAdmin,
            I32Const(_) | I64Const(_) | F32Const(_) | F64Const(_) => InstrClass::Const,
            _ => {
                if self.memory_access().is_some() {
                    if self.memory_access().unwrap().is_store {
                        InstrClass::Store
                    } else {
                        InstrClass::Load
                    }
                } else if self.is_unary_numeric() {
                    InstrClass::Unary
                } else {
                    InstrClass::Binary
                }
            }
        }
    }

    /// For memory instructions, describe the access; `None` otherwise.
    pub fn memory_access(&self) -> Option<MemAccess> {
        use Instr::*;
        use ValType::*;
        let (bytes, val_type, signed, is_store) = match self {
            I32Load(_) => (4, I32, false, false),
            I64Load(_) => (8, I64, false, false),
            F32Load(_) => (4, F32, false, false),
            F64Load(_) => (8, F64, false, false),
            I32Load8S(_) => (1, I32, true, false),
            I32Load8U(_) => (1, I32, false, false),
            I32Load16S(_) => (2, I32, true, false),
            I32Load16U(_) => (2, I32, false, false),
            I64Load8S(_) => (1, I64, true, false),
            I64Load8U(_) => (1, I64, false, false),
            I64Load16S(_) => (2, I64, true, false),
            I64Load16U(_) => (2, I64, false, false),
            I64Load32S(_) => (4, I64, true, false),
            I64Load32U(_) => (4, I64, false, false),
            I32Store(_) => (4, I32, false, true),
            I64Store(_) => (8, I64, false, true),
            F32Store(_) => (4, F32, false, true),
            F64Store(_) => (8, F64, false, true),
            I32Store8(_) => (1, I32, false, true),
            I32Store16(_) => (2, I32, false, true),
            I64Store8(_) => (1, I64, false, true),
            I64Store16(_) => (2, I64, false, true),
            I64Store32(_) => (4, I64, false, true),
            _ => return None,
        };
        Some(MemAccess {
            bytes,
            val_type,
            signed,
            is_store,
        })
    }

    /// The memarg immediate of a memory instruction, if any.
    pub fn mem_arg(&self) -> Option<MemArg> {
        use Instr::*;
        match self {
            I32Load(m) | I64Load(m) | F32Load(m) | F64Load(m) | I32Load8S(m) | I32Load8U(m)
            | I32Load16S(m) | I32Load16U(m) | I64Load8S(m) | I64Load8U(m) | I64Load16S(m)
            | I64Load16U(m) | I64Load32S(m) | I64Load32U(m) | I32Store(m) | I64Store(m)
            | F32Store(m) | F64Store(m) | I32Store8(m) | I32Store16(m) | I64Store8(m)
            | I64Store16(m) | I64Store32(m) => Some(*m),
            _ => None,
        }
    }

    fn is_unary_numeric(&self) -> bool {
        use Instr::*;
        matches!(
            self,
            I32Eqz
                | I64Eqz
                | I32Clz
                | I32Ctz
                | I32Popcnt
                | I64Clz
                | I64Ctz
                | I64Popcnt
                | F32Abs
                | F32Neg
                | F32Ceil
                | F32Floor
                | F32Trunc
                | F32Nearest
                | F32Sqrt
                | F64Abs
                | F64Neg
                | F64Ceil
                | F64Floor
                | F64Trunc
                | F64Nearest
                | F64Sqrt
                | I32WrapI64
                | I32TruncF32S
                | I32TruncF32U
                | I32TruncF64S
                | I32TruncF64U
                | I64ExtendI32S
                | I64ExtendI32U
                | I64TruncF32S
                | I64TruncF32U
                | I64TruncF64S
                | I64TruncF64U
                | F32ConvertI32S
                | F32ConvertI32U
                | F32ConvertI64S
                | F32ConvertI64U
                | F32DemoteF64
                | F64ConvertI32S
                | F64ConvertI32U
                | F64ConvertI64S
                | F64ConvertI64U
                | F64PromoteF32
                | I32ReinterpretF32
                | I64ReinterpretF64
                | F32ReinterpretI32
                | F64ReinterpretI64
        )
    }

    /// True if this is one of the comparison instructions a Fake EOS / Fake
    /// Notification guard compiles to (`i64.eq` / `i64.ne`, §2.3.1–2.3.2).
    pub fn is_i64_guard_compare(&self) -> bool {
        matches!(self, Instr::I64Eq | Instr::I64Ne)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_instruction_census() {
        // The paper repeatedly states there are exactly 23 memory instructions.
        let mem = MemArg::default();
        let all = [
            Instr::I32Load(mem),
            Instr::I64Load(mem),
            Instr::F32Load(mem),
            Instr::F64Load(mem),
            Instr::I32Load8S(mem),
            Instr::I32Load8U(mem),
            Instr::I32Load16S(mem),
            Instr::I32Load16U(mem),
            Instr::I64Load8S(mem),
            Instr::I64Load8U(mem),
            Instr::I64Load16S(mem),
            Instr::I64Load16U(mem),
            Instr::I64Load32S(mem),
            Instr::I64Load32U(mem),
            Instr::I32Store(mem),
            Instr::I64Store(mem),
            Instr::F32Store(mem),
            Instr::F64Store(mem),
            Instr::I32Store8(mem),
            Instr::I32Store16(mem),
            Instr::I64Store8(mem),
            Instr::I64Store16(mem),
            Instr::I64Store32(mem),
        ];
        assert_eq!(all.len(), 23);
        let loads = all.iter().filter(|i| i.class() == InstrClass::Load).count();
        let stores = all
            .iter()
            .filter(|i| i.class() == InstrClass::Store)
            .count();
        assert_eq!(loads, 14);
        assert_eq!(stores, 9);
        for i in &all {
            assert!(i.memory_access().is_some());
            assert!(i.mem_arg().is_some());
        }
    }

    #[test]
    fn classification_spot_checks() {
        assert_eq!(Instr::I32Const(7).class(), InstrClass::Const);
        assert_eq!(Instr::I64Eq.class(), InstrClass::Binary);
        assert_eq!(Instr::I32Eqz.class(), InstrClass::Unary);
        assert_eq!(Instr::BrIf(0).class(), InstrClass::Branch);
        assert_eq!(Instr::Call(3).class(), InstrClass::Call);
        assert_eq!(Instr::LocalTee(1).class(), InstrClass::Local);
        assert_eq!(Instr::MemoryGrow.class(), InstrClass::MemoryAdmin);
        assert_eq!(Instr::If(BlockType::Empty).class(), InstrClass::Structured);
        assert_eq!(Instr::Select.class(), InstrClass::Select);
    }

    #[test]
    fn guard_compare_detection() {
        assert!(Instr::I64Eq.is_i64_guard_compare());
        assert!(Instr::I64Ne.is_i64_guard_compare());
        assert!(!Instr::I32Eq.is_i64_guard_compare());
    }

    #[test]
    fn mnemonics() {
        assert_eq!(Instr::I64Ne.mnemonic(), "i64.ne");
        assert_eq!(
            Instr::I32Load16U(MemArg::default()).mnemonic(),
            "i32.load16_u"
        );
        assert_eq!(Instr::BrTable(vec![0, 1], 2).mnemonic(), "br_table");
    }

    #[test]
    fn load_access_details() {
        let a = Instr::I32Load16U(MemArg::offset(8))
            .memory_access()
            .unwrap();
        assert_eq!(a.bytes, 2);
        assert_eq!(a.val_type, ValType::I32);
        assert!(!a.signed);
        assert!(!a.is_store);
        let s = Instr::I64Store32(MemArg::default())
            .memory_access()
            .unwrap();
        assert_eq!(s.bytes, 4);
        assert!(s.is_store);
    }
}
