//! In-memory representation of a WebAssembly module.
//!
//! The layout mirrors the binary format sections. Function index space is
//! imports-first: indices `0..imports.num_funcs()` refer to imported
//! functions, the rest to [`Module::funcs`].

use crate::instr::Instr;
use crate::types::{FuncType, GlobalType, Limits, ValType};

/// What an import provides.
#[derive(Debug, Clone, PartialEq)]
pub enum ImportDesc {
    /// A function with the given type index.
    Func(u32),
    /// A table of function references.
    Table(Limits),
    /// A linear memory.
    Memory(Limits),
    /// A global variable.
    Global(GlobalType),
}

/// A single import entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Import {
    /// Module namespace, `"env"` for all EOSIO library APIs.
    pub module: String,
    /// Imported item name, e.g. `"require_auth"`.
    pub name: String,
    /// Kind and type of the imported item.
    pub desc: ImportDesc,
}

/// What an export exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportDesc {
    /// A function by index.
    Func(u32),
    /// A table by index.
    Table(u32),
    /// A memory by index.
    Memory(u32),
    /// A global by index.
    Global(u32),
}

/// A single export entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Export {
    /// Exported name; EOSIO contracts export `"apply"` and `"memory"`.
    pub name: String,
    /// The exported item.
    pub desc: ExportDesc,
}

/// A function defined inside the module (not imported).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Function {
    /// Index into [`Module::types`].
    pub type_idx: u32,
    /// Additional local variable types (beyond the parameters).
    pub locals: Vec<ValType>,
    /// The body, a flat instruction sequence terminated by [`Instr::End`].
    pub body: Vec<Instr>,
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Type and mutability.
    pub ty: GlobalType,
    /// Constant initializer expression (a single const instruction).
    pub init: Instr,
}

/// An element segment populating the function table (used by the EOSIO SDK's
/// indirect-call dispatcher, §3.4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct Elem {
    /// Table index (always 0 in the MVP).
    pub table: u32,
    /// Constant byte offset expression.
    pub offset: u32,
    /// Function indices placed at `offset..`.
    pub funcs: Vec<u32>,
}

/// A data segment initializing linear memory.
#[derive(Debug, Clone, PartialEq)]
pub struct Data {
    /// Memory index (always 0 in the MVP).
    pub memory: u32,
    /// Constant byte offset.
    pub offset: u32,
    /// Raw bytes copied at instantiation.
    pub bytes: Vec<u8>,
}

/// A complete WebAssembly module.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// The type section: deduplicated function signatures.
    pub types: Vec<FuncType>,
    /// The import section.
    pub imports: Vec<Import>,
    /// Locally defined functions (function + code sections).
    pub funcs: Vec<Function>,
    /// Table definitions (at most one in the MVP).
    pub tables: Vec<Limits>,
    /// Memory definitions (at most one in the MVP).
    pub memories: Vec<Limits>,
    /// Global definitions.
    pub globals: Vec<Global>,
    /// The export section.
    pub exports: Vec<Export>,
    /// Optional start function index.
    pub start: Option<u32>,
    /// Element segments.
    pub elems: Vec<Elem>,
    /// Data segments.
    pub data: Vec<Data>,
}

impl Module {
    /// An empty module.
    pub fn new() -> Self {
        Module::default()
    }

    /// Number of imported functions (these occupy indices `0..n`).
    pub fn num_imported_funcs(&self) -> u32 {
        self.imports
            .iter()
            .filter(|i| matches!(i.desc, ImportDesc::Func(_)))
            .count() as u32
    }

    /// Total number of functions in the index space.
    pub fn num_funcs(&self) -> u32 {
        self.num_imported_funcs() + self.funcs.len() as u32
    }

    /// The signature of the function with the given index.
    ///
    /// Returns `None` if the index or its type index is out of range.
    pub fn func_type(&self, func_idx: u32) -> Option<&FuncType> {
        let n_imp = self.num_imported_funcs();
        let type_idx = if func_idx < n_imp {
            let mut seen = 0;
            let mut found = None;
            for imp in &self.imports {
                if let ImportDesc::Func(t) = imp.desc {
                    if seen == func_idx {
                        found = Some(t);
                        break;
                    }
                    seen += 1;
                }
            }
            found?
        } else {
            self.funcs.get((func_idx - n_imp) as usize)?.type_idx
        };
        self.types.get(type_idx as usize)
    }

    /// The import entry for an imported function index, if it is imported.
    pub fn imported_func(&self, func_idx: u32) -> Option<&Import> {
        let mut seen = 0;
        for imp in &self.imports {
            if matches!(imp.desc, ImportDesc::Func(_)) {
                if seen == func_idx {
                    return Some(imp);
                }
                seen += 1;
            }
        }
        None
    }

    /// The locally defined function for an index, if it is not imported.
    pub fn local_func(&self, func_idx: u32) -> Option<&Function> {
        let n_imp = self.num_imported_funcs();
        if func_idx < n_imp {
            None
        } else {
            self.funcs.get((func_idx - n_imp) as usize)
        }
    }

    /// Mutable access to a locally defined function by global index.
    pub fn local_func_mut(&mut self, func_idx: u32) -> Option<&mut Function> {
        let n_imp = self.num_imported_funcs();
        if func_idx < n_imp {
            None
        } else {
            self.funcs.get_mut((func_idx - n_imp) as usize)
        }
    }

    /// Look up an exported function index by name (e.g. `"apply"`).
    pub fn exported_func(&self, name: &str) -> Option<u32> {
        self.exports.iter().find_map(|e| match e.desc {
            ExportDesc::Func(idx) if e.name == name => Some(idx),
            _ => None,
        })
    }

    /// Find (or append) the type index for a signature.
    pub fn intern_type(&mut self, ty: FuncType) -> u32 {
        if let Some(pos) = self.types.iter().position(|t| *t == ty) {
            pos as u32
        } else {
            self.types.push(ty);
            (self.types.len() - 1) as u32
        }
    }

    /// Total number of instructions across all local function bodies.
    pub fn code_size(&self) -> usize {
        self.funcs.iter().map(|f| f.body.len()).sum()
    }

    /// Iterate over `(function_index, function)` pairs for local functions.
    pub fn iter_local_funcs(&self) -> impl Iterator<Item = (u32, &Function)> {
        let n_imp = self.num_imported_funcs();
        self.funcs
            .iter()
            .enumerate()
            .map(move |(i, f)| (n_imp + i as u32, f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ValType::*;

    fn sample() -> Module {
        let mut m = Module::new();
        let t0 = m.intern_type(FuncType::new(vec![I64], vec![]));
        let t1 = m.intern_type(FuncType::new(vec![I64, I64, I64], vec![]));
        m.imports.push(Import {
            module: "env".into(),
            name: "require_auth".into(),
            desc: ImportDesc::Func(t0),
        });
        m.funcs.push(Function {
            type_idx: t1,
            locals: vec![I32],
            body: vec![Instr::End],
        });
        m.exports.push(Export {
            name: "apply".into(),
            desc: ExportDesc::Func(1),
        });
        m
    }

    #[test]
    fn function_index_space() {
        let m = sample();
        assert_eq!(m.num_imported_funcs(), 1);
        assert_eq!(m.num_funcs(), 2);
        assert!(m.imported_func(0).is_some());
        assert!(m.imported_func(1).is_none());
        assert!(m.local_func(0).is_none());
        assert!(m.local_func(1).is_some());
        assert_eq!(m.func_type(0).unwrap().params, vec![I64]);
        assert_eq!(m.func_type(1).unwrap().params.len(), 3);
        assert_eq!(m.func_type(2), None);
    }

    #[test]
    fn export_lookup() {
        let m = sample();
        assert_eq!(m.exported_func("apply"), Some(1));
        assert_eq!(m.exported_func("missing"), None);
    }

    #[test]
    fn type_interning_deduplicates() {
        let mut m = Module::new();
        let a = m.intern_type(FuncType::new(vec![I32], vec![I32]));
        let b = m.intern_type(FuncType::new(vec![I32], vec![I32]));
        let c = m.intern_type(FuncType::new(vec![I64], vec![]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(m.types.len(), 2);
    }

    #[test]
    fn code_size_counts_instructions() {
        let m = sample();
        assert_eq!(m.code_size(), 1);
    }
}
