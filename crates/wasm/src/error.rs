//! The crate-wide error type for bytecode manipulation.
//!
//! Wild contracts are adversarial input: decoding, validation, and
//! instrumentation must reject malformed modules with a typed error rather
//! than panic inside a fuzzing campaign. [`WasmError`] is the umbrella the
//! instrumentation pass (and downstream harness code) reports through — the
//! structural variants cover out-of-range indices that validation normally
//! rules out but that defensive code paths must not trust.

use std::fmt;

use crate::decode::DecodeError;
use crate::validate::ValidateError;

/// Any failure while decoding, validating, or instrumenting a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WasmError {
    /// The binary could not be decoded.
    Decode(DecodeError),
    /// The module is not well-typed.
    Validate(ValidateError),
    /// A function index has no local function.
    MissingFunction {
        /// The out-of-range function index.
        func: u32,
    },
    /// A type index points outside the type section.
    MissingType {
        /// The out-of-range type index.
        type_idx: u32,
    },
    /// A local index points outside a function's params + locals.
    MissingLocal {
        /// The function whose body referenced the local.
        func: u32,
        /// The out-of-range local index.
        local: u32,
    },
    /// A global index points outside imported + defined globals.
    MissingGlobal {
        /// The out-of-range global index.
        global: u32,
    },
}

impl fmt::Display for WasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WasmError::Decode(e) => e.fmt(f),
            WasmError::Validate(e) => e.fmt(f),
            WasmError::MissingFunction { func } => {
                write!(f, "function index {func} has no local function")
            }
            WasmError::MissingType { type_idx } => {
                write!(f, "type index {type_idx} is out of range")
            }
            WasmError::MissingLocal { func, local } => {
                write!(f, "local index {local} is out of range in func {func}")
            }
            WasmError::MissingGlobal { global } => {
                write!(f, "global index {global} is out of range")
            }
        }
    }
}

impl std::error::Error for WasmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WasmError::Decode(e) => Some(e),
            WasmError::Validate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for WasmError {
    fn from(e: DecodeError) -> Self {
        WasmError::Decode(e)
    }
}

impl From<ValidateError> for WasmError {
    fn from(e: ValidateError) -> Self {
        WasmError::Validate(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn wraps_and_displays_sources() {
        let v = ValidateError {
            func: Some(2),
            pc: Some(7),
            message: "type mismatch".into(),
        };
        let e = WasmError::from(v.clone());
        assert_eq!(e.to_string(), v.to_string());
        assert!(e.source().is_some());

        let d = DecodeError {
            offset: 4,
            message: "bad magic".into(),
        };
        let e = WasmError::from(d.clone());
        assert_eq!(e.to_string(), d.to_string());
    }

    #[test]
    fn structural_variants_name_the_index() {
        assert!(WasmError::MissingFunction { func: 9 }
            .to_string()
            .contains('9'));
        assert!(WasmError::MissingLocal { func: 1, local: 42 }
            .to_string()
            .contains("42"));
        assert!(WasmError::MissingGlobal { global: 3 }
            .to_string()
            .contains('3'));
        assert!(WasmError::MissingType { type_idx: 5 }.source().is_none());
    }
}
