//! Encoding of [`Module`]s to the WebAssembly binary format.
//!
//! Together with [`crate::decode`] this gives the workspace a lossless binary
//! round trip, which the instrumentation pass (§3.3.1) relies on: WASAI
//! rewrites contract *bytecode*, not some IR private to the toolchain.

use crate::instr::{Instr, MemArg};
use crate::module::{Data, Elem, ExportDesc, Function, Global, Import, ImportDesc, Module};
use crate::types::{BlockType, FuncType, GlobalType, Limits, Mutability, ValType};

/// Magic header of every Wasm binary.
pub const MAGIC: [u8; 4] = [0x00, 0x61, 0x73, 0x6d];
/// Binary format version (MVP).
pub const VERSION: [u8; 4] = [0x01, 0x00, 0x00, 0x00];

/// Append an unsigned LEB128 integer.
pub fn write_u32(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Append an unsigned LEB128 64-bit integer.
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Append a signed LEB128 integer.
pub fn write_i32(out: &mut Vec<u8>, v: i32) {
    write_i64(out, v as i64);
}

/// Append a signed LEB128 64-bit integer.
pub fn write_i64(out: &mut Vec<u8>, mut v: i64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        let sign_clear = byte & 0x40 == 0;
        if (v == 0 && sign_clear) || (v == -1 && !sign_clear) {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn write_name(out: &mut Vec<u8>, s: &str) {
    write_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn write_limits(out: &mut Vec<u8>, l: &Limits) {
    match l.max {
        None => {
            out.push(0x00);
            write_u32(out, l.min);
        }
        Some(max) => {
            out.push(0x01);
            write_u32(out, l.min);
            write_u32(out, max);
        }
    }
}

fn write_functype(out: &mut Vec<u8>, ft: &FuncType) {
    out.push(0x60);
    write_u32(out, ft.params.len() as u32);
    for p in &ft.params {
        out.push(p.binary_code());
    }
    write_u32(out, ft.results.len() as u32);
    for r in &ft.results {
        out.push(r.binary_code());
    }
}

fn write_globaltype(out: &mut Vec<u8>, gt: &GlobalType) {
    out.push(gt.val_type.binary_code());
    out.push(match gt.mutability {
        Mutability::Const => 0x00,
        Mutability::Var => 0x01,
    });
}

fn write_blocktype(out: &mut Vec<u8>, bt: BlockType) {
    match bt {
        BlockType::Empty => out.push(0x40),
        BlockType::Value(t) => out.push(t.binary_code()),
    }
}

fn write_memarg(out: &mut Vec<u8>, m: MemArg) {
    write_u32(out, m.align);
    write_u32(out, m.offset);
}

/// Encode one instruction.
pub fn write_instr(out: &mut Vec<u8>, i: &Instr) {
    use Instr::*;
    match i {
        Unreachable => out.push(0x00),
        Nop => out.push(0x01),
        Block(bt) => {
            out.push(0x02);
            write_blocktype(out, *bt);
        }
        Loop(bt) => {
            out.push(0x03);
            write_blocktype(out, *bt);
        }
        If(bt) => {
            out.push(0x04);
            write_blocktype(out, *bt);
        }
        Else => out.push(0x05),
        End => out.push(0x0b),
        Br(l) => {
            out.push(0x0c);
            write_u32(out, *l);
        }
        BrIf(l) => {
            out.push(0x0d);
            write_u32(out, *l);
        }
        BrTable(labels, default) => {
            out.push(0x0e);
            write_u32(out, labels.len() as u32);
            for l in labels {
                write_u32(out, *l);
            }
            write_u32(out, *default);
        }
        Return => out.push(0x0f),
        Call(f) => {
            out.push(0x10);
            write_u32(out, *f);
        }
        CallIndirect(t) => {
            out.push(0x11);
            write_u32(out, *t);
            out.push(0x00); // table index
        }
        Drop => out.push(0x1a),
        Select => out.push(0x1b),
        LocalGet(x) => {
            out.push(0x20);
            write_u32(out, *x);
        }
        LocalSet(x) => {
            out.push(0x21);
            write_u32(out, *x);
        }
        LocalTee(x) => {
            out.push(0x22);
            write_u32(out, *x);
        }
        GlobalGet(x) => {
            out.push(0x23);
            write_u32(out, *x);
        }
        GlobalSet(x) => {
            out.push(0x24);
            write_u32(out, *x);
        }
        I32Load(m) => mem(out, 0x28, *m),
        I64Load(m) => mem(out, 0x29, *m),
        F32Load(m) => mem(out, 0x2a, *m),
        F64Load(m) => mem(out, 0x2b, *m),
        I32Load8S(m) => mem(out, 0x2c, *m),
        I32Load8U(m) => mem(out, 0x2d, *m),
        I32Load16S(m) => mem(out, 0x2e, *m),
        I32Load16U(m) => mem(out, 0x2f, *m),
        I64Load8S(m) => mem(out, 0x30, *m),
        I64Load8U(m) => mem(out, 0x31, *m),
        I64Load16S(m) => mem(out, 0x32, *m),
        I64Load16U(m) => mem(out, 0x33, *m),
        I64Load32S(m) => mem(out, 0x34, *m),
        I64Load32U(m) => mem(out, 0x35, *m),
        I32Store(m) => mem(out, 0x36, *m),
        I64Store(m) => mem(out, 0x37, *m),
        F32Store(m) => mem(out, 0x38, *m),
        F64Store(m) => mem(out, 0x39, *m),
        I32Store8(m) => mem(out, 0x3a, *m),
        I32Store16(m) => mem(out, 0x3b, *m),
        I64Store8(m) => mem(out, 0x3c, *m),
        I64Store16(m) => mem(out, 0x3d, *m),
        I64Store32(m) => mem(out, 0x3e, *m),
        MemorySize => {
            out.push(0x3f);
            out.push(0x00);
        }
        MemoryGrow => {
            out.push(0x40);
            out.push(0x00);
        }
        I32Const(v) => {
            out.push(0x41);
            write_i32(out, *v);
        }
        I64Const(v) => {
            out.push(0x42);
            write_i64(out, *v);
        }
        F32Const(v) => {
            out.push(0x43);
            out.extend_from_slice(&v.to_le_bytes());
        }
        F64Const(v) => {
            out.push(0x44);
            out.extend_from_slice(&v.to_le_bytes());
        }
        other => out.push(numeric_opcode(other)),
    }
}

fn mem(out: &mut Vec<u8>, op: u8, m: MemArg) {
    out.push(op);
    write_memarg(out, m);
}

/// The single-byte opcode for a numeric instruction without immediates.
///
/// # Panics
///
/// Panics if called with an instruction that carries immediates (those are
/// handled directly in [`write_instr`]).
pub fn numeric_opcode(i: &Instr) -> u8 {
    use Instr::*;
    match i {
        I32Eqz => 0x45,
        I32Eq => 0x46,
        I32Ne => 0x47,
        I32LtS => 0x48,
        I32LtU => 0x49,
        I32GtS => 0x4a,
        I32GtU => 0x4b,
        I32LeS => 0x4c,
        I32LeU => 0x4d,
        I32GeS => 0x4e,
        I32GeU => 0x4f,
        I64Eqz => 0x50,
        I64Eq => 0x51,
        I64Ne => 0x52,
        I64LtS => 0x53,
        I64LtU => 0x54,
        I64GtS => 0x55,
        I64GtU => 0x56,
        I64LeS => 0x57,
        I64LeU => 0x58,
        I64GeS => 0x59,
        I64GeU => 0x5a,
        F32Eq => 0x5b,
        F32Ne => 0x5c,
        F32Lt => 0x5d,
        F32Gt => 0x5e,
        F32Le => 0x5f,
        F32Ge => 0x60,
        F64Eq => 0x61,
        F64Ne => 0x62,
        F64Lt => 0x63,
        F64Gt => 0x64,
        F64Le => 0x65,
        F64Ge => 0x66,
        I32Clz => 0x67,
        I32Ctz => 0x68,
        I32Popcnt => 0x69,
        I32Add => 0x6a,
        I32Sub => 0x6b,
        I32Mul => 0x6c,
        I32DivS => 0x6d,
        I32DivU => 0x6e,
        I32RemS => 0x6f,
        I32RemU => 0x70,
        I32And => 0x71,
        I32Or => 0x72,
        I32Xor => 0x73,
        I32Shl => 0x74,
        I32ShrS => 0x75,
        I32ShrU => 0x76,
        I32Rotl => 0x77,
        I32Rotr => 0x78,
        I64Clz => 0x79,
        I64Ctz => 0x7a,
        I64Popcnt => 0x7b,
        I64Add => 0x7c,
        I64Sub => 0x7d,
        I64Mul => 0x7e,
        I64DivS => 0x7f,
        I64DivU => 0x80,
        I64RemS => 0x81,
        I64RemU => 0x82,
        I64And => 0x83,
        I64Or => 0x84,
        I64Xor => 0x85,
        I64Shl => 0x86,
        I64ShrS => 0x87,
        I64ShrU => 0x88,
        I64Rotl => 0x89,
        I64Rotr => 0x8a,
        F32Abs => 0x8b,
        F32Neg => 0x8c,
        F32Ceil => 0x8d,
        F32Floor => 0x8e,
        F32Trunc => 0x8f,
        F32Nearest => 0x90,
        F32Sqrt => 0x91,
        F32Add => 0x92,
        F32Sub => 0x93,
        F32Mul => 0x94,
        F32Div => 0x95,
        F32Min => 0x96,
        F32Max => 0x97,
        F32Copysign => 0x98,
        F64Abs => 0x99,
        F64Neg => 0x9a,
        F64Ceil => 0x9b,
        F64Floor => 0x9c,
        F64Trunc => 0x9d,
        F64Nearest => 0x9e,
        F64Sqrt => 0x9f,
        F64Add => 0xa0,
        F64Sub => 0xa1,
        F64Mul => 0xa2,
        F64Div => 0xa3,
        F64Min => 0xa4,
        F64Max => 0xa5,
        F64Copysign => 0xa6,
        I32WrapI64 => 0xa7,
        I32TruncF32S => 0xa8,
        I32TruncF32U => 0xa9,
        I32TruncF64S => 0xaa,
        I32TruncF64U => 0xab,
        I64ExtendI32S => 0xac,
        I64ExtendI32U => 0xad,
        I64TruncF32S => 0xae,
        I64TruncF32U => 0xaf,
        I64TruncF64S => 0xb0,
        I64TruncF64U => 0xb1,
        F32ConvertI32S => 0xb2,
        F32ConvertI32U => 0xb3,
        F32ConvertI64S => 0xb4,
        F32ConvertI64U => 0xb5,
        F32DemoteF64 => 0xb6,
        F64ConvertI32S => 0xb7,
        F64ConvertI32U => 0xb8,
        F64ConvertI64S => 0xb9,
        F64ConvertI64U => 0xba,
        F64PromoteF32 => 0xbb,
        I32ReinterpretF32 => 0xbc,
        I64ReinterpretF64 => 0xbd,
        F32ReinterpretI32 => 0xbe,
        F64ReinterpretI64 => 0xbf,
        other => panic!("instruction {other:?} carries immediates"),
    }
}

fn section(out: &mut Vec<u8>, id: u8, body: Vec<u8>) {
    if body.is_empty() {
        return;
    }
    out.push(id);
    write_u32(out, body.len() as u32);
    out.extend_from_slice(&body);
}

fn encode_import(out: &mut Vec<u8>, imp: &Import) {
    write_name(out, &imp.module);
    write_name(out, &imp.name);
    match &imp.desc {
        ImportDesc::Func(t) => {
            out.push(0x00);
            write_u32(out, *t);
        }
        ImportDesc::Table(l) => {
            out.push(0x01);
            out.push(0x70);
            write_limits(out, l);
        }
        ImportDesc::Memory(l) => {
            out.push(0x02);
            write_limits(out, l);
        }
        ImportDesc::Global(g) => {
            out.push(0x03);
            write_globaltype(out, g);
        }
    }
}

fn encode_global(out: &mut Vec<u8>, g: &Global) {
    write_globaltype(out, &g.ty);
    write_instr(out, &g.init);
    write_instr(out, &Instr::End);
}

fn encode_export(out: &mut Vec<u8>, e: &crate::module::Export) {
    write_name(out, &e.name);
    let (tag, idx) = match e.desc {
        ExportDesc::Func(i) => (0x00, i),
        ExportDesc::Table(i) => (0x01, i),
        ExportDesc::Memory(i) => (0x02, i),
        ExportDesc::Global(i) => (0x03, i),
    };
    out.push(tag);
    write_u32(out, idx);
}

fn encode_elem(out: &mut Vec<u8>, e: &Elem) {
    write_u32(out, e.table);
    write_instr(out, &Instr::I32Const(e.offset as i32));
    write_instr(out, &Instr::End);
    write_u32(out, e.funcs.len() as u32);
    for f in &e.funcs {
        write_u32(out, *f);
    }
}

fn encode_data(out: &mut Vec<u8>, d: &Data) {
    write_u32(out, d.memory);
    write_instr(out, &Instr::I32Const(d.offset as i32));
    write_instr(out, &Instr::End);
    write_u32(out, d.bytes.len() as u32);
    out.extend_from_slice(&d.bytes);
}

fn encode_func_body(out: &mut Vec<u8>, f: &Function) {
    let mut body = Vec::new();
    // Group consecutive identical local types into (count, type) runs.
    let mut runs: Vec<(u32, ValType)> = Vec::new();
    for &l in &f.locals {
        match runs.last_mut() {
            Some((n, t)) if *t == l => *n += 1,
            _ => runs.push((1, l)),
        }
    }
    write_u32(&mut body, runs.len() as u32);
    for (n, t) in runs {
        write_u32(&mut body, n);
        body.push(t.binary_code());
    }
    for i in &f.body {
        write_instr(&mut body, i);
    }
    write_u32(out, body.len() as u32);
    out.extend_from_slice(&body);
}

/// Encode a module to Wasm binary bytes.
pub fn encode(m: &Module) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION);

    let mut body = Vec::new();
    if !m.types.is_empty() {
        write_u32(&mut body, m.types.len() as u32);
        for t in &m.types {
            write_functype(&mut body, t);
        }
        section(&mut out, 1, std::mem::take(&mut body));
    }
    if !m.imports.is_empty() {
        write_u32(&mut body, m.imports.len() as u32);
        for i in &m.imports {
            encode_import(&mut body, i);
        }
        section(&mut out, 2, std::mem::take(&mut body));
    }
    if !m.funcs.is_empty() {
        write_u32(&mut body, m.funcs.len() as u32);
        for f in &m.funcs {
            write_u32(&mut body, f.type_idx);
        }
        section(&mut out, 3, std::mem::take(&mut body));
    }
    if !m.tables.is_empty() {
        write_u32(&mut body, m.tables.len() as u32);
        for t in &m.tables {
            body.push(0x70);
            write_limits(&mut body, t);
        }
        section(&mut out, 4, std::mem::take(&mut body));
    }
    if !m.memories.is_empty() {
        write_u32(&mut body, m.memories.len() as u32);
        for mem in &m.memories {
            write_limits(&mut body, mem);
        }
        section(&mut out, 5, std::mem::take(&mut body));
    }
    if !m.globals.is_empty() {
        write_u32(&mut body, m.globals.len() as u32);
        for g in &m.globals {
            encode_global(&mut body, g);
        }
        section(&mut out, 6, std::mem::take(&mut body));
    }
    if !m.exports.is_empty() {
        write_u32(&mut body, m.exports.len() as u32);
        for e in &m.exports {
            encode_export(&mut body, e);
        }
        section(&mut out, 7, std::mem::take(&mut body));
    }
    if let Some(start) = m.start {
        write_u32(&mut body, start);
        section(&mut out, 8, std::mem::take(&mut body));
    }
    if !m.elems.is_empty() {
        write_u32(&mut body, m.elems.len() as u32);
        for e in &m.elems {
            encode_elem(&mut body, e);
        }
        section(&mut out, 9, std::mem::take(&mut body));
    }
    if !m.funcs.is_empty() {
        write_u32(&mut body, m.funcs.len() as u32);
        for f in &m.funcs {
            encode_func_body(&mut body, f);
        }
        section(&mut out, 10, std::mem::take(&mut body));
    }
    if !m.data.is_empty() {
        write_u32(&mut body, m.data.len() as u32);
        for d in &m.data {
            encode_data(&mut body, d);
        }
        section(&mut out, 11, std::mem::take(&mut body));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leb128_unsigned_known_values() {
        let mut out = Vec::new();
        write_u32(&mut out, 624485);
        assert_eq!(out, vec![0xe5, 0x8e, 0x26]);
    }

    #[test]
    fn leb128_signed_known_values() {
        let mut out = Vec::new();
        write_i32(&mut out, -123456);
        assert_eq!(out, vec![0xc0, 0xbb, 0x78]);
        out.clear();
        write_i64(&mut out, -1);
        assert_eq!(out, vec![0x7f]);
        out.clear();
        write_i64(&mut out, 64);
        assert_eq!(out, vec![0xc0, 0x00]);
    }

    #[test]
    fn empty_module_is_header_only() {
        let bytes = encode(&Module::new());
        assert_eq!(bytes.len(), 8);
        assert_eq!(&bytes[0..4], &MAGIC);
        assert_eq!(&bytes[4..8], &VERSION);
    }

    #[test]
    fn instruction_encodings() {
        let mut out = Vec::new();
        write_instr(&mut out, &Instr::I64Ne);
        assert_eq!(out, vec![0x52]);
        out.clear();
        write_instr(&mut out, &Instr::I32Const(1024));
        assert_eq!(out, vec![0x41, 0x80, 0x08]);
        out.clear();
        write_instr(&mut out, &Instr::CallIndirect(3));
        assert_eq!(out, vec![0x11, 0x03, 0x00]);
    }
}
