//! Contract-level trace instrumentation (the paper's C1 solution, §3.3.1).
//!
//! The pass rewrites a contract's bytecode so that, at runtime, the contract
//! itself reports every executed instruction and its operands through
//! imported log APIs — exactly the Wasabi-derived mechanism WASAI uses. The
//! instrumented module runs on an *unmodified* VM; only instrumented
//! contracts produce traces, so auxiliary contracts (`eosio.token`, agent
//! contracts) stay silent and the trace never mixes contracts (C1).
//!
//! For each original instruction at `(func, pc)` the rewriter emits:
//!
//! 1. `i32.const func; i32.const pc; call $trace_site` — announces the
//!    instruction (the consumer resolves `(func, pc)` against the *original*
//!    module to recover the instruction and its immediates);
//! 2. operand duplication through scratch locals followed by `call $logi` /
//!    `$logsf` / `$logdf`, mirroring the paper's
//!    `i32.const 1024; i32.const 1024; call logi` example;
//! 3. for calls, the five hooks of Table 1 (`call_pre`, `call`,
//!    `function_begin`, `function_end`, `call_post`): argument values are
//!    logged before the call, results after it, and function bodies are
//!    bracketed by begin/end labels.

use crate::error::WasmError;
use crate::instr::{Instr, InstrClass};
use crate::module::{ExportDesc, ImportDesc, Module};
use crate::types::ValType;
use crate::validate::{analyze_operands, validate};

/// Import namespace used for the trace hooks.
///
/// The paper extends Nodeos with `logi()`, `logsf()` and `logdf()`; we place
/// them (plus the site/call labels) in a dedicated `"wasai"` namespace so
/// they cannot collide with contract imports from `"env"`.
pub const HOOK_MODULE: &str = "wasai";

/// Names of the hook imports, in the order they are appended.
pub const HOOK_NAMES: [&str; 8] = [
    "trace_site",
    "logi",
    "logsf",
    "logdf",
    "trace_call_pre",
    "trace_call_post",
    "trace_func_begin",
    "trace_func_end",
];

/// Function indices of the hook imports inside an instrumented module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HookIndices {
    /// `trace_site(func: i32, pc: i32)`.
    pub site: u32,
    /// `logi(v: i64)` — integer operands (i32 operands are zero-extended).
    pub logi: u32,
    /// `logsf(v: f32)`.
    pub logsf: u32,
    /// `logdf(v: f64)`.
    pub logdf: u32,
    /// `trace_call_pre(callee: i32)` — original callee index, `-1` for
    /// indirect calls.
    pub call_pre: u32,
    /// `trace_call_post(callee: i32)`.
    pub call_post: u32,
    /// `trace_func_begin(func: i32)`.
    pub func_begin: u32,
    /// `trace_func_end(func: i32)`.
    pub func_end: u32,
}

/// Result of instrumenting a module.
#[derive(Debug, Clone)]
pub struct Instrumented {
    /// The rewritten module (imports the 8 hook APIs).
    pub module: Module,
    /// Number of imported functions *before* instrumentation: original
    /// function index `f >= pre_imports` maps to `f + 8` in the new module.
    pub pre_imports: u32,
    /// Hook import indices in the new module.
    pub hooks: HookIndices,
}

impl Instrumented {
    /// Map an original function index into the instrumented index space.
    pub fn remap(&self, func_idx: u32) -> u32 {
        if func_idx < self.pre_imports {
            func_idx
        } else {
            func_idx + HOOK_NAMES.len() as u32
        }
    }
}

/// Per-function scratch register file used for operand duplication.
#[derive(Debug, Default)]
struct Scratch {
    /// Local indices per value type.
    slots: [Vec<u32>; 4],
    /// Types appended so far (to extend the function's locals).
    appended: Vec<ValType>,
    /// First scratch local index.
    base: u32,
}

fn type_slot(t: ValType) -> usize {
    match t {
        ValType::I32 => 0,
        ValType::I64 => 1,
        ValType::F32 => 2,
        ValType::F64 => 3,
    }
}

impl Scratch {
    fn new(base: u32) -> Self {
        Scratch {
            base,
            ..Default::default()
        }
    }

    /// Local index for the `occurrence`-th scratch slot of type `t`.
    fn slot(&mut self, t: ValType, occurrence: usize) -> u32 {
        while self.slots[type_slot(t)].len() <= occurrence {
            let idx = self.base + self.appended.len() as u32;
            self.appended.push(t);
            self.slots[type_slot(t)].push(idx);
        }
        self.slots[type_slot(t)][occurrence]
    }
}

struct FuncRewriter<'a> {
    hooks: HookIndices,
    scratch: Scratch,
    out: Vec<Instr>,
    remap: &'a dyn Fn(u32) -> u32,
}

impl FuncRewriter<'_> {
    fn emit_site(&mut self, func: u32, pc: usize) {
        self.out.push(Instr::I32Const(func as i32));
        self.out.push(Instr::I32Const(pc as i32));
        self.out.push(Instr::Call(self.hooks.site));
    }

    /// Emit a `call log*` for a value of type `t` currently on the stack top.
    /// Consumes the value.
    fn emit_log_top(&mut self, t: ValType) {
        match t {
            ValType::I32 => {
                self.out.push(Instr::I64ExtendI32U);
                self.out.push(Instr::Call(self.hooks.logi));
            }
            ValType::I64 => self.out.push(Instr::Call(self.hooks.logi)),
            ValType::F32 => self.out.push(Instr::Call(self.hooks.logsf)),
            ValType::F64 => self.out.push(Instr::Call(self.hooks.logdf)),
        }
    }

    /// Duplicate the top `types.len()` operands (given bottom → top), log
    /// each in bottom → top order, and restore the stack.
    fn emit_dup_log(&mut self, types: &[ValType]) {
        let mut occ = [0usize; 4];
        let mut slots = Vec::with_capacity(types.len());
        for &t in types {
            let s = self.scratch.slot(t, occ[type_slot(t)]);
            occ[type_slot(t)] += 1;
            slots.push((t, s));
        }
        // Pop into scratch, top first.
        for &(_, s) in slots.iter().rev() {
            self.out.push(Instr::LocalSet(s));
        }
        // Log bottom → top.
        for &(t, s) in &slots {
            self.out.push(Instr::LocalGet(s));
            self.emit_log_top(t);
        }
        // Restore.
        for &(_, s) in &slots {
            self.out.push(Instr::LocalGet(s));
        }
    }

    fn rewrite_instr(
        &mut self,
        module: &Module,
        func: u32,
        pc: usize,
        i: &Instr,
        operand_types: &Option<Vec<ValType>>,
        is_final_end: bool,
    ) -> Result<(), WasmError> {
        self.emit_site(func, pc);
        match i {
            Instr::Call(callee) => {
                self.out.push(Instr::I32Const(*callee as i32));
                self.out.push(Instr::Call(self.hooks.call_pre));
                if let Some(types) = operand_types {
                    self.emit_dup_log(types);
                }
                self.out.push(Instr::Call((self.remap)(*callee)));
                self.out.push(Instr::I32Const(*callee as i32));
                self.out.push(Instr::Call(self.hooks.call_post));
                if let Some(ft) = module.func_type(*callee) {
                    if let Some(&r) = ft.results.first() {
                        self.emit_dup_log(&[r]);
                    }
                }
            }
            Instr::CallIndirect(type_idx) => {
                self.out.push(Instr::I32Const(-1));
                self.out.push(Instr::Call(self.hooks.call_pre));
                if let Some(types) = operand_types {
                    self.emit_dup_log(types);
                }
                self.out.push(Instr::CallIndirect(*type_idx));
                self.out.push(Instr::I32Const(-1));
                self.out.push(Instr::Call(self.hooks.call_post));
                if let Some(ft) = module.types.get(*type_idx as usize) {
                    if let Some(&r) = ft.results.first() {
                        self.emit_dup_log(&[r]);
                    }
                }
            }
            Instr::Return => {
                self.out.push(Instr::I32Const(func as i32));
                self.out.push(Instr::Call(self.hooks.func_end));
                self.out.push(Instr::Return);
            }
            Instr::End if is_final_end => {
                self.out.push(Instr::I32Const(func as i32));
                self.out.push(Instr::Call(self.hooks.func_end));
                self.out.push(Instr::End);
            }
            Instr::LocalGet(x) => {
                // Reading a local twice is side-effect free; log the value
                // that the original instruction is about to push.
                let t = local_type_of(module, func, *x)?;
                self.out.push(Instr::LocalGet(*x));
                self.emit_log_top(t);
                self.out.push(Instr::LocalGet(*x));
            }
            Instr::GlobalGet(x) => {
                let t = global_type_of(module, *x)?;
                self.out.push(Instr::GlobalGet(*x));
                self.emit_log_top(t);
                self.out.push(Instr::GlobalGet(*x));
            }
            other => {
                if let Some(types) = operand_types {
                    if matches!(
                        other.class(),
                        InstrClass::Unary
                            | InstrClass::Binary
                            | InstrClass::Load
                            | InstrClass::Store
                            | InstrClass::Branch
                            | InstrClass::Structured
                            | InstrClass::Select
                            | InstrClass::Local
                            | InstrClass::Global
                            | InstrClass::MemoryAdmin
                    ) && !types.is_empty()
                    {
                        self.emit_dup_log(types);
                    }
                }
                self.out.push(other.clone());
            }
        }
        Ok(())
    }
}

fn local_type_of(module: &Module, func: u32, local: u32) -> Result<ValType, WasmError> {
    let f = module
        .local_func(func)
        .ok_or(WasmError::MissingFunction { func })?;
    let params = &module
        .types
        .get(f.type_idx as usize)
        .ok_or(WasmError::MissingType {
            type_idx: f.type_idx,
        })?
        .params;
    if let Some(&t) = params.get(local as usize) {
        Ok(t)
    } else {
        f.locals
            .get(local as usize - params.len())
            .copied()
            .ok_or(WasmError::MissingLocal { func, local })
    }
}

fn global_type_of(module: &Module, idx: u32) -> Result<ValType, WasmError> {
    let mut imported = 0u32;
    for imp in &module.imports {
        if let ImportDesc::Global(g) = imp.desc {
            if imported == idx {
                return Ok(g.val_type);
            }
            imported += 1;
        }
    }
    module
        .globals
        .get((idx - imported) as usize)
        .map(|g| g.ty.val_type)
        .ok_or(WasmError::MissingGlobal { global: idx })
}

/// Instrument every local function of `original`.
///
/// The input must validate. The output validates too (checked by a test, not
/// at runtime) and behaves identically apart from invoking the hook imports.
///
/// # Errors
///
/// Returns [`WasmError::Validate`] when `original` is not a well-typed
/// module, or a structural [`WasmError`] when a body references an index the
/// module does not define.
pub fn instrument(original: &Module) -> Result<Instrumented, WasmError> {
    validate(original)?;
    let pre_imports = original.num_imported_funcs();
    let shift = HOOK_NAMES.len() as u32;
    let remap = move |f: u32| if f < pre_imports { f } else { f + shift };

    let mut module = original.clone();

    // Append hook imports (after existing imports, before local functions).
    use crate::types::FuncType;
    use ValType::*;
    let sigs: [(&str, Vec<ValType>); 8] = [
        ("trace_site", vec![I32, I32]),
        ("logi", vec![I64]),
        ("logsf", vec![F32]),
        ("logdf", vec![F64]),
        ("trace_call_pre", vec![I32]),
        ("trace_call_post", vec![I32]),
        ("trace_func_begin", vec![I32]),
        ("trace_func_end", vec![I32]),
    ];
    let mut hook_idx = [0u32; 8];
    for (k, (name, params)) in sigs.into_iter().enumerate() {
        let ty = module.intern_type(FuncType::new(params, vec![]));
        module.imports.push(crate::module::Import {
            module: HOOK_MODULE.into(),
            name: name.into(),
            desc: ImportDesc::Func(ty),
        });
        hook_idx[k] = pre_imports + k as u32;
    }
    let hooks = HookIndices {
        site: hook_idx[0],
        logi: hook_idx[1],
        logsf: hook_idx[2],
        logdf: hook_idx[3],
        call_pre: hook_idx[4],
        call_post: hook_idx[5],
        func_begin: hook_idx[6],
        func_end: hook_idx[7],
    };

    // Remap function references outside code bodies.
    for e in &mut module.exports {
        if let ExportDesc::Func(f) = &mut e.desc {
            *f = remap(*f);
        }
    }
    for elem in &mut module.elems {
        for f in &mut elem.funcs {
            *f = remap(*f);
        }
    }
    if let Some(s) = &mut module.start {
        *s = remap(*s);
    }

    // Rewrite each body. Operand analysis runs against the ORIGINAL module
    // (indices there are what `trace_site` reports).
    for (local_i, func) in original.funcs.iter().enumerate() {
        let orig_idx = pre_imports + local_i as u32;
        let operand_types = analyze_operands(original, orig_idx)?;
        let params = &original
            .types
            .get(func.type_idx as usize)
            .ok_or(WasmError::MissingType {
                type_idx: func.type_idx,
            })?
            .params;
        let scratch_base = (params.len() + func.locals.len()) as u32;
        let mut rw = FuncRewriter {
            hooks,
            scratch: Scratch::new(scratch_base),
            out: Vec::with_capacity(func.body.len() * 4),
            remap: &remap,
        };
        rw.out.push(Instr::I32Const(orig_idx as i32));
        rw.out.push(Instr::Call(hooks.func_begin));
        let last = func.body.len().saturating_sub(1);
        for (pc, instr) in func.body.iter().enumerate() {
            rw.rewrite_instr(
                original,
                orig_idx,
                pc,
                instr,
                &operand_types[pc],
                pc == last,
            )?;
        }
        let new_func = &mut module.funcs[local_i];
        new_func.locals.extend_from_slice(&rw.scratch.appended);
        new_func.body = rw.out;
    }

    Ok(Instrumented {
        module,
        pre_imports,
        hooks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::types::ValType::*;

    fn sample_module() -> Module {
        let mut b = ModuleBuilder::with_memory(1);
        let assert_fn = b.import_func("env", "eosio_assert", &[I32, I32], &[]);
        let helper = b.func(
            &[I64],
            &[I64],
            &[],
            vec![
                Instr::LocalGet(0),
                Instr::I64Const(1),
                Instr::I64Add,
                Instr::End,
            ],
        );
        let apply = b.func(
            &[I64, I64, I64],
            &[],
            &[I64],
            vec![
                Instr::LocalGet(1),
                Instr::Call(helper),
                Instr::LocalSet(3),
                Instr::LocalGet(3),
                Instr::I64Const(42),
                Instr::I64Ne,
                Instr::If(crate::types::BlockType::Empty),
                Instr::I32Const(1),
                Instr::I32Const(0),
                Instr::Call(assert_fn),
                Instr::End,
                Instr::End,
            ],
        );
        b.export_func("apply", apply);
        b.build()
    }

    #[test]
    fn instrumented_module_validates() {
        let m = sample_module();
        let inst = instrument(&m).unwrap();
        validate(&inst.module).expect("instrumented module must validate");
    }

    #[test]
    fn adds_exactly_eight_imports() {
        let m = sample_module();
        let inst = instrument(&m).unwrap();
        assert_eq!(
            inst.module.num_imported_funcs(),
            m.num_imported_funcs() + HOOK_NAMES.len() as u32
        );
        for name in HOOK_NAMES {
            assert!(inst
                .module
                .imports
                .iter()
                .any(|i| i.module == HOOK_MODULE && i.name == name));
        }
    }

    #[test]
    fn remaps_exports_and_calls() {
        let m = sample_module();
        let inst = instrument(&m).unwrap();
        // apply was index 2 (1 import + helper), now shifted by 8.
        assert_eq!(
            inst.module.exported_func("apply"),
            Some(m.exported_func("apply").unwrap() + 8)
        );
        // The direct call to `helper` inside apply must be remapped.
        let apply = inst
            .module
            .local_func(inst.module.exported_func("apply").unwrap())
            .unwrap();
        assert!(apply.body.iter().any(|i| *i == Instr::Call(inst.remap(1))));
    }

    #[test]
    fn bodies_grow_but_preserve_original_instructions() {
        let m = sample_module();
        let inst = instrument(&m).unwrap();
        for (orig, rewritten) in m.funcs.iter().zip(&inst.module.funcs) {
            assert!(rewritten.body.len() > orig.body.len());
            // Every original non-call instruction still appears.
            for i in &orig.body {
                if !matches!(i, Instr::Call(_)) {
                    assert!(rewritten.body.contains(i), "{i:?} missing after rewrite");
                }
            }
        }
    }

    #[test]
    fn roundtrips_through_binary_format() {
        let m = sample_module();
        let inst = instrument(&m).unwrap();
        let bytes = crate::encode::encode(&inst.module);
        let decoded = crate::decode::decode(&bytes).unwrap();
        assert_eq!(decoded, inst.module);
    }

    #[test]
    fn instrument_rejects_invalid_module() {
        let mut b = ModuleBuilder::new();
        b.func(&[], &[], &[], vec![Instr::I32Add, Instr::End]);
        assert!(instrument(b.module()).is_err());
    }
}

#[cfg(test)]
mod remap_tests {
    use super::*;

    #[test]
    fn remap_shifts_local_functions_only() {
        let inst = Instrumented {
            module: crate::Module::new(),
            pre_imports: 3,
            hooks: HookIndices {
                site: 3,
                logi: 4,
                logsf: 5,
                logdf: 6,
                call_pre: 7,
                call_post: 8,
                func_begin: 9,
                func_end: 10,
            },
        };
        // Original imports keep their indices.
        assert_eq!(inst.remap(0), 0);
        assert_eq!(inst.remap(2), 2);
        // Local functions shift past the 8 hook imports.
        assert_eq!(inst.remap(3), 11);
        assert_eq!(inst.remap(10), 18);
    }
}
