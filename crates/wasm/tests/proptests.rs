//! Property tests over randomly generated (valid-by-construction) modules:
//! the binary format round-trips, the validator accepts what the generator
//! builds, and instrumentation preserves behaviour bit for bit.

use proptest::prelude::*;

use wasai_wasm::builder::ModuleBuilder;
use wasai_wasm::instr::Instr;
use wasai_wasm::types::{BlockType, ValType};
use wasai_wasm::Module;

/// One step of a stack program over i64 values, trap-free by construction.
#[derive(Debug, Clone)]
enum Step {
    Const(i64),
    GetParam(u8),
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Shl(u8),
    Rotl(u8),
    Popcnt,
    Eqz,
    EqConst(i64),
    IfNonZero,
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        any::<i64>().prop_map(Step::Const),
        (0u8..2).prop_map(Step::GetParam),
        Just(Step::Add),
        Just(Step::Sub),
        Just(Step::Mul),
        Just(Step::And),
        Just(Step::Or),
        Just(Step::Xor),
        (0u8..63).prop_map(Step::Shl),
        (0u8..63).prop_map(Step::Rotl),
        Just(Step::Popcnt),
        Just(Step::Eqz),
        any::<i64>().prop_map(Step::EqConst),
        Just(Step::IfNonZero),
    ]
}

/// Lower steps into a valid `(i64, i64) -> i64` function body. Tracks the
/// i64 stack depth so every instruction is well-typed; `IfNonZero` wraps
/// the current accumulator in a conditional that doubles it.
fn build_module(steps: &[Step]) -> Module {
    let mut b = ModuleBuilder::with_memory(1);
    let mut body: Vec<Instr> = vec![Instr::LocalGet(0)];
    let mut depth = 1usize; // i64 values on the stack
    for s in steps {
        match s {
            Step::Const(v) => {
                body.push(Instr::I64Const(*v));
                depth += 1;
            }
            Step::GetParam(p) => {
                body.push(Instr::LocalGet(*p as u32 % 2));
                depth += 1;
            }
            Step::Add | Step::Sub | Step::Mul | Step::And | Step::Or | Step::Xor if depth >= 2 => {
                body.push(match s {
                    Step::Add => Instr::I64Add,
                    Step::Sub => Instr::I64Sub,
                    Step::Mul => Instr::I64Mul,
                    Step::And => Instr::I64And,
                    Step::Or => Instr::I64Or,
                    _ => Instr::I64Xor,
                });
                depth -= 1;
            }
            Step::Shl(k) => {
                body.push(Instr::I64Const(*k as i64));
                body.push(Instr::I64Shl);
            }
            Step::Rotl(k) => {
                body.push(Instr::I64Const(*k as i64));
                body.push(Instr::I64Rotl);
            }
            Step::Popcnt => body.push(Instr::I64Popcnt),
            Step::Eqz => {
                body.push(Instr::I64Eqz);
                body.push(Instr::I64ExtendI32U);
            }
            Step::EqConst(v) => {
                body.push(Instr::I64Const(*v));
                body.push(Instr::I64Eq);
                body.push(Instr::I64ExtendI32U);
            }
            Step::IfNonZero => {
                // if (top != 0) { top *= 2 } — consumes and restores depth.
                body.push(Instr::LocalSet(2));
                body.push(Instr::LocalGet(2));
                body.push(Instr::I64Const(0));
                body.push(Instr::I64Ne);
                body.push(Instr::If(BlockType::Empty));
                body.push(Instr::LocalGet(2));
                body.push(Instr::I64Const(2));
                body.push(Instr::I64Mul);
                body.push(Instr::LocalSet(2));
                body.push(Instr::End);
                body.push(Instr::LocalGet(2));
            }
            _ => {} // binary op with depth < 2: skip
        }
    }
    // Fold everything down to one value.
    while depth > 1 {
        body.push(Instr::I64Xor);
        depth -= 1;
    }
    body.push(Instr::End);
    let f = b.func(
        &[ValType::I64, ValType::I64],
        &[ValType::I64],
        &[ValType::I64],
        body,
    );
    b.export_func("f", f);
    b.build()
}

fn run(module: Module, a: i64, b_arg: i64, trace: bool) -> i64 {
    use wasai_vm::{CompiledModule, Fuel, Host, HostFnId, Instance, Value};

    struct H(wasai_vm::TraceSink);
    impl Host for H {
        fn resolve(
            &mut self,
            module: &str,
            name: &str,
            _ty: &wasai_wasm::types::FuncType,
        ) -> Option<HostFnId> {
            wasai_vm::host::hooks::hook_offset(module, name).map(HostFnId)
        }
        fn call(
            &mut self,
            id: HostFnId,
            args: &[Value],
            _mem: &mut wasai_vm::LinearMemory,
        ) -> Result<Option<Value>, wasai_vm::Trap> {
            wasai_vm::host::hooks::dispatch(&mut self.0, id.0, args);
            Ok(None)
        }
    }

    let module = if trace {
        wasai_wasm::instrument::instrument(&module)
            .expect("instrumentable")
            .module
    } else {
        module
    };
    let compiled = CompiledModule::compile(module).expect("compiles");
    let mut host = H(wasai_vm::TraceSink::new());
    let mut inst = Instance::new(compiled, &mut host).expect("instantiates");
    let mut fuel = Fuel(10_000_000);
    let r = inst
        .invoke_export(
            &mut host,
            "f",
            &[Value::I64(a), Value::I64(b_arg)],
            &mut fuel,
        )
        .expect("trap-free by construction");
    r[0].as_i64()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generated modules validate and survive the binary round trip.
    #[test]
    fn roundtrip_and_validate(steps in prop::collection::vec(arb_step(), 0..40)) {
        let m = build_module(&steps);
        wasai_wasm::validate::validate(&m).expect("valid by construction");
        let bytes = wasai_wasm::encode::encode(&m);
        let back = wasai_wasm::decode::decode(&bytes).expect("decodes");
        prop_assert_eq!(back, m);
    }

    /// Instrumentation is semantics-preserving on random programs.
    #[test]
    fn instrumentation_preserves_behaviour(
        steps in prop::collection::vec(arb_step(), 0..30),
        a: i64,
        b: i64,
    ) {
        let m = build_module(&steps);
        let plain = run(m.clone(), a, b, false);
        let traced = run(m, a, b, true);
        prop_assert_eq!(plain, traced);
    }

    /// The instrumented module still validates, whatever the program.
    #[test]
    fn instrumented_modules_validate(steps in prop::collection::vec(arb_step(), 0..40)) {
        let m = build_module(&steps);
        let inst = wasai_wasm::instrument::instrument(&m).expect("instrumentable");
        wasai_wasm::validate::validate(&inst.module).expect("instrumented output valid");
    }

    /// LEB128 encoders round-trip through the decoder at every width.
    #[test]
    fn leb128_roundtrip(v: u64, s: i64) {
        let mut buf = Vec::new();
        wasai_wasm::encode::write_u64(&mut buf, v);
        wasai_wasm::encode::write_i64(&mut buf, s);
        // Decode through a module containing the const (exercises the
        // public decoder path).
        let mut b = ModuleBuilder::new();
        b.func(&[], &[ValType::I64], &[], vec![Instr::I64Const(s), Instr::End]);
        let m = b.build();
        let bytes = wasai_wasm::encode::encode(&m);
        prop_assert_eq!(wasai_wasm::decode::decode(&bytes).expect("decodes"), m);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The decoder never panics on arbitrary bytes — it returns errors.
    #[test]
    fn decoder_is_panic_free(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = wasai_wasm::decode::decode(&bytes);
    }

    /// Arbitrary mutations of a valid binary never panic the decoder, and
    /// anything that still decodes can be re-encoded losslessly.
    #[test]
    fn mutated_binaries_are_handled(
        steps in prop::collection::vec(arb_step(), 0..10),
        flips in prop::collection::vec((any::<u16>(), any::<u8>()), 1..8),
    ) {
        let m = build_module(&steps);
        let mut bytes = wasai_wasm::encode::encode(&m);
        for (pos, val) in flips {
            let len = bytes.len();
            bytes[pos as usize % len] = val;
        }
        if let Ok(decoded) = wasai_wasm::decode::decode(&bytes) {
            let re = wasai_wasm::encode::encode(&decoded);
            prop_assert_eq!(wasai_wasm::decode::decode(&re).expect("re-decodes"), decoded);
        }
    }
}
