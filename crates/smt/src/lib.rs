#![warn(missing_docs)]

//! # wasai-smt — a self-contained QF_BV solver (the Z3 substitute)
//!
//! The paper's Symback uses Z3 4.8.6 to solve flipped branch constraints
//! (§3.4.4). The native Z3 library is not part of this workspace's sanctioned
//! dependency set, so this crate implements the fragment WASAI actually
//! needs, from scratch:
//!
//! - [`term`]: a hash-consed, constant-folding bitvector term DAG
//!   (widths 1–64 — every Wasm value; the 128-bit `asset` struct is two
//!   64-bit memory words);
//! - [`bitblast`]: Tseitin lowering to CNF — ripple-carry adders, shift-add
//!   multipliers, restoring dividers, barrel shifters and a popcount adder
//!   tree (the obfuscator's primitive, §4.3);
//! - [`sat`]: a CDCL SAT solver (two-watched literals, 1UIP learning,
//!   VSIDS activities, phase saving, restarts);
//! - [`solver`]: the assert/check/model frontend with the deterministic
//!   resource budget that replaces the paper's 3,000 ms cap;
//! - [`canon`] / [`cache`] / [`prefix`]: the reuse layer — pool-independent
//!   canonical query keys, a fleet-shared memo cache, and shared-prefix
//!   incremental solving for flip-query families. All three are
//!   observationally identical to calling [`check`] from scratch.
//! - [`persist`] / [`portfolio`]: the fleet-scale layer — journal-grade
//!   on-disk warm-start persistence for the fleet cache, and a
//!   deterministic portfolio racer for hard queries (out-of-band
//!   diagnostics only: the reference configuration's answer is always the
//!   reported one, so results stay bit-identical at any `k`).
//!
//! The byte-array role Z3 plays in the paper (its `Store`/`Select` memory
//! model, §3.4.1) is implemented in `wasai-symex` directly: WASAI's memory
//! model keys cells by *concrete* trace addresses, so the solver only ever
//! sees plain bitvector constraints plus fresh variables for symbolic-load
//! objects ⟨a, s⟩.
//!
//! # Examples
//!
//! Solve the Fake-EOS-guard shape — "what `code` makes this branch flip?":
//!
//! ```
//! use wasai_smt::{TermPool, Budget, check, SolveResult};
//!
//! let mut pool = TermPool::new();
//! let code = pool.var("code", 64);
//! let token = pool.bv_const(0x5530ea033482a600, 64); // N(eosio.token)
//! let guard = pool.eq(code, token);
//! let (result, _stats) = check(&pool, &[guard], Budget::default());
//! match result {
//!     SolveResult::Sat(model) => {
//!         assert_eq!(model.value_by_name(&pool, "code"), Some(0x5530ea033482a600));
//!     }
//!     other => panic!("expected sat, got {other:?}"),
//! }
//! ```

pub mod bitblast;
pub mod cache;
pub mod canon;
pub mod deadline;
pub mod persist;
pub mod portfolio;
pub mod prefix;
pub mod sat;
pub mod solver;
pub mod term;

pub use cache::{cacheable, CachedQuery, SolverCache};
pub use canon::{query_key, QueryKey, CANON_VERSION};
pub use deadline::Deadline;
pub use prefix::PrefixSolver;
pub use solver::{check, Budget, Model, SolveResult, SolveStats};
pub use term::{BvOp, CmpOp, Sort, TermId, TermKind, TermPool};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_op() -> impl Strategy<Value = BvOp> {
        prop_oneof![
            Just(BvOp::Add),
            Just(BvOp::Sub),
            Just(BvOp::Mul),
            Just(BvOp::UDiv),
            Just(BvOp::URem),
            Just(BvOp::SDiv),
            Just(BvOp::SRem),
            Just(BvOp::And),
            Just(BvOp::Or),
            Just(BvOp::Xor),
            Just(BvOp::Shl),
            Just(BvOp::LShr),
            Just(BvOp::AShr),
            Just(BvOp::Rotl),
            Just(BvOp::Rotr),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The bit-blaster and the term evaluator must agree: for random op
        /// and constants x, y, asserting `op(X, Y) == eval(op, x, y) ∧ X == x
        /// ∧ Y == y` is satisfiable.
        #[test]
        fn bitblast_agrees_with_eval(op in arb_op(), x: u64, y: u64) {
            let w = 16;
            let (x, y) = (x & 0xffff, y & 0xffff);
            let mut p = TermPool::new();
            let vx = p.var("x", w);
            let vy = p.var("y", w);
            let cx = p.bv_const(x, w);
            let cy = p.bv_const(y, w);
            let sym = p.bv(op, vx, vy);
            let expected = {
                let folded = p.bv(op, cx, cy);
                p.as_const(folded).expect("constants fold")
            };
            let cexp = p.bv_const(expected, w);
            let a1 = p.eq(vx, cx);
            let a2 = p.eq(vy, cy);
            let a3 = p.eq(sym, cexp);
            let (res, _) = check(&p, &[a1, a2, a3], Budget::default());
            prop_assert!(matches!(res, SolveResult::Sat(_)),
                "op {:?} with x={:#x} y={:#x} expected {:#x}", op, x, y, expected);
        }

        /// Conversely, forcing the op result to differ from the true value
        /// while pinning both operands must be Unsat.
        #[test]
        fn bitblast_rejects_wrong_results(op in arb_op(), x: u64, y: u64) {
            let w = 8;
            let (x, y) = (x & 0xff, y & 0xff);
            let mut p = TermPool::new();
            let vx = p.var("x", w);
            let vy = p.var("y", w);
            let cx = p.bv_const(x, w);
            let cy = p.bv_const(y, w);
            let sym = p.bv(op, vx, vy);
            let expected = {
                let folded = p.bv(op, cx, cy);
                p.as_const(folded).expect("constants fold")
            };
            let wrong = p.bv_const(expected ^ 1, w);
            let a1 = p.eq(vx, cx);
            let a2 = p.eq(vy, cy);
            let a3 = p.eq(sym, wrong);
            let (res, _) = check(&p, &[a1, a2, a3], Budget::default());
            prop_assert_eq!(res, SolveResult::Unsat);
        }

        /// Any model returned for a random comparison constraint actually
        /// satisfies it under `eval`.
        #[test]
        fn models_validate_under_eval(c: u64, ult in any::<bool>()) {
            let w = 32;
            let c = c & 0xffff_ffff;
            let mut p = TermPool::new();
            let x = p.var("x", w);
            let cc = p.bv_const(c, w);
            let a = if ult { p.cmp(CmpOp::Ult, x, cc) } else { p.cmp(CmpOp::Slt, cc, x) };
            let (res, _) = check(&p, &[a], Budget::default());
            if let SolveResult::Sat(m) = res {
                let vals = m.to_vec(&p);
                prop_assert_eq!(p.eval(a, &vals), 1);
            }
        }
    }
}
