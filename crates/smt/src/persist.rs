//! On-disk persistence for the fleet [`SolverCache`] — the warm-start layer
//! that lets a sweep over the same corpus skip every query a previous run
//! already solved, across process (and machine) boundaries.
//!
//! The file carries exactly what the in-memory cache does: canonical
//! [`QueryKey`] bytes mapped to the pool-independent
//! [`CachedQuery`] (verdict, named model values, exact solve statistics).
//! Because a cache hit replays the solver's result *and statistics*
//! bit-for-bit, a warm run's reports and traces are byte-identical to the
//! cold run that wrote the file — persistence is invisible except in
//! wall-clock time.
//!
//! Durability discipline mirrors the fleet journal
//! (`wasai-core`'s `fleet/journal.rs`), which cannot be imported here
//! (`wasai-core` depends on this crate), so the small pieces — FNV-1a
//! digests with field separators, tmp+fsync+rename creation, torn-tail
//! tolerance, fail-fast on interior corruption — are reimplemented in the
//! same shape:
//!
//! - **Header** pins the file format version *and* the canonical key
//!   encoding version ([`crate::canon::CANON_VERSION`]): keys written under
//!   one encoding must never be interpreted under another.
//! - **Records** are one line each — hex key bytes, verdict tag, the four
//!   statistics, hex-named model pairs — ending in an FNV-1a digest over
//!   every preceding field.
//! - **Create/flush** writes a tmp sibling, fsyncs, renames over the
//!   destination, and fsyncs the parent directory, so a crash leaves either
//!   the old file or the new one, never a hybrid.
//! - **Load** tolerates a torn *final* line (dropped), fails fast on any
//!   earlier corruption, and refuses records that the cacheability policy
//!   ([`crate::cache::cacheable`]) would never have admitted: an `Unknown`
//!   whose conflict count never reached the key's cap is a
//!   deadline-truncation artifact and must not poison warm runs.
//!
//! Records are saved in key order (the cache snapshot is sorted), which
//! together with deterministic eviction makes the saved file a pure
//! function of the entries ever stored — byte-identical at any worker
//! count or process split.

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::cache::{CachedOutcome, CachedQuery, SolverCache};
use crate::canon::{QueryKey, CANON_VERSION};
use crate::solver::SolveStats;

/// Version of the on-disk record layout. Bump on any change to the line
/// format; the header also pins [`CANON_VERSION`] separately so either kind
/// of drift invalidates old files.
pub const CACHE_FORMAT_VERSION: u64 = 1;

/// FNV-1a, the digest the journal uses: tiny, dependency-free, and
/// mismatch detection is against torn writes and fat-fingered edits, not
/// adversaries.
struct Fnv(u64);

impl Fnv {
    const fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Feed one field plus a separator byte, so adjacent fields can never
    /// alias ("ab"+"c" vs "a"+"bc").
    fn field(&mut self, bytes: &[u8]) {
        self.write(bytes);
        self.write(&[0x1f]);
    }

    fn finish(self) -> u64 {
        self.0
    }
}

fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn unhex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex field".into());
    }
    (0..s.len() / 2)
        .map(|i| {
            u8::from_str_radix(&s[2 * i..2 * i + 2], 16).map_err(|_| "invalid hex field".into())
        })
        .collect()
}

fn header() -> String {
    format!("wasai-solver-cache v{CACHE_FORMAT_VERSION} canon{CANON_VERSION}")
}

/// Render one record line (without the trailing newline).
fn render_record(key: &QueryKey, q: &CachedQuery) -> String {
    let empty: &[(String, u64)] = &[];
    let (tag, pairs) = match &q.outcome {
        CachedOutcome::Sat(p) => ("sat", p.as_slice()),
        CachedOutcome::Unsat => ("unsat", empty),
        CachedOutcome::Unknown => ("unknown", empty),
    };
    let mut tokens: Vec<String> = vec![
        hex(key.as_bytes()),
        tag.to_string(),
        q.stats.conflicts.to_string(),
        q.stats.propagations.to_string(),
        q.stats.sat_vars.to_string(),
        q.stats.sat_clauses.to_string(),
    ];
    for (name, value) in pairs {
        tokens.push(format!("{}={value:x}", hex(name.as_bytes())));
    }
    let mut f = Fnv::new();
    for t in &tokens {
        f.field(t.as_bytes());
    }
    tokens.push(format!("{:016x}", f.finish()));
    tokens.join(" ")
}

/// Parse one record line. Errors name what broke; the caller prefixes the
/// line number.
fn parse_record(line: &str) -> Result<(QueryKey, CachedQuery), String> {
    let tokens: Vec<&str> = line.split(' ').collect();
    if tokens.len() < 7 {
        return Err("short record".into());
    }
    let (body, digest) = tokens.split_at(tokens.len() - 1);
    let mut f = Fnv::new();
    for t in body {
        f.field(t.as_bytes());
    }
    let expected = format!("{:016x}", f.finish());
    if digest[0] != expected {
        return Err("digest mismatch".into());
    }
    let key = QueryKey::from_bytes(unhex(body[0])?);
    let conflicts: u64 = body[2].parse().map_err(|_| "bad conflicts field")?;
    let propagations: u64 = body[3].parse().map_err(|_| "bad propagations field")?;
    let sat_vars: usize = body[4].parse().map_err(|_| "bad vars field")?;
    let sat_clauses: usize = body[5].parse().map_err(|_| "bad clauses field")?;
    let stats = SolveStats {
        conflicts,
        propagations,
        sat_vars,
        sat_clauses,
    };
    let outcome = match body[1] {
        "sat" => {
            let mut pairs = Vec::with_capacity(body.len() - 6);
            for pair in &body[6..] {
                let (name_hex, value_hex) = pair.split_once('=').ok_or("malformed model pair")?;
                let name = String::from_utf8(unhex(name_hex)?)
                    .map_err(|_| "model name is not utf-8".to_string())?;
                let value = u64::from_str_radix(value_hex, 16)
                    .map_err(|_| "bad model value".to_string())?;
                pairs.push((name, value));
            }
            CachedOutcome::Sat(pairs)
        }
        "unsat" if body.len() == 6 => CachedOutcome::Unsat,
        "unknown" if body.len() == 6 => {
            // Refuse what `cacheable` would have refused at store time: a
            // conflict-capped Unknown always records conflicts >= the cap
            // (that is what "capped" means), so a smaller count can only be
            // a deadline-truncated Unknown smuggled in by a foreign writer.
            if conflicts < key.max_conflicts() {
                return Err("deadline-truncated Unknown refused".into());
            }
            CachedOutcome::Unknown
        }
        _ => return Err("unknown verdict tag".into()),
    };
    Ok((key, CachedQuery { outcome, stats }))
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Best-effort fsync of `path`'s parent directory, making the rename
/// durable. Failure is ignored: some filesystems refuse directory fsync,
/// and the worst case is losing the whole (reproducible) cache file.
fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
}

/// Serialize `cache` to `path` atomically (tmp sibling + fsync + rename +
/// parent fsync). Returns the number of records written.
pub fn save(path: &Path, cache: &SolverCache) -> Result<usize, String> {
    let entries = cache.snapshot();
    let tmp = tmp_sibling(path);
    let write = || -> std::io::Result<()> {
        let mut f = File::create(&tmp)?;
        let mut buf = String::with_capacity(64 * (entries.len() + 1));
        buf.push_str(&header());
        buf.push('\n');
        for (key, q) in &entries {
            buf.push_str(&render_record(key, q));
            buf.push('\n');
        }
        f.write_all(buf.as_bytes())?;
        f.sync_all()?;
        fs::rename(&tmp, path)?;
        Ok(())
    };
    if let Err(e) = write() {
        let _ = fs::remove_file(&tmp);
        return Err(format!("solver cache {}: {e}", path.display()));
    }
    sync_parent_dir(path);
    Ok(entries.len())
}

/// Load a cache file into `cache` (via its normal store path, so capacity
/// policy applies). A missing file is an empty warm set, not an error; a
/// torn final line is dropped; any earlier corruption — and any record the
/// cacheability policy forbids — is fatal. Returns the number of records
/// loaded.
pub fn load_into(path: &Path, cache: &SolverCache) -> Result<usize, String> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(format!("solver cache {}: {e}", path.display())),
    };
    let mut lines = text.split_inclusive('\n');
    let expected = header();
    match lines.next() {
        Some(first) if first.strip_suffix('\n') == Some(expected.as_str()) => {}
        Some(first) if first.trim_end().starts_with("wasai-solver-cache") => {
            return Err(format!(
                "solver cache {}: version mismatch (found {:?}, expected {:?})",
                path.display(),
                first.trim_end(),
                expected
            ));
        }
        _ => {
            return Err(format!(
                "solver cache {}: not a solver cache file",
                path.display()
            ));
        }
    }
    let records: Vec<&str> = lines.collect();
    let mut loaded = 0usize;
    for (i, raw) in records.iter().enumerate() {
        let line_no = i + 2; // 1-based, after the header
        let last = i + 1 == records.len();
        let torn = !raw.ends_with('\n');
        let parsed = parse_record(raw.trim_end_matches('\n'));
        match parsed {
            Ok((key, q)) if !torn => {
                cache.store(key, q);
                loaded += 1;
            }
            // A torn or unparsable *final* line is the tail of an
            // interrupted write: drop it. (The record before it was
            // fsynced whole, so nothing else is suspect.) A parse failure
            // anywhere earlier means interior corruption — refuse the
            // file rather than warm-start from a lie.
            Ok(_) | Err(_) if last => break,
            Err(e) => {
                return Err(format!(
                    "solver cache {} line {line_no}: {e}",
                    path.display()
                ));
            }
            Ok(_) => unreachable!("non-torn, non-last records are stored"),
        }
    }
    Ok(loaded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::query_key;
    use crate::solver::{check, Budget};
    use crate::term::{CmpOp, TermPool};

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wasai-persist-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    /// A cache warmed with a few real solves: one Sat, one Unsat, one
    /// conflict-capped (legitimate) Unknown.
    fn warmed() -> SolverCache {
        let cache = SolverCache::evicting();
        let mut p = TermPool::new();
        let x = p.var("arg0.amount", 64);

        let sat = {
            let c = p.bv_const(41, 64);
            p.eq(x, c)
        };
        let unsat = {
            let c = p.bv_const(3, 64);
            let lt = p.cmp(CmpOp::Ult, x, c);
            let ge = p.not(lt);
            let one = p.bv_const(1, 64);
            let lt1 = p.cmp(CmpOp::Ult, x, one);
            p.and(ge, lt1)
        };
        for q in [sat, unsat] {
            let budget = Budget::default();
            let key = query_key(&p, &[q], None, budget.max_conflicts);
            let (res, stats) = check(&p, &[q], budget);
            cache.store(key, CachedQuery::encode(&p, &res, stats));
        }
        // A capped Unknown records conflicts >= the cap.
        let key = query_key(&p, &[sat], None, 7);
        cache.store(
            key,
            CachedQuery {
                outcome: CachedOutcome::Unknown,
                stats: SolveStats {
                    conflicts: 7,
                    propagations: 100,
                    sat_vars: 64,
                    sat_clauses: 10,
                },
            },
        );
        cache
    }

    fn entries(c: &SolverCache) -> Vec<(QueryKey, CachedQuery)> {
        c.snapshot()
    }

    #[test]
    fn round_trip_is_lossless_and_canonical() {
        let dir = scratch("roundtrip");
        let path = dir.join("cache.wsc");
        let cache = warmed();
        let written = save(&path, &cache).expect("save");
        assert_eq!(written, 3);

        let back = SolverCache::evicting();
        let loaded = load_into(&path, &back).expect("load");
        assert_eq!(loaded, 3);
        assert_eq!(entries(&cache), entries(&back));

        // Saving the reloaded cache reproduces the file byte-for-byte:
        // the format is canonical (sorted, no timestamps).
        let path2 = dir.join("cache2.wsc");
        save(&path2, &back).expect("save again");
        assert_eq!(
            fs::read(&path).expect("read 1"),
            fs::read(&path2).expect("read 2")
        );
    }

    #[test]
    fn missing_file_is_an_empty_warm_set() {
        let dir = scratch("missing");
        let cache = SolverCache::new();
        let loaded = load_into(&dir.join("nope.wsc"), &cache).expect("missing ok");
        assert_eq!(loaded, 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn version_mismatch_is_refused() {
        let dir = scratch("version");
        let path = dir.join("cache.wsc");
        save(&path, &warmed()).expect("save");
        let text = fs::read_to_string(&path).expect("read");
        let bumped = text.replace(
            &format!("v{CACHE_FORMAT_VERSION} canon{CANON_VERSION}"),
            "v999 canon1",
        );
        fs::write(&path, bumped).expect("write");
        let err = load_into(&path, &SolverCache::new()).expect_err("must refuse");
        assert!(err.contains("version mismatch"), "{err}");

        fs::write(&path, "not a cache\n").expect("write garbage");
        let err = load_into(&path, &SolverCache::new()).expect_err("must refuse");
        assert!(err.contains("not a solver cache file"), "{err}");
    }

    #[test]
    fn digest_tamper_is_fatal() {
        let dir = scratch("tamper");
        let path = dir.join("cache.wsc");
        save(&path, &warmed()).expect("save");
        let text = fs::read_to_string(&path).expect("read");
        // Flip a statistics digit in the first record (line 2).
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        let tokens: Vec<String> = lines[1].split(' ').map(String::from).collect();
        let mut tampered = tokens.clone();
        tampered[3] = format!("{}9", tokens[3]); // propagations field
        lines[1] = tampered.join(" ");
        fs::write(&path, format!("{}\n", lines.join("\n"))).expect("write");
        let err = load_into(&path, &SolverCache::new()).expect_err("must refuse");
        assert!(
            err.contains("line 2") && err.contains("digest mismatch"),
            "{err}"
        );
    }

    #[test]
    fn torn_tail_is_dropped_earlier_corruption_is_fatal() {
        let dir = scratch("torn");
        let path = dir.join("cache.wsc");
        save(&path, &warmed()).expect("save");
        let text = fs::read_to_string(&path).expect("read");

        // Cut into the final line: the record is dropped, the rest loads.
        fs::write(&path, &text[..text.len() - 10]).expect("write torn");
        let cache = SolverCache::new();
        let loaded = load_into(&path, &cache).expect("torn tail tolerated");
        assert_eq!(loaded, 2);
        assert_eq!(cache.len(), 2);

        // The same garbage mid-file is fatal.
        let mut lines: Vec<&str> = text.lines().collect();
        lines.insert(2, "garbage that is not a record");
        fs::write(&path, format!("{}\n", lines.join("\n"))).expect("write");
        let err = load_into(&path, &SolverCache::new()).expect_err("must refuse");
        assert!(err.contains("line 3"), "{err}");
    }

    #[test]
    fn truncated_unknown_is_refused_on_load() {
        let dir = scratch("truncated");
        let path = dir.join("cache.wsc");
        // Hand-assemble a record whose Unknown never reached its cap — the
        // signature of a deadline-truncated outcome `cacheable` would have
        // rejected at store time.
        let cache = SolverCache::new();
        let mut p = TermPool::new();
        let x = p.var("x", 8);
        let c = p.bv_const(1, 8);
        let q = p.eq(x, c);
        let key = query_key(&p, &[q], None, 1000);
        cache.store(
            key,
            CachedQuery {
                outcome: CachedOutcome::Unknown,
                stats: SolveStats {
                    conflicts: 12, // < 1000: truncated, not capped
                    propagations: 50,
                    sat_vars: 8,
                    sat_clauses: 4,
                },
            },
        );
        save(&path, &cache).expect("save");
        // Append a healthy record after it so the bad one is not the
        // droppable tail.
        let healthy = warmed();
        let text = fs::read_to_string(&path).expect("read");
        let healthy_path = dir.join("healthy.wsc");
        save(&healthy_path, &healthy).expect("save healthy");
        let healthy_text = fs::read_to_string(&healthy_path).expect("read healthy");
        let extra = healthy_text.lines().nth(1).expect("a record");
        fs::write(&path, format!("{text}{extra}\n")).expect("write");

        let err = load_into(&path, &SolverCache::new()).expect_err("must refuse");
        assert!(err.contains("deadline-truncated Unknown"), "{err}");
    }
}
