//! A CDCL SAT solver with two-watched-literal propagation, 1UIP clause
//! learning, VSIDS-style activities, phase saving and Luby restarts.
//!
//! This is the engine under the bit-blaster ([`crate::bitblast`]); together
//! they replace Z3 for the QF_BV fragment WASAI emits. The conflict budget
//! implements the paper's "at most 3,000 ms in solving an SMT problem"
//! resource cap (§4) deterministically.

use crate::deadline::Deadline;

/// Search steps (propagate/decide rounds) between wall-clock deadline polls.
///
/// Polling costs one `Instant::now()`; at this interval the overhead is
/// unmeasurable while an expired deadline still stops the search within
/// microseconds.
pub const DEADLINE_POLL_INTERVAL: u32 = 1024;

/// A literal: variable index shifted left once, LSB = negated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lit(pub u32);

impl Lit {
    /// Positive literal of a variable.
    pub fn pos(var: u32) -> Lit {
        Lit(var << 1)
    }

    /// Negative literal of a variable.
    pub fn neg(var: u32) -> Lit {
        Lit((var << 1) | 1)
    }

    /// The underlying variable.
    pub fn var(self) -> u32 {
        self.0 >> 1
    }

    /// True if this is the negated polarity.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complementary literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

/// Result of a SAT query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatOutcome {
    /// A satisfying assignment exists (read it with [`SatSolver::value`]).
    Sat,
    /// No satisfying assignment exists.
    Unsat,
    /// The conflict budget ran out.
    Unknown,
}

const UNASSIGNED: i8 = -1;

/// A CDCL search configuration — the knobs the portfolio racer varies
/// (restart schedule, phase heuristic, activity decay). Every field is
/// deterministic; two solves of the same instance under the same config
/// produce identical searches.
///
/// [`SearchConfig::DEFAULT`] reproduces [`SatSolver::solve`] exactly: the
/// default-config search IS the historical search, bit for bit, which is
/// what lets the portfolio layer report the reference configuration's
/// result unconditionally.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchConfig {
    /// Initial restart interval in conflicts; doubles after each restart.
    pub restart_base: u64,
    /// Decide with the saved phase (classic phase saving). When off, every
    /// decision uses [`SearchConfig::default_phase`].
    pub phase_saving: bool,
    /// Decision polarity used when phase saving is off.
    pub default_phase: bool,
    /// Per-conflict growth factor of the VSIDS activity increment.
    pub decay: f64,
}

impl SearchConfig {
    /// The reference configuration (what [`SatSolver::solve`] runs).
    pub const DEFAULT: SearchConfig = SearchConfig {
        restart_base: 64,
        phase_saving: true,
        default_phase: false,
        decay: 1.05,
    };
}

impl Default for SearchConfig {
    fn default() -> SearchConfig {
        SearchConfig::DEFAULT
    }
}

/// The solver.
///
/// `Clone` snapshots the complete solver state — clause database, trail,
/// activities, counters. [`crate::prefix::PrefixSolver`] uses this to fork a
/// shared path-prefix instance per flip query, which is what makes
/// shared-prefix solving bit-for-bit identical to solving from scratch.
#[derive(Debug, Default, Clone)]
pub struct SatSolver {
    /// Clause literal storage; index = clause id.
    clauses: Vec<Vec<Lit>>,
    /// Watch lists per literal code.
    watches: Vec<Vec<u32>>,
    /// Assignment per variable: -1 unassigned, 0 false, 1 true.
    assign: Vec<i8>,
    /// Saved phase per variable.
    phase: Vec<bool>,
    /// Decision level per variable.
    level: Vec<u32>,
    /// Reason clause per variable (u32::MAX = decision/none).
    reason: Vec<u32>,
    /// Assignment trail.
    trail: Vec<Lit>,
    /// Trail indices at each decision level.
    trail_lim: Vec<usize>,
    /// Propagation queue head.
    qhead: usize,
    /// VSIDS activity per variable.
    activity: Vec<f64>,
    var_inc: f64,
    /// Set when an empty clause was added.
    unsat: bool,
    /// Conflicts seen so far (for budgets and restarts).
    pub conflicts: u64,
    /// Propagations performed (cost metric for the virtual clock).
    pub propagations: u64,
}

impl SatSolver {
    /// A fresh solver.
    pub fn new() -> Self {
        SatSolver {
            var_inc: 1.0,
            ..Default::default()
        }
    }

    /// Allocate a new variable, returning its index.
    pub fn new_var(&mut self) -> u32 {
        let v = self.assign.len() as u32;
        self.assign.push(UNASSIGNED);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(u32::MAX);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses (original + learnt).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The literals of clause `id` (ids are dense; learnt clauses append).
    /// The prefix solver's clause-sharing mode harvests learnt clauses
    /// through this.
    pub fn clause(&self, id: usize) -> &[Lit] {
        &self.clauses[id]
    }

    /// Current value of a literal: 1 true, 0 false, -1 unassigned.
    fn lit_value(&self, l: Lit) -> i8 {
        let a = self.assign[l.var() as usize];
        if a == UNASSIGNED {
            UNASSIGNED
        } else if l.is_neg() {
            1 - a
        } else {
            a
        }
    }

    /// The model value of a variable after [`SatOutcome::Sat`].
    pub fn value(&self, var: u32) -> bool {
        self.assign[var as usize] == 1
    }

    /// Add a clause.
    ///
    /// Returns `false` if the clause made the instance trivially unsat.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert!(
            self.trail_lim.is_empty(),
            "clauses must be added at level 0"
        );
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            if self.lit_value(l) == 1 {
                return true; // satisfied at level 0
            }
            if self.lit_value(l) == 0 {
                continue; // already false at level 0: drop
            }
            if c.contains(&l) {
                continue;
            }
            if c.contains(&l.negate()) {
                return true; // tautology
            }
            c.push(l);
        }
        match c.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                self.enqueue(c[0], u32::MAX);
                if self.propagate().is_some() {
                    self.unsat = true;
                    return false;
                }
                true
            }
            _ => {
                let id = self.clauses.len() as u32;
                self.watches[c[0].negate().0 as usize].push(id);
                self.watches[c[1].negate().0 as usize].push(id);
                self.clauses.push(c);
                true
            }
        }
    }

    fn enqueue(&mut self, l: Lit, reason: u32) {
        let v = l.var() as usize;
        debug_assert_eq!(self.assign[v], UNASSIGNED);
        self.assign[v] = (!l.is_neg()) as i8;
        self.phase[v] = !l.is_neg();
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause id, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let l = self.trail[self.qhead];
            self.qhead += 1;
            self.propagations += 1;
            // Clauses watching ¬l (i.e., watching a literal that just became
            // false) are in watches[l].
            let mut i = 0;
            let watch_key = l.0 as usize;
            while i < self.watches[watch_key].len() {
                let cid = self.watches[watch_key][i];
                let false_lit = l.negate();
                // Normalize: watched lits are clause[0] and clause[1].
                {
                    let c = &mut self.clauses[cid as usize];
                    if c[0] == false_lit {
                        c.swap(0, 1);
                    }
                }
                let first = self.clauses[cid as usize][0];
                if self.lit_value(first) == 1 {
                    i += 1;
                    continue;
                }
                // Find a new literal to watch.
                let mut moved = false;
                let len = self.clauses[cid as usize].len();
                for k in 2..len {
                    let cand = self.clauses[cid as usize][k];
                    if self.lit_value(cand) != 0 {
                        self.clauses[cid as usize].swap(1, k);
                        self.watches[cand.negate().0 as usize].push(cid);
                        self.watches[watch_key].swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting.
                if self.lit_value(first) == 0 {
                    self.qhead = self.trail.len();
                    return Some(cid);
                }
                self.enqueue(first, cid);
                i += 1;
            }
        }
        None
    }

    fn bump(&mut self, var: u32) {
        self.activity[var as usize] += self.var_inc;
        if self.activity[var as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis; returns (learnt clause, backtrack level).
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot for the asserting lit
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut confl = confl;
        let mut index = self.trail.len();
        let cur_level = self.trail_lim.len() as u32;

        loop {
            let clause = self.clauses[confl as usize].clone();
            let start = if p.is_some() { 1 } else { 0 };
            for &q in &clause[start..] {
                let v = q.var() as usize;
                if !seen[v] && self.level[v] > 0 {
                    seen[v] = true;
                    self.bump(q.var());
                    if self.level[v] == cur_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Pick the next literal from the trail to resolve on.
            loop {
                index -= 1;
                if seen[self.trail[index].var() as usize] {
                    break;
                }
            }
            let lit = self.trail[index];
            seen[lit.var() as usize] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = lit.negate();
                break;
            }
            confl = self.reason[lit.var() as usize];
            p = Some(lit);
        }

        let bt_level = if learnt.len() == 1 {
            0
        } else {
            // Second-highest level in the clause.
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var() as usize] > self.level[learnt[max_i].var() as usize] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var() as usize]
        };
        (learnt, bt_level)
    }

    fn backtrack(&mut self, level: u32) {
        while self.trail_lim.len() as u32 > level {
            let lim = self.trail_lim.pop().expect("non-empty");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("non-empty");
                self.assign[l.var() as usize] = UNASSIGNED;
            }
        }
        self.qhead = self.trail.len();
    }

    fn decide(&mut self, cfg: &SearchConfig) -> Option<Lit> {
        let mut best: Option<u32> = None;
        let mut best_act = -1.0f64;
        for v in 0..self.num_vars() {
            if self.assign[v] == UNASSIGNED && self.activity[v] > best_act {
                best_act = self.activity[v];
                best = Some(v as u32);
            }
        }
        best.map(|v| {
            let polarity = if cfg.phase_saving {
                self.phase[v as usize]
            } else {
                cfg.default_phase
            };
            if polarity {
                Lit::pos(v)
            } else {
                Lit::neg(v)
            }
        })
    }

    /// Solve with a conflict budget and a cooperative wall-clock deadline.
    ///
    /// The deadline is polled every [`DEADLINE_POLL_INTERVAL`] search steps;
    /// once it passes, the search backtracks to the root and returns
    /// [`SatOutcome::Unknown`], exactly like conflict exhaustion. With
    /// [`Deadline::NONE`] the search is fully deterministic.
    pub fn solve(&mut self, max_conflicts: u64, deadline: Deadline) -> SatOutcome {
        self.solve_with_config(max_conflicts, deadline, &SearchConfig::DEFAULT)
    }

    /// [`SatSolver::solve`] under an explicit [`SearchConfig`]. The default
    /// config reproduces `solve` exactly; the portfolio layer runs variant
    /// configs on clones for out-of-band diagnostics.
    pub fn solve_with_config(
        &mut self,
        max_conflicts: u64,
        deadline: Deadline,
        cfg: &SearchConfig,
    ) -> SatOutcome {
        if self.unsat {
            return SatOutcome::Unsat;
        }
        if self.propagate().is_some() {
            self.unsat = true;
            return SatOutcome::Unsat;
        }
        // A query issued after the deadline should not start searching at
        // all — the caller's watchdog has already fired.
        if deadline.expired() {
            self.backtrack(0);
            return SatOutcome::Unknown;
        }
        let start_conflicts = self.conflicts;
        let mut restart_unit = cfg.restart_base;
        let mut next_restart = self.conflicts + restart_unit;
        let mut steps_since_poll: u32 = 0;
        loop {
            steps_since_poll += 1;
            if steps_since_poll >= DEADLINE_POLL_INTERVAL {
                steps_since_poll = 0;
                if deadline.expired() {
                    self.backtrack(0);
                    return SatOutcome::Unknown;
                }
            }
            if let Some(confl) = self.propagate() {
                self.conflicts += 1;
                if self.trail_lim.is_empty() {
                    self.unsat = true;
                    return SatOutcome::Unsat;
                }
                if self.conflicts - start_conflicts >= max_conflicts {
                    self.backtrack(0);
                    return SatOutcome::Unknown;
                }
                let (learnt, bt) = self.analyze(confl);
                self.backtrack(bt);
                let asserting = learnt[0];
                if learnt.len() == 1 {
                    self.enqueue(asserting, u32::MAX);
                } else {
                    let id = self.clauses.len() as u32;
                    self.watches[learnt[0].negate().0 as usize].push(id);
                    self.watches[learnt[1].negate().0 as usize].push(id);
                    self.clauses.push(learnt);
                    self.enqueue(asserting, id);
                }
                self.var_inc *= cfg.decay;
                if self.conflicts >= next_restart {
                    restart_unit = restart_unit.saturating_mul(2);
                    next_restart = self.conflicts + restart_unit;
                    self.backtrack(0);
                }
            } else {
                match self.decide(cfg) {
                    None => return SatOutcome::Sat,
                    Some(l) => {
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(l, u32::MAX);
                    }
                }
            }
        }
    }

    /// Undo all decisions, returning the solver to the root level.
    ///
    /// After a [`SatOutcome::Sat`] the trail still holds the model; call
    /// this once the model has been read and before adding further clauses
    /// (clauses must be added at level 0).
    pub fn backtrack_root(&mut self) {
        self.backtrack(0);
    }

    /// Solve under `assumptions`: each literal is decided (in order) before
    /// the free search, MiniSat-style.
    ///
    /// [`SatOutcome::Unsat`] here means *unsat under the assumptions*: the
    /// instance itself is not poisoned unless a root-level conflict proved
    /// it globally unsat, so the same solver can keep answering further
    /// assumption queries. Learnt clauses are derived by resolution from the
    /// clause database alone, so they remain valid across queries and
    /// successive queries get faster.
    pub fn solve_with_assumptions(
        &mut self,
        assumptions: &[Lit],
        max_conflicts: u64,
        deadline: Deadline,
    ) -> SatOutcome {
        if self.unsat {
            return SatOutcome::Unsat;
        }
        if self.propagate().is_some() {
            self.unsat = true;
            return SatOutcome::Unsat;
        }
        if deadline.expired() {
            self.backtrack(0);
            return SatOutcome::Unknown;
        }
        let start_conflicts = self.conflicts;
        let mut restart_unit = 64u64;
        let mut next_restart = self.conflicts + restart_unit;
        let mut steps_since_poll: u32 = 0;
        loop {
            steps_since_poll += 1;
            if steps_since_poll >= DEADLINE_POLL_INTERVAL {
                steps_since_poll = 0;
                if deadline.expired() {
                    self.backtrack(0);
                    return SatOutcome::Unknown;
                }
            }
            if let Some(confl) = self.propagate() {
                self.conflicts += 1;
                if self.trail_lim.is_empty() {
                    self.unsat = true;
                    return SatOutcome::Unsat;
                }
                if self.conflicts - start_conflicts >= max_conflicts {
                    self.backtrack(0);
                    return SatOutcome::Unknown;
                }
                let (learnt, bt) = self.analyze(confl);
                self.backtrack(bt);
                let asserting = learnt[0];
                if learnt.len() == 1 {
                    self.enqueue(asserting, u32::MAX);
                } else {
                    let id = self.clauses.len() as u32;
                    self.watches[learnt[0].negate().0 as usize].push(id);
                    self.watches[learnt[1].negate().0 as usize].push(id);
                    self.clauses.push(learnt);
                    self.enqueue(asserting, id);
                }
                self.var_inc *= 1.05;
                if self.conflicts >= next_restart {
                    restart_unit = restart_unit.saturating_mul(2);
                    next_restart = self.conflicts + restart_unit;
                    self.backtrack(0);
                }
            } else if (self.trail_lim.len()) < assumptions.len() {
                // Establish the next assumption as a decision.
                let a = assumptions[self.trail_lim.len()];
                match self.lit_value(a) {
                    1 => {
                        // Already implied: open an empty decision level so
                        // assumption index k always lives at level k+1.
                        self.trail_lim.push(self.trail.len());
                    }
                    0 => {
                        // The clause database (plus earlier assumptions)
                        // forces ¬a: unsat under these assumptions, but the
                        // instance itself stays healthy.
                        self.backtrack(0);
                        return SatOutcome::Unsat;
                    }
                    _ => {
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(a, u32::MAX);
                    }
                }
            } else {
                match self.decide(&SearchConfig::DEFAULT) {
                    None => return SatOutcome::Sat,
                    Some(l) => {
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(l, u32::MAX);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: i32) -> Lit {
        if v > 0 {
            Lit::pos(v as u32 - 1)
        } else {
            Lit::neg((-v) as u32 - 1)
        }
    }

    fn solver_with_vars(n: usize) -> SatSolver {
        let mut s = SatSolver::new();
        for _ in 0..n {
            s.new_var();
        }
        s
    }

    #[test]
    fn trivial_sat() {
        let mut s = solver_with_vars(2);
        s.add_clause(&[lit(1), lit(2)]);
        assert_eq!(s.solve(1000, Deadline::NONE), SatOutcome::Sat);
        assert!(s.value(0) || s.value(1));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = solver_with_vars(1);
        s.add_clause(&[lit(1)]);
        s.add_clause(&[lit(-1)]);
        assert_eq!(s.solve(1000, Deadline::NONE), SatOutcome::Unsat);
    }

    #[test]
    fn unit_propagation_chain() {
        // 1; ¬1∨2; ¬2∨3 → all true.
        let mut s = solver_with_vars(3);
        s.add_clause(&[lit(1)]);
        s.add_clause(&[lit(-1), lit(2)]);
        s.add_clause(&[lit(-2), lit(3)]);
        assert_eq!(s.solve(1000, Deadline::NONE), SatOutcome::Sat);
        assert!(s.value(0) && s.value(1) && s.value(2));
    }

    #[test]
    fn pigeonhole_2_into_1_is_unsat() {
        // Two pigeons, one hole: p1h1, p2h1, ¬(p1h1∧p2h1).
        let mut s = solver_with_vars(2);
        s.add_clause(&[lit(1)]);
        s.add_clause(&[lit(2)]);
        s.add_clause(&[lit(-1), lit(-2)]);
        assert_eq!(s.solve(1000, Deadline::NONE), SatOutcome::Unsat);
    }

    #[test]
    fn xor_chain_requires_learning() {
        // Encode x1 ⊕ x2 = 1, x2 ⊕ x3 = 1, x1 ⊕ x3 = 1 (unsat: sum even).
        let mut s = solver_with_vars(3);
        let xor1 = |s: &mut SatSolver, a: i32, b: i32| {
            s.add_clause(&[lit(a), lit(b)]);
            s.add_clause(&[lit(-a), lit(-b)]);
        };
        xor1(&mut s, 1, 2);
        xor1(&mut s, 2, 3);
        xor1(&mut s, 1, 3);
        assert_eq!(s.solve(10_000, Deadline::NONE), SatOutcome::Unsat);
    }

    #[test]
    fn budget_exhaustion_returns_unknown() {
        // A moderately hard random-ish instance with budget 0 conflicts
        // can still be Sat if no conflict occurs, so build one that MUST
        // conflict: chain of implications with a final contradiction, then
        // give a budget of zero conflicts... level-0 conflicts are Unsat, so
        // instead use a satisfiable instance needing decisions and verify it
        // solves; Unknown is exercised in the bitblast tests on large
        // multiplications.
        let mut s = solver_with_vars(4);
        s.add_clause(&[lit(1), lit(2)]);
        s.add_clause(&[lit(3), lit(4)]);
        s.add_clause(&[lit(-1), lit(-3)]);
        assert_eq!(s.solve(1_000, Deadline::NONE), SatOutcome::Sat);
    }

    #[test]
    fn duplicate_and_tautological_clauses_are_harmless() {
        let mut s = solver_with_vars(2);
        s.add_clause(&[lit(1), lit(1), lit(2)]);
        s.add_clause(&[lit(1), lit(-1)]);
        assert_eq!(s.solve(100, Deadline::NONE), SatOutcome::Sat);
    }

    /// Deterministic small 3-SAT instances for the config tests.
    fn random_instances(cases: usize) -> Vec<Vec<Vec<Lit>>> {
        let mut seed = 0xdeadbeefu64;
        let mut rnd = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        (0..cases)
            .map(|_| {
                (0..34)
                    .map(|_| {
                        (0..3)
                            .map(|_| {
                                let v = rnd() % 8;
                                if rnd() % 2 == 1 {
                                    Lit::neg(v)
                                } else {
                                    Lit::pos(v)
                                }
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    fn load(clauses: &[Vec<Lit>]) -> SatSolver {
        let mut s = solver_with_vars(8);
        for c in clauses {
            s.add_clause(c);
        }
        s
    }

    /// The default config IS the historical search: outcome, conflict count
    /// and propagation count all match `solve` exactly. The portfolio's
    /// determinism guarantee rests on this.
    #[test]
    fn default_config_reproduces_solve_bit_for_bit() {
        for clauses in random_instances(30) {
            let mut a = load(&clauses);
            let mut b = load(&clauses);
            let ra = a.solve(100_000, Deadline::NONE);
            let rb = b.solve_with_config(100_000, Deadline::NONE, &SearchConfig::DEFAULT);
            assert_eq!(ra, rb);
            assert_eq!(a.conflicts, b.conflicts);
            assert_eq!(a.propagations, b.propagations);
            assert_eq!(a.num_clauses(), b.num_clauses());
        }
    }

    /// Variant configs change the search, never the verdict.
    #[test]
    fn variant_configs_agree_on_verdicts() {
        let variants = [
            SearchConfig {
                restart_base: 16,
                ..SearchConfig::DEFAULT
            },
            SearchConfig {
                phase_saving: false,
                default_phase: true,
                ..SearchConfig::DEFAULT
            },
            SearchConfig {
                decay: 1.2,
                restart_base: 256,
                ..SearchConfig::DEFAULT
            },
        ];
        for clauses in random_instances(20) {
            let reference = load(&clauses).solve(100_000, Deadline::NONE);
            for cfg in &variants {
                let mut s = load(&clauses);
                let got = s.solve_with_config(100_000, Deadline::NONE, cfg);
                assert_eq!(got, reference, "config {cfg:?} changed the verdict");
                if got == SatOutcome::Sat {
                    for c in &clauses {
                        assert!(c.iter().any(|l| s.value(l.var()) != l.is_neg()));
                    }
                }
            }
        }
    }

    #[test]
    fn many_random_3sat_instances_roundtrip() {
        // Deterministic LCG-generated small 3-SAT instances; check the model
        // actually satisfies the clauses whenever Sat is reported.
        let mut seed = 0x12345678u64;
        let mut rnd = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        for _case in 0..50 {
            let nvars = 8;
            let nclauses = 30;
            let mut s = solver_with_vars(nvars);
            let mut clauses = Vec::new();
            for _ in 0..nclauses {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = rnd() % nvars as u32;
                    let neg = rnd() % 2 == 1;
                    c.push(if neg { Lit::neg(v) } else { Lit::pos(v) });
                }
                clauses.push(c.clone());
                s.add_clause(&c);
            }
            if s.solve(100_000, Deadline::NONE) == SatOutcome::Sat {
                for c in &clauses {
                    assert!(
                        c.iter().any(|l| s.value(l.var()) != l.is_neg()),
                        "model does not satisfy {c:?}"
                    );
                }
            }
        }
    }
}
