//! Shared-prefix incremental solving for flip-query families.
//!
//! WASAI's adaptive-seed loop (§3.4.4) flips the conditionals of one trace
//! in execution order, so the i-th query asserts `path[..nᵢ] ∧ flipᵢ` with
//! nondecreasing `nᵢ`: every query's prefix extends the previous one. A
//! [`PrefixSolver`] blasts that chain of path constraints *once* into a
//! shared [`BitBlaster`]/SAT instance, and answers each query by forking
//! the instance ([`Clone`]) and adding only the flipped condition — N flips
//! of one trace cost one prefix blast instead of N.
//!
//! # Why determinism survives
//!
//! The fork inherits exactly the clause database, trail, counters and gate
//! caches that a from-scratch [`check`] of `path[..nᵢ]` would have built
//! (same assertion order, same preprocessing, hash-consed term identity),
//! so extending it with `flipᵢ` and solving yields bit-identical results
//! *and* [`SolveStats`] — the reuse layer is observationally invisible, and
//! campaign reports stay byte-identical whether it is on or off. What is
//! saved is real work: the prefix's unit propagations and Tseitin gate
//! construction happen once; [`PrefixSolver::performed_propagations`]
//! counts only the propagations actually executed, which the solver
//! microbench compares against the from-scratch total.
//!
//! [`solve_assuming`](PrefixSolver::solve_assuming) is the classic
//! alternative: one persistent SAT instance, each flip decided as a SAT
//! *assumption* ([`crate::sat::SatSolver::solve_with_assumptions`]), learnt
//! clauses shared across queries. It agrees with `check` on verdicts (and
//! its models satisfy the constraints) but not on statistics — learnt
//! clauses and activities carry over — so the engine uses the fork path and
//! reserves assumptions for callers that only need verdicts fast.
//!
//! The two query paths are **mutually exclusive on one session**:
//! `solve_assuming` Tseitin-encodes each flip's gates into the persistent
//! instance, so a later [`solve`](PrefixSolver::solve) would fork an
//! instance carrying extra gates and silently lose its bit-identity
//! guarantee. The session latches whichever mode answers its first query
//! and panics if the other is used afterwards.

use std::collections::HashSet;

use crate::bitblast::BitBlaster;
use crate::solver::{result_of, stats_of, Budget, Model, SolveResult, SolveStats};
use crate::term::{TermId, TermPool};

/// Which query API a session has committed to (see the module docs on why
/// the fork and assumption paths must not share one instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SessionMode {
    /// [`PrefixSolver::solve`]: fork per query, bit-identical to `check`.
    Fork,
    /// [`PrefixSolver::solve_assuming`]: persistent instance, assumptions.
    Assume,
}

/// A solver session over one replay's path-constraint chain.
pub struct PrefixSolver<'p> {
    pool: &'p TermPool,
    bb: BitBlaster<'p>,
    /// Raw prefix items consumed so far (slices passed to later calls must
    /// extend the earlier ones — debug-asserted).
    #[cfg(debug_assertions)]
    raw: Vec<TermId>,
    raw_seen: usize,
    /// Effective (post-preprocessing) constraints asserted into `bb`.
    asserted: usize,
    seen: HashSet<TermId>,
    /// Raw index of the first constant-false prefix item, if one was seen:
    /// every query whose prefix reaches it is unsat without touching `bb`.
    false_at: Option<usize>,
    started: bool,
    /// Latched by the first query; mixing modes afterwards panics.
    mode: Option<SessionMode>,
    forks: u64,
    work_props: u64,
}

impl<'p> PrefixSolver<'p> {
    /// A fresh session over `pool`.
    pub fn new(pool: &'p TermPool) -> Self {
        PrefixSolver {
            pool,
            bb: BitBlaster::new(pool),
            #[cfg(debug_assertions)]
            raw: Vec::new(),
            raw_seen: 0,
            asserted: 0,
            seen: HashSet::new(),
            false_at: None,
            started: false,
            mode: None,
            forks: 0,
            work_props: 0,
        }
    }

    /// Commit the session to one query API; panics on a mode mix, which
    /// would silently void [`solve`](PrefixSolver::solve)'s bit-identity
    /// guarantee (the check is always on — it is one comparison per query).
    fn latch_mode(&mut self, mode: SessionMode) {
        match self.mode {
            None => self.mode = Some(mode),
            Some(m) => assert!(
                m == mode,
                "PrefixSolver: solve and solve_assuming are mutually \
                 exclusive on one session (started in {m:?} mode, got a \
                 {mode:?} query)"
            ),
        }
    }

    /// True once the session has consumed any prefix or answered any query —
    /// the "this query extends an existing instance" telemetry signal.
    pub fn started(&self) -> bool {
        self.started
    }

    /// Queries answered by forking the shared instance.
    pub fn forks(&self) -> u64 {
        self.forks
    }

    /// Unit propagations actually executed by this session (shared prefix
    /// propagation counted once, plus each fork's own work) — the honest
    /// cost, as opposed to the per-query [`SolveStats::propagations`] which
    /// deliberately report the from-scratch-equivalent figure.
    pub fn performed_propagations(&self) -> u64 {
        self.work_props
    }

    /// Enforce the nondecreasing-prefix contract. The length comparison is
    /// always on — a shorter prefix would silently inherit stale asserted
    /// constraints from the longer one, corrupting answers rather than
    /// crashing, so it must fail loudly in release builds too. The
    /// element-wise comparison (contents actually extend) is debug-only.
    fn check_extends(&self, prefix: &[TermId]) {
        assert!(
            prefix.len() >= self.raw_seen,
            "prefix slices must extend previously seen ones \
             (got {} items after consuming {})",
            prefix.len(),
            self.raw_seen
        );
        #[cfg(debug_assertions)]
        assert!(
            prefix[..self.raw_seen] == self.raw[..],
            "prefix slices must extend previously seen ones \
             (same length, diverging contents)"
        );
    }

    /// Scan for a constant-false item in `prefix ∧ delta` (the from-scratch
    /// fast path), latching the earliest prefix position seen.
    fn trivially_false(&mut self, prefix: &[TermId], delta: Option<TermId>) -> bool {
        if let Some(p) = self.false_at {
            if prefix.len() > p {
                return true;
            }
        }
        for (i, &c) in prefix.iter().enumerate().skip(self.raw_seen) {
            if self.pool.as_const(c) == Some(0) {
                let earliest = self.false_at.map_or(i, |p| p.min(i));
                self.false_at = Some(earliest);
                return true;
            }
        }
        delta.is_some_and(|d| self.pool.as_const(d) == Some(0))
    }

    /// Blast any not-yet-consumed part of `prefix` into the shared instance
    /// (trivial and repeated constraints are skipped, mirroring
    /// [`check`](crate::solver::check)'s preprocessing). Used directly when
    /// a fleet-cache hit skips the solve but the session must keep pace.
    pub fn advance(&mut self, prefix: &[TermId]) {
        self.check_extends(prefix);
        if self.trivially_false(prefix, None) {
            return;
        }
        self.started = true;
        let before = self.bb.sat.propagations;
        for &c in &prefix[self.raw_seen..] {
            #[cfg(debug_assertions)]
            self.raw.push(c);
            if self.pool.as_const(c) == Some(1) {
                continue;
            }
            if self.seen.insert(c) {
                self.bb.assert_true(c);
                self.asserted += 1;
            }
        }
        self.raw_seen = prefix.len();
        self.work_props += self.bb.sat.propagations - before;
    }

    /// Solve `prefix ∧ delta` under `budget`, bit-identically (result and
    /// statistics) to `check(pool, prefix + [delta], budget)`.
    ///
    /// # Panics
    ///
    /// Panics if this session already answered a
    /// [`solve_assuming`](PrefixSolver::solve_assuming) query — the
    /// assumption path mutates the shared instance, which would void the
    /// bit-identity guarantee here (see the module docs).
    pub fn solve(
        &mut self,
        prefix: &[TermId],
        delta: TermId,
        budget: Budget,
    ) -> (SolveResult, SolveStats) {
        self.latch_mode(SessionMode::Fork);
        if self.trivially_false(prefix, Some(delta)) {
            return (SolveResult::Unsat, SolveStats::default());
        }
        self.advance(prefix);
        let delta_dropped = self.pool.as_const(delta) == Some(1) || self.seen.contains(&delta);
        if self.asserted == 0 && delta_dropped {
            return (SolveResult::Sat(Model::default()), SolveStats::default());
        }
        // Fork the shared prefix instance and extend with just the flip.
        let base_props = self.bb.sat.propagations;
        let mut fork = self.bb.clone();
        self.forks += 1;
        wasai_obs::inc(wasai_obs::Counter::PrefixForks);
        if !delta_dropped {
            fork.assert_true(delta);
        }
        let outcome = fork.sat.solve(budget.max_conflicts, budget.deadline);
        self.work_props += fork.sat.propagations - base_props;
        let stats = stats_of(&fork);
        (result_of(self.pool, &fork, outcome), stats)
    }

    /// Solve `prefix ∧ delta` by deciding the flipped condition as a SAT
    /// *assumption* on the persistent shared instance (no fork; learnt
    /// clauses accumulate across queries).
    ///
    /// Agrees with [`check`](crate::solver::check) on the verdict, and any
    /// model satisfies the constraints — but statistics and model values may
    /// differ from a from-scratch solve, so the deterministic campaign path
    /// uses [`PrefixSolver::solve`] instead.
    ///
    /// # Panics
    ///
    /// Panics if this session already answered a
    /// [`solve`](PrefixSolver::solve) query: the flip gates blasted here
    /// persist in the shared instance, so the two APIs are mutually
    /// exclusive per session (see the module docs).
    pub fn solve_assuming(
        &mut self,
        prefix: &[TermId],
        delta: TermId,
        budget: Budget,
    ) -> (SolveResult, SolveStats) {
        self.latch_mode(SessionMode::Assume);
        if self.trivially_false(prefix, Some(delta)) {
            return (SolveResult::Unsat, SolveStats::default());
        }
        self.advance(prefix);
        let delta_dropped = self.pool.as_const(delta) == Some(1) || self.seen.contains(&delta);
        if self.asserted == 0 && delta_dropped {
            return (SolveResult::Sat(Model::default()), SolveStats::default());
        }
        let base_props = self.bb.sat.propagations;
        let assumptions: Vec<_> = if delta_dropped {
            Vec::new()
        } else {
            vec![self.bb.blast_bool(delta)]
        };
        let outcome =
            self.bb
                .sat
                .solve_with_assumptions(&assumptions, budget.max_conflicts, budget.deadline);
        self.work_props += self.bb.sat.propagations - base_props;
        let stats = stats_of(&self.bb);
        let result = result_of(self.pool, &self.bb, outcome);
        self.bb.sat.backtrack_root();
        (result, stats)
    }
}

impl std::fmt::Debug for PrefixSolver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrefixSolver")
            .field("raw_seen", &self.raw_seen)
            .field("asserted", &self.asserted)
            .field("mode", &self.mode)
            .field("forks", &self.forks)
            .field("work_props", &self.work_props)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::check;
    use crate::term::{BvOp, CmpOp};

    /// Build a replay-like family: a chain of path guards over `arg` vars
    /// plus one flip per step, nondecreasing prefixes. The `salt` index
    /// randomizes constants (deterministic LCG).
    fn flip_family(pool: &mut TermPool, steps: usize, salt: u64) -> (Vec<TermId>, Vec<TermId>) {
        let mut rng = salt.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = move || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rng >> 33
        };
        let a = pool.var("arg0", 64);
        let b = pool.var("arg1", 64);
        let mut path = Vec::new();
        let mut flips = Vec::new();
        for i in 0..steps {
            let k = pool.bv_const(next() % 1000 + 1, 64);
            let guard = match i % 3 {
                0 => pool.cmp(CmpOp::Ult, a, k),
                1 => {
                    let s = pool.bv(BvOp::Add, a, b);
                    pool.cmp(CmpOp::Ule, s, k)
                }
                _ => {
                    let x = pool.bv(BvOp::Xor, a, b);
                    let z = pool.bv_const(next() % 7, 64);
                    pool.cmp(CmpOp::Ule, z, x)
                }
            };
            path.push(guard);
            flips.push(pool.not(guard));
        }
        (path, flips)
    }

    #[test]
    fn fork_path_is_bit_identical_to_from_scratch() {
        for salt in 0..4u64 {
            let mut pool = TermPool::new();
            let (path, flips) = flip_family(&mut pool, 12, salt);
            let mut session = PrefixSolver::new(&pool);
            for (i, &flip) in flips.iter().enumerate() {
                let mut scratch: Vec<TermId> = path[..i].to_vec();
                scratch.push(flip);
                let (want_res, want_stats) = check(&pool, &scratch, Budget::default());
                let (got_res, got_stats) = session.solve(&path[..i], flip, Budget::default());
                assert_eq!(want_res, got_res, "salt {salt} flip {i}: result diverged");
                assert_eq!(
                    want_stats, got_stats,
                    "salt {salt} flip {i}: stats diverged"
                );
            }
        }
    }

    #[test]
    fn fork_path_saves_propagations() {
        let mut pool = TermPool::new();
        let (path, flips) = flip_family(&mut pool, 16, 7);
        let mut scratch_props = 0u64;
        for (i, &flip) in flips.iter().enumerate() {
            let mut q: Vec<TermId> = path[..i].to_vec();
            q.push(flip);
            let (_, stats) = check(&pool, &q, Budget::default());
            scratch_props += stats.propagations;
        }
        let mut session = PrefixSolver::new(&pool);
        for (i, &flip) in flips.iter().enumerate() {
            session.solve(&path[..i], flip, Budget::default());
        }
        assert!(
            session.performed_propagations() < scratch_props,
            "shared prefix must do less propagation work: {} vs {}",
            session.performed_propagations(),
            scratch_props
        );
    }

    #[test]
    fn assumption_path_agrees_with_from_scratch_on_randomized_family() {
        // The satellite contract: assumption-based incremental solving gives
        // the same verdict as a from-scratch check on a flip-query family
        // randomized by index, and its Sat models satisfy the constraints.
        for salt in 0..6u64 {
            let mut pool = TermPool::new();
            let (path, flips) = flip_family(&mut pool, 10, salt);
            let mut session = PrefixSolver::new(&pool);
            for (i, &flip) in flips.iter().enumerate() {
                let mut scratch: Vec<TermId> = path[..i].to_vec();
                scratch.push(flip);
                let (want, _) = check(&pool, &scratch, Budget::default());
                let (got, _) = session.solve_assuming(&path[..i], flip, Budget::default());
                assert_eq!(
                    want.kind(),
                    got.kind(),
                    "salt {salt} flip {i}: verdict diverged"
                );
                if let SolveResult::Sat(m) = &got {
                    let vals = m.to_vec(&pool);
                    for &c in &scratch {
                        assert_eq!(
                            pool.eval(c, &vals),
                            1,
                            "salt {salt} flip {i}: assumption model violates a constraint"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "mutually exclusive")]
    fn mixing_assumption_then_fork_queries_panics() {
        // solve_assuming blasts flip gates into the persistent instance, so
        // a later solve() would fork polluted state — the session must
        // refuse loudly instead of silently losing bit-identity.
        let mut pool = TermPool::new();
        let (path, flips) = flip_family(&mut pool, 3, 0);
        let mut session = PrefixSolver::new(&pool);
        session.solve_assuming(&path[..1], flips[1], Budget::default());
        session.solve(&path[..2], flips[2], Budget::default());
    }

    #[test]
    #[should_panic(expected = "mutually exclusive")]
    fn mixing_fork_then_assumption_queries_panics() {
        let mut pool = TermPool::new();
        let (path, flips) = flip_family(&mut pool, 3, 0);
        let mut session = PrefixSolver::new(&pool);
        session.solve(&path[..1], flips[1], Budget::default());
        session.solve_assuming(&path[..2], flips[2], Budget::default());
    }

    #[test]
    #[should_panic(expected = "extend previously seen")]
    fn shrinking_prefix_fails_loudly() {
        // The nondecreasing-prefix contract must hold in release builds
        // too: a shorter prefix would silently reuse stale constraints
        // asserted for the longer one.
        let mut pool = TermPool::new();
        let (path, flips) = flip_family(&mut pool, 3, 1);
        let mut session = PrefixSolver::new(&pool);
        session.solve(&path[..2], flips[2], Budget::default());
        session.solve(&path[..1], flips[1], Budget::default());
    }

    #[test]
    fn trivial_prefix_queries_match_check_fast_paths() {
        let mut pool = TermPool::new();
        let t = pool.bool_const(true);
        let f = pool.bool_const(false);
        let x = pool.var("x", 8);
        let c = pool.bv_const(3, 8);
        let real = pool.eq(x, c);

        let mut session = PrefixSolver::new(&pool);
        // All-trivial query: Sat, default model, no blasting.
        let (res, stats) = session.solve(&[t], t, Budget::default());
        assert_eq!(res, SolveResult::Sat(Model::default()));
        assert_eq!(stats, SolveStats::default());
        // Constant-false delta: Unsat without touching the shared instance.
        let (res, stats) = session.solve(&[t], f, Budget::default());
        assert_eq!(res, SolveResult::Unsat);
        assert_eq!(stats, SolveStats::default());
        // The session still answers real queries afterwards.
        let (res, _) = session.solve(&[t, real], real, Budget::default());
        assert!(matches!(res, SolveResult::Sat(_)));
        // A constant-false in the prefix poisons longer prefixes only.
        let (res, _) = session.solve(&[t, real, f], real, Budget::default());
        assert_eq!(res, SolveResult::Unsat);
    }
}
