//! Shared-prefix incremental solving for flip-query families.
//!
//! WASAI's adaptive-seed loop (§3.4.4) flips the conditionals of one trace
//! in execution order, so the i-th query asserts `path[..nᵢ] ∧ flipᵢ` with
//! nondecreasing `nᵢ`: every query's prefix extends the previous one. A
//! [`PrefixSolver`] blasts that chain of path constraints *once* into a
//! shared [`BitBlaster`]/SAT instance, and answers each query by forking
//! the instance ([`Clone`]) and adding only the flipped condition — N flips
//! of one trace cost one prefix blast instead of N.
//!
//! # Why determinism survives
//!
//! The fork inherits exactly the clause database, trail, counters and gate
//! caches that a from-scratch [`check`] of `path[..nᵢ]` would have built
//! (same assertion order, same preprocessing, hash-consed term identity),
//! so extending it with `flipᵢ` and solving yields bit-identical results
//! *and* [`SolveStats`] — the reuse layer is observationally invisible, and
//! campaign reports stay byte-identical whether it is on or off. What is
//! saved is real work: the prefix's unit propagations and Tseitin gate
//! construction happen once; [`PrefixSolver::performed_propagations`]
//! counts only the propagations actually executed, which the solver
//! microbench compares against the from-scratch total.
//!
//! [`solve_assuming`](PrefixSolver::solve_assuming) is the classic
//! alternative: one persistent SAT instance, each flip decided as a SAT
//! *assumption* ([`crate::sat::SatSolver::solve_with_assumptions`]), learnt
//! clauses shared across queries. It agrees with `check` on verdicts (and
//! its models satisfy the constraints) but not on statistics — learnt
//! clauses and activities carry over — so the engine uses the fork path and
//! reserves assumptions for callers that only need verdicts fast.
//!
//! [`solve_sharing`](PrefixSolver::solve_sharing) is the third mode:
//! fork-per-query like `solve`, but learnt clauses that mention only
//! shared-prefix variables are harvested after each fork and injected into
//! the next — so sibling flips of one campaign family stop rediscovering
//! the same prefix conflicts. Verdict-identical to `check`; statistics are
//! not (the injected clauses change the search), so the engine's
//! byte-identity path still uses `solve`.
//!
//! The query paths are **mutually exclusive on one session**:
//! `solve_assuming` Tseitin-encodes each flip's gates into the persistent
//! instance, so a later [`solve`](PrefixSolver::solve) would fork an
//! instance carrying extra gates and silently lose its bit-identity
//! guarantee — and `solve_sharing`'s stats are pool-dependent. The session
//! latches whichever mode answers its first query and panics if another is
//! used afterwards.

use std::collections::HashSet;

use crate::bitblast::BitBlaster;
use crate::sat::Lit;
use crate::solver::{result_of, stats_of, Budget, Model, SolveResult, SolveStats};
use crate::term::{TermId, TermPool};

/// Which query API a session has committed to (see the module docs on why
/// the fork and assumption paths must not share one instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SessionMode {
    /// [`PrefixSolver::solve`]: fork per query, bit-identical to `check`.
    Fork,
    /// [`PrefixSolver::solve_assuming`]: persistent instance, assumptions.
    Assume,
    /// [`PrefixSolver::solve_sharing`]: fork per query, learnt prefix-only
    /// clauses carried between forks.
    Share,
}

/// A solver session over one replay's path-constraint chain.
pub struct PrefixSolver<'p> {
    pool: &'p TermPool,
    bb: BitBlaster<'p>,
    /// Raw prefix items consumed so far (slices passed to later calls must
    /// extend the earlier ones — debug-asserted).
    #[cfg(debug_assertions)]
    raw: Vec<TermId>,
    raw_seen: usize,
    /// Effective (post-preprocessing) constraints asserted into `bb`.
    asserted: usize,
    seen: HashSet<TermId>,
    /// Raw index of the first constant-false prefix item, if one was seen:
    /// every query whose prefix reaches it is unsat without touching `bb`.
    false_at: Option<usize>,
    started: bool,
    /// Latched by the first query; mixing modes afterwards panics.
    mode: Option<SessionMode>,
    forks: u64,
    work_props: u64,
    /// Learnt clauses harvested from earlier forks (Share mode only). Each
    /// mentions only variables the shared instance owned when its fork was
    /// taken, so it is implied by the prefix alone and sound to inject into
    /// any later fork of the same family.
    shared_clauses: Vec<Vec<Lit>>,
    /// Sorted-literal fingerprints of `shared_clauses`, for dedup.
    shared_seen: HashSet<Vec<Lit>>,
}

impl<'p> PrefixSolver<'p> {
    /// A fresh session over `pool`.
    pub fn new(pool: &'p TermPool) -> Self {
        PrefixSolver {
            pool,
            bb: BitBlaster::new(pool),
            #[cfg(debug_assertions)]
            raw: Vec::new(),
            raw_seen: 0,
            asserted: 0,
            seen: HashSet::new(),
            false_at: None,
            started: false,
            mode: None,
            forks: 0,
            work_props: 0,
            shared_clauses: Vec::new(),
            shared_seen: HashSet::new(),
        }
    }

    /// Commit the session to one query API; panics on a mode mix, which
    /// would silently void [`solve`](PrefixSolver::solve)'s bit-identity
    /// guarantee (the check is always on — it is one comparison per query).
    fn latch_mode(&mut self, mode: SessionMode) {
        match self.mode {
            None => self.mode = Some(mode),
            Some(m) => assert!(
                m == mode,
                "PrefixSolver: solve and solve_assuming are mutually \
                 exclusive on one session (started in {m:?} mode, got a \
                 {mode:?} query)"
            ),
        }
    }

    /// True once the session has consumed any prefix or answered any query —
    /// the "this query extends an existing instance" telemetry signal.
    pub fn started(&self) -> bool {
        self.started
    }

    /// Queries answered by forking the shared instance.
    pub fn forks(&self) -> u64 {
        self.forks
    }

    /// Unit propagations actually executed by this session (shared prefix
    /// propagation counted once, plus each fork's own work) — the honest
    /// cost, as opposed to the per-query [`SolveStats::propagations`] which
    /// deliberately report the from-scratch-equivalent figure.
    pub fn performed_propagations(&self) -> u64 {
        self.work_props
    }

    /// Enforce the nondecreasing-prefix contract. The length comparison is
    /// always on — a shorter prefix would silently inherit stale asserted
    /// constraints from the longer one, corrupting answers rather than
    /// crashing, so it must fail loudly in release builds too. The
    /// element-wise comparison (contents actually extend) is debug-only.
    fn check_extends(&self, prefix: &[TermId]) {
        assert!(
            prefix.len() >= self.raw_seen,
            "prefix slices must extend previously seen ones \
             (got {} items after consuming {})",
            prefix.len(),
            self.raw_seen
        );
        #[cfg(debug_assertions)]
        assert!(
            prefix[..self.raw_seen] == self.raw[..],
            "prefix slices must extend previously seen ones \
             (same length, diverging contents)"
        );
    }

    /// Scan for a constant-false item in `prefix ∧ delta` (the from-scratch
    /// fast path), latching the earliest prefix position seen.
    fn trivially_false(&mut self, prefix: &[TermId], delta: Option<TermId>) -> bool {
        if let Some(p) = self.false_at {
            if prefix.len() > p {
                return true;
            }
        }
        for (i, &c) in prefix.iter().enumerate().skip(self.raw_seen) {
            if self.pool.as_const(c) == Some(0) {
                let earliest = self.false_at.map_or(i, |p| p.min(i));
                self.false_at = Some(earliest);
                return true;
            }
        }
        delta.is_some_and(|d| self.pool.as_const(d) == Some(0))
    }

    /// Blast any not-yet-consumed part of `prefix` into the shared instance
    /// (trivial and repeated constraints are skipped, mirroring
    /// [`check`](crate::solver::check)'s preprocessing). Used directly when
    /// a fleet-cache hit skips the solve but the session must keep pace.
    pub fn advance(&mut self, prefix: &[TermId]) {
        self.check_extends(prefix);
        if self.trivially_false(prefix, None) {
            return;
        }
        self.started = true;
        let before = self.bb.sat.propagations;
        for &c in &prefix[self.raw_seen..] {
            #[cfg(debug_assertions)]
            self.raw.push(c);
            if self.pool.as_const(c) == Some(1) {
                continue;
            }
            if self.seen.insert(c) {
                self.bb.assert_true(c);
                self.asserted += 1;
            }
        }
        self.raw_seen = prefix.len();
        self.work_props += self.bb.sat.propagations - before;
    }

    /// Solve `prefix ∧ delta` under `budget`, bit-identically (result and
    /// statistics) to `check(pool, prefix + [delta], budget)`.
    ///
    /// # Panics
    ///
    /// Panics if this session already answered a
    /// [`solve_assuming`](PrefixSolver::solve_assuming) query — the
    /// assumption path mutates the shared instance, which would void the
    /// bit-identity guarantee here (see the module docs).
    pub fn solve(
        &mut self,
        prefix: &[TermId],
        delta: TermId,
        budget: Budget,
    ) -> (SolveResult, SolveStats) {
        self.latch_mode(SessionMode::Fork);
        if self.trivially_false(prefix, Some(delta)) {
            return (SolveResult::Unsat, SolveStats::default());
        }
        self.advance(prefix);
        let delta_dropped = self.pool.as_const(delta) == Some(1) || self.seen.contains(&delta);
        if self.asserted == 0 && delta_dropped {
            return (SolveResult::Sat(Model::default()), SolveStats::default());
        }
        // Fork the shared prefix instance and extend with just the flip.
        let base_props = self.bb.sat.propagations;
        let mut fork = self.bb.clone();
        self.forks += 1;
        wasai_obs::inc(wasai_obs::Counter::PrefixForks);
        if !delta_dropped {
            fork.assert_true(delta);
        }
        let outcome = fork.sat.solve(budget.max_conflicts, budget.deadline);
        self.work_props += fork.sat.propagations - base_props;
        let stats = stats_of(&fork);
        (result_of(self.pool, &fork, outcome), stats)
    }

    /// Solve `prefix ∧ delta` by deciding the flipped condition as a SAT
    /// *assumption* on the persistent shared instance (no fork; learnt
    /// clauses accumulate across queries).
    ///
    /// Agrees with [`check`](crate::solver::check) on the verdict, and any
    /// model satisfies the constraints — but statistics and model values may
    /// differ from a from-scratch solve, so the deterministic campaign path
    /// uses [`PrefixSolver::solve`] instead.
    ///
    /// # Panics
    ///
    /// Panics if this session already answered a
    /// [`solve`](PrefixSolver::solve) query: the flip gates blasted here
    /// persist in the shared instance, so the two APIs are mutually
    /// exclusive per session (see the module docs).
    pub fn solve_assuming(
        &mut self,
        prefix: &[TermId],
        delta: TermId,
        budget: Budget,
    ) -> (SolveResult, SolveStats) {
        self.latch_mode(SessionMode::Assume);
        if self.trivially_false(prefix, Some(delta)) {
            return (SolveResult::Unsat, SolveStats::default());
        }
        self.advance(prefix);
        let delta_dropped = self.pool.as_const(delta) == Some(1) || self.seen.contains(&delta);
        if self.asserted == 0 && delta_dropped {
            return (SolveResult::Sat(Model::default()), SolveStats::default());
        }
        let base_props = self.bb.sat.propagations;
        let assumptions: Vec<_> = if delta_dropped {
            Vec::new()
        } else {
            vec![self.bb.blast_bool(delta)]
        };
        let outcome =
            self.bb
                .sat
                .solve_with_assumptions(&assumptions, budget.max_conflicts, budget.deadline);
        self.work_props += self.bb.sat.propagations - base_props;
        let stats = stats_of(&self.bb);
        let result = result_of(self.pool, &self.bb, outcome);
        self.bb.sat.backtrack_root();
        (result, stats)
    }

    /// Learnt clauses currently in the sharing pool (Share mode).
    pub fn shared_clause_count(&self) -> usize {
        self.shared_clauses.len()
    }

    /// Solve `prefix ∧ delta` on a fork of the shared instance, carrying
    /// learnt clauses *between* forks of this campaign family.
    ///
    /// Each query forks like [`PrefixSolver::solve`], but (1) the fork is
    /// seeded with every clause earlier forks learnt about the shared
    /// prefix, and (2) after solving, newly learnt clauses that mention
    /// only prefix variables are harvested into the pool for future forks.
    ///
    /// # Why the harvest is sound
    ///
    /// The flip is decided as a SAT *assumption*, never asserted as a unit
    /// clause, so the fork's clause database is exactly: the shared prefix
    /// clauses, the pool (inductively implied by the prefix), and Tseitin
    /// gate definitions (conservative: each defines a fresh variable).
    /// CDCL learns only resolvents of database clauses — assumptions, being
    /// decisions, are never resolved in — so every learnt clause is implied
    /// by that database. A learnt clause restricted to variables the shared
    /// instance owned *before* the fork mentions no defined-fresh variable,
    /// and a clause over old variables implied by a conservative extension
    /// is implied by the prefix alone. Hence it holds in every sibling
    /// fork, whatever flip that sibling assumes.
    ///
    /// Verdict-identical to [`check`](crate::solver::check) (and Sat models
    /// satisfy the constraints), but the injected clauses change the search,
    /// so statistics are *not* from-scratch-identical — like
    /// [`solve_assuming`](PrefixSolver::solve_assuming), this mode is for
    /// callers that want verdicts fast, not for the byte-identity engine
    /// path.
    ///
    /// # Panics
    ///
    /// Panics if this session already answered queries in another mode.
    pub fn solve_sharing(
        &mut self,
        prefix: &[TermId],
        delta: TermId,
        budget: Budget,
    ) -> (SolveResult, SolveStats) {
        self.latch_mode(SessionMode::Share);
        if self.trivially_false(prefix, Some(delta)) {
            return (SolveResult::Unsat, SolveStats::default());
        }
        self.advance(prefix);
        let delta_dropped = self.pool.as_const(delta) == Some(1) || self.seen.contains(&delta);
        if self.asserted == 0 && delta_dropped {
            return (SolveResult::Sat(Model::default()), SolveStats::default());
        }
        // Variables the shared instance owns right now: the harvest
        // boundary. Anything at or above this index is fork-local.
        let prefix_vars = self.bb.sat.num_vars();
        let base_props = self.bb.sat.propagations;
        let mut fork = self.bb.clone();
        self.forks += 1;
        wasai_obs::inc(wasai_obs::Counter::PrefixForks);
        for clause in &self.shared_clauses {
            // A pool clause can only conflict if the prefix itself is
            // unsat, in which case the solve below reports exactly that.
            let _ = fork.sat.add_clause(clause);
        }
        let injected_at = fork.sat.num_clauses();
        let assumptions: Vec<Lit> = if delta_dropped {
            Vec::new()
        } else {
            vec![fork.blast_bool(delta)]
        };
        let outcome =
            fork.sat
                .solve_with_assumptions(&assumptions, budget.max_conflicts, budget.deadline);
        self.work_props += fork.sat.propagations - base_props;
        // Harvest: learnt clauses over prefix variables only. Gate clauses
        // from blasting `delta` always mention the fresh gate variable, so
        // the variable filter excludes them naturally.
        for id in injected_at..fork.sat.num_clauses() {
            let clause = fork.sat.clause(id);
            if clause.iter().all(|l| (l.var() as usize) < prefix_vars) {
                let mut fingerprint = clause.to_vec();
                fingerprint.sort_by_key(|l| l.0);
                if self.shared_seen.insert(fingerprint) {
                    self.shared_clauses.push(clause.to_vec());
                }
            }
        }
        let stats = stats_of(&fork);
        (result_of(self.pool, &fork, outcome), stats)
    }
}

impl std::fmt::Debug for PrefixSolver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrefixSolver")
            .field("raw_seen", &self.raw_seen)
            .field("asserted", &self.asserted)
            .field("mode", &self.mode)
            .field("forks", &self.forks)
            .field("work_props", &self.work_props)
            .field("shared_clauses", &self.shared_clauses.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::check;
    use crate::term::{BvOp, CmpOp};

    /// Build a replay-like family: a chain of path guards over `arg` vars
    /// plus one flip per step, nondecreasing prefixes. The `salt` index
    /// randomizes constants (deterministic LCG).
    fn flip_family(pool: &mut TermPool, steps: usize, salt: u64) -> (Vec<TermId>, Vec<TermId>) {
        let mut rng = salt.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = move || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rng >> 33
        };
        let a = pool.var("arg0", 64);
        let b = pool.var("arg1", 64);
        let mut path = Vec::new();
        let mut flips = Vec::new();
        for i in 0..steps {
            let k = pool.bv_const(next() % 1000 + 1, 64);
            let guard = match i % 3 {
                0 => pool.cmp(CmpOp::Ult, a, k),
                1 => {
                    let s = pool.bv(BvOp::Add, a, b);
                    pool.cmp(CmpOp::Ule, s, k)
                }
                _ => {
                    let x = pool.bv(BvOp::Xor, a, b);
                    let z = pool.bv_const(next() % 7, 64);
                    pool.cmp(CmpOp::Ule, z, x)
                }
            };
            path.push(guard);
            flips.push(pool.not(guard));
        }
        (path, flips)
    }

    #[test]
    fn fork_path_is_bit_identical_to_from_scratch() {
        for salt in 0..4u64 {
            let mut pool = TermPool::new();
            let (path, flips) = flip_family(&mut pool, 12, salt);
            let mut session = PrefixSolver::new(&pool);
            for (i, &flip) in flips.iter().enumerate() {
                let mut scratch: Vec<TermId> = path[..i].to_vec();
                scratch.push(flip);
                let (want_res, want_stats) = check(&pool, &scratch, Budget::default());
                let (got_res, got_stats) = session.solve(&path[..i], flip, Budget::default());
                assert_eq!(want_res, got_res, "salt {salt} flip {i}: result diverged");
                assert_eq!(
                    want_stats, got_stats,
                    "salt {salt} flip {i}: stats diverged"
                );
            }
        }
    }

    #[test]
    fn fork_path_saves_propagations() {
        let mut pool = TermPool::new();
        let (path, flips) = flip_family(&mut pool, 16, 7);
        let mut scratch_props = 0u64;
        for (i, &flip) in flips.iter().enumerate() {
            let mut q: Vec<TermId> = path[..i].to_vec();
            q.push(flip);
            let (_, stats) = check(&pool, &q, Budget::default());
            scratch_props += stats.propagations;
        }
        let mut session = PrefixSolver::new(&pool);
        for (i, &flip) in flips.iter().enumerate() {
            session.solve(&path[..i], flip, Budget::default());
        }
        assert!(
            session.performed_propagations() < scratch_props,
            "shared prefix must do less propagation work: {} vs {}",
            session.performed_propagations(),
            scratch_props
        );
    }

    #[test]
    fn assumption_path_agrees_with_from_scratch_on_randomized_family() {
        // The satellite contract: assumption-based incremental solving gives
        // the same verdict as a from-scratch check on a flip-query family
        // randomized by index, and its Sat models satisfy the constraints.
        for salt in 0..6u64 {
            let mut pool = TermPool::new();
            let (path, flips) = flip_family(&mut pool, 10, salt);
            let mut session = PrefixSolver::new(&pool);
            for (i, &flip) in flips.iter().enumerate() {
                let mut scratch: Vec<TermId> = path[..i].to_vec();
                scratch.push(flip);
                let (want, _) = check(&pool, &scratch, Budget::default());
                let (got, _) = session.solve_assuming(&path[..i], flip, Budget::default());
                assert_eq!(
                    want.kind(),
                    got.kind(),
                    "salt {salt} flip {i}: verdict diverged"
                );
                if let SolveResult::Sat(m) = &got {
                    let vals = m.to_vec(&pool);
                    for &c in &scratch {
                        assert_eq!(
                            pool.eval(c, &vals),
                            1,
                            "salt {salt} flip {i}: assumption model violates a constraint"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sharing_path_agrees_with_from_scratch_on_randomized_family() {
        // Clause sharing changes the search, never the verdict; Sat models
        // must still satisfy every constraint of the query they answer.
        for salt in 0..6u64 {
            let mut pool = TermPool::new();
            let (path, flips) = flip_family(&mut pool, 10, salt);
            let mut session = PrefixSolver::new(&pool);
            for (i, &flip) in flips.iter().enumerate() {
                let mut scratch: Vec<TermId> = path[..i].to_vec();
                scratch.push(flip);
                let (want, _) = check(&pool, &scratch, Budget::default());
                let (got, _) = session.solve_sharing(&path[..i], flip, Budget::default());
                assert_eq!(
                    want.kind(),
                    got.kind(),
                    "salt {salt} flip {i}: verdict diverged"
                );
                if let SolveResult::Sat(m) = &got {
                    let vals = m.to_vec(&pool);
                    for &c in &scratch {
                        assert_eq!(
                            pool.eval(c, &vals),
                            1,
                            "salt {salt} flip {i}: sharing model violates a constraint"
                        );
                    }
                }
            }
        }
    }

    /// A flip family whose prefix pins a *bounded* factoring constraint
    /// (`a·b = K, 2 ≤ a,b < 64`): bounding the operands defeats the
    /// modular-wraparound shortcut, so CDCL genuinely searches and learns
    /// non-unit clauses — unlike the BCP-trivial [`flip_family`].
    fn hard_family(pool: &mut TermPool, steps: usize, salt: u64) -> (Vec<TermId>, Vec<TermId>) {
        let mut rng = salt.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = move || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rng >> 33
        };
        let a = pool.var("arg0", 12);
        let b = pool.var("arg1", 12);
        let product = pool.bv(BvOp::Mul, a, b);
        let k = pool.bv_const((next() % 50 + 13) * (next() % 40 + 11), 12);
        let lim = pool.bv_const(64, 12);
        let two = pool.bv_const(2, 12);
        let mut path = vec![
            pool.eq(product, k),
            pool.cmp(CmpOp::Ult, a, lim),
            pool.cmp(CmpOp::Ult, b, lim),
            pool.cmp(CmpOp::Ule, two, a),
            pool.cmp(CmpOp::Ule, two, b),
        ];
        for i in 0..steps {
            let k = pool.bv_const(next() % 60 + 2, 12);
            let guard = if i % 2 == 0 {
                pool.cmp(CmpOp::Ult, a, k)
            } else {
                let x = pool.bv(BvOp::Xor, a, b);
                pool.cmp(CmpOp::Ule, x, k)
            };
            path.push(guard);
        }
        let flips = path.iter().map(|&g| pool.not(g)).collect();
        (path, flips)
    }

    #[test]
    fn sharing_harvests_prefix_clauses_between_forks() {
        // A family whose flips force conflicts on the shared prefix: the
        // pool must actually accumulate clauses (otherwise the mode is a
        // silent no-op), every fork must still agree with a from-scratch
        // check, and Sat models must satisfy the constraints.
        let mut harvested_any = false;
        for salt in 0..4u64 {
            let mut pool = TermPool::new();
            let (path, flips) = hard_family(&mut pool, 6, salt);
            let mut session = PrefixSolver::new(&pool);
            for (i, &flip) in flips.iter().enumerate() {
                let mut scratch: Vec<TermId> = path[..i].to_vec();
                scratch.push(flip);
                let (want, _) = check(&pool, &scratch, Budget::default());
                let (got, _) = session.solve_sharing(&path[..i], flip, Budget::default());
                assert_eq!(want.kind(), got.kind(), "salt {salt} flip {i}");
                if let SolveResult::Sat(m) = &got {
                    let vals = m.to_vec(&pool);
                    for &c in &scratch {
                        assert_eq!(pool.eval(c, &vals), 1, "salt {salt} flip {i}");
                    }
                }
            }
            harvested_any |= session.shared_clause_count() > 0;
        }
        assert!(
            harvested_any,
            "no salt produced a single shared clause — harvest is broken"
        );
    }

    #[test]
    #[should_panic(expected = "mutually exclusive")]
    fn mixing_sharing_then_fork_queries_panics() {
        let mut pool = TermPool::new();
        let (path, flips) = flip_family(&mut pool, 3, 0);
        let mut session = PrefixSolver::new(&pool);
        session.solve_sharing(&path[..1], flips[1], Budget::default());
        session.solve(&path[..2], flips[2], Budget::default());
    }

    #[test]
    #[should_panic(expected = "mutually exclusive")]
    fn mixing_assumption_then_fork_queries_panics() {
        // solve_assuming blasts flip gates into the persistent instance, so
        // a later solve() would fork polluted state — the session must
        // refuse loudly instead of silently losing bit-identity.
        let mut pool = TermPool::new();
        let (path, flips) = flip_family(&mut pool, 3, 0);
        let mut session = PrefixSolver::new(&pool);
        session.solve_assuming(&path[..1], flips[1], Budget::default());
        session.solve(&path[..2], flips[2], Budget::default());
    }

    #[test]
    #[should_panic(expected = "mutually exclusive")]
    fn mixing_fork_then_assumption_queries_panics() {
        let mut pool = TermPool::new();
        let (path, flips) = flip_family(&mut pool, 3, 0);
        let mut session = PrefixSolver::new(&pool);
        session.solve(&path[..1], flips[1], Budget::default());
        session.solve_assuming(&path[..2], flips[2], Budget::default());
    }

    #[test]
    #[should_panic(expected = "extend previously seen")]
    fn shrinking_prefix_fails_loudly() {
        // The nondecreasing-prefix contract must hold in release builds
        // too: a shorter prefix would silently reuse stale constraints
        // asserted for the longer one.
        let mut pool = TermPool::new();
        let (path, flips) = flip_family(&mut pool, 3, 1);
        let mut session = PrefixSolver::new(&pool);
        session.solve(&path[..2], flips[2], Budget::default());
        session.solve(&path[..1], flips[1], Budget::default());
    }

    #[test]
    fn trivial_prefix_queries_match_check_fast_paths() {
        let mut pool = TermPool::new();
        let t = pool.bool_const(true);
        let f = pool.bool_const(false);
        let x = pool.var("x", 8);
        let c = pool.bv_const(3, 8);
        let real = pool.eq(x, c);

        let mut session = PrefixSolver::new(&pool);
        // All-trivial query: Sat, default model, no blasting.
        let (res, stats) = session.solve(&[t], t, Budget::default());
        assert_eq!(res, SolveResult::Sat(Model::default()));
        assert_eq!(stats, SolveStats::default());
        // Constant-false delta: Unsat without touching the shared instance.
        let (res, stats) = session.solve(&[t], f, Budget::default());
        assert_eq!(res, SolveResult::Unsat);
        assert_eq!(stats, SolveStats::default());
        // The session still answers real queries afterwards.
        let (res, _) = session.solve(&[t, real], real, Budget::default());
        assert!(matches!(res, SolveResult::Sat(_)));
        // A constant-false in the prefix poisons longer prefixes only.
        let (res, _) = session.solve(&[t, real, f], real, Budget::default());
        assert_eq!(res, SolveResult::Unsat);
    }
}
