//! The solver frontend: assert terms, check with a budget, read a model.

use std::collections::HashMap;

use crate::bitblast::BitBlaster;
use crate::deadline::Deadline;
use crate::sat::SatOutcome;
use crate::term::{TermId, TermPool};

/// Resource budget for one `check` (the deterministic analogue of the
/// paper's 3,000 ms per-query cap, §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum SAT conflicts before giving up with `Unknown`.
    pub max_conflicts: u64,
    /// Wall-clock watchdog: the SAT search also gives up with `Unknown`
    /// once this deadline passes. [`Deadline::NONE`] (the default) keeps
    /// solving fully deterministic.
    pub deadline: Deadline,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_conflicts: 50_000,
            deadline: Deadline::NONE,
        }
    }
}

impl Budget {
    /// A budget with `max_conflicts` and no wall-clock deadline.
    pub fn conflicts(max_conflicts: u64) -> Self {
        Budget {
            max_conflicts,
            ..Budget::default()
        }
    }
}

/// A satisfying assignment, keyed by pool variable index.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Model {
    values: HashMap<u32, u64>,
}

impl Model {
    /// Value of a variable by pool index (unconstrained variables are 0).
    pub fn value(&self, var: u32) -> u64 {
        self.values.get(&var).copied().unwrap_or(0)
    }

    /// Value of a variable by name.
    pub fn value_by_name(&self, pool: &TermPool, name: &str) -> Option<u64> {
        pool.var_index(name).map(|v| self.value(v))
    }

    /// Dense value vector suitable for [`TermPool::eval`].
    pub fn to_vec(&self, pool: &TermPool) -> Vec<u64> {
        (0..pool.vars().len() as u32)
            .map(|v| self.value(v))
            .collect()
    }

    /// Build a model from explicit per-variable values (the cache's decode
    /// path reconstructs models this way).
    pub(crate) fn from_values(values: HashMap<u32, u64>) -> Model {
        Model { values }
    }

    /// The explicit value map (the cache's encode path reads it).
    pub(crate) fn values(&self) -> &HashMap<u32, u64> {
        &self.values
    }
}

/// Outcome of a `check`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// Satisfiable, with a model.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
    /// Budget exhausted.
    Unknown,
}

impl SolveResult {
    /// The model, if Sat.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SolveResult::Sat(m) => Some(m),
            _ => None,
        }
    }

    /// Machine-readable outcome tag: `sat`, `unsat`, or `unknown` (the
    /// spelling telemetry traces use).
    pub fn kind(&self) -> &'static str {
        match self {
            SolveResult::Sat(_) => "sat",
            SolveResult::Unsat => "unsat",
            SolveResult::Unknown => "unknown",
        }
    }
}

/// Statistics from one `check`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// SAT conflicts used.
    pub conflicts: u64,
    /// Unit propagations performed (the virtual clock charges per unit).
    pub propagations: u64,
    /// CNF variables created.
    pub sat_vars: usize,
    /// CNF clauses created.
    pub sat_clauses: usize,
}

/// Preprocess an assertion list: detect constant-false assertions, prune
/// constant-true ones and dedup repeated term ids, preserving first-seen
/// order. Returns `None` when the conjunction is trivially unsat.
///
/// Pruning is CNF-neutral for non-trivial queries (a `BoolConst(true)`
/// assertion adds no gates and its unit clause is satisfied at level 0; a
/// repeated assertion hits the blaster's cache and its unit is already
/// true), so it never changes results or solve statistics — it only lets
/// fully trivial queries skip the blaster entirely.
pub(crate) fn preprocess(pool: &TermPool, assertions: &[TermId]) -> Option<Vec<TermId>> {
    if assertions.iter().any(|&a| pool.as_const(a) == Some(0)) {
        return None;
    }
    let mut seen: std::collections::HashSet<TermId> = std::collections::HashSet::new();
    let mut effective = Vec::with_capacity(assertions.len());
    for &a in assertions {
        if pool.as_const(a) == Some(1) {
            continue;
        }
        if seen.insert(a) {
            effective.push(a);
        }
    }
    Some(effective)
}

/// Read the full solve statistics out of a blaster.
pub(crate) fn stats_of(bb: &BitBlaster<'_>) -> SolveStats {
    SolveStats {
        conflicts: bb.sat.conflicts,
        propagations: bb.sat.propagations,
        sat_vars: bb.sat.num_vars(),
        sat_clauses: bb.sat.num_clauses(),
    }
}

/// Build the [`SolveResult`] for a finished blaster: on Sat, a model with an
/// explicit entry for every pool variable (unconstrained ones read 0).
pub(crate) fn result_of(pool: &TermPool, bb: &BitBlaster<'_>, outcome: SatOutcome) -> SolveResult {
    match outcome {
        SatOutcome::Sat => {
            // Zero values stay implicit ([`Model::value`] defaults to 0), so
            // models are canonical: a memoized model decoded in another pool
            // compares equal to the one a fresh solve would have built.
            let mut values = HashMap::new();
            for v in 0..pool.vars().len() as u32 {
                let value = bb.var_value(v);
                if value != 0 {
                    values.insert(v, value);
                }
            }
            SolveResult::Sat(Model { values })
        }
        SatOutcome::Unsat => SolveResult::Unsat,
        SatOutcome::Unknown => SolveResult::Unknown,
    }
}

/// Check the conjunction of `assertions` under `budget`.
///
/// Each call bit-blasts its (preprocessed) assertion list from scratch,
/// which keeps the solver stateless and is the reference semantics the
/// reuse layer must reproduce bit-for-bit: [`crate::prefix::PrefixSolver`]
/// answers the same queries from a shared prefix encoding, and
/// [`crate::cache::SolverCache`] replays memoized `(result, stats)` pairs —
/// both are observationally identical to calling `check`.
pub fn check(pool: &TermPool, assertions: &[TermId], budget: Budget) -> (SolveResult, SolveStats) {
    // Fast paths: constant-folded assertions never reach the blaster.
    let Some(effective) = preprocess(pool, assertions) else {
        return (SolveResult::Unsat, SolveStats::default());
    };
    if effective.is_empty() {
        return (SolveResult::Sat(Model::default()), SolveStats::default());
    }
    let mut bb = BitBlaster::new(pool);
    for &a in &effective {
        bb.assert_true(a);
    }
    let outcome = bb.sat.solve(budget.max_conflicts, budget.deadline);
    let stats = stats_of(&bb);
    (result_of(pool, &bb, outcome), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{BvOp, CmpOp};

    #[test]
    fn sat_model_satisfies_all_assertions() {
        let mut p = TermPool::new();
        let x = p.var("x", 32);
        let y = p.var("y", 32);
        let sum = p.bv(BvOp::Add, x, y);
        let c100 = p.bv_const(100, 32);
        let c30 = p.bv_const(30, 32);
        let a1 = p.eq(sum, c100);
        let a2 = p.cmp(CmpOp::Ult, x, c30);
        let (res, stats) = check(&p, &[a1, a2], Budget::default());
        let model = res.model().expect("sat").to_vec(&p);
        assert_eq!(p.eval(a1, &model), 1);
        assert_eq!(p.eval(a2, &model), 1);
        assert!(stats.sat_vars > 0);
    }

    #[test]
    fn unsat_contradiction() {
        let mut p = TermPool::new();
        let x = p.var("x", 8);
        let c1 = p.bv_const(1, 8);
        let c2 = p.bv_const(2, 8);
        let a1 = p.eq(x, c1);
        let a2 = p.eq(x, c2);
        let (res, _) = check(&p, &[a1, a2], Budget::default());
        assert_eq!(res, SolveResult::Unsat);
    }

    #[test]
    fn folded_false_short_circuits() {
        let mut p = TermPool::new();
        let f = p.bool_const(false);
        let (res, stats) = check(&p, &[f], Budget::default());
        assert_eq!(res, SolveResult::Unsat);
        assert_eq!(stats.sat_vars, 0, "no blasting should happen");
    }

    #[test]
    fn folded_true_short_circuits() {
        // All assertions fold to constant true: Sat with the default model,
        // and — mirroring folded_false_short_circuits — no blasting.
        let mut p = TermPool::new();
        let t = p.bool_const(true);
        let c1 = p.bv_const(7, 32);
        let c2 = p.bv_const(7, 32);
        let folded = p.eq(c1, c2); // folds to BoolConst(true)
        let (res, stats) = check(&p, &[t, folded, t], Budget::default());
        assert_eq!(res, SolveResult::Sat(Model::default()));
        assert_eq!(stats.sat_vars, 0, "no blasting should happen");
        assert_eq!(stats, SolveStats::default());
    }

    #[test]
    fn empty_assertion_list_is_trivially_sat() {
        let p = TermPool::new();
        let (res, stats) = check(&p, &[], Budget::default());
        assert_eq!(res, SolveResult::Sat(Model::default()));
        assert_eq!(stats.sat_vars, 0);
    }

    #[test]
    fn preprocessing_is_result_and_stats_neutral() {
        // Repeating assertions and interleaving constant-true assertions must
        // not change the verdict, the model, or the solve statistics relative
        // to the plain query — the preprocessing contract the reuse layer
        // relies on.
        let mut p = TermPool::new();
        let x = p.var("x", 32);
        let y = p.var("y", 32);
        let sum = p.bv(BvOp::Add, x, y);
        let c100 = p.bv_const(100, 32);
        let c30 = p.bv_const(30, 32);
        let a1 = p.eq(sum, c100);
        let a2 = p.cmp(CmpOp::Ult, x, c30);
        let t = p.bool_const(true);
        let (plain_res, plain_stats) = check(&p, &[a1, a2], Budget::default());
        let (noisy_res, noisy_stats) = check(&p, &[t, a1, a1, t, a2, a2, a1], Budget::default());
        assert_eq!(plain_res, noisy_res);
        assert_eq!(plain_stats, noisy_stats);
    }

    #[test]
    fn tiny_budget_yields_unknown_on_hard_instance() {
        // x² == 3 (mod 2^64) has no solution (squares are 0 or 1 mod 4),
        // but proving that needs far more than one conflict.
        let mut p = TermPool::new();
        let x = p.var("x", 64);
        let prod = p.bv(BvOp::Mul, x, x);
        let c = p.bv_const(3, 64);
        let a = p.eq(prod, c);
        let (res, _) = check(&p, &[a], Budget::conflicts(1));
        assert_eq!(res, SolveResult::Unknown);
    }

    #[test]
    fn expired_deadline_yields_unknown_on_hard_instance() {
        // Same hard instance as above, generous conflict budget, but the
        // wall-clock watchdog has already fired: the search must give up.
        let mut p = TermPool::new();
        let x = p.var("x", 64);
        let prod = p.bv(BvOp::Mul, x, x);
        let c = p.bv_const(3, 64);
        let a = p.eq(prod, c);
        let budget = Budget {
            deadline: Deadline::after(std::time::Duration::ZERO),
            ..Budget::default()
        };
        let (res, _) = check(&p, &[a], budget);
        assert_eq!(res, SolveResult::Unknown);
    }

    #[test]
    fn unconstrained_vars_default_to_zero() {
        let mut p = TermPool::new();
        let _unused = p.var("unused", 32);
        let x = p.var("x", 32);
        let c = p.bv_const(9, 32);
        let a = p.eq(x, c);
        let (res, _) = check(&p, &[a], Budget::default());
        let m = res.model().unwrap();
        assert_eq!(m.value_by_name(&p, "unused"), Some(0));
        assert_eq!(m.value_by_name(&p, "x"), Some(9));
    }
}
