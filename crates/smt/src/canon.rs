//! Canonical query keys: a pool-independent encoding of an assertion set.
//!
//! [`crate::term::TermPool`] hash-conses terms, so within one pool a query
//! is identified by its `TermId` list — but every symbolic replay owns a
//! fresh pool, and the memo cache (see [`crate::cache`]) must recognize the
//! *same* query re-issued from a different pool (the same guard re-reached
//! by a later seed, or the same contract analyzed by a sibling campaign).
//!
//! The key is therefore a serialization of the assertion list's term DAG
//! *structure*: each distinct subterm is numbered in first-visit order
//! (post-order over the assertion list) and emitted once as an opcode plus
//! operand sequence numbers; variables are identified by name and width
//! (names like `arg0.amount` are stable across replays — see
//! `wasai-symex`'s input construction). Two assertion lists get equal keys
//! iff they are structurally identical with identically-named variables, in
//! which case bit-blasting them produces literally the same CNF and the
//! solver the same result and statistics — the property that makes cache
//! hits byte-identical to re-solving.
//!
//! The key also folds in the solve's conflict cap
//! ([`crate::solver::Budget::max_conflicts`]): the cap decides where a
//! search gives up with `Unknown`, so the same CNF under different caps can
//! have different (both deterministic) outcomes, and campaigns with
//! heterogeneous budgets sharing one fleet cache must never alias. The
//! wall-clock deadline is deliberately *not* part of the key — it is not
//! replayable — which is why deadline-truncated outcomes are refused by the
//! cache instead (see [`crate::cache::cacheable`]).

use std::collections::HashMap;

use crate::term::{BvOp, CmpOp, TermId, TermKind, TermPool};

/// Version of the canonical key encoding. Bumped whenever the byte layout
/// produced by [`query_key`] changes (opcode table, field widths, ordering),
/// so a persisted cache written under one encoding is never interpreted
/// under another ([`crate::persist`] pins this in its file header).
pub const CANON_VERSION: u64 = 1;

/// An opaque canonical key for one assertion list.
///
/// `Ord` is the lexicographic order of the encoded bytes — meaningless
/// semantically, but stable, which is what deterministic eviction and the
/// sorted on-disk cache format need.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryKey(Vec<u8>);

impl QueryKey {
    /// Size of the encoded key in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the key is empty (the empty query).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The raw encoded bytes (for serialization).
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Reconstruct a key from bytes previously produced by [`Self::as_bytes`]
    /// under the same [`CANON_VERSION`].
    pub fn from_bytes(bytes: Vec<u8>) -> QueryKey {
        QueryKey(bytes)
    }

    /// The conflict cap the query was keyed under. [`query_key`] emits the
    /// cap as the first eight little-endian bytes, so it is recoverable from
    /// the key alone — the persistence layer uses this to refuse `Unknown`
    /// records whose recorded conflict count never reached the cap (a
    /// deadline-truncation artifact that [`crate::cache::cacheable`] would
    /// never have admitted).
    pub fn max_conflicts(&self) -> u64 {
        let mut raw = [0u8; 8];
        let n = self.0.len().min(8);
        raw[..n].copy_from_slice(&self.0[..n]);
        u64::from_le_bytes(raw)
    }
}

fn bv_code(op: BvOp) -> u8 {
    match op {
        BvOp::Add => 0,
        BvOp::Sub => 1,
        BvOp::Mul => 2,
        BvOp::UDiv => 3,
        BvOp::URem => 4,
        BvOp::SDiv => 5,
        BvOp::SRem => 6,
        BvOp::And => 7,
        BvOp::Or => 8,
        BvOp::Xor => 9,
        BvOp::Shl => 10,
        BvOp::LShr => 11,
        BvOp::AShr => 12,
        BvOp::Rotl => 13,
        BvOp::Rotr => 14,
    }
}

fn cmp_code(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ult => 1,
        CmpOp::Ule => 2,
        CmpOp::Slt => 3,
        CmpOp::Sle => 4,
    }
}

struct Encoder<'p> {
    pool: &'p TermPool,
    seq: HashMap<TermId, u32>,
    out: Vec<u8>,
}

impl<'p> Encoder<'p> {
    fn new(pool: &'p TermPool) -> Self {
        Encoder {
            pool,
            seq: HashMap::new(),
            out: Vec::new(),
        }
    }

    fn put_u32(&mut self, x: u32) {
        self.out.extend_from_slice(&x.to_le_bytes());
    }

    fn put_u64(&mut self, x: u64) {
        self.out.extend_from_slice(&x.to_le_bytes());
    }

    /// Encode a term (children first), returning its sequence number.
    fn term(&mut self, t: TermId) -> u32 {
        if let Some(&id) = self.seq.get(&t) {
            return id;
        }
        // Children are encoded before the parent record is emitted, so every
        // operand reference below points at an already-numbered subterm.
        let kind = self.pool.kind(t).clone();
        match kind {
            TermKind::BoolConst(b) => {
                self.out.push(0x01);
                self.out.push(b as u8);
            }
            TermKind::BvConst { width, bits } => {
                self.out.push(0x02);
                self.put_u32(width);
                self.put_u64(bits);
            }
            TermKind::Var { width, var } => {
                let name = self.pool.vars()[var as usize].name.clone();
                self.out.push(0x03);
                self.put_u32(width);
                self.put_u32(name.len() as u32);
                self.out.extend_from_slice(name.as_bytes());
            }
            TermKind::Not(a) => {
                let a = self.term(a);
                self.out.push(0x04);
                self.put_u32(a);
            }
            TermKind::AndB(a, b) => {
                let (a, b) = (self.term(a), self.term(b));
                self.out.push(0x05);
                self.put_u32(a);
                self.put_u32(b);
            }
            TermKind::OrB(a, b) => {
                let (a, b) = (self.term(a), self.term(b));
                self.out.push(0x06);
                self.put_u32(a);
                self.put_u32(b);
            }
            TermKind::Bv(op, a, b) => {
                let (a, b) = (self.term(a), self.term(b));
                self.out.push(0x07);
                self.out.push(bv_code(op));
                self.put_u32(a);
                self.put_u32(b);
            }
            TermKind::BvNot(a) => {
                let a = self.term(a);
                self.out.push(0x08);
                self.put_u32(a);
            }
            TermKind::BvNeg(a) => {
                let a = self.term(a);
                self.out.push(0x09);
                self.put_u32(a);
            }
            TermKind::Popcnt(a) => {
                let a = self.term(a);
                self.out.push(0x0a);
                self.put_u32(a);
            }
            TermKind::Cmp(op, a, b) => {
                let (a, b) = (self.term(a), self.term(b));
                self.out.push(0x0b);
                self.out.push(cmp_code(op));
                self.put_u32(a);
                self.put_u32(b);
            }
            TermKind::Concat(a, b) => {
                let (a, b) = (self.term(a), self.term(b));
                self.out.push(0x0c);
                self.put_u32(a);
                self.put_u32(b);
            }
            TermKind::Extract { term, hi, lo } => {
                let a = self.term(term);
                self.out.push(0x0d);
                self.put_u32(a);
                self.put_u32(hi);
                self.put_u32(lo);
            }
            TermKind::ZeroExt { term, add } => {
                let a = self.term(term);
                self.out.push(0x0e);
                self.put_u32(a);
                self.put_u32(add);
            }
            TermKind::SignExt { term, add } => {
                let a = self.term(term);
                self.out.push(0x0f);
                self.put_u32(a);
                self.put_u32(add);
            }
            TermKind::Ite(c, a, b) => {
                let (c, a, b) = (self.term(c), self.term(a), self.term(b));
                self.out.push(0x10);
                self.put_u32(c);
                self.put_u32(a);
                self.put_u32(b);
            }
        }
        let id = self.seq.len() as u32;
        self.seq.insert(t, id);
        id
    }
}

/// The canonical key of the query `prefix ∧ delta` (pass `None` for a
/// plain assertion list) solved under a conflict cap of `max_conflicts`.
/// The key covers the assertion list exactly as given — order and
/// repetitions included — plus the cap, so equal keys imply an identical
/// bit-blast searched under the identical resource limit, and therefore
/// identical results *and statistics*.
pub fn query_key(
    pool: &TermPool,
    prefix: &[TermId],
    delta: Option<TermId>,
    max_conflicts: u64,
) -> QueryKey {
    let mut enc = Encoder::new(pool);
    enc.put_u64(max_conflicts);
    let mut roots: Vec<u32> = Vec::with_capacity(prefix.len() + 1);
    for &a in prefix {
        let id = enc.term(a);
        roots.push(id);
    }
    if let Some(d) = delta {
        let id = enc.term(d);
        roots.push(id);
    }
    enc.out.push(0xff);
    for r in roots {
        enc.out.extend_from_slice(&r.to_le_bytes());
    }
    QueryKey(enc.out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::CmpOp;

    fn guard(pool: &mut TermPool, name: &str, k: u64) -> TermId {
        let v = pool.var(name, 64);
        let c = pool.bv_const(k, 64);
        pool.cmp(CmpOp::Ult, v, c)
    }

    #[test]
    fn same_structure_different_pools_share_keys() {
        // Pools built in different orders assign different TermIds and var
        // indices, but the canonical key only sees structure and names.
        let mut p1 = TermPool::new();
        let _noise = p1.var("zzz", 8); // shifts var indices
        let a1 = guard(&mut p1, "arg0", 10);
        let b1 = guard(&mut p1, "arg1", 20);

        let mut p2 = TermPool::new();
        let b2 = guard(&mut p2, "arg1", 20);
        let a2 = guard(&mut p2, "arg0", 10);

        assert_eq!(
            query_key(&p1, &[a1], Some(b1), 50_000),
            query_key(&p2, &[a2], Some(b2), 50_000)
        );
    }

    #[test]
    fn structure_and_names_distinguish_queries() {
        let mut p = TermPool::new();
        let a = guard(&mut p, "arg0", 10);
        let b = guard(&mut p, "arg1", 10);
        let c = guard(&mut p, "arg0", 11);
        assert_ne!(query_key(&p, &[a], None, 1), query_key(&p, &[b], None, 1));
        assert_ne!(query_key(&p, &[a], None, 1), query_key(&p, &[c], None, 1));
        // Order matters: the blast order (and hence CNF numbering) differs.
        assert_ne!(
            query_key(&p, &[a, b], None, 1),
            query_key(&p, &[b, a], None, 1)
        );
        // Prefix + delta is the same list as prefix-with-delta-appended.
        assert_eq!(
            query_key(&p, &[a, b], None, 1),
            query_key(&p, &[a], Some(b), 1)
        );
    }

    #[test]
    fn conflict_cap_is_part_of_the_key() {
        // The same constraints under different conflict caps can resolve
        // differently (one conflicts out to Unknown, the other solves), so
        // heterogeneous-budget campaigns sharing a fleet cache must not
        // alias each other's entries.
        let mut p = TermPool::new();
        let a = guard(&mut p, "arg0", 10);
        assert_ne!(
            query_key(&p, &[a], None, 1),
            query_key(&p, &[a], None, 50_000)
        );
        assert_eq!(
            query_key(&p, &[a], None, 50_000),
            query_key(&p, &[a], None, 50_000)
        );
    }

    #[test]
    fn key_byte_accessors_round_trip() {
        let mut p = TermPool::new();
        let a = guard(&mut p, "arg0", 10);
        let k = query_key(&p, &[a], None, 123_456);
        assert_eq!(k.max_conflicts(), 123_456);
        let back = QueryKey::from_bytes(k.as_bytes().to_vec());
        assert_eq!(back, k);
        // Ord is the lexicographic byte order — stable across processes.
        let k2 = query_key(&p, &[a], None, 123_457);
        assert_eq!(k.cmp(&k2), k.as_bytes().cmp(k2.as_bytes()));
    }

    #[test]
    fn shared_subterms_are_numbered_once() {
        let mut p = TermPool::new();
        let x = p.var("x", 32);
        let c = p.bv_const(5, 32);
        let lt = p.cmp(CmpOp::Ult, x, c);
        let eq = p.eq(x, c);
        let k_pair = query_key(&p, &[lt, eq], None, 1);
        let k_single = query_key(&p, &[lt], None, 1);
        // The pair's key reuses x and c: it is shorter than two singles.
        assert!(k_pair.len() < 2 * k_single.len());
    }
}
