//! A thread-safe memo cache for solver queries.
//!
//! Keys are canonical ([`crate::canon::query_key`]): two structurally
//! identical assertion lists — even from different [`TermPool`]s — blast to
//! literally the same CNF, so replaying the memoized `(result, stats)` pair
//! is byte-identical to re-solving. Sat models are stored by *variable
//! name* (names are stable across replays; `TermId`s and variable indices
//! are not) and re-keyed onto the querying pool on decode.
//!
//! The cache is shared fleet-wide behind an `Arc`, the same pattern as the
//! core crate's `PreparedTarget` artifact cache: campaigns over the same
//! contract (or different contracts sharing guard shapes) skip each other's
//! already-solved queries. Because a hit returns exactly what a solve would
//! have, sharing across worker threads cannot perturb campaign results —
//! only wall-clock time.
//!
//! That guarantee has one precondition, enforced by [`cacheable`]: an
//! `Unknown` produced under a live wall-clock
//! [`Deadline`](crate::deadline::Deadline) is a watchdog
//! artifact — where the clock happened to fire, not what the query solves
//! to — and must never be memoized, or a slow moment in one campaign would
//! nondeterministically suppress seeds in every sibling sharing the cache.
//! `Unknown` from a conflict cap alone *is* deterministic and replayable
//! (the cap is part of the [`QueryKey`]), so deadline-free campaigns still
//! memoize their give-ups.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use crate::canon::QueryKey;
use crate::solver::{Budget, Model, SolveResult, SolveStats};
use crate::term::TermPool;

/// Whether a solve outcome may be memoized (fleet-wide or per-campaign)
/// when it was produced under `budget`.
///
/// `Sat` and `Unsat` are always definitive: a live deadline only ever
/// truncates a search to `Unknown`, so a completed verdict is exactly what
/// an unhurried solve would return. `Unknown` is definitive only when no
/// wall-clock deadline was set — then it means "conflicted out at the cap",
/// which is deterministic and keyed (the cap is part of the
/// [`QueryKey`]). With a deadline set, an `Unknown` may merely mean "the
/// watchdog fired first", and replaying it would nondeterministically
/// suppress results a fresh solve finds.
pub fn cacheable(result: &SolveResult, budget: &Budget) -> bool {
    match result {
        SolveResult::Unknown => !budget.deadline.is_set(),
        SolveResult::Sat(_) | SolveResult::Unsat => true,
    }
}

/// Default entry cap. At the cap a plain cache refuses new entries and an
/// evicting cache (see [`SolverCache::evicting`]) keeps the
/// lexicographically smallest keys — both policies bound memory and leave
/// the end state a pure function of the key *set*, never of arrival order.
const MAX_ENTRIES: usize = 1 << 16;

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum CachedOutcome {
    /// Sat, with the model's nonzero values keyed by variable name.
    Sat(Vec<(String, u64)>),
    Unsat,
    Unknown,
}

/// One memoized query: the solver's verdict plus its exact statistics, in a
/// pool-independent form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedQuery {
    pub(crate) outcome: CachedOutcome,
    pub(crate) stats: SolveStats,
}

impl CachedQuery {
    /// Capture a solve outcome in pool-independent form.
    pub fn encode(pool: &TermPool, result: &SolveResult, stats: SolveStats) -> CachedQuery {
        let outcome = match result {
            SolveResult::Sat(m) => {
                let mut named: Vec<(String, u64)> = m
                    .values()
                    .iter()
                    .filter(|&(_, &v)| v != 0)
                    .map(|(&var, &v)| (pool.vars()[var as usize].name.clone(), v))
                    .collect();
                named.sort();
                CachedOutcome::Sat(named)
            }
            SolveResult::Unsat => CachedOutcome::Unsat,
            SolveResult::Unknown => CachedOutcome::Unknown,
        };
        CachedQuery { outcome, stats }
    }

    /// Replay the memoized outcome against `pool` (the querying replay's
    /// pool). Stored variables the pool does not know are impossible for a
    /// canonical key match and are ignored; pool variables the query never
    /// constrained stay at the implicit 0, exactly as a fresh solve leaves
    /// them.
    pub fn decode(&self, pool: &TermPool) -> (SolveResult, SolveStats) {
        let result = match &self.outcome {
            CachedOutcome::Sat(named) => {
                let mut values = HashMap::new();
                for (name, value) in named {
                    if let Some(var) = pool.var_index(name) {
                        values.insert(var, *value);
                    }
                }
                SolveResult::Sat(Model::from_values(values))
            }
            CachedOutcome::Unsat => SolveResult::Unsat,
            CachedOutcome::Unknown => SolveResult::Unknown,
        };
        (result, self.stats)
    }
}

/// The fleet-wide query cache. Cheap to share: lookups take one mutex hold
/// over an ordered-map probe; counters are atomic.
///
/// The map is a `BTreeMap` rather than a hash map so that iteration order
/// (for [`SolverCache::snapshot`] and the on-disk format) and the eviction
/// victim (the largest key) are deterministic, independent of hasher seeds
/// and arrival order.
#[derive(Debug)]
pub struct SolverCache {
    map: Mutex<BTreeMap<QueryKey, CachedQuery>>,
    hits: AtomicU64,
    lookups: AtomicU64,
    dropped: AtomicU64,
    capacity: usize,
    evict: bool,
}

impl Default for SolverCache {
    fn default() -> SolverCache {
        SolverCache::new()
    }
}

impl SolverCache {
    /// An empty cache that *refuses* new entries at capacity (the in-memory
    /// fleet default: refusal keeps the hot set intact for the duration of
    /// one sweep).
    pub fn new() -> SolverCache {
        SolverCache::with_policy(MAX_ENTRIES, false)
    }

    /// An empty cache that *evicts* deterministically at capacity, keeping
    /// the lexicographically smallest keys. This is the policy used when a
    /// persistent cache file is configured: refusal would silently freeze
    /// the warm set at whatever the first run happened to solve, while
    /// smallest-keys-win makes the retained set (and hence the saved file)
    /// a pure function of the keys ever offered, at any thread or process
    /// schedule.
    pub fn evicting() -> SolverCache {
        SolverCache::with_policy(MAX_ENTRIES, true)
    }

    /// A cache with an explicit capacity (tests exercise tiny caps).
    pub fn with_policy(capacity: usize, evict: bool) -> SolverCache {
        SolverCache {
            map: Mutex::new(BTreeMap::new()),
            hits: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            capacity,
            evict,
        }
    }

    /// The map guard, tolerant of poisoning: a campaign that panics while
    /// holding the lock (chaos mode injects exactly that) must not cascade
    /// panics into every sibling sharing the cache. The map is always
    /// consistent at poison time — entries are inserted or removed whole —
    /// so continuing with the inner value is safe.
    fn map(&self) -> MutexGuard<'_, BTreeMap<QueryKey, CachedQuery>> {
        self.map
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Look up a canonical key, decoding the memo against `pool` on a hit.
    pub fn lookup(&self, key: &QueryKey, pool: &TermPool) -> Option<(SolveResult, SolveStats)> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        wasai_obs::inc(wasai_obs::Counter::CacheLookupsFleet);
        let entry = self.map().get(key).cloned();
        let hit = entry.map(|e| e.decode(pool));
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            wasai_obs::inc(wasai_obs::Counter::CacheHitsFleet);
        }
        hit
    }

    /// Memoize a solved query. Idempotent: concurrent stores of the same
    /// key write identical entries (solving is deterministic), so races are
    /// harmless.
    ///
    /// At capacity the non-evicting cache refuses the new key; the evicting
    /// cache admits it iff it sorts below the current largest key, which it
    /// then evicts. Either way each lost entry (refused or evicted) bumps
    /// the drop counter and the `CacheStoreDropped` observability series —
    /// a shrinking warm rate at scale should be visible, not silent.
    pub fn store(&self, key: QueryKey, entry: CachedQuery) {
        let mut map = self.map();
        if map.len() >= self.capacity && !map.contains_key(&key) {
            if !self.evict {
                drop(map);
                self.note_dropped();
                return;
            }
            // Deterministic eviction: keep the smallest `capacity` keys.
            // Inductively the map always holds the smallest keys offered so
            // far, so the end state depends only on the offered key set.
            let victim = map
                .keys()
                .next_back()
                .expect("capacity is nonzero at eviction time")
                .clone();
            if victim <= key {
                drop(map);
                self.note_dropped();
                return;
            }
            map.remove(&victim);
            map.insert(key, entry);
            drop(map);
            self.note_dropped();
            return;
        }
        map.insert(key, entry);
    }

    fn note_dropped(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
        wasai_obs::inc(wasai_obs::Counter::CacheStoreDropped);
    }

    /// A sorted snapshot of every entry (the persistence layer serializes
    /// this; sortedness makes the saved file canonical).
    pub fn snapshot(&self) -> Vec<(QueryKey, CachedQuery)> {
        self.map()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Number of memoized queries.
    pub fn len(&self) -> usize {
        self.map().len()
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total lookups served.
    pub fn lookups(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Lookups that hit.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Hit rate in [0, 1] (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits() as f64 / lookups as f64
        }
    }

    /// Entries lost to the capacity cap (refused or evicted).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::query_key;
    use crate::solver::{check, Budget};
    use crate::term::CmpOp;

    fn build_query(pool: &mut TermPool, noise_vars: usize) -> (crate::term::TermId, u32) {
        for i in 0..noise_vars {
            pool.var(&format!("noise{i}"), 8);
        }
        let x = pool.var("x", 32);
        let c = pool.bv_const(41, 32);
        let xv = pool.var_index("x").expect("x registered");
        (pool.eq(x, c), xv)
    }

    #[test]
    fn hit_replays_result_and_stats_across_pools() {
        let cache = SolverCache::new();

        // Solve in pool 1 and memoize.
        let mut p1 = TermPool::new();
        let (q1, _) = build_query(&mut p1, 0);
        let budget = Budget::default();
        let key1 = query_key(&p1, &[q1], None, budget.max_conflicts);
        let (res1, stats1) = check(&p1, &[q1], budget);
        cache.store(key1.clone(), CachedQuery::encode(&p1, &res1, stats1));

        // Same structural query from a different pool with shifted indices.
        let mut p2 = TermPool::new();
        let (q2, x2) = build_query(&mut p2, 3);
        let key2 = query_key(&p2, &[q2], None, budget.max_conflicts);
        assert_eq!(key1, key2, "canonical keys must match across pools");

        let (hit_res, hit_stats) = cache.lookup(&key2, &p2).expect("hit");
        let (fresh_res, fresh_stats) = check(&p2, &[q2], Budget::default());
        assert_eq!(hit_res, fresh_res, "memoized result must replay exactly");
        assert_eq!(hit_stats, fresh_stats);
        assert_eq!(hit_res.model().expect("sat").value(x2), 41);

        assert_eq!(cache.lookups(), 1);
        assert_eq!(cache.hits(), 1);
        assert!((cache.hit_rate() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn miss_then_store_then_hit() {
        let cache = SolverCache::new();
        let mut p = TermPool::new();
        let x = p.var("x", 16);
        let c = p.bv_const(5, 16);
        let q = p.cmp(CmpOp::Ult, x, c);
        let key = query_key(&p, &[q], None, Budget::default().max_conflicts);
        assert!(cache.lookup(&key, &p).is_none());
        let (res, stats) = check(&p, &[q], Budget::default());
        cache.store(key.clone(), CachedQuery::encode(&p, &res, stats));
        assert!(cache.lookup(&key, &p).is_some());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookups(), 2);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let cache = Arc::new(SolverCache::new());
        let mut p = TermPool::new();
        let x = p.var("x", 16);
        let c = p.bv_const(9, 16);
        let q = p.eq(x, c);
        let key = query_key(&p, &[q], None, Budget::default().max_conflicts);
        let (res, stats) = check(&p, &[q], Budget::default());
        cache.store(key.clone(), CachedQuery::encode(&p, &res, stats));

        std::thread::scope(|s| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                let key = key.clone();
                let pool = &p;
                s.spawn(move || {
                    let (r, _) = cache.lookup(&key, pool).expect("hit");
                    assert_eq!(r.model().map(|m| m.value_by_name(pool, "x")), Some(Some(9)));
                });
            }
        });
        assert_eq!(cache.hits(), 4);
    }

    #[test]
    fn deadline_truncated_unknown_is_not_cacheable() {
        use crate::deadline::Deadline;
        use std::time::Duration;

        // An Unknown under a live watchdog reflects where the clock fired,
        // not what the query solves to — memoizing it would let one slow
        // campaign suppress its siblings' seeds nondeterministically.
        let watchdog = Budget {
            max_conflicts: 50_000,
            deadline: Deadline::after(Duration::ZERO),
        };
        assert!(!cacheable(&SolveResult::Unknown, &watchdog));
        // Completed verdicts under the same watchdog are exact: a deadline
        // only ever truncates to Unknown.
        assert!(cacheable(&SolveResult::Unsat, &watchdog));
        assert!(cacheable(&SolveResult::Sat(Model::default()), &watchdog));
        // With no deadline, Unknown means "conflicted out at the cap" —
        // deterministic, and the cap is part of the key.
        assert!(cacheable(&SolveResult::Unknown, &Budget::conflicts(1)));
    }

    /// A campaign that panics while holding the cache lock (chaos mode does
    /// exactly this) must not poison the cache for its siblings — the
    /// regression for the `.expect("cache poisoned")` cascade.
    #[test]
    fn poisoned_lock_leaves_siblings_working() {
        use std::sync::Arc;
        let cache = Arc::new(SolverCache::new());
        let mut p = TermPool::new();
        let x = p.var("x", 16);
        let c = p.bv_const(9, 16);
        let q = p.eq(x, c);
        let key = query_key(&p, &[q], None, Budget::default().max_conflicts);
        let (res, stats) = check(&p, &[q], Budget::default());
        cache.store(key.clone(), CachedQuery::encode(&p, &res, stats));

        // Poison the mutex: panic in a thread that holds the guard.
        let poisoner = Arc::clone(&cache);
        let joined = std::thread::spawn(move || {
            let _guard = poisoner.map();
            panic!("chaos: campaign dies holding the cache lock");
        })
        .join();
        assert!(joined.is_err(), "poisoner must have panicked");

        // Siblings keep hitting, storing, and counting.
        assert!(cache.lookup(&key, &p).is_some(), "lookup after poison");
        let key2 = query_key(&p, &[q], None, 1);
        cache.store(key2.clone(), CachedQuery::encode(&p, &res, stats));
        assert_eq!(cache.len(), 2, "store after poison");
    }

    fn tiny_entry(pool: &TermPool) -> CachedQuery {
        CachedQuery::encode(pool, &SolveResult::Unsat, SolveStats::default())
    }

    /// The evicting cache keeps the smallest `capacity` keys of whatever
    /// set was offered, in any order — the property that makes the saved
    /// cache file schedule-independent.
    #[test]
    fn eviction_is_arrival_order_independent() {
        let p = TermPool::new();
        let keys: Vec<QueryKey> = (0u64..6)
            .map(|i| QueryKey::from_bytes(vec![i as u8; 4]))
            .collect();

        let forward = SolverCache::with_policy(3, true);
        for k in &keys {
            forward.store(k.clone(), tiny_entry(&p));
        }
        let reverse = SolverCache::with_policy(3, true);
        for k in keys.iter().rev() {
            reverse.store(k.clone(), tiny_entry(&p));
        }

        let keys_of = |c: &SolverCache| -> Vec<QueryKey> {
            c.snapshot().into_iter().map(|(k, _)| k).collect()
        };
        assert_eq!(keys_of(&forward), keys_of(&reverse));
        assert_eq!(keys_of(&forward), keys[..3].to_vec());
        assert_eq!(forward.dropped(), 3);
        assert_eq!(reverse.dropped(), 3);
    }

    /// The non-evicting cache still refuses at capacity, but now counts it.
    #[test]
    fn refusal_at_capacity_is_counted() {
        let p = TermPool::new();
        let cache = SolverCache::with_policy(2, false);
        for i in 0u8..4 {
            cache.store(QueryKey::from_bytes(vec![i]), tiny_entry(&p));
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.dropped(), 2);
        // Re-storing a resident key is not a drop.
        cache.store(QueryKey::from_bytes(vec![0]), tiny_entry(&p));
        assert_eq!(cache.dropped(), 2);
    }
}
