//! A thread-safe memo cache for solver queries.
//!
//! Keys are canonical ([`crate::canon::query_key`]): two structurally
//! identical assertion lists — even from different [`TermPool`]s — blast to
//! literally the same CNF, so replaying the memoized `(result, stats)` pair
//! is byte-identical to re-solving. Sat models are stored by *variable
//! name* (names are stable across replays; `TermId`s and variable indices
//! are not) and re-keyed onto the querying pool on decode.
//!
//! The cache is shared fleet-wide behind an `Arc`, the same pattern as the
//! core crate's `PreparedTarget` artifact cache: campaigns over the same
//! contract (or different contracts sharing guard shapes) skip each other's
//! already-solved queries. Because a hit returns exactly what a solve would
//! have, sharing across worker threads cannot perturb campaign results —
//! only wall-clock time.
//!
//! That guarantee has one precondition, enforced by [`cacheable`]: an
//! `Unknown` produced under a live wall-clock
//! [`Deadline`](crate::deadline::Deadline) is a watchdog
//! artifact — where the clock happened to fire, not what the query solves
//! to — and must never be memoized, or a slow moment in one campaign would
//! nondeterministically suppress seeds in every sibling sharing the cache.
//! `Unknown` from a conflict cap alone *is* deterministic and replayable
//! (the cap is part of the [`QueryKey`]), so deadline-free campaigns still
//! memoize their give-ups.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::canon::QueryKey;
use crate::solver::{Budget, Model, SolveResult, SolveStats};
use crate::term::TermPool;

/// Whether a solve outcome may be memoized (fleet-wide or per-campaign)
/// when it was produced under `budget`.
///
/// `Sat` and `Unsat` are always definitive: a live deadline only ever
/// truncates a search to `Unknown`, so a completed verdict is exactly what
/// an unhurried solve would return. `Unknown` is definitive only when no
/// wall-clock deadline was set — then it means "conflicted out at the cap",
/// which is deterministic and keyed (the cap is part of the
/// [`QueryKey`]). With a deadline set, an `Unknown` may merely mean "the
/// watchdog fired first", and replaying it would nondeterministically
/// suppress results a fresh solve finds.
pub fn cacheable(result: &SolveResult, budget: &Budget) -> bool {
    match result {
        SolveResult::Unknown => !budget.deadline.is_set(),
        SolveResult::Sat(_) | SolveResult::Unsat => true,
    }
}

/// Entry cap: beyond this the cache stops accepting new queries instead of
/// evicting (eviction order would make hit patterns scheduling-dependent;
/// refusing keeps behavior deterministic and memory bounded).
const MAX_ENTRIES: usize = 1 << 16;

#[derive(Debug, Clone)]
enum CachedOutcome {
    /// Sat, with the model's nonzero values keyed by variable name.
    Sat(Vec<(String, u64)>),
    Unsat,
    Unknown,
}

/// One memoized query: the solver's verdict plus its exact statistics, in a
/// pool-independent form.
#[derive(Debug, Clone)]
pub struct CachedQuery {
    outcome: CachedOutcome,
    stats: SolveStats,
}

impl CachedQuery {
    /// Capture a solve outcome in pool-independent form.
    pub fn encode(pool: &TermPool, result: &SolveResult, stats: SolveStats) -> CachedQuery {
        let outcome = match result {
            SolveResult::Sat(m) => {
                let mut named: Vec<(String, u64)> = m
                    .values()
                    .iter()
                    .filter(|&(_, &v)| v != 0)
                    .map(|(&var, &v)| (pool.vars()[var as usize].name.clone(), v))
                    .collect();
                named.sort();
                CachedOutcome::Sat(named)
            }
            SolveResult::Unsat => CachedOutcome::Unsat,
            SolveResult::Unknown => CachedOutcome::Unknown,
        };
        CachedQuery { outcome, stats }
    }

    /// Replay the memoized outcome against `pool` (the querying replay's
    /// pool). Stored variables the pool does not know are impossible for a
    /// canonical key match and are ignored; pool variables the query never
    /// constrained stay at the implicit 0, exactly as a fresh solve leaves
    /// them.
    pub fn decode(&self, pool: &TermPool) -> (SolveResult, SolveStats) {
        let result = match &self.outcome {
            CachedOutcome::Sat(named) => {
                let mut values = HashMap::new();
                for (name, value) in named {
                    if let Some(var) = pool.var_index(name) {
                        values.insert(var, *value);
                    }
                }
                SolveResult::Sat(Model::from_values(values))
            }
            CachedOutcome::Unsat => SolveResult::Unsat,
            CachedOutcome::Unknown => SolveResult::Unknown,
        };
        (result, self.stats)
    }
}

/// The fleet-wide query cache. Cheap to share: lookups take one mutex hold
/// over a hash probe; counters are atomic.
#[derive(Debug, Default)]
pub struct SolverCache {
    map: Mutex<HashMap<QueryKey, CachedQuery>>,
    hits: AtomicU64,
    lookups: AtomicU64,
}

impl SolverCache {
    /// An empty cache.
    pub fn new() -> SolverCache {
        SolverCache::default()
    }

    /// Look up a canonical key, decoding the memo against `pool` on a hit.
    pub fn lookup(&self, key: &QueryKey, pool: &TermPool) -> Option<(SolveResult, SolveStats)> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        wasai_obs::inc(wasai_obs::Counter::CacheLookupsFleet);
        let entry = {
            let map = self.map.lock().expect("cache poisoned");
            map.get(key).cloned()
        };
        let hit = entry.map(|e| e.decode(pool));
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            wasai_obs::inc(wasai_obs::Counter::CacheHitsFleet);
        }
        hit
    }

    /// Memoize a solved query. Idempotent: concurrent stores of the same
    /// key write identical entries (solving is deterministic), so races are
    /// harmless.
    pub fn store(&self, key: QueryKey, entry: CachedQuery) {
        let mut map = self.map.lock().expect("cache poisoned");
        if map.len() >= MAX_ENTRIES && !map.contains_key(&key) {
            return;
        }
        map.insert(key, entry);
    }

    /// Number of memoized queries.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache poisoned").len()
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total lookups served.
    pub fn lookups(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Lookups that hit.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Hit rate in [0, 1] (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits() as f64 / lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::query_key;
    use crate::solver::{check, Budget};
    use crate::term::CmpOp;

    fn build_query(pool: &mut TermPool, noise_vars: usize) -> (crate::term::TermId, u32) {
        for i in 0..noise_vars {
            pool.var(&format!("noise{i}"), 8);
        }
        let x = pool.var("x", 32);
        let c = pool.bv_const(41, 32);
        let xv = pool.var_index("x").expect("x registered");
        (pool.eq(x, c), xv)
    }

    #[test]
    fn hit_replays_result_and_stats_across_pools() {
        let cache = SolverCache::new();

        // Solve in pool 1 and memoize.
        let mut p1 = TermPool::new();
        let (q1, _) = build_query(&mut p1, 0);
        let budget = Budget::default();
        let key1 = query_key(&p1, &[q1], None, budget.max_conflicts);
        let (res1, stats1) = check(&p1, &[q1], budget);
        cache.store(key1.clone(), CachedQuery::encode(&p1, &res1, stats1));

        // Same structural query from a different pool with shifted indices.
        let mut p2 = TermPool::new();
        let (q2, x2) = build_query(&mut p2, 3);
        let key2 = query_key(&p2, &[q2], None, budget.max_conflicts);
        assert_eq!(key1, key2, "canonical keys must match across pools");

        let (hit_res, hit_stats) = cache.lookup(&key2, &p2).expect("hit");
        let (fresh_res, fresh_stats) = check(&p2, &[q2], Budget::default());
        assert_eq!(hit_res, fresh_res, "memoized result must replay exactly");
        assert_eq!(hit_stats, fresh_stats);
        assert_eq!(hit_res.model().expect("sat").value(x2), 41);

        assert_eq!(cache.lookups(), 1);
        assert_eq!(cache.hits(), 1);
        assert!((cache.hit_rate() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn miss_then_store_then_hit() {
        let cache = SolverCache::new();
        let mut p = TermPool::new();
        let x = p.var("x", 16);
        let c = p.bv_const(5, 16);
        let q = p.cmp(CmpOp::Ult, x, c);
        let key = query_key(&p, &[q], None, Budget::default().max_conflicts);
        assert!(cache.lookup(&key, &p).is_none());
        let (res, stats) = check(&p, &[q], Budget::default());
        cache.store(key.clone(), CachedQuery::encode(&p, &res, stats));
        assert!(cache.lookup(&key, &p).is_some());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookups(), 2);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let cache = Arc::new(SolverCache::new());
        let mut p = TermPool::new();
        let x = p.var("x", 16);
        let c = p.bv_const(9, 16);
        let q = p.eq(x, c);
        let key = query_key(&p, &[q], None, Budget::default().max_conflicts);
        let (res, stats) = check(&p, &[q], Budget::default());
        cache.store(key.clone(), CachedQuery::encode(&p, &res, stats));

        std::thread::scope(|s| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                let key = key.clone();
                let pool = &p;
                s.spawn(move || {
                    let (r, _) = cache.lookup(&key, pool).expect("hit");
                    assert_eq!(r.model().map(|m| m.value_by_name(pool, "x")), Some(Some(9)));
                });
            }
        });
        assert_eq!(cache.hits(), 4);
    }

    #[test]
    fn deadline_truncated_unknown_is_not_cacheable() {
        use crate::deadline::Deadline;
        use std::time::Duration;

        // An Unknown under a live watchdog reflects where the clock fired,
        // not what the query solves to — memoizing it would let one slow
        // campaign suppress its siblings' seeds nondeterministically.
        let watchdog = Budget {
            max_conflicts: 50_000,
            deadline: Deadline::after(Duration::ZERO),
        };
        assert!(!cacheable(&SolveResult::Unknown, &watchdog));
        // Completed verdicts under the same watchdog are exact: a deadline
        // only ever truncates to Unknown.
        assert!(cacheable(&SolveResult::Unsat, &watchdog));
        assert!(cacheable(&SolveResult::Sat(Model::default()), &watchdog));
        // With no deadline, Unknown means "conflicted out at the cap" —
        // deterministic, and the cap is part of the key.
        assert!(cacheable(&SolveResult::Unknown, &Budget::conflicts(1)));
    }
}
