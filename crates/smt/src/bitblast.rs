//! Bit-blasting of bitvector terms to CNF (Tseitin encoding).
//!
//! Every [`TermId`] lowers to either a single SAT literal (Bool sort) or a
//! little-endian vector of literals (BitVec sort). Arithmetic uses
//! ripple-carry adders, shift-add multipliers, restoring dividers and barrel
//! shifters; `popcnt` (the obfuscator's primitive, §4.3) lowers to an adder
//! tree, which is what lets WASAI solve popcount-encoded guards where
//! EOSAFE's pattern matching goes blind (Table 5).

use std::collections::HashMap;

use crate::sat::{Lit, SatSolver};
use crate::term::{BvOp, CmpOp, Sort, TermId, TermKind, TermPool};

/// Lowers a term DAG into a [`SatSolver`].
///
/// `Clone` forks the whole encoding — SAT instance plus gate caches — so a
/// shared path-prefix encoding can be extended per flip query without
/// re-blasting the prefix (see [`crate::prefix::PrefixSolver`]).
#[derive(Debug, Clone)]
pub struct BitBlaster<'p> {
    pool: &'p TermPool,
    /// The SAT instance being built.
    pub sat: SatSolver,
    bool_cache: HashMap<TermId, Lit>,
    bv_cache: HashMap<TermId, Vec<Lit>>,
    var_bits: HashMap<u32, Vec<Lit>>,
    lit_true: Lit,
}

impl<'p> BitBlaster<'p> {
    /// A new blaster over a pool.
    pub fn new(pool: &'p TermPool) -> Self {
        let mut sat = SatSolver::new();
        let t = Lit::pos(sat.new_var());
        sat.add_clause(&[t]);
        BitBlaster {
            pool,
            sat,
            bool_cache: HashMap::new(),
            bv_cache: HashMap::new(),
            var_bits: HashMap::new(),
            lit_true: t,
        }
    }

    /// The always-true literal.
    pub fn lit_true(&self) -> Lit {
        self.lit_true
    }

    /// The always-false literal.
    pub fn lit_false(&self) -> Lit {
        self.lit_true.negate()
    }

    fn const_lit(&self, b: bool) -> Lit {
        if b {
            self.lit_true
        } else {
            self.lit_false()
        }
    }

    fn fresh(&mut self) -> Lit {
        Lit::pos(self.sat.new_var())
    }

    /// `c = a ∧ b`.
    fn and_gate(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.lit_true {
            return b;
        }
        if b == self.lit_true {
            return a;
        }
        if a == self.lit_false() || b == self.lit_false() {
            return self.lit_false();
        }
        if a == b {
            return a;
        }
        if a == b.negate() {
            return self.lit_false();
        }
        let c = self.fresh();
        self.sat.add_clause(&[a.negate(), b.negate(), c]);
        self.sat.add_clause(&[a, c.negate()]);
        self.sat.add_clause(&[b, c.negate()]);
        c
    }

    fn or_gate(&mut self, a: Lit, b: Lit) -> Lit {
        self.and_gate(a.negate(), b.negate()).negate()
    }

    /// `c = a ⊕ b`.
    fn xor_gate(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.lit_true {
            return b.negate();
        }
        if b == self.lit_true {
            return a.negate();
        }
        if a == self.lit_false() {
            return b;
        }
        if b == self.lit_false() {
            return a;
        }
        if a == b {
            return self.lit_false();
        }
        if a == b.negate() {
            return self.lit_true;
        }
        let c = self.fresh();
        self.sat.add_clause(&[a.negate(), b.negate(), c.negate()]);
        self.sat.add_clause(&[a, b, c.negate()]);
        self.sat.add_clause(&[a.negate(), b, c]);
        self.sat.add_clause(&[a, b.negate(), c]);
        c
    }

    /// `c = if s then a else b`.
    fn mux_gate(&mut self, s: Lit, a: Lit, b: Lit) -> Lit {
        if s == self.lit_true {
            return a;
        }
        if s == self.lit_false() {
            return b;
        }
        if a == b {
            return a;
        }
        let sa = self.and_gate(s, a);
        let nsb = self.and_gate(s.negate(), b);
        self.or_gate(sa, nsb)
    }

    fn mux_vec(&mut self, s: Lit, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| self.mux_gate(s, x, y))
            .collect()
    }

    /// Full adder over vectors, returning (sum, carry-out).
    fn adder(&mut self, a: &[Lit], b: &[Lit], mut carry: Lit) -> (Vec<Lit>, Lit) {
        let mut sum = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let xy = self.xor_gate(x, y);
            sum.push(self.xor_gate(xy, carry));
            let maj1 = self.and_gate(x, y);
            let maj2 = self.and_gate(xy, carry);
            carry = self.or_gate(maj1, maj2);
        }
        (sum, carry)
    }

    fn neg_vec(&mut self, a: &[Lit]) -> Vec<Lit> {
        let inv: Vec<Lit> = a.iter().map(|l| l.negate()).collect();
        let zero: Vec<Lit> = vec![self.lit_false(); a.len()];
        let (sum, _) = self.adder(&inv, &zero, self.lit_true);
        sum
    }

    fn sub_vec(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let inv: Vec<Lit> = b.iter().map(|l| l.negate()).collect();
        let (sum, _) = self.adder(a, &inv, self.lit_true);
        sum
    }

    /// `a >= b` (unsigned): carry-out of a + ¬b + 1.
    fn uge_gate(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let inv: Vec<Lit> = b.iter().map(|l| l.negate()).collect();
        let (_, carry) = self.adder(a, &inv, self.lit_true);
        carry
    }

    fn eq_vec(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let mut acc = self.lit_true;
        for (&x, &y) in a.iter().zip(b) {
            let same = self.xor_gate(x, y).negate();
            acc = self.and_gate(acc, same);
        }
        acc
    }

    fn mul_vec(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let w = a.len();
        let mut acc: Vec<Lit> = vec![self.lit_false(); w];
        for (i, &bit) in b.iter().enumerate() {
            // partial = (a << i) & bit
            let mut partial: Vec<Lit> = vec![self.lit_false(); w];
            for j in i..w {
                partial[j] = self.and_gate(a[j - i], bit);
            }
            let (sum, _) = self.adder(&acc, &partial, self.lit_false());
            acc = sum;
        }
        acc
    }

    /// Restoring division: returns (quotient, remainder). Division by zero
    /// follows SMT-LIB: q = all-ones, r = a.
    fn udivrem(&mut self, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Vec<Lit>) {
        let w = a.len();
        let mut rem: Vec<Lit> = vec![self.lit_false(); w];
        let mut quo: Vec<Lit> = vec![self.lit_false(); w];
        for i in (0..w).rev() {
            // rem = (rem << 1) | a[i]
            rem.rotate_right(1);
            rem[0] = a[i];
            let ge = self.uge_gate(&rem, b);
            let sub = self.sub_vec(&rem, b);
            rem = self.mux_vec(ge, &sub, &rem);
            quo[i] = ge;
        }
        // b == 0 fixup.
        let zero: Vec<Lit> = vec![self.lit_false(); w];
        let b_zero = self.eq_vec(b, &zero);
        let ones: Vec<Lit> = vec![self.lit_true; w];
        let quo = self.mux_vec(b_zero, &ones, &quo);
        let rem = self.mux_vec(b_zero, a, &rem);
        (quo, rem)
    }

    /// Barrel shifter. `left = true` for shl; `arith` for ashr. The shift
    /// amount is reduced modulo the width (Wasm semantics); widths must be
    /// powers of two for that reduction to be a bit-slice.
    #[allow(clippy::needless_range_loop)] // index math is clearer than iterators here
    fn shift(&mut self, a: &[Lit], amount: &[Lit], left: bool, arith: bool) -> Vec<Lit> {
        let w = a.len();
        assert!(
            w.is_power_of_two(),
            "symbolic shifts require power-of-two width, got {w}"
        );
        let stages = w.trailing_zeros() as usize;
        let fill = if arith { a[w - 1] } else { self.lit_false() };
        let mut cur: Vec<Lit> = a.to_vec();
        for k in 0..stages {
            let s = amount[k];
            let dist = 1usize << k;
            let mut shifted = vec![fill; w];
            for j in 0..w {
                if left {
                    if j >= dist {
                        shifted[j] = cur[j - dist];
                    } else {
                        shifted[j] = self.lit_false();
                    }
                } else if j + dist < w {
                    shifted[j] = cur[j + dist];
                }
            }
            cur = self.mux_vec(s, &shifted, &cur);
        }
        cur
    }

    #[allow(clippy::needless_range_loop)] // index math is clearer than iterators here
    fn rotate(&mut self, a: &[Lit], amount: &[Lit], left: bool) -> Vec<Lit> {
        let w = a.len();
        assert!(
            w.is_power_of_two(),
            "symbolic rotates require power-of-two width"
        );
        let stages = w.trailing_zeros() as usize;
        let mut cur: Vec<Lit> = a.to_vec();
        for k in 0..stages {
            let s = amount[k];
            let dist = 1usize << k;
            let mut rotated = vec![self.lit_false(); w];
            for j in 0..w {
                let src = if left {
                    (j + w - dist) % w
                } else {
                    (j + dist) % w
                };
                rotated[j] = cur[src];
            }
            cur = self.mux_vec(s, &rotated, &cur);
        }
        cur
    }

    /// Adder tree for population count, zero-extended to the operand width.
    fn popcnt_vec(&mut self, a: &[Lit]) -> Vec<Lit> {
        let w = a.len();
        // Sum bits as width-w vectors (cheap enough at w ≤ 64 and simple).
        let mut acc: Vec<Lit> = vec![self.lit_false(); w];
        for &bit in a {
            let mut addend = vec![self.lit_false(); w];
            addend[0] = bit;
            let (sum, _) = self.adder(&acc, &addend, self.lit_false());
            acc = sum;
        }
        acc
    }

    /// Lower a Bool-sorted term to a literal.
    pub fn blast_bool(&mut self, t: TermId) -> Lit {
        if let Some(&l) = self.bool_cache.get(&t) {
            return l;
        }
        debug_assert_eq!(self.pool.sort(t), Sort::Bool);
        let l = match *self.pool.kind(t) {
            TermKind::BoolConst(b) => self.const_lit(b),
            TermKind::Not(x) => self.blast_bool(x).negate(),
            TermKind::AndB(a, b) => {
                let la = self.blast_bool(a);
                let lb = self.blast_bool(b);
                self.and_gate(la, lb)
            }
            TermKind::OrB(a, b) => {
                let la = self.blast_bool(a);
                let lb = self.blast_bool(b);
                self.or_gate(la, lb)
            }
            TermKind::Cmp(op, a, b) => {
                let va = self.blast_bv(a);
                let vb = self.blast_bv(b);
                match op {
                    CmpOp::Eq => self.eq_vec(&va, &vb),
                    CmpOp::Ult => self.uge_gate(&va, &vb).negate(),
                    CmpOp::Ule => self.uge_gate(&vb, &va),
                    CmpOp::Slt => {
                        let (fa, fb) = (self.flip_sign(&va), self.flip_sign(&vb));
                        self.uge_gate(&fa, &fb).negate()
                    }
                    CmpOp::Sle => {
                        let (fa, fb) = (self.flip_sign(&va), self.flip_sign(&vb));
                        self.uge_gate(&fb, &fa)
                    }
                }
            }
            TermKind::Ite(c, a, b) => {
                let lc = self.blast_bool(c);
                let la = self.blast_bool(a);
                let lb = self.blast_bool(b);
                self.mux_gate(lc, la, lb)
            }
            ref other => unreachable!("non-Bool kind {other:?} with Bool sort"),
        };
        self.bool_cache.insert(t, l);
        l
    }

    fn flip_sign(&self, v: &[Lit]) -> Vec<Lit> {
        let mut out = v.to_vec();
        let last = out.len() - 1;
        out[last] = out[last].negate();
        out
    }

    /// Lower a BitVec-sorted term to its bit literals (LSB first).
    pub fn blast_bv(&mut self, t: TermId) -> Vec<Lit> {
        if let Some(v) = self.bv_cache.get(&t) {
            return v.clone();
        }
        let v: Vec<Lit> = match *self.pool.kind(t) {
            TermKind::BvConst { width, bits } => (0..width)
                .map(|i| self.const_lit((bits >> i) & 1 == 1))
                .collect(),
            TermKind::Var { width, var } => {
                if let Some(bits) = self.var_bits.get(&var) {
                    bits.clone()
                } else {
                    let bits: Vec<Lit> = (0..width).map(|_| Lit::pos(self.sat.new_var())).collect();
                    self.var_bits.insert(var, bits.clone());
                    bits
                }
            }
            TermKind::Bv(op, a, b) => {
                let va = self.blast_bv(a);
                let vb = self.blast_bv(b);
                match op {
                    BvOp::Add => self.adder(&va, &vb, self.lit_false()).0,
                    BvOp::Sub => self.sub_vec(&va, &vb),
                    BvOp::Mul => self.mul_vec(&va, &vb),
                    BvOp::UDiv => self.udivrem(&va, &vb).0,
                    BvOp::URem => self.udivrem(&va, &vb).1,
                    BvOp::SDiv => self.sdiv_or_srem(&va, &vb, true),
                    BvOp::SRem => self.sdiv_or_srem(&va, &vb, false),
                    BvOp::And => va
                        .iter()
                        .zip(&vb)
                        .map(|(&x, &y)| self.and_gate(x, y))
                        .collect(),
                    BvOp::Or => va
                        .iter()
                        .zip(&vb)
                        .map(|(&x, &y)| self.or_gate(x, y))
                        .collect(),
                    BvOp::Xor => va
                        .iter()
                        .zip(&vb)
                        .map(|(&x, &y)| self.xor_gate(x, y))
                        .collect(),
                    BvOp::Shl => self.shift(&va, &vb, true, false),
                    BvOp::LShr => self.shift(&va, &vb, false, false),
                    BvOp::AShr => self.shift(&va, &vb, false, true),
                    BvOp::Rotl => self.rotate(&va, &vb, true),
                    BvOp::Rotr => self.rotate(&va, &vb, false),
                }
            }
            TermKind::BvNot(a) => {
                let va = self.blast_bv(a);
                va.iter().map(|l| l.negate()).collect()
            }
            TermKind::BvNeg(a) => {
                let va = self.blast_bv(a);
                self.neg_vec(&va)
            }
            TermKind::Popcnt(a) => {
                let va = self.blast_bv(a);
                self.popcnt_vec(&va)
            }
            TermKind::Concat(hi, lo) => {
                let mut v = self.blast_bv(lo);
                v.extend(self.blast_bv(hi));
                v
            }
            TermKind::Extract { term, hi, lo } => {
                let v = self.blast_bv(term);
                v[lo as usize..=hi as usize].to_vec()
            }
            TermKind::ZeroExt { term, add } => {
                let mut v = self.blast_bv(term);
                v.extend(std::iter::repeat_n(self.lit_false(), add as usize));
                v
            }
            TermKind::SignExt { term, add } => {
                let mut v = self.blast_bv(term);
                let sign = *v.last().expect("non-empty bv");
                v.extend(std::iter::repeat_n(sign, add as usize));
                v
            }
            TermKind::Ite(c, a, b) => {
                let lc = self.blast_bool(c);
                let va = self.blast_bv(a);
                let vb = self.blast_bv(b);
                self.mux_vec(lc, &va, &vb)
            }
            ref other => unreachable!("non-BV kind {other:?} with BV sort"),
        };
        self.bv_cache.insert(t, v.clone());
        v
    }

    fn sdiv_or_srem(&mut self, a: &[Lit], b: &[Lit], want_div: bool) -> Vec<Lit> {
        let w = a.len();
        let sa = a[w - 1];
        let sb = b[w - 1];
        let na = self.neg_vec(a);
        let nb = self.neg_vec(b);
        let abs_a = self.mux_vec(sa, &na, a);
        let abs_b = self.mux_vec(sb, &nb, b);
        let (q, r) = self.udivrem(&abs_a, &abs_b);
        if want_div {
            let neg_q = self.neg_vec(&q);
            let sign_differs = self.xor_gate(sa, sb);
            self.mux_vec(sign_differs, &neg_q, &q)
        } else {
            // Remainder takes the dividend's sign.
            let neg_r = self.neg_vec(&r);
            self.mux_vec(sa, &neg_r, &r)
        }
    }

    /// Assert a Bool term.
    pub fn assert_true(&mut self, t: TermId) {
        let l = self.blast_bool(t);
        self.sat.add_clause(&[l]);
    }

    /// After a Sat outcome, read back a variable's value (missing variables —
    /// ones the assertions never constrained — default to 0).
    pub fn var_value(&self, var: u32) -> u64 {
        match self.var_bits.get(&var) {
            None => 0,
            Some(bits) => bits.iter().enumerate().fold(0u64, |acc, (i, l)| {
                let bit = self.sat.value(l.var()) != l.is_neg();
                acc | ((bit as u64) << i)
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deadline::Deadline;
    use crate::sat::SatOutcome;

    /// Solve `assertions` and return the model value of `x` if Sat.
    fn solve_for(pool: &mut TermPool, assertions: &[TermId]) -> Option<Vec<u64>> {
        let mut bb = BitBlaster::new(pool);
        for &a in assertions {
            bb.assert_true(a);
        }
        match bb.sat.solve(200_000, Deadline::NONE) {
            SatOutcome::Sat => Some(
                (0..pool.vars().len() as u32)
                    .map(|v| bb.var_value(v))
                    .collect(),
            ),
            _ => None,
        }
    }

    #[test]
    fn solves_linear_equation() {
        // x + 17 == 42  →  x == 25
        let mut p = TermPool::new();
        let x = p.var("x", 32);
        let c17 = p.bv_const(17, 32);
        let c42 = p.bv_const(42, 32);
        let sum = p.bv(BvOp::Add, x, c17);
        let eq = p.eq(sum, c42);
        let model = solve_for(&mut p, &[eq]).expect("sat");
        assert_eq!(model[0], 25);
    }

    #[test]
    fn solves_multiplication() {
        // x * 6 == 42 with x < 100 → x == 7 (among the solutions; verify by eval)
        let mut p = TermPool::new();
        let x = p.var("x", 16);
        let six = p.bv_const(6, 16);
        let c42 = p.bv_const(42, 16);
        let prod = p.bv(BvOp::Mul, x, six);
        let eq = p.eq(prod, c42);
        let model = solve_for(&mut p, &[eq]).expect("sat");
        assert_eq!(p.eval(eq, &model), 1, "model must satisfy the assertion");
    }

    #[test]
    fn detects_unsat() {
        // x < 5 ∧ x > 10 is unsat.
        let mut p = TermPool::new();
        let x = p.var("x", 32);
        let c5 = p.bv_const(5, 32);
        let c10 = p.bv_const(10, 32);
        let lt = p.cmp(CmpOp::Ult, x, c5);
        let gt = p.cmp(CmpOp::Ult, c10, x);
        assert!(solve_for(&mut p, &[lt, gt]).is_none());
    }

    #[test]
    fn signed_comparison_crosses_zero() {
        // x <s 0 ∧ x >s -4 → x ∈ {-3, -2, -1}
        let mut p = TermPool::new();
        let x = p.var("x", 32);
        let zero = p.bv_const(0, 32);
        let m4 = p.bv_const((-4i64) as u64, 32);
        let neg = p.cmp(CmpOp::Slt, x, zero);
        let gt = p.cmp(CmpOp::Slt, m4, x);
        let model = solve_for(&mut p, &[neg, gt]).expect("sat");
        let sx = model[0] as u32 as i32;
        assert!((-3..=-1).contains(&sx), "got {sx}");
    }

    #[test]
    fn division_is_exact() {
        // x / 7 == 5 ∧ x % 7 == 3  →  x == 38
        let mut p = TermPool::new();
        let x = p.var("x", 16);
        let c7 = p.bv_const(7, 16);
        let c5 = p.bv_const(5, 16);
        let c3 = p.bv_const(3, 16);
        let q = p.bv(BvOp::UDiv, x, c7);
        let r = p.bv(BvOp::URem, x, c7);
        let e1 = p.eq(q, c5);
        let e2 = p.eq(r, c3);
        let model = solve_for(&mut p, &[e1, e2]).expect("sat");
        assert_eq!(model[0], 38);
    }

    #[test]
    fn shift_solving() {
        // (x << 3) == 0b101000 → x low bits = 0b101 (mod 2^w-3)
        let mut p = TermPool::new();
        let x = p.var("x", 16);
        let three = p.bv_const(3, 16);
        let target = p.bv_const(0b101000, 16);
        let shl = p.bv(BvOp::Shl, x, three);
        let eq = p.eq(shl, target);
        let model = solve_for(&mut p, &[eq]).expect("sat");
        assert_eq!(model[0] & 0x1fff, 0b101);
    }

    #[test]
    fn popcnt_constraint_is_solvable() {
        // popcnt(x) == 13 on 16 bits — the obfuscated-guard shape of §4.3.
        let mut p = TermPool::new();
        let x = p.var("x", 16);
        let pc = p.popcnt(x);
        let c13 = p.bv_const(13, 16);
        let eq = p.eq(pc, c13);
        let model = solve_for(&mut p, &[eq]).expect("sat");
        assert_eq!((model[0] & 0xffff).count_ones(), 13);
    }

    #[test]
    fn popcnt_unsat_when_impossible() {
        // popcnt(x) == 9 on 8 bits is impossible.
        let mut p = TermPool::new();
        let x = p.var("x", 8);
        let pc = p.popcnt(x);
        let c9 = p.bv_const(9, 8);
        let eq = p.eq(pc, c9);
        assert!(solve_for(&mut p, &[eq]).is_none());
    }

    #[test]
    fn models_satisfy_random_mixed_constraints() {
        // Differential check: build assorted constraints, and whenever the
        // solver says Sat, evaluate the terms under the model.
        let mut seed = 42u64;
        let mut rnd = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            seed >> 32
        };
        let ops = [
            BvOp::Add,
            BvOp::Sub,
            BvOp::Mul,
            BvOp::And,
            BvOp::Or,
            BvOp::Xor,
        ];
        for case in 0..12 {
            let mut p = TermPool::new();
            let x = p.var("x", 16);
            let y = p.var("y", 16);
            let op = ops[case % ops.len()];
            let mixed = p.bv(op, x, y);
            let c = p.bv_const(rnd() & 0xffff, 16);
            let eq = p.eq(mixed, c);
            if let Some(model) = solve_for(&mut p, &[eq]) {
                assert_eq!(p.eval(eq, &model), 1, "case {case} ({op:?})");
            }
        }
    }

    #[test]
    fn sixty_four_bit_name_equality() {
        // The Fake EOS guard shape: code == N(eosio.token) as a 64-bit eq.
        let mut p = TermPool::new();
        let code = p.var("code", 64);
        let token = p.bv_const(0x5530ea033482a600, 64);
        let eq = p.eq(code, token);
        let model = solve_for(&mut p, &[eq]).expect("sat");
        assert_eq!(model[0], 0x5530ea033482a600);
    }
}
