//! Deterministic portfolio SAT: race k CDCL configurations on hard queries
//! without ever changing what the engine reports.
//!
//! Classic portfolio solvers take whichever configuration answers first —
//! which makes the result a function of the thread schedule, poisoning
//! every byte-identity guarantee this codebase is built on. This module
//! resolves the tension with a **virtual-budget-fair merge rule**:
//!
//! 1. Every configuration — the reference ([`SearchConfig::DEFAULT`], i.e.
//!    exactly the historical search) and each variant — gets the *same*
//!    deterministic conflict budget. No configuration is granted more
//!    virtual time than the engine would have spent anyway.
//! 2. The reference configuration's result is **always** the one reported,
//!    merged stats included. A variant can finish first, finish better, or
//!    not finish at all; none of that reaches the engine's result, the
//!    virtual clock, the telemetry trace, or the caches.
//!
//! Under that rule determinism is immediate: the reported `(result, stats)`
//! is a pure function of the query and the budget — the same function as
//! `k = 1` — so reports and traces are bit-identical at any `k` and any
//! thread schedule. What the variants buy is *observability*: when a
//! variant proves Sat/Unsat on a query the reference conflicted out on,
//! that near-miss is counted (`wasai_smt_portfolio_salvaged_total`) as
//! evidence the budget or the default heuristics are leaving results on
//! the table; and if a variant ever contradicts a definitive reference
//! verdict, that is a solver soundness bug and is counted and logged
//! loudly (`wasai_smt_portfolio_disagreements_total`).
//!
//! The race itself runs on scoped threads (all joined before returning, in
//! spawn order), so wall-clock cost is roughly one extra solve when cores
//! are free. Counters are `wasai-obs` series: monotonic, out-of-band, never
//! read back into decisions — the sanctioned place for schedule-varying
//! facts.

use crate::bitblast::BitBlaster;
use crate::deadline::Deadline;
use crate::sat::{SatOutcome, SearchConfig};
use crate::solver::{preprocess, SolveResult};
use crate::term::{TermId, TermPool};

/// The deterministic configuration family. Index 0 is always the reference
/// ([`SearchConfig::DEFAULT`]); further indices cycle through restart,
/// phase and decay variations chosen to diversify the search order.
pub fn variant_configs(k: usize) -> Vec<SearchConfig> {
    (0..k)
        .map(|i| match i % 6 {
            0 => SearchConfig::DEFAULT,
            1 => SearchConfig {
                restart_base: 256,
                ..SearchConfig::DEFAULT
            },
            2 => SearchConfig {
                phase_saving: false,
                default_phase: true,
                ..SearchConfig::DEFAULT
            },
            3 => SearchConfig {
                restart_base: 16,
                decay: 1.2,
                ..SearchConfig::DEFAULT
            },
            4 => SearchConfig {
                phase_saving: false,
                default_phase: false,
                ..SearchConfig::DEFAULT
            },
            _ => SearchConfig {
                restart_base: 1024,
                decay: 1.01,
                ..SearchConfig::DEFAULT
            },
        })
        .collect()
}

/// What one race observed — diagnostics only; nothing here may influence
/// engine results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RaceReport {
    /// Variant configurations actually raced (k - 1, or 0 when k <= 1).
    pub variants_run: usize,
    /// Variants that proved Sat where the reference gave up Unknown.
    pub salvaged_sat: usize,
    /// Variants that proved Unsat where the reference gave up Unknown.
    pub salvaged_unsat: usize,
    /// Variants that contradicted a definitive reference verdict — a
    /// soundness alarm.
    pub disagreements: usize,
}

/// Solve `assertions` from scratch under `cfg`, returning only the verdict
/// tag. No deadline: variant searches must be deterministic.
fn verdict_under(
    pool: &TermPool,
    assertions: &[TermId],
    max_conflicts: u64,
    cfg: &SearchConfig,
) -> &'static str {
    let Some(effective) = preprocess(pool, assertions) else {
        return "unsat";
    };
    if effective.is_empty() {
        return "sat";
    }
    let mut bb = BitBlaster::new(pool);
    for &a in &effective {
        bb.assert_true(a);
    }
    match bb.sat.solve_with_config(max_conflicts, Deadline::NONE, cfg) {
        SatOutcome::Sat => "sat",
        SatOutcome::Unsat => "unsat",
        SatOutcome::Unknown => "unknown",
    }
}

/// Race the variant configurations (indices 1..k of [`variant_configs`])
/// against the already-computed `reference` verdict for `assertions` under
/// the same conflict budget, merging under the virtual-budget-fair rule:
/// the returned report is observability, the reference result stays
/// authoritative.
///
/// The caller passes the result it is about to report (produced by the
/// reference configuration); this function never returns an alternative.
pub fn race_diagnostics(
    pool: &TermPool,
    assertions: &[TermId],
    max_conflicts: u64,
    k: usize,
    reference: &SolveResult,
) -> RaceReport {
    let configs = variant_configs(k);
    if configs.len() <= 1 {
        return RaceReport::default();
    }
    wasai_obs::inc(wasai_obs::Counter::PortfolioRaces);
    // All variants run to completion under the same budget and are joined
    // in spawn order: the verdict vector is schedule-independent.
    let verdicts: Vec<&'static str> = std::thread::scope(|s| {
        let handles: Vec<_> = configs[1..]
            .iter()
            .map(|cfg| s.spawn(move || verdict_under(pool, assertions, max_conflicts, cfg)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or("unknown"))
            .collect()
    });
    let mut report = RaceReport {
        variants_run: verdicts.len(),
        ..RaceReport::default()
    };
    let ref_kind = reference.kind();
    for (i, v) in verdicts.iter().enumerate() {
        match (ref_kind, *v) {
            ("unknown", "sat") => {
                report.salvaged_sat += 1;
                wasai_obs::inc(wasai_obs::Counter::PortfolioSalvagedSat);
            }
            ("unknown", "unsat") => {
                report.salvaged_unsat += 1;
                wasai_obs::inc(wasai_obs::Counter::PortfolioSalvagedUnsat);
            }
            ("sat", "unsat") | ("unsat", "sat") => {
                report.disagreements += 1;
                wasai_obs::inc(wasai_obs::Counter::PortfolioDisagreements);
                eprintln!(
                    "portfolio: variant {} answered {v} against a definitive \
                     reference {ref_kind} — solver soundness bug",
                    i + 1
                );
                debug_assert!(false, "portfolio variant contradicted a definitive verdict");
            }
            _ => {}
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{check, Budget};
    use crate::term::CmpOp;

    fn query(pool: &mut TermPool) -> Vec<TermId> {
        let x = pool.var("x", 32);
        let y = pool.var("y", 32);
        let c = pool.bv_const(12345, 32);
        let sum = pool.bv(crate::term::BvOp::Add, x, y);
        let eq = pool.eq(sum, c);
        let bound = pool.bv_const(100, 32);
        let lt = pool.cmp(CmpOp::Ult, x, bound);
        vec![eq, lt]
    }

    #[test]
    fn k1_is_a_no_op() {
        let mut p = TermPool::new();
        let q = query(&mut p);
        let (res, _) = check(&p, &q, Budget::default());
        let report = race_diagnostics(&p, &q, Budget::default().max_conflicts, 1, &res);
        assert_eq!(report, RaceReport::default());
    }

    #[test]
    fn variants_agree_with_a_definitive_reference() {
        let mut p = TermPool::new();
        let q = query(&mut p);
        let budget = Budget::default();
        let (res, _) = check(&p, &q, budget);
        assert_eq!(res.kind(), "sat");
        let report = race_diagnostics(&p, &q, budget.max_conflicts, 4, &res);
        assert_eq!(report.variants_run, 3);
        assert_eq!(report.disagreements, 0, "variants contradicted: {report:?}");
        assert_eq!(report.salvaged_sat + report.salvaged_unsat, 0);
    }

    #[test]
    fn a_reference_unknown_is_salvaged_not_overridden() {
        // The reference gave up (simulated: the engine would pass its actual
        // Unknown); variants under an ample budget solve the query — counted
        // as salvage, never as a changed answer.
        let mut p = TermPool::new();
        let q = query(&mut p);
        let report = race_diagnostics(&p, &q, 50_000, 3, &SolveResult::Unknown);
        assert_eq!(report.variants_run, 2);
        assert_eq!(report.salvaged_sat, 2);
        assert_eq!(report.disagreements, 0);
    }

    #[test]
    fn race_is_repeatable() {
        let mut p = TermPool::new();
        let q = query(&mut p);
        let budget = Budget::default();
        let (res, _) = check(&p, &q, budget);
        let a = race_diagnostics(&p, &q, budget.max_conflicts, 6, &res);
        let b = race_diagnostics(&p, &q, budget.max_conflicts, 6, &res);
        assert_eq!(a, b);
    }

    #[test]
    fn config_family_is_deterministic_and_reference_first() {
        let c = variant_configs(8);
        assert_eq!(c.len(), 8);
        assert_eq!(c[0], SearchConfig::DEFAULT);
        assert_eq!(c, variant_configs(8));
        assert_eq!(c[6], c[0], "family cycles after 6");
    }
}
